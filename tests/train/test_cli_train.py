"""The reworked ``train`` command and the ``models`` subcommands."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXIT_KILLED, main


def _train(tmp_path, *extra):
    out = tmp_path / "rec.json"
    args = [
        "train", "--family", "ud", "--examples", "5", "--seed", "9",
        "--output", str(out), *map(str, extra),
    ]
    return main(args), out


class TestTrainCommand:
    def test_jobs_and_cache_flags(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        code, out = _train(tmp_path, "--jobs", "2", "--cache-dir", cache)
        assert code == 0
        text = capsys.readouterr().out
        assert "trained on 10 examples across 2 classes" in text
        assert "model version" in text
        assert (cache / "objects").is_dir()
        model = json.loads(out.read_text())
        assert "full_classifier" in model and "auc" in model

        code, _ = _train(tmp_path, "--cache-dir", cache)
        assert code == 0
        assert "cached: manifest" in capsys.readouterr().out

    def test_kill_and_resume_round_trip(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        code, _ = _train(
            tmp_path, "--cache-dir", cache, "--kill-after", "subgestures"
        )
        assert code == EXIT_KILLED
        assert "rerun with --resume" in capsys.readouterr().out
        code, _ = _train(tmp_path, "--cache-dir", cache, "--resume")
        assert code == 0
        assert "trained on 10 examples" in capsys.readouterr().out

    def test_resume_without_checkpoint_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            _train(tmp_path, "--cache-dir", tmp_path / "empty", "--resume")

    def test_spec_file(self, tmp_path, capsys):
        spec_path = tmp_path / "job.json"
        spec_path.write_text(
            json.dumps({"family": "ud", "examples": 4, "seed": 2})
        )
        out = tmp_path / "rec.json"
        code = main(["train", "--spec", str(spec_path), "--output", str(out)])
        assert code == 0
        assert "trained on 8 examples" in capsys.readouterr().out

    def test_malformed_spec_exits(self, tmp_path):
        spec_path = tmp_path / "job.json"
        spec_path.write_text('{"family": "ud", "optimizer": "adam"}')
        with pytest.raises(SystemExit, match="unknown spec keys"):
            main(["train", "--spec", str(spec_path)])

    def test_publish_alias_and_metrics(self, tmp_path, capsys):
        registry = tmp_path / "reg"
        code, _ = _train(tmp_path, "--publish", registry, "--metrics")
        assert code == 0
        text = capsys.readouterr().out
        assert f"published to {registry} as ud@" in text
        assert "train.stages_run" in text


class TestModelsCommands:
    @pytest.fixture()
    def registry(self, tmp_path):
        root = tmp_path / "reg"
        code, _ = _train(tmp_path, "--registry", root, "--name", "udm")
        assert code == 0
        return root

    def test_list(self, registry, capsys):
        assert main(["models", "list", "--registry", str(registry)]) == 0
        out = capsys.readouterr().out
        assert "udm" in out and "latest=" in out and "versions=1" in out

    def test_list_empty(self, tmp_path, capsys):
        empty = tmp_path / "nothing"
        assert main(["models", "list", "--registry", str(empty)]) == 0
        assert "no models" in capsys.readouterr().out

    def test_show_prints_lineage(self, registry, capsys):
        assert main(["models", "show", "udm", "--registry", str(registry)]) == 0
        out = capsys.readouterr().out
        assert "source: repro.train" in out
        assert "trained from: ud" in out
        assert "dataset hash:" in out
        assert "stage keys:" in out
        for stage in ("manifest", "subgestures", "package"):
            assert stage in out

    def test_show_unknown_model_exits(self, registry):
        with pytest.raises(SystemExit):
            main(["models", "show", "ghost", "--registry", str(registry)])

    def test_show_at_version(self, registry, capsys):
        main(["models", "list", "--registry", str(registry)])
        listed = capsys.readouterr().out
        version = listed.split("latest=")[1].split()[0]
        code = main(
            ["models", "show", f"udm@{version}", "--registry", str(registry)]
        )
        assert code == 0
        assert f"udm@{version}" in capsys.readouterr().out
