"""Tests for rejection inside the gesture handler."""

import math

import pytest

from repro.events import EventQueue, VirtualClock, perform_gesture, stroke_events
from repro.geometry import BoundingBox, Stroke
from repro.interaction import GestureHandler, GestureSemantics
from repro.mvc import Dispatcher, View
from repro.recognizer import RejectionPolicy
from repro.synth import GestureGenerator, eight_direction_templates


class WindowView(View):
    def bounds(self):
        return BoundingBox(-10_000, -10_000, 10_000, 10_000)


def garbage_stroke() -> Stroke:
    """A large spiral: far from every direction-pair class."""
    return Stroke.from_xy(
        [
            (math.cos(a) * a * 40, math.sin(a) * a * 40)
            for a in [i * 0.3 for i in range(60)]
        ],
        dt=0.01,
    )


@pytest.fixture
def harness(directions_recognizer):
    recognized = []
    rejected = []

    def recog(ctx):
        recognized.append(ctx.class_name)

    handler = GestureHandler(
        recognizer=directions_recognizer,
        semantics={
            name: GestureSemantics(recog=recog)
            for name in directions_recognizer.class_names
        },
        use_eager=False,
        rejection_policy=RejectionPolicy(
            min_probability=0.0, max_squared_distance=13 * 13 / 2
        ),
        on_rejected=lambda gesture, result: rejected.append(result),
    )
    view = WindowView()
    view.add_handler(handler)
    queue = EventQueue(VirtualClock())
    return handler, Dispatcher(view, queue), queue, recognized, rejected


class TestRejectionAtMouseUp:
    def test_clean_gesture_accepted(self, harness):
        handler, dispatcher, queue, recognized, rejected = harness
        stroke = GestureGenerator(
            eight_direction_templates(), seed=3
        ).generate("ur").stroke
        queue.post_all(stroke_events(stroke))
        dispatcher.run()
        assert recognized == ["ur"]
        assert rejected == []

    def test_garbage_rejected_no_semantics(self, harness):
        handler, dispatcher, queue, recognized, rejected = harness
        queue.post_all(stroke_events(garbage_stroke()))
        dispatcher.run()
        assert recognized == []
        assert len(rejected) == 1
        assert rejected[0].rejected

    def test_handler_reusable_after_rejection(self, harness):
        handler, dispatcher, queue, recognized, rejected = harness
        queue.post_all(stroke_events(garbage_stroke()))
        dispatcher.run()
        stroke = GestureGenerator(
            eight_direction_templates(), seed=4
        ).generate("dl").stroke.retimed(0.01, t0=100.0)
        queue.post_all(stroke_events(stroke))
        dispatcher.run()
        assert recognized == ["dl"]


class TestRejectionAtTimeout:
    def test_timeout_rejection_keeps_collecting(self, harness):
        handler, dispatcher, queue, recognized, rejected = harness
        # Dwell mid-garbage: the timeout fires, rejects, and collection
        # continues; the mouse-up then rejects again.
        garbage = garbage_stroke()
        events = perform_gesture(garbage, dwell=0.5)
        queue.post_all(events)
        dispatcher.run()
        assert recognized == []
        assert len(rejected) == 2  # once at timeout, once at release

    def test_timeout_rejection_then_valid_completion(
        self, directions_recognizer
    ):
        # Start with just the first segment (a bare prefix is a wild
        # Mahalanobis outlier — no full gesture looks like it), dwell so
        # the timeout fires and rejects, then complete the corner and
        # release: accepted at mouse-up.  The distance threshold is
        # loose enough to absorb the dwell's distortion of the duration
        # feature but far below the prefix's outlier distance.
        recognized = []
        rejected = []
        handler = GestureHandler(
            recognizer=directions_recognizer,
            semantics={
                name: GestureSemantics(
                    recog=lambda ctx: recognized.append(ctx.class_name)
                )
                for name in directions_recognizer.class_names
            },
            use_eager=False,
            rejection_policy=RejectionPolicy(
                min_probability=0.0, max_squared_distance=300.0
            ),
            on_rejected=lambda gesture, result: rejected.append(result),
        )
        view = WindowView()
        view.add_handler(handler)
        queue = EventQueue(VirtualClock())
        dispatcher = Dispatcher(view, queue)

        example = GestureGenerator(
            eight_direction_templates(), seed=5
        ).generate("ur")
        stroke = example.stroke
        cut = max(example.oracle_points - 3, 2)  # inside the ambiguous run
        prefix = stroke.subgesture(cut)
        rest = Stroke(list(stroke)[cut:])
        events = perform_gesture(prefix, dwell=0.25, manipulation_path=rest)
        queue.post_all(events)
        dispatcher.run()
        assert recognized == ["ur"]
        assert len(rejected) >= 1  # the dwell-time rejection happened
