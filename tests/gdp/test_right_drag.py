"""Tests for §3.1: gesture and direct manipulation in one interface,
separated by mouse button."""

import pytest

from repro.events import EventKind, MouseButton, MouseEvent, perform_gesture
from repro.gdp import GDPApp
from repro.geometry import Stroke
from repro.synth import GestureGenerator, gdp_templates


@pytest.fixture
def app(gdp_recognizer):
    app = GDPApp(
        recognizer=gdp_recognizer, use_eager=False, right_button_drag=True
    )
    stroke = (
        GestureGenerator(gdp_templates(), seed=77)
        .generate("rect")
        .stroke.translated(150, 150)
    )
    app.perform(
        perform_gesture(
            stroke, dwell=0.3, manipulation_path=Stroke.from_xy([(350, 300)])
        )
    )
    return app


def right(kind, x, y, t):
    return MouseEvent(kind, x, y, t, MouseButton.RIGHT)


class TestRightButtonDrag:
    def test_right_drag_moves_shape(self, app):
        rect = app.shapes[0]
        x, y = rect.corners[0]
        before = tuple(rect.corners[0])
        t = app.queue.clock.now + 1.0
        app.perform(
            [
                right(EventKind.PRESS, x, y, t),
                right(EventKind.MOVE, x + 40, y + 30, t + 0.1),
                right(EventKind.RELEASE, x + 40, y + 30, t + 0.2),
            ]
        )
        after = rect.corners[0]
        assert after[0] == pytest.approx(before[0] + 40)
        assert after[1] == pytest.approx(before[1] + 30)
        # No new shape appeared: the right button never gestures.
        assert len(app.shapes) == 1

    def test_left_button_still_gestures_over_shapes(self, app, gdp_recognizer):
        rect = app.shapes[0]
        corner = rect.corners[0]
        stroke = GestureGenerator(gdp_templates(), seed=78).generate(
            "delete"
        ).stroke
        stroke = stroke.translated(
            corner[0] - stroke.start.x, corner[1] - stroke.start.y
        )
        app.perform(perform_gesture(stroke, dwell=0.3))
        assert rect not in app.canvas  # the delete gesture ran

    def test_right_press_on_background_is_inert(self, app):
        before = len(app.shapes)
        t = app.queue.clock.now + 1.0
        app.perform(
            [
                right(EventKind.PRESS, 700, 500, t),
                right(EventKind.RELEASE, 700, 500, t + 0.1),
            ]
        )
        assert len(app.shapes) == before

    def test_newly_created_shapes_are_draggable(self, app, gdp_recognizer):
        # Draw a line after construction; it must also respond to drag.
        stroke = (
            GestureGenerator(gdp_templates(), seed=79)
            .generate("line")
            .stroke.translated(500, 100)
        )
        app.perform(perform_gesture(stroke, dwell=0.3))
        line = app.shapes[-1]
        x, y = line.endpoints[0]
        before = tuple(line.endpoints[0])
        t = app.queue.clock.now + 1.0
        app.perform(
            [
                right(EventKind.PRESS, x, y, t),
                right(EventKind.MOVE, x + 25, y, t + 0.1),
                right(EventKind.RELEASE, x + 25, y, t + 0.2),
            ]
        )
        assert line.endpoints[0][0] == pytest.approx(before[0] + 25)

    def test_flag_off_by_default(self, gdp_recognizer):
        app = GDPApp(recognizer=gdp_recognizer, use_eager=False)
        stroke = (
            GestureGenerator(gdp_templates(), seed=80)
            .generate("rect")
            .stroke.translated(150, 150)
        )
        app.perform(perform_gesture(stroke, dwell=0.3))
        rect = app.shapes[0]
        x, y = rect.corners[0]
        before = tuple(rect.corners[0])
        t = app.queue.clock.now + 1.0
        app.perform(
            [
                right(EventKind.PRESS, x, y, t),
                right(EventKind.MOVE, x + 40, y, t + 0.1),
                right(EventKind.RELEASE, x + 40, y, t + 0.2),
            ]
        )
        assert rect.corners[0] == before  # nothing handles right-drag
