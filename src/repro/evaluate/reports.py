"""Plain-text reports in the shape of the paper's figures and tables.

The benchmark harness prints these so a reader can put the reproduction
side by side with the paper: figure-9 style per-example grids, the §5
summary rows, and figures 5–7's per-point label strings.
"""

from __future__ import annotations

from ..eager import EagerTrainingReport
from .harness import EvaluationResult

__all__ = [
    "figure9_grid",
    "summary_row",
    "comparison_table",
    "labelling_diagram",
]


def figure9_grid(
    result: EvaluationResult, per_row: int = 10, max_rows_per_class: int = 1
) -> str:
    """Per-example captions grouped by class, like figure 9's grid.

    Each cell reads ``oracle,seen/total [flags]`` — e.g. ``7,8/11`` means
    the corner was passed after 7 points, the eager recognizer committed
    after 8, and the gesture had 11 points; E flags an eager
    misclassification, F a full-classifier one.
    """
    by_class: dict[str, list[str]] = {}
    for i, outcome in enumerate(result.outcomes):
        name = f"{outcome.class_name}{i}"
        by_class.setdefault(outcome.class_name, []).append(
            f"{outcome.caption()} ({name})"
        )
    lines: list[str] = []
    for class_name, cells in by_class.items():
        lines.append(f"{class_name}:")
        shown = cells[: per_row * max_rows_per_class]
        for start in range(0, len(shown), per_row):
            lines.append("  " + "  ".join(shown[start : start + per_row]))
    return "\n".join(lines)


def summary_row(label: str, result: EvaluationResult) -> str:
    """One comparison row: accuracies and eagerness percentages."""
    oracle = (
        f"{result.eagerness.mean_oracle_fraction:6.1%}"
        if result.eagerness.oracle_fractions
        else "   n/a"
    )
    return (
        f"{label:<28} full {result.full_accuracy:6.1%}   "
        f"eager {result.eager_accuracy:6.1%}   "
        f"seen {result.eagerness.mean_fraction_seen:6.1%}   "
        f"oracle {oracle}"
    )


def comparison_table(rows: list[tuple[str, EvaluationResult]]) -> str:
    """Stack several summary rows under a header."""
    header = (
        f"{'experiment':<28} {'full acc':>10} {'eager acc':>11} "
        f"{'seen':>7} {'oracle':>8}"
    )
    lines = [header, "-" * len(header)]
    for label, result in rows:
        oracle = (
            f"{result.eagerness.mean_oracle_fraction:6.1%}"
            if result.eagerness.oracle_fractions
            else "n/a"
        )
        lines.append(
            f"{label:<28} {result.full_accuracy:>9.1%} "
            f"{result.eager_accuracy:>10.1%} "
            f"{result.eagerness.mean_fraction_seen:>6.1%} {oracle:>8}"
        )
    return "\n".join(lines)


def labelling_diagram(report: EagerTrainingReport, max_examples: int = 5) -> str:
    """Figures 5–7: per-subgesture labels of training examples.

    Each training example renders as its class name and one character per
    subgesture — uppercase for complete, lowercase for incomplete, the
    letter being the full classifier's verdict on that prefix.
    """
    lines: list[str] = []
    shown: dict[str, int] = {}
    for example in report.labelled:
        count = shown.get(example.true_class, 0)
        if count >= max_examples:
            continue
        shown[example.true_class] = count + 1
        lines.append(f"{example.true_class:>12}: {example.label_string()}")
    return "\n".join(lines)
