"""Multi-path gesture classification.

Rubine's dissertation extends the single-stroke method to multiple paths
by classifying on per-path feature vectors plus global features, gated by
the number of paths.  This module follows that scheme:

* examples are grouped by path count — a two-finger gesture never
  competes with a one-finger gesture;
* within a path-count group, the feature vector is the concatenation of
  each path's 13 Rubine features (paths in canonical order) plus the
  inter-path spread, trained with the same closed-form linear machinery.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..features import features_of
from ..recognizer import train_linear_classifier
from ..recognizer.linear import LinearClassifier
from .gesture import MultiPathGesture

__all__ = ["MultiPathClassifier", "multipath_features"]


def multipath_features(gesture: MultiPathGesture) -> np.ndarray:
    """Concatenated per-path features plus global spread features."""
    per_path = [features_of(path) for path in gesture.paths]
    box = gesture.bounding_box()
    global_features = np.array([box.diagonal, gesture.duration])
    return np.concatenate(per_path + [global_features])


class MultiPathClassifier:
    """Path-count-gated linear classification of multi-path gestures."""

    def __init__(self, by_path_count: dict[int, LinearClassifier]):
        if not by_path_count:
            raise ValueError("no sub-classifiers given")
        self._by_path_count = by_path_count

    @classmethod
    def train(
        cls, examples_by_class: Mapping[str, Sequence[MultiPathGesture]]
    ) -> "MultiPathClassifier":
        """Train one linear classifier per distinct path count.

        Every example of a class must use the same number of paths (a
        class is defined in part by its finger count).
        """
        grouped: dict[int, dict[str, list[np.ndarray]]] = {}
        for class_name, gestures in examples_by_class.items():
            gestures = list(gestures)
            if not gestures:
                raise ValueError(f"class {class_name!r} has no examples")
            counts = {g.path_count for g in gestures}
            if len(counts) != 1:
                raise ValueError(
                    f"class {class_name!r} mixes path counts {sorted(counts)}"
                )
            count = counts.pop()
            grouped.setdefault(count, {})[class_name] = [
                multipath_features(g) for g in gestures
            ]
        sub_classifiers = {
            count: train_linear_classifier(classes).classifier
            for count, classes in grouped.items()
        }
        return cls(sub_classifiers)

    @property
    def path_counts(self) -> list[int]:
        return sorted(self._by_path_count.keys())

    def classify(self, gesture: MultiPathGesture) -> str:
        """Class of the gesture; unknown path counts raise KeyError."""
        classifier = self._by_path_count.get(gesture.path_count)
        if classifier is None:
            raise KeyError(
                f"no gesture class uses {gesture.path_count} paths "
                f"(trained counts: {self.path_counts})"
            )
        return classifier.classify(multipath_features(gesture))
