"""Property-based tests on the event queue's ordering guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import EventKind, EventQueue, MouseEvent


@st.composite
def event_batches(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    times = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    return [
        MouseEvent(EventKind.MOVE, float(i), 0.0, t)
        for i, t in enumerate(times)
    ]


class TestOrdering:
    @given(event_batches())
    @settings(max_examples=100, deadline=None)
    def test_delivery_is_time_sorted(self, events):
        queue = EventQueue()
        queue.post_all(events)
        delivered = []
        queue.run(lambda e: delivered.append(e.t))
        assert delivered == sorted(delivered)

    @given(event_batches())
    @settings(max_examples=100, deadline=None)
    def test_every_event_delivered_exactly_once(self, events):
        queue = EventQueue()
        queue.post_all(events)
        delivered = []
        count = queue.run(lambda e: delivered.append(e.x))
        assert count == len(events)
        assert sorted(delivered) == sorted(e.x for e in events)

    @given(event_batches())
    @settings(max_examples=100, deadline=None)
    def test_equal_times_keep_posting_order(self, events):
        queue = EventQueue()
        queue.post_all(events)
        delivered = []
        queue.run(lambda e: delivered.append((e.t, e.x)))
        # Among equal timestamps, x (the posting index) must ascend.
        for (t1, x1), (t2, x2) in zip(delivered, delivered[1:]):
            if t1 == t2:
                assert x1 < x2

    @given(event_batches())
    @settings(max_examples=50, deadline=None)
    def test_clock_never_runs_backwards(self, events):
        queue = EventQueue()
        queue.post_all(events)
        observed = []
        queue.run(lambda e: observed.append(queue.clock.now))
        assert observed == sorted(observed)

    @given(
        event_batches(),
        st.lists(
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=5,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_timers_interleave_correctly(self, events, delays):
        queue = EventQueue()
        queue.post_all(events)
        order = []
        for delay in delays:
            queue.schedule_timer(delay, lambda t: order.append(("timer", t.t)))
        queue.run(lambda e: order.append(("event", e.t)))
        times = [t for _, t in order]
        assert times == sorted(times)
        assert sum(1 for kind, _ in order if kind == "timer") == len(delays)
