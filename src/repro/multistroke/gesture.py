"""Multi-stroke gestures and the connect adaptation.

GRANDMA only recognizes single strokes; the paper notes the cost ("many
common marks (e.g. 'X' and '->') cannot be used as gestures") and the
escape hatch: "a number of techniques exist for adapting single-stroke
recognizers to multiple stroke recognition [8, 15], so perhaps
GRANDMA's recognizer will be extended this way in the future" (§2).

This module is that extension, following the Lipscomb-style *connect*
technique: the strokes of a multi-stroke gesture are concatenated —
each pen-up hop becomes an ordinary (fast) segment — yielding one
synthetic stroke the unmodified Rubine recognizer handles, gated by the
stroke count so an 'X' never competes with an 'O'.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..geometry import Point, Stroke

__all__ = ["MultiStrokeGesture", "connect_strokes"]


@dataclass(frozen=True)
class MultiStrokeGesture:
    """An ordered sequence of pen-down strokes forming one mark."""

    strokes: tuple[Stroke, ...]

    def __init__(self, strokes: Iterable[Stroke]):
        ordered = sorted(
            (s for s in strokes if len(s) > 0), key=lambda s: s.start.t
        )
        if not ordered:
            raise ValueError("a multi-stroke gesture needs at least one stroke")
        object.__setattr__(self, "strokes", tuple(ordered))

    @property
    def stroke_count(self) -> int:
        return len(self.strokes)

    def __iter__(self) -> Iterator[Stroke]:
        return iter(self.strokes)

    def connected(self) -> Stroke:
        """The connect adaptation: one synthetic single stroke."""
        return connect_strokes(self.strokes)


def connect_strokes(strokes: Iterable[Stroke]) -> Stroke:
    """Concatenate strokes, bridging pen-up gaps as ordinary segments.

    Timestamps must be globally non-decreasing across strokes (they are,
    for strokes recorded in sequence); the inter-stroke hop then looks
    like one fast mouse movement, which Rubine's features take in
    stride — the hop contributes to path length and (heavily) to maximum
    speed, both of which help distinguish multi-stroke classes.
    """
    points: list[Point] = []
    for stroke in strokes:
        for p in stroke:
            if points and p.t < points[-1].t:
                raise ValueError(
                    "strokes overlap in time; record them sequentially"
                )
            points.append(p)
    if not points:
        raise ValueError("nothing to connect")
    return Stroke(points)
