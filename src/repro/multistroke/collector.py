"""Grouping pen-down strokes into multi-stroke gestures.

With multi-stroke marks the system must decide when a *gesture* ends —
the paper's single-stroke restriction exists partly because it "allows
the use of short timeouts".  The standard multi-stroke answer is a
segmentation timeout: a new stroke beginning within ``timeout`` seconds
of (and not too far from) the previous stroke's end continues the same
gesture; otherwise the previous gesture is complete.
"""

from __future__ import annotations

from ..geometry import Stroke
from .gesture import MultiStrokeGesture

__all__ = ["StrokeCollector"]


class StrokeCollector:
    """Accumulates strokes into gestures by time (and optional space) gaps."""

    def __init__(
        self,
        timeout: float = 0.5,
        max_gap_distance: float | None = None,
    ):
        """
        Args:
            timeout: maximum pen-up duration within one gesture.
            max_gap_distance: if given, a new stroke also must start
                within this distance of the previous stroke's end.
        """
        if timeout <= 0.0:
            raise ValueError("timeout must be positive")
        self.timeout = timeout
        self.max_gap_distance = max_gap_distance
        self._pending: list[Stroke] = []

    @property
    def pending_strokes(self) -> int:
        return len(self._pending)

    def _continues_gesture(self, stroke: Stroke) -> bool:
        last = self._pending[-1]
        if stroke.start.t - last.end.t > self.timeout:
            return False
        if (
            self.max_gap_distance is not None
            and stroke.start.distance_to(last.end) > self.max_gap_distance
        ):
            return False
        return True

    def add_stroke(self, stroke: Stroke) -> MultiStrokeGesture | None:
        """Feed one completed pen-down stroke.

        Returns the *previous* gesture if this stroke starts a new one,
        else None.  Call :meth:`flush` after input goes quiet to retrieve
        the final gesture.
        """
        if len(stroke) == 0:
            raise ValueError("cannot collect an empty stroke")
        if not self._pending:
            self._pending.append(stroke)
            return None
        if self._continues_gesture(stroke):
            self._pending.append(stroke)
            return None
        finished = MultiStrokeGesture(self._pending)
        self._pending = [stroke]
        return finished

    def flush(self) -> MultiStrokeGesture | None:
        """The in-progress gesture, if any (input has gone quiet)."""
        if not self._pending:
            return None
        finished = MultiStrokeGesture(self._pending)
        self._pending = []
        return finished
