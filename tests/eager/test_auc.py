"""Unit tests for the Ambiguous/Unambiguous Classifier (paper §4.3, §4.6)."""

import math

import numpy as np
import pytest

from repro.eager import AMBIGUITY_BIAS_RATIO, AmbiguityClassifier
from repro.recognizer import LinearClassifier


def make_auc(constants=(0.0, 0.0, 0.0, 0.0)) -> AmbiguityClassifier:
    """A toy 2C=4 classifier over 2 features.

    C:U fires on +y, C:D on -y, I:U on +x, I:D on -x (screen-free toy).
    """
    linear = LinearClassifier(
        class_names=["C:U", "C:D", "I:U", "I:D"],
        weights=np.array(
            [[0.0, 1.0], [0.0, -1.0], [1.0, 0.0], [-1.0, 0.0]]
        ),
        constants=np.array(constants, dtype=float),
    )
    return AmbiguityClassifier(linear)


class TestDecisionFunction:
    def test_complete_class_means_unambiguous(self):
        auc = make_auc()
        assert auc.is_unambiguous(np.array([0.1, 5.0]))  # C:U wins

    def test_incomplete_class_means_ambiguous(self):
        auc = make_auc()
        assert not auc.is_unambiguous(np.array([5.0, 0.1]))  # I:U wins

    def test_classify_set_names(self):
        auc = make_auc()
        assert auc.classify_set(np.array([0.0, -5.0])) == "C:D"
        assert auc.classify_set(np.array([-5.0, 0.0])) == "I:D"

    def test_complete_and_incomplete_names(self):
        auc = make_auc()
        assert auc.complete_class_names == {"C:U", "C:D"}
        assert auc.incomplete_class_names == {"I:U", "I:D"}

    def test_all_incomplete_rejected_at_construction(self):
        linear = LinearClassifier(
            ["I:U", "I:D"], np.eye(2), np.zeros(2)
        )
        with pytest.raises(ValueError):
            AmbiguityClassifier(linear)


class TestAmbiguityBias:
    def test_bias_shifts_borderline_to_ambiguous(self):
        auc = make_auc()
        borderline = np.array([1.0, 1.0 + 1e-6])  # C:U barely beats I:U
        assert auc.is_unambiguous(borderline)
        auc.apply_ambiguity_bias(AMBIGUITY_BIAS_RATIO)
        assert not auc.is_unambiguous(borderline)

    def test_bias_is_log_of_ratio(self):
        auc = make_auc()
        before = auc.linear.constants.copy()
        auc.apply_ambiguity_bias(5.0)
        after = auc.linear.constants
        for i, name in enumerate(auc.linear.class_names):
            expected = math.log(5.0) if name.startswith("I:") else 0.0
            assert after[i] - before[i] == pytest.approx(expected)

    def test_clearly_unambiguous_survives_bias(self):
        auc = make_auc()
        auc.apply_ambiguity_bias(5.0)
        assert auc.is_unambiguous(np.array([0.0, 100.0]))

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            make_auc().apply_ambiguity_bias(0.0)


class TestTweak:
    def test_tweak_fixes_misjudged_incomplete(self):
        auc = make_auc()
        # These "incomplete" training vectors currently classify complete.
        offenders = [np.array([0.5, 2.0]), np.array([0.2, 3.0])]
        assert all(auc.is_unambiguous(v) for v in offenders)
        adjustments = auc.tweak_against(offenders)
        assert adjustments >= len(offenders) - 1
        assert all(not auc.is_unambiguous(v) for v in offenders)

    def test_tweak_noop_when_clean(self):
        auc = make_auc()
        fine = [np.array([5.0, 0.0]), np.array([-4.0, 0.1])]
        assert auc.tweak_against(fine) == 0

    def test_tweak_lowers_only_complete_constants(self):
        auc = make_auc()
        before = dict(zip(auc.linear.class_names, auc.linear.constants.copy()))
        auc.tweak_against([np.array([0.0, 2.0])])
        after = dict(zip(auc.linear.class_names, auc.linear.constants))
        for name in auc.incomplete_class_names:
            assert after[name] == before[name]
        assert after["C:U"] < before["C:U"]

    def test_tweak_converges_within_rounds(self):
        auc = make_auc()
        offenders = [np.array([0.0, float(k)]) for k in range(1, 20)]
        auc.tweak_against(offenders, max_rounds=50)
        assert all(not auc.is_unambiguous(v) for v in offenders)


class TestSerialization:
    def test_round_trip(self):
        auc = make_auc((0.1, 0.2, 0.3, 0.4))
        clone = AmbiguityClassifier.from_dict(auc.to_dict())
        assert clone.complete_class_names == auc.complete_class_names
        probe = np.array([1.5, -0.5])
        assert clone.classify_set(probe) == auc.classify_set(probe)
