"""Multi-stroke marks — lifting GRANDMA's single-stroke restriction.

§2: "many common marks (e.g. 'X' and '→') cannot be used as gestures by
GRANDMA.  A number of techniques exist for adapting single-stroke
recognizers to multiple stroke recognition, so perhaps GRANDMA's
recognizer will be extended this way in the future."

This example is that extension: strokes are grouped by a segmentation
timeout, connected into one synthetic stroke, and classified by the
unmodified Rubine recognizer, gated by stroke count.

Run:  python examples/multistroke_marks.py
"""

from repro.geometry import Point, Stroke
from repro.multistroke import (
    MultiStrokeClassifier,
    MultiStrokeGenerator,
    StrokeCollector,
)


def main() -> None:
    # Train on the five mark classes.
    generator = MultiStrokeGenerator(seed=3)
    classifier = MultiStrokeClassifier.train(generator.generate_examples(10))
    print(f"trained stroke counts: {classifier.stroke_counts}")
    for count in classifier.stroke_counts:
        print(f"  {count}-stroke classes: {classifier.class_names_for(count)}")

    # Simulate a user drawing a sequence of marks, pen up between
    # strokes, a longer pause between marks.
    user = MultiStrokeGenerator(seed=77)
    script = ["X", "O", "arrow", "plus", "equals", "X"]
    collector = StrokeCollector(timeout=0.8)

    stream: list[Stroke] = []
    clock = 0.0
    for name in script:
        gesture = user.generate(name)
        base = gesture.strokes[0].start.t
        for stroke in gesture.strokes:
            stream.append(
                Stroke(Point(p.x, p.y, p.t - base + clock) for p in stroke)
            )
        clock = stream[-1].end.t + 2.0  # think for two seconds

    print(f"\nreplaying {len(stream)} pen-down strokes...")
    recognized = []
    for stroke in stream:
        finished = collector.add_stroke(stroke)
        if finished is not None:
            recognized.append(
                (classifier.classify(finished), finished.stroke_count)
            )
    final = collector.flush()
    if final is not None:
        recognized.append((classifier.classify(final), final.stroke_count))

    print(f"\n{'drawn':>8} {'recognized':>11} {'strokes':>8}")
    for drawn, (predicted, count) in zip(script, recognized):
        marker = "" if drawn == predicted else "   <-- wrong"
        print(f"{drawn:>8} {predicted:>11} {count:>8}{marker}")


if __name__ == "__main__":
    main()
