"""Unit tests for the semantics expression layer."""

import pytest

from repro.geometry import Point, Stroke
from repro.interaction import GestureContext, GestureSemantics


class FakeView:
    pass


class FakeDispatch:
    pass


def make_context(**overrides) -> GestureContext:
    defaults = dict(
        view=FakeView(),
        dispatch=FakeDispatch(),
        gesture=Stroke.from_xy([(10, 20), (30, 40), (50, 60)], dt=0.01),
        class_name="rect",
    )
    defaults.update(overrides)
    return GestureContext(**defaults)


class TestGestureContext:
    def test_start_attributes(self):
        ctx = make_context()
        assert ctx.start_x == 10
        assert ctx.start_y == 20

    def test_current_defaults_to_gesture_end(self):
        ctx = make_context()
        assert ctx.current_x == 50
        assert ctx.current_y == 60

    def test_current_overrides_end(self):
        ctx = make_context(current=Point(99, 98, 1.0))
        assert ctx.current_x == 99
        assert ctx.current_y == 98

    def test_attributes_dict_for_extra_state(self):
        ctx = make_context()
        ctx.attributes["drag"] = (1, 2)
        assert ctx.attributes["drag"] == (1, 2)

    def test_enclosed_stroke_is_the_gesture(self):
        ctx = make_context()
        assert ctx.enclosed_stroke == ctx.gesture


class TestGestureSemantics:
    def test_recog_result_is_stashed(self):
        semantics = GestureSemantics(recog=lambda ctx: "created")
        ctx = make_context()
        semantics.on_recognized(ctx)
        assert ctx.recog == "created"

    def test_manip_sees_recog_result(self):
        seen = []
        semantics = GestureSemantics(
            recog=lambda ctx: 42,
            manip=lambda ctx: seen.append(ctx.recog),
        )
        ctx = make_context()
        semantics.on_recognized(ctx)
        semantics.on_manipulate(ctx)
        assert seen == [42]

    def test_nil_expressions_are_no_ops(self):
        # The paper's `done = nil`.
        semantics = GestureSemantics()
        ctx = make_context()
        semantics.on_recognized(ctx)
        semantics.on_manipulate(ctx)
        semantics.on_done(ctx)
        assert ctx.recog is None

    def test_done_called_with_final_current(self):
        finals = []
        semantics = GestureSemantics(
            done=lambda ctx: finals.append((ctx.current_x, ctx.current_y))
        )
        ctx = make_context(current=Point(7, 8, 2.0))
        semantics.on_done(ctx)
        assert finals == [(7, 8)]

    def test_rectangle_semantics_transliteration(self):
        """The §3.2 example as it appears in this library."""
        created = {}

        class FakeRect:
            def __init__(self):
                self.endpoints = {}

            def set_endpoint(self, i, x, y):
                self.endpoints[i] = (x, y)

        class FakeCanvasView(FakeView):
            def create_rect(self):
                created["rect"] = FakeRect()
                return created["rect"]

        semantics = GestureSemantics(
            recog=lambda ctx: _created_with_endpoint0(ctx),
            manip=lambda ctx: ctx.recog.set_endpoint(
                1, ctx.current_x, ctx.current_y
            ),
            done=None,
        )

        def _created_with_endpoint0(ctx):
            rect = ctx.view.create_rect()
            rect.set_endpoint(0, ctx.start_x, ctx.start_y)
            return rect

        ctx = make_context(view=FakeCanvasView())
        semantics.on_recognized(ctx)
        ctx.current = Point(100, 200, 1.0)
        semantics.on_manipulate(ctx)
        semantics.on_done(ctx)
        rect = created["rect"]
        assert rect.endpoints[0] == (10, 20)  # <startX>, <startY>
        assert rect.endpoints[1] == (100, 200)  # <currentX>, <currentY>
