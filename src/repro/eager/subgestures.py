"""Subgesture enumeration with per-prefix feature vectors.

The eager trainer runs the full classifier "on every subgesture of the
original training examples" (section 4.7).  Because every Rubine feature
updates in O(1) per point, all ``|g|`` prefix feature vectors of a gesture
are computed in a single O(|g|) sweep here, rather than O(|g|^2) batch
recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..features import IncrementalFeatures
from ..geometry import Stroke

__all__ = ["SubgestureFeatures", "prefix_feature_vectors", "MIN_PREFIX_POINTS"]

# Prefixes shorter than this are never presented to a classifier: with
# fewer than three points most features are degenerate (no turn angles,
# no smoothed initial direction), and no gesture set distinguishes its
# classes that early.
MIN_PREFIX_POINTS = 3


@dataclass
class SubgestureFeatures:
    """Feature vectors of every prefix ``g[min_points] .. g[|g|]``."""

    stroke: Stroke
    min_points: int
    vectors: list[np.ndarray] = field(default_factory=list)

    @property
    def lengths(self) -> range:
        """Prefix lengths ``i`` covered by :attr:`vectors`, in order."""
        return range(self.min_points, self.min_points + len(self.vectors))

    def vector_for_length(self, i: int) -> np.ndarray:
        """Feature vector of ``g[i]``."""
        if i < self.min_points or i > len(self.stroke):
            raise ValueError(f"no features stored for prefix length {i}")
        return self.vectors[i - self.min_points]


def prefix_feature_vectors(
    stroke: Stroke, min_points: int = MIN_PREFIX_POINTS
) -> SubgestureFeatures:
    """Compute feature vectors of all prefixes in one incremental sweep.

    Gestures shorter than ``min_points`` yield just their full-gesture
    vector, so two-point gestures like GDP's ``dot`` still participate in
    training.
    """
    if len(stroke) == 0:
        raise ValueError("cannot enumerate subgestures of an empty stroke")
    effective_min = min(min_points, len(stroke))
    inc = IncrementalFeatures()
    vectors: list[np.ndarray] = []
    for count, point in enumerate(stroke, start=1):
        inc.add_point(point)
        if count >= effective_min:
            vectors.append(inc.vector)
    return SubgestureFeatures(
        stroke=stroke, min_points=effective_min, vectors=vectors
    )
