"""Headless rendering of a GDP canvas to a character raster.

The paper's GDP drew through X10 on a MicroVAX; the reproduction renders
to text so examples and tests can *show* the drawing without a display
server.  Fidelity is deliberately coarse — the renderer exists to make
the examples' output legible and to let tests assert "a rectangle
outline now exists around here".
"""

from __future__ import annotations

import math

from .canvas import Canvas
from .shapes import (
    EllipseShape,
    GroupShape,
    LineShape,
    RectShape,
    Shape,
    TextShape,
)

__all__ = ["render_canvas"]


class _Raster:
    def __init__(self, cols: int, rows: int, sx: float, sy: float):
        self.cols = cols
        self.rows = rows
        self.sx = sx  # canvas units per column
        self.sy = sy  # canvas units per row
        self.grid = [[" "] * cols for _ in range(rows)]

    def plot(self, x: float, y: float, ch: str) -> None:
        col = int(round(x / self.sx))
        row = int(round(y / self.sy))
        if 0 <= col < self.cols and 0 <= row < self.rows:
            self.grid[row][col] = ch

    def line(self, x1: float, y1: float, x2: float, y2: float, ch: str) -> None:
        steps = max(
            int(abs(x2 - x1) / self.sx), int(abs(y2 - y1) / self.sy), 1
        )
        for k in range(steps + 1):
            t = k / steps
            self.plot(x1 + t * (x2 - x1), y1 + t * (y2 - y1), ch)

    def text(self, x: float, y: float, s: str) -> None:
        col = int(round(x / self.sx))
        row = int(round(y / self.sy))
        if not 0 <= row < self.rows:
            return
        for i, ch in enumerate(s):
            if 0 <= col + i < self.cols:
                self.grid[row][col + i] = ch

    def to_string(self) -> str:
        return "\n".join("".join(row).rstrip() for row in self.grid)


def render_canvas(
    canvas: Canvas, cols: int = 80, rows: int = 24, border: bool = True
) -> str:
    """Render the canvas contents as ``cols x rows`` characters."""
    raster = _Raster(
        cols, rows, sx=canvas.width / cols, sy=canvas.height / rows
    )
    for shape in canvas:
        _draw(shape, raster, selected=shape in canvas.selection)
    body = raster.to_string()
    if not border:
        return body
    lines = body.split("\n")
    lines += [""] * (rows - len(lines))
    top = "+" + "-" * cols + "+"
    framed = [top] + [f"|{line.ljust(cols)}|" for line in lines] + [top]
    return "\n".join(framed)


def _draw(shape: Shape, raster: _Raster, selected: bool = False) -> None:
    marker_override = "*" if selected else None
    if isinstance(shape, GroupShape):
        for member in shape.members:
            _draw(member, raster, selected=selected)
        return
    if isinstance(shape, LineShape):
        (x1, y1), (x2, y2) = shape.endpoints
        ch = marker_override or _line_char(x1, y1, x2, y2)
        raster.line(x1, y1, x2, y2, ch)
    elif isinstance(shape, RectShape):
        corners = shape.corner_points()
        for (ax, ay), (bx, by) in zip(corners, corners[1:] + corners[:1]):
            ch = marker_override or _line_char(ax, ay, bx, by)
            raster.line(ax, ay, bx, by, ch)
    elif isinstance(shape, EllipseShape):
        cx, cy = shape.center
        steps = max(int((shape.rx + shape.ry) / min(raster.sx, raster.sy)), 12)
        for k in range(steps):
            theta = 2 * math.pi * k / steps
            raster.plot(
                cx + shape.rx * math.cos(theta),
                cy + shape.ry * math.sin(theta),
                marker_override or "o",
            )
    elif isinstance(shape, TextShape):
        x, y = shape.position
        label = shape.text if marker_override is None else f"*{shape.text}*"
        raster.text(x, y, label)
    else:  # an unknown shape type: mark its reference point
        ref = shape.reference_point()
        raster.plot(ref.x, ref.y, marker_override or "?")


def _line_char(x1: float, y1: float, x2: float, y2: float) -> str:
    """Pick a character suggesting the segment's slope."""
    dx, dy = abs(x2 - x1), abs(y2 - y1)
    if dx >= 2 * dy:
        return "-"
    if dy >= 2 * dx:
        return "|"
    return "\\" if (x2 - x1) * (y2 - y1) > 0 else "/"
