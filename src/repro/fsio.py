"""Crash-safe filesystem primitives shared across subsystems.

One discipline, used by the training :class:`~repro.train.cache.
StageCache`, the serving :class:`~repro.serve.ModelRegistry`, and the
per-user state files of :mod:`repro.adapt`: write the full payload to a
temp file in the *same directory* (same filesystem, so the rename is
atomic), then :func:`os.replace` it over the destination.  A reader can
observe the old content or the new content, never a torn mix; a kill
mid-write leaves at worst an orphaned ``*.tmp`` the writer unlinks on
the error path.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_text"]


def atomic_write_text(path: Path, text: str) -> None:
    """Atomically replace ``path``'s content with ``text``.

    Creates parent directories as needed.  The temp file is created with
    ``mkstemp`` (exclusive), so concurrent writers never collide on the
    scratch name; the loser of a racing ``os.replace`` simply has its
    complete file overwritten by another complete file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as f:
            f.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
