"""Unit tests for the incremental feature extractor.

The central invariant — incremental equals batch on every prefix — is
tested here against hand-built strokes and in
tests/properties/test_feature_properties.py against generated ones.
"""

import numpy as np
import pytest

from repro.features import IncrementalFeatures, NUM_FEATURES, features_of
from repro.geometry import Point, Stroke
from repro.synth import GestureGenerator, gdp_templates


class TestBasics:
    def test_empty_extractor_vector_is_zero(self):
        inc = IncrementalFeatures()
        assert inc.count == 0
        assert not inc.vector.any()

    def test_count_tracks_points(self):
        inc = IncrementalFeatures()
        inc.add_point(Point(0, 0, 0))
        inc.add_point(Point(1, 0, 0.01))
        assert inc.count == 2

    def test_vector_is_fresh_array(self):
        inc = IncrementalFeatures()
        inc.add_point(Point(0, 0, 0))
        v1 = inc.vector
        v1[:] = 99.0
        assert not (inc.vector == 99.0).any()

    def test_reset(self):
        inc = IncrementalFeatures()
        inc.add_stroke(Stroke.from_xy([(0, 0), (5, 5), (10, 0)]))
        inc.reset()
        assert inc.count == 0
        assert not inc.vector.any()

    def test_add_stroke_equals_add_points(self):
        s = Stroke.from_xy([(0, 0), (5, 5), (10, 0), (15, 5)])
        a, b = IncrementalFeatures(), IncrementalFeatures()
        a.add_stroke(s)
        for p in s:
            b.add_point(p)
        np.testing.assert_array_equal(a.vector, b.vector)


class TestMatchesBatch:
    """inc.vector after p_0..p_{i-1} == features_of(g[i]) for every i."""

    def assert_matches_on_all_prefixes(self, stroke: Stroke):
        inc = IncrementalFeatures()
        for i, p in enumerate(stroke, start=1):
            inc.add_point(p)
            batch = features_of(stroke.subgesture(i))
            np.testing.assert_allclose(
                inc.vector, batch, atol=1e-9,
                err_msg=f"prefix length {i}",
            )

    def test_straight_line(self):
        self.assert_matches_on_all_prefixes(
            Stroke.from_xy([(i * 7.0, 0) for i in range(12)], dt=0.01)
        )

    def test_l_shape(self):
        xs = [(i * 5.0, 0) for i in range(8)] + [(35.0, j * 5.0) for j in range(1, 8)]
        self.assert_matches_on_all_prefixes(Stroke.from_xy(xs, dt=0.01))

    def test_with_duplicate_points(self):
        self.assert_matches_on_all_prefixes(
            Stroke.from_xy([(0, 0), (0, 0), (5, 5), (5, 5), (10, 0)], dt=0.01)
        )

    def test_with_tiny_jitter_segments(self):
        self.assert_matches_on_all_prefixes(
            Stroke.from_xy(
                [(0, 0), (0.5, 0.2), (10, 0), (10.4, 0.1), (20, 5)], dt=0.01
            )
        )

    def test_generated_gdp_gestures(self):
        generator = GestureGenerator(gdp_templates(), seed=9)
        for class_name in ("rect", "ellipse", "delete", "dot", "rotate-scale"):
            self.assert_matches_on_all_prefixes(
                generator.generate(class_name).stroke
            )

    def test_irregular_timestamps(self):
        pts = [
            Point(0, 0, 0.0),
            Point(8, 1, 0.03),
            Point(15, 4, 0.035),
            Point(20, 10, 0.2),
            Point(22, 20, 0.21),
        ]
        self.assert_matches_on_all_prefixes(Stroke(pts))


class TestConstantTimeBehaviour:
    def test_vector_dimension_is_constant(self):
        inc = IncrementalFeatures()
        for i in range(100):
            inc.add_point(Point(i * 3.0, (i % 7) * 2.0, i * 0.01))
            assert inc.vector.shape == (NUM_FEATURES,)

    def test_large_stroke_is_handled(self):
        # "arbitrarily large gestures can be handled" (§4.2)
        inc = IncrementalFeatures()
        for i in range(10_000):
            inc.add_point(Point(float(i), float(i % 50), i * 0.001))
        v = inc.vector
        assert np.isfinite(v).all()
        assert v[7] > 0  # total length accumulated


class TestDegenerate:
    def test_single_point(self):
        inc = IncrementalFeatures()
        inc.add_point(Point(4, 4, 1.0))
        np.testing.assert_allclose(
            inc.vector, features_of(Stroke([Point(4, 4, 1.0)])), atol=1e-12
        )

    def test_two_identical_points(self):
        inc = IncrementalFeatures()
        s = Stroke([Point(4, 4, 0.0), Point(4, 4, 0.01)])
        inc.add_stroke(s)
        np.testing.assert_allclose(inc.vector, features_of(s), atol=1e-12)

    def test_all_finite_under_zero_dt(self):
        inc = IncrementalFeatures()
        inc.add_point(Point(0, 0, 1.0))
        inc.add_point(Point(100, 0, 1.0))  # dt == 0
        assert np.isfinite(inc.vector).all()
