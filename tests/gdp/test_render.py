"""Unit tests for the ASCII canvas renderer."""

from repro.gdp import Canvas, render_canvas


def make_canvas() -> Canvas:
    return Canvas(width=160, height=96)


class TestRendering:
    def test_empty_canvas_is_blank(self):
        out = render_canvas(make_canvas(), cols=20, rows=6, border=False)
        assert out.strip() == ""

    def test_border_framing(self):
        out = render_canvas(make_canvas(), cols=10, rows=4, border=True)
        lines = out.splitlines()
        assert lines[0] == "+" + "-" * 10 + "+"
        assert lines[-1] == lines[0]
        assert len(lines) == 6
        assert all(line.startswith("|") and line.endswith("|") for line in lines[1:-1])

    def test_horizontal_line_renders_dashes(self):
        canvas = make_canvas()
        canvas.create_line(8, 48, 150, 48)
        out = render_canvas(canvas, cols=40, rows=12, border=False)
        assert "-" * 10 in out

    def test_vertical_line_renders_pipes(self):
        canvas = make_canvas()
        canvas.create_line(80, 8, 80, 90)
        out = render_canvas(canvas, cols=40, rows=12, border=False)
        assert out.count("|") >= 5

    def test_rect_outline_renders(self):
        canvas = make_canvas()
        canvas.create_rect(16, 16, 140, 80)
        out = render_canvas(canvas, cols=40, rows=12, border=False)
        assert "-" in out and "|" in out

    def test_ellipse_renders_os(self):
        canvas = make_canvas()
        canvas.create_ellipse(80, 48, 40, 24)
        out = render_canvas(canvas, cols=40, rows=12, border=False)
        assert out.count("o") >= 6

    def test_text_renders_content(self):
        canvas = make_canvas()
        canvas.create_text(16, 48, "hello")
        out = render_canvas(canvas, cols=40, rows=12, border=False)
        assert "hello" in out

    def test_selection_renders_stars(self):
        canvas = make_canvas()
        line = canvas.create_line(8, 48, 150, 48)
        canvas.select(line)
        out = render_canvas(canvas, cols=40, rows=12, border=False)
        assert "*" in out

    def test_group_renders_members(self):
        canvas = make_canvas()
        a = canvas.create_text(16, 30, "inside")
        canvas.group([a])
        out = render_canvas(canvas, cols=40, rows=12, border=False)
        assert "inside" in out

    def test_shapes_outside_viewport_are_clipped(self):
        canvas = Canvas(width=100, height=100)
        canvas.create_text(-500, -500, "far")
        out = render_canvas(canvas, cols=20, rows=6, border=False)
        assert "far" not in out
