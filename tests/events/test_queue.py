"""Unit tests for the virtual clock and event queue."""

import pytest

from repro.events import (
    EventKind,
    EventQueue,
    MouseEvent,
    TimerEvent,
    VirtualClock,
)


def ev(kind: EventKind, t: float, x: float = 0.0, y: float = 0.0) -> MouseEvent:
    return MouseEvent(kind, x, y, t)


class TestVirtualClock:
    def test_starts_at_given_time(self):
        assert VirtualClock(5.0).now == 5.0

    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(1.5) == 1.5
        assert clock.now == 1.5

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_advance_to_never_goes_backwards(self):
        clock = VirtualClock(10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0
        clock.advance_to(12.0)
        assert clock.now == 12.0


class TestEventDelivery:
    def test_events_delivered_in_time_order(self):
        queue = EventQueue()
        queue.post(ev(EventKind.MOVE, 0.3))
        queue.post(ev(EventKind.PRESS, 0.1))
        queue.post(ev(EventKind.RELEASE, 0.2))
        delivered = []
        queue.run(lambda event: delivered.append(event.t))
        assert delivered == [0.1, 0.2, 0.3]

    def test_ties_break_by_posting_order(self):
        queue = EventQueue()
        a = ev(EventKind.MOVE, 1.0, x=1)
        b = ev(EventKind.MOVE, 1.0, x=2)
        queue.post(a)
        queue.post(b)
        delivered = []
        queue.run(lambda event: delivered.append(event.x))
        assert delivered == [1, 2]

    def test_clock_advances_with_delivery(self):
        queue = EventQueue()
        queue.post(ev(EventKind.PRESS, 2.5))
        seen = []
        queue.run(lambda event: seen.append(queue.clock.now))
        assert seen == [2.5]

    def test_run_returns_mouse_event_count(self):
        queue = EventQueue()
        queue.post_all([ev(EventKind.PRESS, 0.0), ev(EventKind.RELEASE, 0.1)])
        assert queue.run(lambda event: None) == 2

    def test_posting_during_run_is_delivered(self):
        queue = EventQueue()
        queue.post(ev(EventKind.PRESS, 0.0))

        def deliver(event):
            if event.is_press():
                queue.post(ev(EventKind.RELEASE, event.t + 1.0))
            delivered.append(event.kind)

        delivered = []
        queue.run(deliver)
        assert delivered == [EventKind.PRESS, EventKind.RELEASE]


class TestTimers:
    def test_timer_fires_at_scheduled_time(self):
        queue = EventQueue()
        fired = []
        queue.schedule_timer(0.2, lambda t: fired.append(t.t))
        queue.run(lambda event: None)
        assert fired == [pytest.approx(0.2)]

    def test_timer_callback_receives_timer_event(self):
        queue = EventQueue()
        received = []
        queue.schedule_timer(0.1, received.append)
        queue.run(lambda event: None)
        assert isinstance(received[0], TimerEvent)

    def test_cancelled_timer_does_not_fire(self):
        queue = EventQueue()
        fired = []
        token = queue.schedule_timer(0.1, lambda t: fired.append(t))
        assert queue.cancel_timer(token)
        queue.run(lambda event: None)
        assert fired == []

    def test_cancel_unknown_token_returns_false(self):
        assert not EventQueue().cancel_timer(12345)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule_timer(-0.1, lambda t: None)

    def test_timer_ordering_with_events(self):
        # Timer at 0.15 fires between the events at 0.1 and 0.2.
        queue = EventQueue()
        order = []
        queue.post(ev(EventKind.PRESS, 0.1))
        queue.post(ev(EventKind.MOVE, 0.2))
        queue.schedule_timer(0.15, lambda t: order.append("timer"))
        queue.run(lambda event: order.append(event.kind.value))
        assert order == ["press", "timer", "move"]

    def test_timer_scheduled_during_delivery_is_relative_to_event_time(self):
        queue = EventQueue()
        fired_at = []

        def deliver(event):
            if event.is_press():
                queue.schedule_timer(0.2, lambda t: fired_at.append(t.t))

        queue.post(ev(EventKind.PRESS, 1.0))
        queue.run(deliver)
        assert fired_at == [pytest.approx(1.2)]

    def test_timer_rescheduling_pattern(self):
        # The gesture handler's arm/disarm pattern: each event cancels
        # the previous timer; only the final one fires.
        queue = EventQueue()
        fired = []
        state = {"token": None}

        def deliver(event):
            if state["token"] is not None:
                queue.cancel_timer(state["token"])
            state["token"] = queue.schedule_timer(
                0.2, lambda t: fired.append(t.t)
            )

        queue.post_all(
            [ev(EventKind.MOVE, 0.0), ev(EventKind.MOVE, 0.1), ev(EventKind.MOVE, 0.15)]
        )
        queue.run(deliver)
        assert fired == [pytest.approx(0.35)]


class TestMouseEvent:
    def test_point_conversion(self):
        event = ev(EventKind.MOVE, 1.5, x=3.0, y=4.0)
        p = event.point
        assert (p.x, p.y, p.t) == (3.0, 4.0, 1.5)

    def test_kind_predicates(self):
        assert ev(EventKind.PRESS, 0).is_press()
        assert ev(EventKind.MOVE, 0).is_move()
        assert ev(EventKind.RELEASE, 0).is_release()
        assert not ev(EventKind.PRESS, 0).is_move()
