"""Unit tests for repro.geometry.bbox."""

import math

import pytest

from repro.geometry import BoundingBox, Point


class TestConstruction:
    def test_new_box_is_empty(self):
        assert BoundingBox().is_empty

    def test_extend_makes_non_empty(self):
        box = BoundingBox()
        box.extend(1.0, 2.0)
        assert not box.is_empty

    def test_of_points(self):
        box = BoundingBox.of([Point(0, 0), Point(4, 2), Point(-1, 5)])
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (-1, 0, 4, 5)

    def test_of_empty_iterable(self):
        assert BoundingBox.of([]).is_empty


class TestDerivedQuantities:
    def test_width_height(self):
        box = BoundingBox.of([Point(1, 2), Point(4, 8)])
        assert box.width == 3.0
        assert box.height == 6.0

    def test_empty_box_has_zero_extent(self):
        assert BoundingBox().width == 0.0
        assert BoundingBox().height == 0.0

    def test_diagonal(self):
        box = BoundingBox.of([Point(0, 0), Point(3, 4)])
        assert box.diagonal == pytest.approx(5.0)

    def test_diagonal_angle(self):
        box = BoundingBox.of([Point(0, 0), Point(1, 1)])
        assert box.diagonal_angle == pytest.approx(math.pi / 4)

    def test_degenerate_diagonal_angle_is_zero(self):
        box = BoundingBox.of([Point(2, 2)])
        assert box.diagonal_angle == 0.0

    def test_center(self):
        box = BoundingBox.of([Point(0, 0), Point(4, 6)])
        assert box.center == Point(2.0, 3.0)


class TestPredicates:
    def test_contains_inside(self):
        box = BoundingBox.of([Point(0, 0), Point(10, 10)])
        assert box.contains(5, 5)

    def test_contains_boundary(self):
        box = BoundingBox.of([Point(0, 0), Point(10, 10)])
        assert box.contains(0, 10)

    def test_contains_outside(self):
        box = BoundingBox.of([Point(0, 0), Point(10, 10)])
        assert not box.contains(11, 5)

    def test_empty_contains_nothing(self):
        assert not BoundingBox().contains(0, 0)

    def test_intersects_overlapping(self):
        a = BoundingBox.of([Point(0, 0), Point(5, 5)])
        b = BoundingBox.of([Point(4, 4), Point(9, 9)])
        assert a.intersects(b)
        assert b.intersects(a)

    def test_intersects_disjoint(self):
        a = BoundingBox.of([Point(0, 0), Point(1, 1)])
        b = BoundingBox.of([Point(2, 2), Point(3, 3)])
        assert not a.intersects(b)

    def test_intersects_shared_edge(self):
        a = BoundingBox.of([Point(0, 0), Point(1, 1)])
        b = BoundingBox.of([Point(1, 0), Point(2, 1)])
        assert a.intersects(b)

    def test_empty_never_intersects(self):
        a = BoundingBox.of([Point(0, 0), Point(1, 1)])
        assert not a.intersects(BoundingBox())
        assert not BoundingBox().intersects(a)


class TestCombinators:
    def test_union(self):
        a = BoundingBox.of([Point(0, 0), Point(1, 1)])
        b = BoundingBox.of([Point(5, 5), Point(6, 6)])
        u = a.union(b)
        assert (u.min_x, u.min_y, u.max_x, u.max_y) == (0, 0, 6, 6)

    def test_union_with_empty_is_identity(self):
        a = BoundingBox.of([Point(0, 0), Point(1, 1)])
        u = a.union(BoundingBox())
        assert (u.min_x, u.max_x) == (0, 1)

    def test_union_does_not_mutate(self):
        a = BoundingBox.of([Point(0, 0), Point(1, 1)])
        a.union(BoundingBox.of([Point(9, 9)]))
        assert a.max_x == 1

    def test_inflated(self):
        box = BoundingBox.of([Point(2, 2), Point(4, 4)]).inflated(1.0)
        assert box.contains(1.5, 1.5)
        assert box.contains(4.5, 4.5)
        assert not box.contains(0.5, 0.5)

    def test_inflated_empty_stays_empty(self):
        assert BoundingBox().inflated(10.0).is_empty
