"""Statistical single-stroke gesture recognition (Rubine's full classifier)."""

from .classifier import GestureClassifier
from .linear import LinearClassifier
from .mahalanobis import MahalanobisMetric
from .online import OnlineTrainer
from .rejection import RejectionPolicy, RejectionResult
from .training import (
    TrainingResult,
    pooled_covariance,
    regularized_inverse,
    train_linear_classifier,
)

__all__ = [
    "GestureClassifier",
    "LinearClassifier",
    "MahalanobisMetric",
    "OnlineTrainer",
    "RejectionPolicy",
    "RejectionResult",
    "TrainingResult",
    "pooled_covariance",
    "regularized_inverse",
    "train_linear_classifier",
]
