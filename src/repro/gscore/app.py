"""The mini score editor, assembled.

Gesture set: the five note-duration gestures of figure 8 (each adds a
note whose duration is the gesture class, pitch and onset snapped from
the gesture's start), plus a zigzag ``delete`` gesture.

Figure 8's lesson is wired in: because the note gestures are nested
prefixes of each other, this application does **not** enable eager
recognition — it relies on the 200 ms timeout and mouse-up transitions.
The manipulation phase still earns its keep: after a note gesture is
recognized, dragging adjusts the note's pitch and onset with snapping
feedback before the button is released.
"""

from __future__ import annotations

from ..eager import EagerRecognizer, train_eager_recognizer
from ..events import EventQueue, MouseEvent, VirtualClock
from ..geometry import BoundingBox
from ..interaction import (
    DEFAULT_TIMEOUT,
    GestureContext,
    GestureHandler,
    GestureSemantics,
)
from ..mvc import Dispatcher, View
from ..recognizer import GestureClassifier
from ..synth import GestureGenerator, GestureTemplate, note_templates
from .staff import DURATIONS, Note, Staff

__all__ = ["ScoreApp", "score_templates", "train_score_recognizer"]


def score_templates() -> dict[str, GestureTemplate]:
    """The five note gestures plus a delete zigzag."""
    templates = dict(note_templates())
    templates["erase"] = GestureTemplate(
        name="erase",
        waypoints=((0.0, 0.0), (0.35, 0.5), (0.5, 0.1), (0.85, 0.6)),
        corner_indices=(1, 2),
    )
    return templates


def train_score_recognizer(
    examples_per_class: int = 12, seed: int = 13
) -> EagerRecognizer:
    generator = GestureGenerator(score_templates(), seed=seed)
    report = train_eager_recognizer(
        generator.generate_strokes(examples_per_class)
    )
    return report.recognizer


class StaffView(View):
    """The editor window: the staff plus margin."""

    def __init__(self, staff: Staff, width: float, height: float):
        super().__init__(model=staff)
        self.staff = staff
        self._box = BoundingBox(0.0, 0.0, width, height)

    def bounds(self) -> BoundingBox:
        return self._box


class ScoreApp:
    """A headless, gesture-driven score editor."""

    def __init__(
        self,
        recognizer: EagerRecognizer | GestureClassifier | None = None,
        width: float = 800.0,
        height: float = 300.0,
        timeout: float = DEFAULT_TIMEOUT,
    ):
        if recognizer is None:
            recognizer = train_score_recognizer()
        self.staff = Staff()
        self.view = StaffView(self.staff, width, height)
        self.queue = EventQueue(VirtualClock())
        self.dispatcher = Dispatcher(self.view, self.queue)
        self.last_action: str | None = None
        # Figure 8: nested note gestures are never unambiguous early, so
        # eager recognition is off; timeout + mouse-up transitions only.
        self.gesture_handler = GestureHandler(
            recognizer=recognizer,
            semantics=self._build_semantics(),
            use_eager=False,
            timeout=timeout,
        )
        self.view.add_handler(self.gesture_handler)

    # -- driving -----------------------------------------------------------------

    def post(self, events: list[MouseEvent]) -> None:
        if events and events[0].t < self.queue.clock.now:
            shift = self.queue.clock.now - events[0].t
            events = [
                MouseEvent(e.kind, e.x, e.y, e.t + shift, e.button)
                for e in events
            ]
        self.queue.post_all(events)

    def perform(self, events: list[MouseEvent]) -> None:
        self.post(events)
        self.dispatcher.run()

    # -- semantics --------------------------------------------------------------

    def _build_semantics(self) -> dict[str, GestureSemantics]:
        semantics = {
            duration: self._note_semantics(duration) for duration in DURATIONS
        }
        semantics["erase"] = GestureSemantics(recog=self._erase_recog)
        return semantics

    def _note_semantics(self, duration: str) -> GestureSemantics:
        def recog(context: GestureContext) -> Note:
            note = Note(
                step=self.staff.snap_step(context.start_y),
                beat=self.staff.snap_beat(context.start_x),
                duration=duration,
            )
            self.staff.add_note(note)
            self.last_action = (
                f"{duration}: {note.pitch_name} at beat {note.beat:g}"
            )
            return note

        def manip(context: GestureContext) -> None:
            # Drag adjusts pitch and onset with snapping feedback.
            note = context.recog
            note.step = self.staff.snap_step(context.current_y)
            note.beat = self.staff.snap_beat(context.current_x)
            self.staff.changed()
            self.last_action = (
                f"{duration}: {note.pitch_name} at beat {note.beat:g}"
            )

        return GestureSemantics(recog=recog, manip=manip)

    def _erase_recog(self, context: GestureContext) -> Note | None:
        victim = self.staff.note_at(context.start_x, context.start_y)
        if victim is None:
            self.last_action = "erase: no note there"
            return None
        self.staff.remove_note(victim)
        self.last_action = f"erase: removed {victim.pitch_name}"
        return victim

    # -- display ---------------------------------------------------------------

    def render(self) -> str:
        """The staff as ASCII: lines of '-', notes as duration initials."""
        staff = self.staff
        cols = int(staff.beats * 8) + 4
        # One text row per staff step plus margins above and below.
        rows = 12 + 4
        grid = [[" "] * cols for _ in range(rows)]
        # Staff lines sit on even steps 0,2,4,6,8 (lines); map step ->
        # row from the top: row = 2 + (11 - step).
        for step in (0, 2, 4, 6, 8):
            row = 2 + (11 - step)
            for col in range(2, cols - 2):
                grid[row][col] = "-"
        marks = {"quarter": "Q", "eighth": "E", "sixteenth": "S",
                 "thirtysecond": "T", "sixtyfourth": "X"}
        for note in staff.notes:
            row = 2 + (11 - note.step)
            col = 2 + int(note.beat * 8)
            if 0 <= row < rows and 0 <= col < cols:
                grid[row][col] = marks.get(note.duration, "?")
        return "\n".join("".join(row).rstrip() for row in grid)
