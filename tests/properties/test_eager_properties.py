"""Property-based tests on eager-recognition invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth import GenerationParams, GestureGenerator, eight_direction_templates


class TestSessionInvariants:
    @given(
        st.sampled_from(list(eight_direction_templates().keys())),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_decision_is_sticky(self, directions_recognizer, class_name, seed):
        """Once the session decides, nothing changes its mind."""
        stroke = GestureGenerator(
            eight_direction_templates(), seed=seed
        ).generate(class_name).stroke
        session = directions_recognizer.session()
        decided_class = None
        decided_at = None
        for i, p in enumerate(stroke, start=1):
            result = session.add_point(p)
            if decided_class is None and result is not None:
                decided_class, decided_at = result, i
            elif decided_class is not None:
                assert result == decided_class
        final = session.finish()
        assert final == (decided_class or final)
        if decided_at is not None:
            assert session.points_seen == decided_at

    @given(
        st.sampled_from(list(eight_direction_templates().keys())),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_recognize_matches_manual_session(
        self, directions_recognizer, class_name, seed
    ):
        """The batch API is exactly the point-at-a-time loop."""
        stroke = GestureGenerator(
            eight_direction_templates(), seed=seed
        ).generate(class_name).stroke
        batch = directions_recognizer.recognize(stroke)
        session = directions_recognizer.session()
        manual_class = None
        manual_seen = len(stroke)
        for i, p in enumerate(stroke, start=1):
            if session.add_point(p) is not None:
                manual_class, manual_seen = session.class_name, i
                break
        if manual_class is None:
            manual_class = session.finish()
        assert batch.class_name == manual_class
        assert batch.points_seen == manual_seen

    @given(
        st.sampled_from(list(eight_direction_templates().keys())),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_points_seen_bounds(self, directions_recognizer, class_name, seed):
        stroke = GestureGenerator(
            eight_direction_templates(), seed=seed
        ).generate(class_name).stroke
        result = directions_recognizer.recognize(stroke)
        assert 1 <= result.points_seen <= len(stroke)
        assert result.total_points == len(stroke)
        assert result.eager == (result.points_seen < len(stroke))

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_eager_agrees_with_full_on_commitment_prefix(
        self, directions_recognizer, seed
    ):
        """At the moment of eager commitment, the verdict IS the full
        classifier's verdict on the prefix seen so far."""
        generator = GestureGenerator(eight_direction_templates(), seed=seed)
        for class_name in ("ur", "dl"):
            stroke = generator.generate(class_name).stroke
            result = directions_recognizer.recognize(stroke)
            if result.eager:
                prefix = stroke.subgesture(result.points_seen)
                assert directions_recognizer.classify_full(prefix) == (
                    result.class_name
                )


class TestTrainingInvariants:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_training_is_deterministic(self, seed):
        """Same data, same recognizer — byte-for-byte."""
        from repro.eager import train_eager_recognizer

        params = GenerationParams()
        train = GestureGenerator(
            eight_direction_templates(), params=params, seed=seed
        ).generate_strokes(5)
        a = train_eager_recognizer(train)
        b = train_eager_recognizer(train)
        assert a.recognizer.to_dict() == b.recognizer.to_dict()
        assert a.moved_count == b.moved_count
        assert a.set_counts == b.set_counts
