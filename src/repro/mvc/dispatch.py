"""The input dispatcher.

Ties the pieces together: a press is offered to the handlers of the view
under the cursor ("the handlers associated with a particular view are
queried in order whenever input is initiated at the view"); if every
handler at that view declines, the event propagates up the view tree to
the parent's handlers.  Whichever handler accepts becomes the grab-holder
and receives all moves and the release of that interaction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..events import EventQueue, MouseEvent
from .handler import EventHandler
from .view import View

__all__ = ["DispatchContext", "Dispatcher"]


@dataclass
class DispatchContext:
    """What a handler can reach while processing an interaction."""

    dispatcher: "Dispatcher"
    queue: EventQueue
    view: View  # the view the interaction started at


class Dispatcher:
    """Routes mouse events from the queue into GRANDMA handlers."""

    def __init__(self, root: View, queue: EventQueue | None = None):
        self.root = root
        self.queue = queue or EventQueue()
        self._active: tuple[EventHandler, DispatchContext] | None = None

    @property
    def interaction_active(self) -> bool:
        return self._active is not None

    def dispatch(self, event: MouseEvent) -> bool:
        """Deliver one event; returns True if some handler took it."""
        if self._active is not None:
            handler, context = self._active
            if event.is_release():
                self._active = None
                handler.end(event, context)
            else:
                handler.update(event, context)
            return True
        if not event.is_press():
            # Stray move/release with no interaction in progress.
            return False
        view = self.root.pick(event.x, event.y)
        while view is not None:
            for handler in view.handlers():
                if not handler.wants(event, view):
                    continue
                context = DispatchContext(
                    dispatcher=self, queue=self.queue, view=view
                )
                if handler.begin(event, view, context):
                    self._active = (handler, context)
                    return True
            view = view.parent
        return False

    def run(self) -> int:
        """Drain the event queue through this dispatcher."""
        return self.queue.run(self.dispatch)
