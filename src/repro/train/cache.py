"""The content-addressed stage cache and run checkpoints.

Every pipeline stage's output is a JSON-serializable dict stored under
a key derived from the stage's code version, its parameters, and the
content hashes of its inputs (:func:`repro.train.stages.stage_key`).
Because the key is pure content, the cache doubles as three features:

* **re-run skipping** — an identical job finds every stage already
  present;
* **sweep sharing** — a hyperparameter sweep re-keys only the stages
  downstream of the changed knob (changing ``tweak_margin`` misses the
  AUC stage but hits manifest/features/classifier/subgestures);
* **crash resume** — a killed run left completed stages on disk, so the
  restart recomputes nothing that finished.

Writes are atomic (temp file + :func:`os.replace`), and a corrupt or
truncated object — a kill mid-write — reads as a miss, never as bad
data.  Cached payloads are normalized through canonical JSON on ``put``
so a stage's consumers see byte-identical values whether the stage ran
just now or last week.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..fsio import atomic_write_text as _atomic_write
from ..hashing import canonical_json

__all__ = ["StageCache", "load_checkpoint", "write_checkpoint", "checkpoint_path"]


class StageCache:
    """Keyed JSON blobs, on disk under ``root`` or in memory when rootless.

    A rootless cache still deduplicates within one pipeline run (and
    normalizes payloads identically), so the no-``--cache-dir`` path
    exercises the same code as the persistent one.
    """

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else None
        self._mem: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0

    def _object_path(self, key: str) -> Path:
        return self.root / "objects" / f"{key}.json"

    def get(self, key: str) -> dict | None:
        payload = self._mem.get(key)
        if payload is None and self.root is not None:
            path = self._object_path(key)
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                payload = None  # absent or torn write: recompute
            else:
                self._mem[key] = payload
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> dict:
        """Store and return the payload in its canonical (JSON) form.

        The returned normalized dict — not the original — is what the
        pipeline hands to downstream stages, so fresh and cached runs
        flow bit-identical values.
        """
        text = canonical_json(payload)
        normalized = json.loads(text)
        self._mem[key] = normalized
        if self.root is not None:
            _atomic_write(self._object_path(key), text)
        return normalized


# -- checkpoints --------------------------------------------------------------


def checkpoint_path(root: str | Path, job_key: str) -> Path:
    return Path(root) / "runs" / f"{job_key}.json"


def load_checkpoint(root: str | Path, job_key: str) -> dict | None:
    try:
        return json.loads(checkpoint_path(root, job_key).read_text())
    except (OSError, json.JSONDecodeError):
        return None


def write_checkpoint(root: str | Path, job_key: str, data: dict) -> None:
    # Insertion order is kept: the "stages" dict reads as the completion
    # sequence, which is exactly what a human debugging a killed run wants.
    _atomic_write(
        checkpoint_path(root, job_key), json.dumps(data, indent=2) + "\n"
    )
