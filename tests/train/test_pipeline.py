"""The staged training pipeline: determinism, caching, resume, fan-out."""

from __future__ import annotations

import json

import pytest

from repro.eager import train_eager_recognizer
from repro.hashing import content_hash
from repro.obs import MetricsRegistry
from repro.synth import GestureGenerator, family_templates
from repro.train import (
    STAGES,
    TrainJobSpec,
    TrainingKilled,
    TrainingPipeline,
    checkpoint_path,
    fan_out,
    split_chunks,
)

SPEC = TrainJobSpec(family="ud", examples=6, seed=3)


def run(spec=SPEC, **kwargs) -> object:
    return TrainingPipeline(spec, **kwargs).run()


class TestSpec:
    def test_requires_exactly_one_data_source(self):
        with pytest.raises(ValueError, match="exactly one data source"):
            TrainJobSpec()
        with pytest.raises(ValueError, match="exactly one data source"):
            TrainJobSpec(family="ud", dataset="x.json")

    def test_rejects_unknown_config_keys(self):
        with pytest.raises(ValueError, match="unknown training config keys"):
            TrainJobSpec(family="ud", config={"learning_rate": 0.1})

    def test_name_not_part_of_identity(self):
        a = TrainJobSpec(family="ud", name="alpha")
        b = TrainJobSpec(family="ud", name="beta")
        assert a.job_key == b.job_key

    def test_round_trips_through_file(self, tmp_path):
        path = tmp_path / "job.json"
        path.write_text(json.dumps(SPEC.to_dict()))
        assert TrainJobSpec.from_file(path) == SPEC

    def test_model_name_falls_back_to_source(self, tmp_path):
        assert TrainJobSpec(family="ud").model_name() == "ud"
        assert TrainJobSpec(dataset="/x/gdp_sample.json").model_name() == "gdp_sample"
        assert TrainJobSpec(family="ud", name="mine").model_name() == "mine"


class TestDeterminism:
    def test_two_runs_hash_identically(self):
        """The seeded-RNG pin: one spec, two full runs, one model hash.

        All synthesis randomness flows from a single stdlib
        ``random.Random(seed)``, so the packaged model is a pure
        function of the spec.
        """
        assert run().model_hash == run().model_hash

    def test_jobs_count_does_not_change_the_model(self, tmp_path):
        serial = run(cache_dir=tmp_path / "a", jobs=1)
        parallel = run(cache_dir=tmp_path / "b", jobs=3)
        assert serial.model_hash == parallel.model_hash
        assert serial.model == parallel.model

    def test_pipeline_matches_in_memory_trainer(self):
        generator = GestureGenerator(family_templates("ud"), seed=3)
        report = train_eager_recognizer(generator.generate_strokes(6))
        reference = report.recognizer.to_dict()
        result = run()
        assert result.model == reference
        assert result.model_hash == content_hash(reference)

    def test_dataset_spec_matches_family_spec_data(self, tmp_path):
        """A saved dataset of the same strokes trains the same model."""
        from repro.datasets import GestureSet

        generator = GestureGenerator(family_templates("ud"), seed=3)
        strokes = generator.generate_strokes(6)
        path = tmp_path / "ud.json"
        GestureSet.from_strokes("ud", strokes).save(path)
        from_dataset = run(TrainJobSpec(dataset=str(path)))
        assert from_dataset.model_hash == run().model_hash


class TestCache:
    def test_second_run_is_fully_cached(self, tmp_path):
        first = run(cache_dir=tmp_path)
        second = run(cache_dir=tmp_path)
        assert first.stages_run == list(STAGES)
        assert second.stages_run == []
        assert second.stages_cached == list(STAGES)
        assert second.model_hash == first.model_hash

    def test_sweep_shares_upstream_stages(self, tmp_path):
        run(cache_dir=tmp_path)
        swept = run(
            TrainJobSpec(family="ud", examples=6, seed=3,
                         config={"tweak_margin": 0.25}),
            cache_dir=tmp_path,
        )
        assert swept.stages_cached == [
            "manifest", "features", "classifier", "subgestures"
        ]
        assert swept.stages_run == ["auc", "package"]

    def test_changed_seed_rekeys_everything(self, tmp_path):
        run(cache_dir=tmp_path)
        other = run(TrainJobSpec(family="ud", examples=6, seed=4),
                    cache_dir=tmp_path)
        assert other.stages_run == list(STAGES)

    def test_corrupt_cache_object_is_recomputed(self, tmp_path):
        first = run(cache_dir=tmp_path)
        for path in (tmp_path / "objects").iterdir():
            path.write_text("{not json")  # a torn write
        again = run(cache_dir=tmp_path)
        assert again.stages_run == list(STAGES)
        assert again.model_hash == first.model_hash

    def test_memory_only_cache_works(self):
        result = run(cache_dir=None)
        assert result.stages_run == list(STAGES)


class TestKillResume:
    def test_kill_after_stage_raises_and_checkpoints(self, tmp_path):
        with pytest.raises(TrainingKilled) as exc:
            run(cache_dir=tmp_path, kill_after="classifier")
        assert exc.value.stage == "classifier"
        checkpoint = json.loads(
            checkpoint_path(tmp_path, SPEC.job_key).read_text()
        )
        assert checkpoint["spec"] == SPEC.identity()
        assert list(checkpoint["stages"]) == ["manifest", "features", "classifier"]

    def test_resume_completes_bit_identically(self, tmp_path):
        reference = run()
        with pytest.raises(TrainingKilled):
            run(cache_dir=tmp_path, jobs=2, kill_after="subgestures")
        resumed = run(cache_dir=tmp_path, jobs=1, resume=True)
        assert resumed.model_hash == reference.model_hash
        assert resumed.stages_cached == [
            "manifest", "features", "classifier", "subgestures"
        ]
        assert resumed.stages_run == ["auc", "package"]

    def test_resume_without_checkpoint_refuses(self, tmp_path):
        with pytest.raises(ValueError, match="no checkpoint"):
            run(cache_dir=tmp_path, resume=True)

    def test_resume_without_cache_dir_refuses(self):
        with pytest.raises(ValueError, match="requires a cache directory"):
            TrainingPipeline(SPEC, resume=True)

    def test_unknown_kill_stage_refuses(self):
        with pytest.raises(ValueError, match="unknown stage"):
            TrainingPipeline(SPEC, kill_after="warmup")


class TestObservability:
    def test_metrics_counters_and_lineage(self, tmp_path):
        metrics = MetricsRegistry()
        result = run(cache_dir=tmp_path, jobs=2, metrics=metrics)
        counters = metrics.snapshot()["counters"]
        assert counters["train.stages_run"] == len(STAGES)
        assert counters["train.examples"] == 12
        assert counters["train.classes"] == 2
        assert counters["train.subgestures"] > 0
        histogram = metrics.snapshot()["histograms"]["train.stage_ms"]
        assert histogram["count"] == len(STAGES)

        lineage = result.lineage
        assert lineage["spec"] == SPEC.identity()
        assert set(lineage["stages"]) == set(STAGES)
        assert lineage["jobs"] == 2
        assert lineage["model_hash"] == result.model_hash

    def test_runs_without_metrics(self):
        assert run(metrics=None).model_hash  # no observer, no crash


class TestParallelPrimitives:
    def test_split_chunks_preserves_order_and_covers(self):
        items = list(range(13))
        for jobs in (1, 2, 3, 5, 13, 20):
            chunks = split_chunks(items, jobs)
            assert [x for chunk in chunks for x in chunk] == items
            assert len(chunks) <= max(1, jobs)
            assert all(chunks)

    def test_fan_out_inline_runs_initializer(self):
        state = {}

        def init(value):
            state["v"] = value

        def worker(chunk):
            return [x * state["v"] for x in chunk]

        out = fan_out(worker, [[1, 2], [3]], jobs=1, initializer=init,
                      initargs=(10,))
        assert out == [[10, 20], [30]]

    def test_effective_workers_caps(self, monkeypatch):
        from repro.train import parallel
        from repro.train.parallel import effective_workers

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 8)
        chunks = split_chunks(list(range(100)), 4)
        # No min_chunk: bounded by jobs and chunk count only.
        assert effective_workers(4, chunks) == 4
        assert effective_workers(9, chunks) == 4
        # min_chunk shrinks workers so each gets enough items.
        assert effective_workers(4, chunks, min_chunk=30) == 3
        assert effective_workers(4, chunks, min_chunk=200) == 1
        # The host's core count is a hard ceiling.
        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 1)
        assert effective_workers(4, chunks) == 1

    def test_fan_out_stays_inline_when_gated(self, monkeypatch):
        """Tiny workloads must never pay the process-pool tax."""
        from repro.train import parallel

        def boom(*args, **kwargs):
            raise AssertionError("ProcessPoolExecutor must not be used")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", boom)
        chunks = split_chunks(list(range(8)), 4)
        out = fan_out(lambda c: [x + 1 for x in c], chunks, jobs=4,
                      min_chunk=32)
        assert [x for chunk in out for x in chunk] == list(range(1, 9))
        # A 1-CPU host gates even without min_chunk.
        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 1)
        out = fan_out(lambda c: [x * 2 for x in c], chunks, jobs=4)
        assert [x for chunk in out for x in chunk] == [x * 2 for x in range(8)]
