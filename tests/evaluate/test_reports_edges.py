"""Edge cases for the evaluation reports and result types."""

from repro.eager import EagerResult
from repro.evaluate import ExampleOutcome, figure9_grid, summary_row
from repro.evaluate.harness import EvaluationResult
from repro.evaluate.metrics import ConfusionMatrix, EagernessStats


def make_result_without_oracle() -> EvaluationResult:
    result = EvaluationResult(
        eager_confusion=ConfusionMatrix(class_names=["a", "b"]),
        full_confusion=ConfusionMatrix(class_names=["a", "b"]),
        eagerness=EagernessStats(),
    )
    for true, predicted, seen, total in [
        ("a", "a", 5, 10),
        ("a", "b", 10, 10),
        ("b", "b", 7, 9),
    ]:
        result.outcomes.append(
            ExampleOutcome(
                class_name=true,
                eager_prediction=predicted,
                full_prediction=true,
                points_seen=seen,
                total_points=total,
                oracle_points=None,
                eager=seen < total,
            )
        )
        result.eager_confusion.record(true, predicted)
        result.full_confusion.record(true, true)
        result.eagerness.record(seen / total, eager=seen < total)
    return result


class TestNoOracleReporting:
    def test_caption_without_oracle(self):
        outcome = ExampleOutcome(
            class_name="a",
            eager_prediction="b",
            full_prediction="a",
            points_seen=4,
            total_points=9,
            oracle_points=None,
            eager=True,
        )
        assert outcome.caption() == "4/9 E"

    def test_summary_row_prints_na(self):
        row = summary_row("x", make_result_without_oracle())
        assert "n/a" in row

    def test_grid_renders_without_oracle(self):
        grid = figure9_grid(make_result_without_oracle())
        assert "5/10" in grid
        assert "E" in grid  # the one eager error flagged

    def test_summary_omits_oracle_line(self):
        summary = make_result_without_oracle().summary()
        assert "oracle" not in summary


class TestEagerResultEdges:
    def test_zero_total_fraction(self):
        result = EagerResult(
            class_name="x", points_seen=0, total_points=0, eager=False
        )
        assert result.fraction_seen == 0.0

    def test_full_consumption_fraction(self):
        result = EagerResult(
            class_name="x", points_seen=20, total_points=20, eager=False
        )
        assert result.fraction_seen == 1.0
