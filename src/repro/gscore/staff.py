"""A musical staff model.

Rubine's second GRANDMA application was GSCORE, a gesture-based musical
score editor (the dissertation's companion to GDP); its gesture set
descends from Buxton's SSSP note gestures — the very set the paper's
figure 8 uses to show where eager recognition *cannot* help.  This
module provides the score substrate: a five-line staff with pitch/time
geometry, snapping (pitch snaps to lines and spaces, onset time to a
beat grid), and the note collection the gesture semantics edit.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..geometry import BoundingBox
from ..mvc import Model

__all__ = ["Note", "Staff", "DURATIONS", "DURATION_BEATS"]

# Duration classes, in the order of the paper's figure 8.
DURATIONS: tuple[str, ...] = (
    "quarter",
    "eighth",
    "sixteenth",
    "thirtysecond",
    "sixtyfourth",
)

DURATION_BEATS: dict[str, float] = {
    "quarter": 1.0,
    "eighth": 0.5,
    "sixteenth": 0.25,
    "thirtysecond": 0.125,
    "sixtyfourth": 0.0625,
}

_note_ids = itertools.count(1)

# Pitch names for staff steps 0..11, bottom line (E4) upward.
_STEP_NAMES = ("E4", "F4", "G4", "A4", "B4", "C5", "D5", "E5", "F5", "G5", "A5", "B5")


@dataclass
class Note:
    """One note: a staff step (line/space index), a beat, a duration class."""

    step: int  # 0 = bottom line, increasing upward; one per line/space
    beat: float  # onset, in beats from the start of the staff
    duration: str  # one of DURATIONS

    def __post_init__(self) -> None:
        if self.duration not in DURATION_BEATS:
            raise ValueError(f"unknown duration {self.duration!r}")
        self.id = next(_note_ids)

    @property
    def pitch_name(self) -> str:
        if 0 <= self.step < len(_STEP_NAMES):
            return _STEP_NAMES[self.step]
        return f"step{self.step}"

    @property
    def beats(self) -> float:
        return DURATION_BEATS[self.duration]


class Staff(Model):
    """Five staff lines plus the notes on them.

    Geometry: staff line ``k`` (k = 0 bottom .. 4 top) sits at
    ``origin_y + (4 - k) * line_gap``; pitch *steps* are half a gap
    apart (lines and spaces).  Time: ``beat_width`` pixels per beat,
    starting at ``origin_x``.
    """

    def __init__(
        self,
        origin_x: float = 40.0,
        origin_y: float = 60.0,
        line_gap: float = 16.0,
        beat_width: float = 60.0,
        beats: float = 8.0,
    ):
        super().__init__()
        self.origin_x = origin_x
        self.origin_y = origin_y
        self.line_gap = line_gap
        self.beat_width = beat_width
        self.beats = beats
        self._notes: list[Note] = []

    # -- contents ------------------------------------------------------------

    @property
    def notes(self) -> tuple[Note, ...]:
        return tuple(sorted(self._notes, key=lambda n: (n.beat, n.step)))

    def add_note(self, note: Note) -> Note:
        self._notes.append(note)
        self.changed()
        return note

    def remove_note(self, note: Note) -> bool:
        if note in self._notes:
            self._notes.remove(note)
            self.changed()
            return True
        return False

    def clear(self) -> None:
        self._notes.clear()
        self.changed()

    # -- geometry ---------------------------------------------------------------

    def bounds(self) -> BoundingBox:
        return BoundingBox(
            self.origin_x,
            self.origin_y - 3 * self.line_gap,  # room above the staff
            self.origin_x + self.beats * self.beat_width,
            self.origin_y + 4 * self.line_gap + 3 * self.line_gap,
        )

    def step_to_y(self, step: int) -> float:
        """Center y of a staff step (bottom line = step 0, y grows down)."""
        bottom_line_y = self.origin_y + 4 * self.line_gap
        return bottom_line_y - step * (self.line_gap / 2.0)

    def beat_to_x(self, beat: float) -> float:
        return self.origin_x + beat * self.beat_width

    # -- snapping (pitch to lines/spaces, onset to the beat grid) ------------------

    def snap_step(self, y: float) -> int:
        """Nearest staff step to a y coordinate, clamped to the staff."""
        bottom_line_y = self.origin_y + 4 * self.line_gap
        step = round((bottom_line_y - y) / (self.line_gap / 2.0))
        return int(min(max(step, 0), 11))

    def snap_beat(self, x: float, grid: float = 0.25) -> float:
        """Nearest grid beat to an x coordinate, clamped to the staff."""
        beat = (x - self.origin_x) / self.beat_width
        snapped = round(beat / grid) * grid
        return float(min(max(snapped, 0.0), self.beats))

    def note_at(
        self, x: float, y: float, tolerance: float = 10.0
    ) -> Note | None:
        """Topmost note near ``(x, y)``."""
        best: Note | None = None
        best_distance = tolerance
        for note in self._notes:
            dx = abs(self.beat_to_x(note.beat) - x)
            dy = abs(self.step_to_y(note.step) - y)
            distance = max(dx, dy)
            if distance <= best_distance:
                best, best_distance = note, distance
        return best
