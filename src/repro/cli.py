"""Command-line interface: ``python -m repro`` / ``repro-gestures``.

Subcommands:

* ``train`` — train an eager recognizer through the staged pipeline
  (:mod:`repro.train`): synthetic family or saved dataset, ``--jobs N``
  process fan-out, a content-addressed ``--cache-dir`` stage cache,
  ``--resume`` after a kill, and ``--publish`` into a model registry
  with full lineage;
* ``models`` — ``list`` the models in a registry or ``show`` one
  version's lineage (dataset hash, stage keys, seed, wall time);
* ``classify`` — classify gestures from a dataset file with a saved
  recognizer;
* ``evaluate`` — run the paper's §5 protocol on a gesture family and
  print the summary and figure-9-style grid;
* ``demo`` — run a scripted GDP session and print the canvas;
* ``serve`` — run the NDJSON-over-TCP recognition service
  (:mod:`repro.serve`) on a saved recognizer, a registry model, or a
  freshly trained synthetic family (metrics on by default; ``--trace``
  streams NDJSON spans to a file, ``--no-metrics`` turns the registry
  off);
* ``cluster`` — run the sharded service (:mod:`repro.cluster`): a
  router on one address, N recognizer worker processes behind it, a
  supervisor restarting crashed workers; the protocol (and the
  decision bytes) are identical to ``serve``;
* ``stats`` — query a running server's (or router's — the reply is
  then the fleet-wide merge) ``stats`` protocol message and print its
  metrics snapshot;
* ``loadgen`` — drive the session pool with a synthetic workload and
  print throughput/latency for the batched and/or sequential mode;
  ``--fault-seed`` runs the same workload under a seeded chaos schedule
  (drop/duplicate/delay/reorder/kill at ``--fault-rate``);
  ``--cluster N`` routes the workload through a real N-worker cluster
  over TCP and verifies the replies are byte-identical to one pool;
  ``--trace``/``--quality``/``--profile`` attach the observability
  stack and ``--metrics-out`` saves the snapshot for ``analyze``;
* ``adapt`` — per-user personalization loop (:mod:`repro.adapt`):
  harvest labelled examples from a traffic journal + quality trace +
  corrections, incrementally retrain a per-user candidate against the
  registry base model, shadow-replay the user's strokes through live
  and candidate, and publish on a promote verdict (``--dry-run`` stops
  short; a reject exits 4);
* ``analyze`` — turn an NDJSON trace (plus an optional metrics
  snapshot) into a deterministic JSON or markdown report: decision
  paths, per-class eagerness curves, latency tables, drift summaries.
"""

from __future__ import annotations

import argparse
import sys

from .datasets import GestureSet
from .eager import EagerRecognizer, train_eager_recognizer
from .evaluate import figure9_grid, run_experiment
from .synth import FAMILY_NAMES, GestureGenerator, family_templates, gdp_templates

__all__ = ["main"]

# Exit code of a --kill-after run: EX_TEMPFAIL, "try again" — rerunning
# with --resume completes the job.
EXIT_KILLED = 75

# Exit code of an `adapt` run whose shadow evaluation rejected the
# candidate: distinct from error exits so automation can tell "the loop
# ran and decided not to promote" from "the loop broke".
EXIT_NOT_PROMOTED = 4


def _generator(family: str, seed: int) -> GestureGenerator:
    try:
        templates = family_templates(family)
    except KeyError as exc:
        raise SystemExit(exc.args[0]) from None
    return GestureGenerator(templates, seed=seed)


def _cmd_train(args: argparse.Namespace) -> int:
    import json

    from .train import TrainJobSpec, TrainingKilled, TrainingPipeline

    try:
        if args.spec:
            spec = TrainJobSpec.from_file(args.spec)
        else:
            spec = TrainJobSpec(
                family=None if args.dataset else args.family,
                dataset=args.dataset,
                examples=args.examples,
                seed=args.seed,
                name=args.name,
            )
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    if spec.family and spec.family not in FAMILY_NAMES:
        raise SystemExit(
            f"unknown gesture family {spec.family!r}; "
            f"choose from {sorted(FAMILY_NAMES)}"
        )

    metrics = None
    if args.metrics:
        from .obs import MetricsRegistry

        metrics = MetricsRegistry()
    pipeline = TrainingPipeline(
        spec,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        metrics=metrics,
        kill_after=args.kill_after,
        resume=args.resume,
    )
    try:
        result = pipeline.run()
    except TrainingKilled as exc:
        print(f"{exc}; checkpoint saved — rerun with --resume to finish")
        return EXIT_KILLED
    except ValueError as exc:
        raise SystemExit(str(exc)) from None

    with open(args.output, "w") as f:
        json.dump(result.model, f)
    print(
        f"trained on {result.example_count} examples "
        f"across {result.class_count} classes"
    )
    print(
        f"stages run: {', '.join(result.stages_run) or 'none'}; "
        f"cached: {', '.join(result.stages_cached) or 'none'}"
    )
    print(f"model version {result.version} (hash {result.model_hash})")
    print(f"recognizer written to {args.output}")
    if args.registry:
        published = pipeline.publish(args.registry, result)
        print(
            f"published to {args.registry} as "
            f"{published.name}@{published.version}"
        )
    if metrics is not None:
        _print_snapshot(metrics.snapshot())
    return 0


def _cmd_models(args: argparse.Namespace) -> int:
    from .serve import ModelRegistry

    registry = ModelRegistry(args.registry)
    if args.models_command == "list":
        names = registry.names()
        if not names:
            print(f"no models in {args.registry}")
            return 0
        for name in names:
            versions = registry.versions(name)
            latest = registry.latest_version(name)
            print(f"{name}  latest={latest}  versions={len(versions)}")
        return 0

    name, _, version = args.model.partition("@")
    try:
        resolved = version or registry.latest_version(name)
        metadata = registry.metadata_of(name, resolved)
    except KeyError as exc:
        raise SystemExit(str(exc.args[0])) from None
    print(f"{name}@{resolved}")
    print(f"  source: {metadata.get('source', 'unknown')}")
    lineage = metadata.get("lineage")
    if not lineage:
        print("  no lineage recorded for this version")
        return 0
    spec = lineage.get("spec", {})
    data_source = spec.get("family") or spec.get("dataset") or "?"
    print(f"  trained from: {data_source}")
    print(f"  dataset hash: {lineage.get('dataset')}")
    print(f"  model hash:   {lineage.get('model_hash')}")
    print(
        f"  seed: {lineage.get('seed')}  jobs: {lineage.get('jobs')}  "
        f"wall: {lineage.get('wall_time_s')}s"
    )
    print("  stage keys:")
    for stage, key in lineage.get("stages", {}).items():
        print(f"    {stage:<12} {key}")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    recognizer = EagerRecognizer.load(args.recognizer)
    gesture_set = GestureSet.load(args.dataset)
    correct = 0
    for example in gesture_set:
        result = recognizer.recognize(example.stroke)
        ok = result.class_name == example.class_name
        correct += ok
        marker = "" if ok else "   <-- expected " + example.class_name
        print(
            f"{result.class_name:<16} seen {result.points_seen}/"
            f"{result.total_points}{marker}"
        )
    print(f"\n{correct}/{len(gesture_set)} correct")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    generator = _generator(args.family, args.seed)
    dataset = GestureSet.from_generator(
        args.family, generator, args.train + args.test
    )
    result, _ = run_experiment(dataset, train_per_class=args.train)
    print(result.summary())
    if args.grid:
        print()
        print(figure9_grid(result))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .events import perform_gesture
    from .gdp import GDPApp
    from .geometry import Stroke

    app = GDPApp()
    generator = GestureGenerator(gdp_templates(), seed=args.seed)
    print("GDP demo: rectangle, line, ellipse\n")
    rect = generator.generate("rect").stroke.translated(80, 80)
    app.perform(
        perform_gesture(
            rect,
            dwell=0.3,
            manipulation_path=Stroke.from_xy([(380, 300)], dt=0.02),
        )
    )
    line = generator.generate("line").stroke.translated(420, 80)
    app.perform(perform_gesture(line, dwell=0.3))
    ellipse = generator.generate("ellipse").stroke.translated(180, 420)
    app.perform(
        perform_gesture(
            ellipse,
            dwell=0.3,
            manipulation_path=Stroke.from_xy([(260, 480)], dt=0.02),
        )
    )
    print(app.render(cols=72, rows=20))
    print(f"\n{len(app.shapes)} shapes on the canvas")
    return 0


def _resolve_recognizer(args: argparse.Namespace) -> EagerRecognizer:
    """One recognizer from ``--recognizer`` / ``--registry`` / ``--family``."""
    sources = [
        s for s in (args.recognizer, args.registry, args.family) if s
    ]
    if len(sources) != 1:
        raise SystemExit(
            "choose exactly one of --recognizer, --registry, --family"
        )
    if args.recognizer:
        return EagerRecognizer.load(args.recognizer)
    if args.registry:
        from .serve import ModelRegistry

        if not args.model:
            raise SystemExit("--registry requires --model NAME[@VERSION]")
        name, _, version = args.model.partition("@")
        try:
            return ModelRegistry(args.registry).load(name, version or None)
        except KeyError as exc:
            raise SystemExit(exc.args[0]) from None
    strokes = _generator(args.family, args.seed).generate_strokes(
        args.examples
    )
    return train_eager_recognizer(strokes).recognizer


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    from contextlib import ExitStack

    from .obs import (
        MetricsRegistry,
        PerfProfiler,
        PoolObserver,
        QualityMonitor,
        Tracer,
    )
    from .serve import GestureServer

    recognizer = _resolve_recognizer(args)
    if args.model_cache is not None and not args.registry:
        raise SystemExit("--model-cache needs --registry to reload from")
    with ExitStack() as stack:
        metrics = None if args.no_metrics else MetricsRegistry()
        tracer = None
        if args.trace:
            tracer = Tracer(stream=stack.enter_context(open(args.trace, "w")))
        quality = (
            QualityMonitor(
                recognizer,
                metrics=metrics,
                tracer=tracer,
                sample=args.quality_sample,
                sample_seed=args.quality_seed,
            )
            if args.quality
            else None
        )
        profiler = PerfProfiler() if args.profile else None
        observer = (
            PoolObserver(
                metrics=metrics,
                tracer=tracer,
                quality=quality,
                profiler=profiler,
            )
            if any(x is not None for x in (metrics, tracer, quality, profiler))
            else None
        )

        async def run() -> None:
            server = GestureServer(
                recognizer,
                host=args.host,
                port=args.port,
                timeout=args.timeout,
                max_sessions=args.max_sessions,
                observer=observer,
                registry=args.registry,
                model_cache=args.model_cache,
                record=args.record,
            )
            await server.start()
            host, port = server.address
            print(
                f"serving {len(recognizer.class_names)} gesture classes "
                f"on {host}:{port} (NDJSON; ops: down/move/up/tick/stats)"
            )
            try:
                await asyncio.Event().wait()  # until interrupted
            finally:
                await server.stop()

        try:
            asyncio.run(run())
        except KeyboardInterrupt:
            print("\nstopped")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import asyncio
    import os
    import sys
    import tempfile
    from contextlib import ExitStack

    from .cluster import Cluster

    if args.drain_timeout is not None:
        # Deprecation shim: the flag parses but does nothing — drains
        # migrate live sessions to surviving shards immediately, so
        # there is nothing to wait out.
        print(
            "warning: --drain-timeout is deprecated and ignored "
            "(drains migrate live sessions instead of waiting them out)",
            file=sys.stderr,
        )

    # Workers are subprocesses: they load the model from a file.  A
    # --recognizer path is handed straight to them; any other source is
    # resolved here and saved to a temp file for the workers to share.
    recognizer = _resolve_recognizer(args)
    with ExitStack() as stack:
        if args.recognizer:
            path = args.recognizer
        else:
            tmp = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-cluster-")
            )
            path = os.path.join(tmp, "recognizer.json")
            recognizer.save(path)

        async def run() -> None:
            async with Cluster(
                path,
                workers=args.workers,
                host=args.host,
                port=args.port,
                timeout=args.timeout,
                max_sessions=args.max_sessions,
                metrics=not args.no_metrics,
                registry=args.registry,
                framing=args.framing,
                quality=args.quality,
                quality_sample=args.quality_sample,
                quality_seed=args.quality_seed,
                min_workers=args.min_workers,
                max_workers=args.max_workers,
                autoscale=args.autoscale,
                model_cache=args.model_cache,
            ) as cluster:
                await cluster.wait_all_up()
                host, port = cluster.address
                shards = ", ".join(cluster.router.links)
                print(
                    f"cluster: {len(recognizer.class_names)} gesture classes "
                    f"on {host}:{port} across {args.workers} workers "
                    f"({shards})"
                    + (" [autoscaling]" if args.autoscale else "")
                )
                print(
                    "  same NDJSON protocol as `serve`; admin ops: "
                    '{"op": "cluster"}, {"op": "drain", "shard": "..."}, '
                    '{"op": "scale", "workers": N}'
                )
                await asyncio.Event().wait()  # until interrupted

        try:
            asyncio.run(run())
        except KeyboardInterrupt:
            print("\nstopped")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import asyncio
    import json

    async def fetch() -> dict:
        reader, writer = await asyncio.open_connection(args.host, args.port)
        try:
            writer.write(b'{"op": "stats"}\n')
            await writer.drain()
            line = await reader.readline()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass
        if not line:
            raise SystemExit("server closed the connection without a reply")
        return json.loads(line)

    try:
        payload = asyncio.run(fetch())
    except OSError as exc:
        raise SystemExit(
            f"cannot reach server at {args.host}:{args.port}: {exc}"
        ) from None
    except json.JSONDecodeError as exc:
        raise SystemExit(f"malformed stats reply: {exc}") from None
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"t={payload.get('t')}  sessions={payload.get('sessions')}  "
        f"channels={payload.get('channels')}"
    )
    metrics = payload.get("metrics")
    if not metrics:
        print("metrics: disabled on this server")
        return 0
    print("\ncounters:")
    for name, value in metrics.get("counters", {}).items():
        print(f"  {name:<28} {value}")
    print("\nhistograms:")
    for name, h in metrics.get("histograms", {}).items():
        count = h["count"]
        mean = h["sum"] / count if count else 0.0
        print(
            f"  {name:<28} count={count} mean={mean:.2f} "
            f"min={h['min']} max={h['max']}"
        )
    rows = _quality_rows(metrics.get("histograms", {}))
    if rows:
        print("\nquality (fleet-wide, per class):")
        for cls, count, margin, drift in rows:
            print(
                f"  {cls:<20} n={count} margin_mean={margin:.3f} "
                f"drift={drift:.3f}"
            )
    profile = payload.get("profile")
    if profile:
        print("\nprofile (wall-clock):")
        for name, p in profile.items():
            per_unit = (
                f" {p['us_per_unit']:.2f}us/unit"
                if p.get("us_per_unit") is not None
                else ""
            )
            print(
                f"  {name:<28} calls={p['count']} "
                f"mean={p['mean_us']:.1f}us{per_unit}"
            )
    return 0


def _quality_rows(histograms: dict) -> list[tuple[str, int, float, float]]:
    """Per-class ``(name, count, margin_mean, drift)`` rows from merged
    ``quality.*`` histograms — the fleet-wide view, since
    ``merge_snapshots`` sums the per-worker sums and counts.  Drift is
    the Rubine rejection statistic mean d²/F (see QualityMonitor).
    """
    from .features import NUM_FEATURES

    rows = []
    prefix = "quality.margin."
    for name, h in sorted(histograms.items()):
        if not name.startswith(prefix):
            continue
        cls = name[len(prefix):]
        count = h["count"]
        margin = h["sum"] / count if count else 0.0
        maha = histograms.get(f"quality.mahal_sq.{cls}")
        drift = (
            maha["sum"] / maha["count"] / NUM_FEATURES
            if maha and maha["count"]
            else 0.0
        )
        rows.append((cls, count, margin, drift))
    return rows


def _print_snapshot(snapshot: dict) -> None:
    """Pretty-print a metrics snapshot; safe on a fully empty one."""
    import json

    print("\nmetrics counters:")
    print(json.dumps(snapshot.get("counters", {}), indent=2, sort_keys=True))
    histograms = snapshot.get("histograms", {})
    if histograms:
        print("\nmetrics histograms:")
        for name, h in sorted(histograms.items()):
            count = h["count"]
            mean = h["sum"] / count if count else 0.0
            print(
                f"  {name:<28} count={count} mean={mean:.2f} "
                f"min={h['min']} max={h['max']}"
            )


def _loadgen_cluster(args: argparse.Namespace, recognizer, workload) -> int:
    """Route the loadgen workload through a real worker cluster.

    The run doubles as a correctness check: the per-stroke reply lines
    coming back over TCP are compared *as strings* against what one
    in-process :class:`~repro.serve.SessionPool` produces for the same
    tick cadence.
    """
    import asyncio
    import os
    import tempfile
    import time

    from .cluster import Cluster, drive_cluster, reference_lines, workload_ticks
    from .interaction import DEFAULT_TIMEOUT

    if args.trace or args.profile or args.metrics_out:
        raise SystemExit(
            "--trace/--profile/--metrics-out observe one in-process "
            "pool; with --cluster the workers keep their own metrics "
            "and the final stats reply is the fleet-wide merge "
            "(print it with --metrics; --quality rides along — every "
            "worker scores its own shard)"
        )
    dt = 0.01
    if args.fault_seed is not None:
        # Ground truth comes from the fault machinery itself: run the
        # schedule once in-process and replay the post-fault delivered
        # stream through the cluster.  Kills are off — there is
        # deliberately no remote kill op.
        from .obs import FaultPlan
        from .serve import run_load

        base = run_load(
            recognizer,
            workload,
            collect=True,
            fault_plan=FaultPlan.mixed(args.fault_rate, kill=0.0),
            fault_seed=args.fault_seed,
        )
        ticks = workload_ticks(base.delivered_log)
        end_t = base.end_t
        print(
            "fault schedule (kills off): "
            + ", ".join(f"{k}={v}" for k, v in base.fault_summary.items())
        )
    else:
        ticks = workload_ticks(workload, dt=dt)
        end_t = len(ticks) * dt + DEFAULT_TIMEOUT + dt
    reference = reference_lines(
        recognizer, ticks, end_t=end_t, timeout=DEFAULT_TIMEOUT
    )
    points = sum(len(group) for _, group in ticks)

    async def run():
        with tempfile.TemporaryDirectory(prefix="repro-loadgen-") as tmp:
            path = os.path.join(tmp, "recognizer.json")
            recognizer.save(path)
            async with Cluster(
                path,
                workers=args.cluster,
                timeout=DEFAULT_TIMEOUT,
                framing=args.framing,
                quality=args.quality,
                quality_sample=args.quality_sample,
                quality_seed=args.quality_seed,
            ) as cluster:
                await cluster.wait_all_up()
                host, port = cluster.address
                t0 = time.perf_counter()
                replies, stats = await drive_cluster(
                    host, port, ticks, end_t=end_t
                )
                return replies, stats, time.perf_counter() - t0

    replies, stats, elapsed = asyncio.run(run())
    decisions = sum(len(lines) for lines in replies.values())
    rate = points / elapsed if elapsed > 0 else 0.0
    print(
        f"cluster: {args.cluster} workers, {args.clients} clients, "
        f"{points} ops in {elapsed:.3f}s = {rate:,.0f} ops/sec "
        f"({decisions} decisions)"
    )
    mismatched = sorted(
        stroke
        for stroke in set(reference) | set(replies)
        if replies.get(stroke) != reference.get(stroke)
    )
    if mismatched:
        print(
            f"MISMATCH: {len(mismatched)} stroke(s) differ from the "
            f"single-pool reference, e.g. {mismatched[:5]}"
        )
        return 1
    print("decision streams byte-identical to a single pool")
    if args.metrics and stats and stats.get("metrics"):
        _print_snapshot(stats["metrics"])
    if args.quality and stats and stats.get("metrics"):
        rows = _quality_rows(stats["metrics"].get("histograms", {}))
        if rows:
            print("\nquality (fleet-wide, per class):")
            for cls, count, margin, drift in rows:
                print(
                    f"  {cls:<20} n={count} margin_mean={margin:.3f} "
                    f"drift={drift:.3f}"
                )
    return 0


def _write_traffic_journal(workload, path: str, dt: float = 0.01) -> int:
    """Record a workload as the tick-major NDJSON traffic journal.

    One ``{"rec": "op", ...}`` line per delivered op, stamped with the
    virtual time ``run_load`` submits it at and grouped exactly as the
    pool sees them (tick-major, client order within a tick), so the
    journal replays bit-identically — it is the harvest side's ground
    truth for what each user actually drew.
    """
    import json

    count = 0
    n_ticks = max((len(ops) for ops in workload), default=0)
    with open(path, "w") as f:
        for k in range(n_ticks):
            t = k * dt
            for ops in workload:
                if k < len(ops) and ops[k][0] != "idle":
                    name, key, x, y = ops[k]
                    f.write(
                        json.dumps(
                            {
                                "rec": "op",
                                "op": name,
                                # loadgen strokes are "c{client}g{gesture}":
                                # the client prefix is the user identity.
                                "user": key.rsplit("g", 1)[0],
                                "stroke": key,
                                "x": x,
                                "y": y,
                                "t": t,
                            }
                        )
                        + "\n"
                    )
                    count += 1
    return count


def _loadgen_modal(args: argparse.Namespace, recognizer, workload) -> int:
    """Drive the workload with a modality composer attached.

    ``--mode both`` runs both execution modes, insists the decision
    streams are identical (as always), *and* insists the composed modal
    event streams are identical — the composer is a pure function of
    (ops, decisions), so any divergence is a real bug.
    """
    from .modal import run_modal

    if args.cluster:
        raise SystemExit(
            "--modal composes one in-process run's op and decision "
            "streams; the cluster byte-identity gate already proves "
            "remote replies match that stream (drop --cluster)"
        )
    if args.fault_seed is not None or args.record:
        raise SystemExit(
            "--modal drives an unfaulted, unjournaled run; drop "
            "--fault-seed/--record"
        )
    if args.trace or args.profile or args.metrics or args.metrics_out:
        raise SystemExit(
            "--modal prints the modality event summary; run observability "
            "flags without it"
        )

    def report(result, composer) -> None:
        print(result.summary())
        summary = composer.summary()
        if not summary:
            print("modal: no modality events")
            return
        print("modal events:")
        for modality, kinds in summary.items():
            cells = ", ".join(f"{k}={v}" for k, v in kinds.items())
            print(f"  {modality:<8} {cells}")
        latencies = composer.detection_latencies()
        if latencies:
            print("modal detection latency (virtual ms, down to first event):")
            for modality, values in sorted(latencies.items()):
                values = sorted(values)
                p50 = values[len(values) // 2] * 1e3
                print(
                    f"  {modality:<8} n={len(values)} p50={p50:.0f}ms "
                    f"max={values[-1] * 1e3:.0f}ms"
                )

    if args.mode == "both":
        batched, bc = run_modal(recognizer, workload, batched=True)
        sequential, sc = run_modal(recognizer, workload, batched=False)
        if batched.decision_log != sequential.decision_log:
            raise SystemExit("decision streams differ between modes")
        if bc.events != sc.events:
            raise SystemExit("modal event streams differ between modes")
        report(batched, bc)
        print(
            f"{'':>10}  sequential: {sequential.points_per_sec:,.0f} "
            f"points/sec; decision and modal event streams identical"
        )
    else:
        result, composer = run_modal(
            recognizer, workload, batched=args.mode == "batched"
        )
        report(result, composer)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .serve import compare_modes, family_templates, generate_workload, run_load

    try:
        templates = family_templates(args.family)
    except KeyError as exc:
        raise SystemExit(exc.args[0]) from None
    strokes = GestureGenerator(templates, seed=args.seed).generate_strokes(
        args.examples
    )
    recognizer = train_eager_recognizer(strokes).recognizer
    if args.family == "pinch":
        # Two-finger traffic: synchronized :a/:b session pairs.  Twice
        # the concurrent sessions per client, and the modal composer
        # (with --modal) pairs them into pinch/rotate manipulations.
        from .modal import generate_pair_workload

        workload = generate_pair_workload(
            clients=args.clients,
            pairs_per_client=args.gestures,
            seed=args.seed + 1,
            templates=templates,
        )
        max_sessions = 2 * args.clients + 1
    else:
        workload = generate_workload(
            templates,
            clients=args.clients,
            gestures_per_client=args.gestures,
            seed=args.seed + 1,
        )
        max_sessions = None
    if args.modal:
        return _loadgen_modal(args, recognizer, workload)
    if args.record:
        if args.mode == "both":
            raise SystemExit(
                "--record journals one pool's traffic; use --mode batched "
                "or --mode sequential"
            )
        if args.fault_seed is not None:
            raise SystemExit(
                "--record journals the pre-fault op stream, which a faulted "
                "run does not serve; drop --fault-seed"
            )
        ops = _write_traffic_journal(workload, args.record)
        print(f"traffic journal: {ops} ops written to {args.record}")
    if args.cluster:
        return _loadgen_cluster(args, recognizer, workload)
    fault_plan = None
    if args.fault_seed is not None:
        from .obs import FaultPlan

        fault_plan = FaultPlan.mixed(args.fault_rate)
    wants_observer = (
        args.metrics or args.trace or args.quality or args.profile
        or args.metrics_out
    )
    observer = None
    if wants_observer:
        if args.mode == "both":
            raise SystemExit(
                "--metrics/--trace/--quality/--profile need a single pool "
                "to observe; use --mode batched or --mode sequential"
            )
        from .obs import (
            MetricsRegistry,
            PerfProfiler,
            PoolObserver,
            QualityMonitor,
            Tracer,
        )

        metrics = (
            MetricsRegistry() if args.metrics or args.metrics_out else None
        )
        tracer = Tracer() if args.trace else None
        observer = PoolObserver(
            metrics=metrics,
            tracer=tracer,
            quality=(
                QualityMonitor(
                    recognizer,
                    metrics=metrics,
                    tracer=tracer,
                    sample=args.quality_sample,
                    sample_seed=args.quality_seed,
                )
                if args.quality
                else None
            ),
            profiler=PerfProfiler() if args.profile else None,
        )
    if args.mode == "both":
        batched, sequential = compare_modes(
            recognizer,
            workload,
            fault_plan=fault_plan,
            fault_seed=args.fault_seed or 0,
            max_sessions=max_sessions,
        )
        print(batched.summary())
        print(sequential.summary())
        if sequential.points_per_sec > 0:
            speedup = f"{batched.points_per_sec / sequential.points_per_sec:.2f}x"
        else:
            speedup = "n/a (no points delivered)"
        print(
            f"speedup: {speedup} (decision streams identical"
            + (", same fault schedule)" if fault_plan is not None else ")")
        )
    else:
        result = run_load(
            recognizer,
            workload,
            batched=args.mode == "batched",
            observer=observer,
            fault_plan=fault_plan,
            fault_seed=args.fault_seed or 0,
            max_sessions=max_sessions,
        )
        print(result.summary())
        if args.trace:
            with open(args.trace, "w") as f:
                for line in observer.tracer.lines():
                    f.write(line + "\n")
            print(f"trace written to {args.trace}")
        if args.metrics_out:
            import json

            with open(args.metrics_out, "w") as f:
                json.dump(result.metrics, f, indent=2, sort_keys=True)
                f.write("\n")
            print(f"metrics snapshot written to {args.metrics_out}")
        if args.metrics and result.metrics is not None:
            _print_snapshot(result.metrics)
        if result.profile is not None:
            print("\nprofile (wall-clock):")
            for name, p in result.profile.items():
                per_unit = (
                    f" {p['us_per_unit']:.2f}us/unit"
                    if p.get("us_per_unit") is not None
                    else ""
                )
                print(
                    f"  {name:<28} calls={p['count']} "
                    f"mean={p['mean_us']:.1f}us{per_unit}"
                )
    return 0


def _cmd_adapt(args: argparse.Namespace) -> int:
    import json

    from .adapt import AdaptPipeline, AdaptStore, report_hash, shadow_eval
    from .eager import EagerRecognizer as _ER
    from .hashing import canonical_json
    from .serve import ModelRegistry

    store = AdaptStore(
        dwell_threshold=args.dwell_threshold,
        margin_threshold=args.margin_threshold,
    )
    try:
        store.load_traffic(args.traffic)
        if args.trace:
            store.load_traces(args.trace)
        if args.corrections:
            store.load_corrections(args.corrections)
    except (OSError, ValueError, KeyError) as exc:
        raise SystemExit(f"cannot read journal: {exc}") from None
    by_user, counts = store.harvest()
    print(
        f"harvest: {counts['harvested']}/{counts['strokes']} strokes "
        f"(correction={counts['correction']} timeout={counts['timeout']} "
        f"dwell={counts['dwell']} margin={counts['margin']})"
    )
    examples = by_user.get(args.user)
    if not examples:
        raise SystemExit(
            f"nothing harvested for user {args.user!r}; "
            f"users with examples: {sorted(by_user) or 'none'}"
        )

    try:
        pipeline = AdaptPipeline(
            args.registry,
            args.base,
            cache_dir=args.cache_dir,
            state_dir=args.state_dir,
            jobs=args.jobs,
        )
        pipeline.fold(args.user, examples)
        result = pipeline.run(args.user)
    except (KeyError, ValueError) as exc:
        raise SystemExit(str(exc.args[0]) if exc.args else str(exc)) from None
    print(
        f"candidate {result.candidate_name}@{result.version}: "
        f"{result.user_example_count} user examples folded into "
        f"{result.base_example_count} base "
        f"({result.class_count} classes"
        + (f", new: {', '.join(result.new_classes)}" if result.new_classes else "")
        + ")"
    )
    print(
        f"stages run: {', '.join(result.stages_run) or 'none'}; "
        f"cached: {', '.join(result.stages_cached) or 'none'}; "
        f"prefixes {result.prefixes_cached} cached / "
        f"{result.prefixes_computed} computed"
    )

    registry = ModelRegistry(args.registry)
    live = registry.load(pipeline.base_name, pipeline.base_version)
    replay = pipeline.load_state(args.user)["examples"]
    report = shadow_eval(live, _ER.from_dict(result.model), replay)
    if args.json:
        print(canonical_json(report))
    print(
        f"shadow: {report['strokes']} strokes — live "
        f"{report['live']['correct']} correct, candidate "
        f"{report['candidate']['correct']} correct "
        f"(margin delta {report['delta']['margin_sum']:+.3f})"
    )
    print(
        f"verdict: {report['verdict']} ({report['reason']}) "
        f"[report {report_hash(report)[:12]}]"
    )
    if report["verdict"] != "promote":
        return EXIT_NOT_PROMOTED
    if args.dry_run:
        print("dry run: candidate not published")
        return 0
    published = pipeline.publish(result)
    print(f"published {published.name}@{published.version}")
    swap_op = {
        "op": "swap",
        "user": args.user,
        "model": f"{published.name}@{published.version}",
        "t": 0.0,
    }
    print(f"hot-swap a serving session pool with: {json.dumps(swap_op)}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json

    from .obs.analyze import (
        analyze_records,
        load_trace,
        render_json,
        render_markdown,
        validate_report,
    )

    try:
        records = load_trace(args.trace)
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    metrics = None
    if args.metrics:
        try:
            with open(args.metrics) as f:
                metrics = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"cannot read {args.metrics}: {exc}") from None
        # Accept either a raw snapshot or a full `stats` reply.
        if "counters" not in metrics and isinstance(
            metrics.get("metrics"), dict
        ):
            metrics = metrics["metrics"]
    try:
        report = validate_report(analyze_records(records, metrics=metrics))
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    text = (
        render_json(report) if args.format == "json" else render_markdown(report)
    )
    if args.out and args.out != "-":
        with open(args.out, "w") as f:
            f.write(text)
        print(f"report written to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _add_quality_sample_flags(parser) -> None:
    """The sampling knobs shared by every --quality-capable command."""
    parser.add_argument(
        "--quality-sample", type=float, default=1.0, metavar="RATE",
        help="score a deterministic fraction of sessions, keyed on the "
        "session id (default 1.0 = every session; replay-stable)",
    )
    parser.add_argument(
        "--quality-seed", type=int, default=0, metavar="N",
        help="seed for the sampling hash (same seed => same sampled "
        "set, fleet-wide and across restarts)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gestures",
        description="Rubine (USENIX 1991) reproduction: gesture recognition "
        "and direct manipulation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser(
        "train", help="train an eager recognizer (staged pipeline)"
    )
    train.add_argument(
        "--spec", metavar="PATH",
        help="train from a TrainJobSpec JSON file (overrides the data flags)",
    )
    train.add_argument("--family", default="gdp", help="synthetic gesture family")
    train.add_argument("--dataset", help="train from a saved GestureSet JSON")
    train.add_argument("--examples", type=int, default=15, help="examples per class")
    train.add_argument("--seed", type=int, default=7)
    train.add_argument("--output", default="recognizer.json")
    train.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan training stages out over N processes "
        "(the model is bit-identical for any N)",
    )
    train.add_argument(
        "--cache-dir", metavar="DIR",
        help="content-addressed stage cache; re-runs and sweeps skip "
        "unchanged stages, and --resume restarts killed runs",
    )
    train.add_argument(
        "--resume", action="store_true",
        help="continue a killed run from its checkpoint (needs --cache-dir)",
    )
    train.add_argument(
        "--kill-after", metavar="STAGE",
        help="die after the named stage completes (testing aid; exits 75)",
    )
    train.add_argument(
        "--metrics", action="store_true",
        help="attach a metrics registry and print its snapshot",
    )
    train.add_argument(
        "--registry", "--publish", dest="registry", metavar="DIR",
        help="publish into this model-registry directory with lineage",
    )
    train.add_argument(
        "--name", help="registry model name (defaults to the family name)"
    )
    train.set_defaults(func=_cmd_train)

    models = sub.add_parser("models", help="inspect a model registry")
    models_sub = models.add_subparsers(dest="models_command", required=True)
    models_list = models_sub.add_parser("list", help="list models and versions")
    models_list.add_argument(
        "--registry", required=True, metavar="DIR",
        help="model-registry directory",
    )
    models_list.set_defaults(func=_cmd_models)
    models_show = models_sub.add_parser(
        "show", help="show one version's lineage"
    )
    models_show.add_argument("model", help="model as NAME[@VERSION]")
    models_show.add_argument(
        "--registry", required=True, metavar="DIR",
        help="model-registry directory",
    )
    models_show.set_defaults(func=_cmd_models)

    classify = sub.add_parser("classify", help="classify a dataset")
    classify.add_argument("recognizer", help="saved recognizer JSON")
    classify.add_argument("dataset", help="GestureSet JSON to classify")
    classify.set_defaults(func=_cmd_classify)

    evaluate = sub.add_parser("evaluate", help="run the paper's protocol")
    evaluate.add_argument("--family", default="directions")
    evaluate.add_argument("--train", type=int, default=10)
    evaluate.add_argument("--test", type=int, default=30)
    evaluate.add_argument("--seed", type=int, default=1)
    evaluate.add_argument("--grid", action="store_true", help="print the fig-9 grid")
    evaluate.set_defaults(func=_cmd_evaluate)

    demo = sub.add_parser("demo", help="scripted GDP session")
    demo.add_argument("--seed", type=int, default=42)
    demo.set_defaults(func=_cmd_demo)

    serve = sub.add_parser("serve", help="run the recognition service")
    serve.add_argument("--recognizer", help="saved recognizer JSON")
    serve.add_argument("--registry", help="model-registry directory")
    serve.add_argument("--model", help="registry model as NAME[@VERSION]")
    serve.add_argument(
        "--family", help="train on a synthetic family at startup"
    )
    serve.add_argument("--examples", type=int, default=15)
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7391)
    serve.add_argument(
        "--timeout", type=float, default=0.2,
        help="motionless timeout in (virtual) seconds",
    )
    serve.add_argument("--max-sessions", type=int, default=4096)
    serve.add_argument(
        "--no-metrics", action="store_true",
        help="disable the metrics registry (stats replies carry null)",
    )
    serve.add_argument(
        "--trace", metavar="PATH",
        help="stream NDJSON trace records (spans/events) to this file",
    )
    serve.add_argument(
        "--quality", action="store_true",
        help="attach recognition-quality telemetry (margins, rejection "
        "distances, eagerness, drift)",
    )
    _add_quality_sample_flags(serve)
    serve.add_argument(
        "--profile", action="store_true",
        help="time the serving hot path with perf counters "
        "(reported in stats replies)",
    )
    serve.add_argument(
        "--record", metavar="PATH",
        help="journal the live op traffic to PATH as adapt-harvest "
        "NDJSON records (replayable by `repro adapt --record`)",
    )
    serve.add_argument(
        "--model-cache", type=int, metavar="N",
        help="keep at most N swapped-in models resident per pool (LRU; "
        "evicted models reload from --registry on next use)",
    )
    serve.set_defaults(func=_cmd_serve)

    cluster = sub.add_parser(
        "cluster",
        help="run the sharded service: router + N supervised workers",
    )
    cluster.add_argument("--recognizer", help="saved recognizer JSON")
    cluster.add_argument("--registry", help="model-registry directory")
    cluster.add_argument("--model", help="registry model as NAME[@VERSION]")
    cluster.add_argument(
        "--family", help="train on a synthetic family at startup"
    )
    cluster.add_argument("--examples", type=int, default=15)
    cluster.add_argument("--seed", type=int, default=7)
    cluster.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker processes; sessions are consistent-hashed across "
        "them and replies are byte-identical for any N",
    )
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument("--port", type=int, default=7392)
    cluster.add_argument(
        "--timeout", type=float, default=0.2,
        help="motionless timeout in (virtual) seconds",
    )
    cluster.add_argument("--max-sessions", type=int, default=4096)
    # Deprecated and hidden: drains migrate live sessions immediately,
    # so there is no timeout to configure.  Still parses (scripts that
    # pass it keep working) but only prints a warning.
    cluster.add_argument(
        "--drain-timeout", type=float, default=None, help=argparse.SUPPRESS
    )
    cluster.add_argument(
        "--min-workers", type=int, default=1, metavar="N",
        help="floor for admin scale ops and the autoscaler",
    )
    cluster.add_argument(
        "--max-workers", type=int, default=None, metavar="N",
        help="ceiling for admin scale ops and the autoscaler",
    )
    cluster.add_argument(
        "--autoscale", action="store_true",
        help="scale the fleet from load samples (sessions/shard, queue "
        "depth) between --min-workers and --max-workers, with "
        "hysteresis and a cooldown; joins and drains migrate live "
        "sessions, so clients never notice",
    )
    cluster.add_argument(
        "--model-cache", type=int, metavar="N",
        help="bound each worker's resident swapped-in models to N (LRU; "
        "evicted models reload from --registry on next use)",
    )
    cluster.add_argument(
        "--no-metrics", action="store_true",
        help="disable worker metrics (fleet stats replies carry null)",
    )
    cluster.add_argument(
        "--framing", choices=["lp1", "ndjson"], default="lp1",
        help="router-to-worker wire framing: lp1 (length-prefixed, "
        "negotiated per link with NDJSON fallback) or ndjson (legacy); "
        "the client-facing wire is always NDJSON",
    )
    cluster.add_argument(
        "--quality", action="store_true",
        help="attach recognition-quality telemetry on every worker; "
        "`stats` replies merge the quality.* histograms fleet-wide",
    )
    _add_quality_sample_flags(cluster)
    cluster.set_defaults(func=_cmd_cluster)

    stats = sub.add_parser(
        "stats", help="query a running server's (or router's) metrics snapshot"
    )
    stats.add_argument("--host", default="127.0.0.1")
    stats.add_argument("--port", type=int, default=7391)
    stats.add_argument(
        "--json", action="store_true", help="print the raw stats reply"
    )
    stats.set_defaults(func=_cmd_stats)

    loadgen = sub.add_parser(
        "loadgen", help="synthetic load through the session pool"
    )
    loadgen.add_argument("--family", default="notes")
    loadgen.add_argument("--clients", type=int, default=64)
    loadgen.add_argument("--gestures", type=int, default=4)
    loadgen.add_argument("--examples", type=int, default=12)
    loadgen.add_argument("--seed", type=int, default=3)
    loadgen.add_argument(
        "--mode",
        choices=["batched", "sequential", "both"],
        default="both",
        help="'both' also verifies the decision streams are identical",
    )
    loadgen.add_argument(
        "--cluster", type=int, default=None, metavar="N",
        help="route the workload through an N-worker cluster "
        "(real subprocesses) and verify the replies are byte-identical "
        "to a single pool",
    )
    loadgen.add_argument(
        "--framing", choices=["lp1", "ndjson"], default="lp1",
        help="with --cluster: the router-to-worker wire framing; the "
        "byte-identity check must pass for either",
    )
    loadgen.add_argument(
        "--fault-seed", type=int, default=None, metavar="SEED",
        help="inject seeded faults (drop/duplicate/delay/reorder/kill)",
    )
    loadgen.add_argument(
        "--fault-rate", type=float, default=0.02,
        help="per-op probability for each fault type (default 0.02)",
    )
    loadgen.add_argument(
        "--metrics", action="store_true",
        help="attach a metrics registry and print its snapshot "
        "(single-mode runs only)",
    )
    loadgen.add_argument(
        "--metrics-out", metavar="PATH",
        help="write the metrics snapshot as JSON (for `analyze --metrics`)",
    )
    loadgen.add_argument(
        "--trace", metavar="PATH",
        help="record an NDJSON trace of the run (single-mode runs only)",
    )
    loadgen.add_argument(
        "--quality", action="store_true",
        help="attach recognition-quality telemetry (adds quality records "
        "to the trace and quality.* metrics; with --cluster, every "
        "worker scores its own shard and stats merges them)",
    )
    _add_quality_sample_flags(loadgen)
    loadgen.add_argument(
        "--profile", action="store_true",
        help="time the serving hot path and print the section summary",
    )
    loadgen.add_argument(
        "--record", metavar="PATH",
        help="journal the delivered ops as NDJSON traffic (the `adapt` "
        "harvest input; single-mode, unfaulted runs only)",
    )
    loadgen.add_argument(
        "--modal", action="store_true",
        help="attach the modality composer (repro.modal) and print the "
        "per-modality event summary and detection latencies; with "
        "--mode both, also verify the two modes compose identical "
        "modal event streams",
    )
    loadgen.set_defaults(func=_cmd_loadgen)

    adapt = sub.add_parser(
        "adapt",
        help="per-user personalization: harvest -> retrain -> shadow-eval "
        "-> promote",
    )
    adapt.add_argument(
        "--registry", required=True, metavar="DIR",
        help="model registry holding the base model (candidates publish "
        "back here)",
    )
    adapt.add_argument(
        "--base", required=True, metavar="NAME[@VERSION]",
        help="base model to adapt (version defaults to latest)",
    )
    adapt.add_argument(
        "--user", required=True,
        help="user id to adapt for (the traffic journal's user field)",
    )
    adapt.add_argument(
        "--traffic", required=True, metavar="PATH",
        help="NDJSON traffic journal (from `loadgen --record` or a "
        "serving-side journal)",
    )
    adapt.add_argument(
        "--trace", metavar="PATH",
        help="NDJSON observability trace with quality records "
        "(`--quality --trace` on the serving run)",
    )
    adapt.add_argument(
        "--corrections", metavar="PATH",
        help='NDJSON user corrections: {"rec": "correction", "user", '
        '"stroke", "class"}',
    )
    adapt.add_argument(
        "--cache-dir", metavar="DIR",
        help="stage cache shared with `train` — a warm base train makes "
        "the retrain incremental",
    )
    adapt.add_argument(
        "--state-dir", metavar="DIR",
        help="persist per-user fold state here (re-runs fold only the "
        "new tail)",
    )
    adapt.add_argument("--jobs", type=int, default=1, metavar="N")
    adapt.add_argument(
        "--dwell-threshold", type=float, default=0.15,
        help="harvest decisions the user dwelt on at least this long",
    )
    adapt.add_argument(
        "--margin-threshold", type=float, default=0.5,
        help="harvest decisions with classification margin below this",
    )
    adapt.add_argument(
        "--dry-run", action="store_true",
        help="run the loop and print the verdict without publishing",
    )
    adapt.add_argument(
        "--json", action="store_true",
        help="print the byte-stable shadow-eval report as canonical JSON",
    )
    adapt.set_defaults(func=_cmd_adapt)

    analyze = sub.add_parser(
        "analyze", help="report on an NDJSON trace (+ metrics snapshot)"
    )
    analyze.add_argument("trace", help="NDJSON trace file to analyze")
    analyze.add_argument(
        "--metrics", metavar="PATH",
        help="metrics snapshot JSON (from loadgen --metrics-out or a "
        "stats --json reply)",
    )
    analyze.add_argument(
        "--format", choices=["markdown", "json"], default="markdown",
    )
    analyze.add_argument(
        "--out", metavar="PATH", default="-",
        help="write the report here instead of stdout",
    )
    analyze.set_defaults(func=_cmd_analyze)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
