"""Shared fixtures for the modality-layer tests.

Each modal synth family trains its own eager recognizer once per
session; the compose/differential tests then drive real workloads
through the real serving layer with those models.
"""

from __future__ import annotations

import pytest

from repro.eager import train_eager_recognizer
from repro.synth import GestureGenerator, modal_templates, pinch_templates
from repro.synth.modal import swipe_templates


def _train(templates: dict):
    generator = GestureGenerator(templates, seed=501)
    return train_eager_recognizer(generator.generate_strokes(10)).recognizer


@pytest.fixture(scope="session")
def modal_recognizer():
    return _train(modal_templates())


@pytest.fixture(scope="session")
def swipes_recognizer():
    return _train(swipe_templates())


@pytest.fixture(scope="session")
def pinch_recognizer():
    return _train(pinch_templates())
