"""The Mahalanobis distance metric.

"Theoretically, the computed classifier works by creating a distance
metric (the Mahalanobis distance), and the chosen class of a feature
vector is simply the class whose mean is closest to the given feature
vector under this metric.  As will be seen, the distance metric is also
used in the construction of eager recognizers." (section 4.2)

The metric is shared: the same pooled inverse covariance that defines the
linear classifier defines these distances, which is why the eager trainer
can reuse it to decide when a subgesture is "sufficiently close" to an
incomplete class (section 4.5).
"""

from __future__ import annotations

import numpy as np

__all__ = ["MahalanobisMetric"]


class MahalanobisMetric:
    """Squared-distance computations under a fixed inverse covariance."""

    def __init__(self, inverse_covariance: np.ndarray):
        inv = np.asarray(inverse_covariance, dtype=float)
        if inv.ndim != 2 or inv.shape[0] != inv.shape[1]:
            raise ValueError("inverse covariance must be square")
        # Symmetrize to wash out round-off from the matrix inversion.
        self.inverse_covariance = (inv + inv.T) / 2.0

    @property
    def dim(self) -> int:
        return self.inverse_covariance.shape[0]

    def squared_distance(self, x: np.ndarray, y: np.ndarray) -> float:
        """``(x - y)' S^-1 (x - y)``, clamped at zero against round-off."""
        diff = np.asarray(x, dtype=float) - np.asarray(y, dtype=float)
        if diff.shape != (self.dim,):
            raise ValueError(f"expected vectors of dim {self.dim}")
        value = float(diff @ self.inverse_covariance @ diff)
        return max(value, 0.0)

    def distance(self, x: np.ndarray, y: np.ndarray) -> float:
        """The (non-squared) Mahalanobis distance."""
        return float(np.sqrt(self.squared_distance(x, y)))

    def nearest(self, x: np.ndarray, means: np.ndarray) -> tuple[int, float]:
        """Index of, and squared distance to, the closest row of ``means``."""
        means = np.asarray(means, dtype=float)
        if means.ndim != 2 or means.shape[1] != self.dim:
            raise ValueError("means must be a (k, dim) matrix")
        if means.shape[0] == 0:
            raise ValueError("no means to compare against")
        dists = [self.squared_distance(x, m) for m in means]
        best = int(np.argmin(dists))
        return best, dists[best]

    def to_dict(self) -> dict:
        return {"inverse_covariance": self.inverse_covariance.tolist()}

    @classmethod
    def from_dict(cls, data: dict) -> "MahalanobisMetric":
        return cls(np.array(data["inverse_covariance"], dtype=float))
