"""A consistent hash ring mapping session keys onto worker shards.

Routing must be a pure function of the key and the shard set — the same
key must land on the same shard in the router, in a test's reference
run, and across a router restart — so the ring hashes with ``md5``
(stable across processes and platforms) rather than Python's
per-process-salted ``hash``.

Each shard owns a weighted number of virtual nodes on a 64-bit ring; a
key routes to the first shard point at or after its own hash, wrapping.
Consistent hashing buys three things the cluster leans on:

* a crashed-and-restarted worker keeps its shard name, so its keys map
  back to it and the router's journal replay restores its sessions;
* :meth:`lookup` can *skip* draining shards — keys owned by a draining
  shard spill to their ring successor, while every other key keeps its
  old mapping, which is exactly the "stop routing new sessions, leave
  the rest alone" semantics of a graceful drain;
* a topology change (join, retire, reweight) moves a **bounded** set of
  keys: :meth:`plan_rebalance` enumerates exactly the keys whose owner
  changes between two rings, and proves nothing else moves — the
  contract live migration is built on.

Weights size a shard's vnode count (``max(1, round(replicas * w))``),
so a half-weight shard attracts roughly half the keys — the knob for
heterogeneous workers or slow-start of a fresh join.
"""

from __future__ import annotations

from bisect import bisect_right
from hashlib import md5

__all__ = ["HashRing"]


def _hash64(data: str) -> int:
    return int.from_bytes(md5(data.encode()).digest()[:8], "big")


_CACHE_CAP = 65536


class HashRing:
    """Weighted virtual nodes per shard on a 64-bit md5 ring.

    Lookups are memoized: the md5 + bisect walk runs once per distinct
    key, then a dict hit answers repeats.  The cache is keyed to the
    ``skip`` set in force when it was filled — any topology change
    (a shard starts or stops draining) empties it wholesale, so a stale
    route can never be served.  Memoization is an observably pure
    speedup: routing stays a function of ``(key, skip)`` alone.
    """

    def __init__(self, shards, replicas: int = 64, weights=None):
        self.shards = tuple(shards)
        if not self.shards:
            raise ValueError("a ring needs at least one shard")
        if len(set(self.shards)) != len(self.shards):
            raise ValueError("duplicate shard names")
        self.replicas = replicas
        weights = dict(weights or {})
        unknown = set(weights) - set(self.shards)
        if unknown:
            raise ValueError(f"weights for unknown shards: {sorted(unknown)}")
        self.weights = {s: float(weights.get(s, 1.0)) for s in self.shards}
        self.vnodes: dict[str, int] = {}
        points = []
        for shard in self.shards:
            w = self.weights[shard]
            if not w > 0:
                raise ValueError(f"shard {shard!r} needs a positive weight")
            # A shard's vnode names are a prefix of the unweighted
            # ring's ("{shard}#0" .. "#k-1"): re-weighting a shard only
            # adds or removes its own points, so only keys touching
            # those points can move.
            count = max(1, round(replicas * w))
            self.vnodes[shard] = count
            for i in range(count):
                points.append((_hash64(f"{shard}#{i}"), shard))
        points.sort()
        self._points = points
        self._hashes = [h for h, _ in points]
        self._cache: dict[str, str] = {}
        self._cache_skip: frozenset = frozenset()

    def lookup(self, key: str, skip=frozenset()) -> str:
        """The shard owning ``key``, skipping any shard in ``skip``.

        With every shard skipped there is nowhere to route;
        ``ValueError``.
        """
        cache = self._cache
        if skip != self._cache_skip:
            # Topology changed since the cache was filled: every cached
            # route is suspect (a key owned by a newly skipped shard
            # must spill to its successor; a key that had spilled may
            # return home).  Rebuild from scratch under the new skip.
            self._cache_skip = frozenset(skip)
            cache = self._cache = {}
        else:
            shard = cache.get(key)
            if shard is not None:
                return shard
        points = self._points
        n = len(points)
        start = bisect_right(self._hashes, _hash64(key))
        for i in range(n):
            shard = points[(start + i) % n][1]
            if shard not in skip:
                if len(cache) >= _CACHE_CAP:
                    cache.clear()
                cache[key] = shard
                return shard
        raise ValueError("every shard is draining or down; nowhere to route")

    # -- topology derivation ------------------------------------------

    def with_shard(self, shard: str, weight: float = 1.0) -> "HashRing":
        """A new ring with ``shard`` joined, existing weights kept."""
        weights = dict(self.weights)
        weights[shard] = weight
        return HashRing(
            self.shards + (shard,), replicas=self.replicas, weights=weights
        )

    def without_shard(self, shard: str) -> "HashRing":
        """A new ring with ``shard`` removed, existing weights kept."""
        if shard not in self.shards:
            raise ValueError(f"unknown shard {shard!r}")
        survivors = tuple(s for s in self.shards if s != shard)
        weights = {s: w for s, w in self.weights.items() if s != shard}
        return HashRing(survivors, replicas=self.replicas, weights=weights)

    def reweighted(self, shard: str, weight: float) -> "HashRing":
        """A new ring with ``shard``'s weight changed, all else kept."""
        if shard not in self.shards:
            raise ValueError(f"unknown shard {shard!r}")
        weights = dict(self.weights)
        weights[shard] = weight
        return HashRing(self.shards, replicas=self.replicas, weights=weights)

    def plan_rebalance(
        self, new_ring: "HashRing", keys, skip=frozenset(), new_skip=None
    ) -> dict[str, tuple[str, str]]:
        """Exactly the key moves stepping to ``new_ring`` implies.

        Returns ``{key: (old_shard, new_shard)}`` for every key in
        ``keys`` whose owner differs between this ring (under ``skip``)
        and ``new_ring`` (under ``new_skip``, defaulting to ``skip``
        minus shards the new ring no longer has).  Keys absent from the
        plan provably do not move — the bounded-movement contract the
        migration protocol enforces.
        """
        if new_skip is None:
            new_skip = frozenset(skip) & set(new_ring.shards)
        plan: dict[str, tuple[str, str]] = {}
        for key in keys:
            old = self.lookup(key, skip=skip)
            new = new_ring.lookup(key, skip=new_skip)
            if old != new:
                plan[key] = (old, new)
        return plan
