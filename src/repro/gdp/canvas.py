"""The GDP drawing — the canvas model.

The canvas owns the z-ordered list of top-level shapes and implements
the queries gesture semantics need: topmost shape under a point (delete,
move, copy, rotate-scale, edit, dot), shapes enclosed by a circling
stroke (group), and structural edits (create, delete, group, ungroup).
"""

from __future__ import annotations

from typing import Iterator

from ..geometry import Stroke, polygon_contains
from ..mvc import Model
from .shapes import (
    EllipseShape,
    GroupShape,
    LineShape,
    RectShape,
    Shape,
    TextShape,
)

__all__ = ["Canvas"]


class Canvas(Model):
    """The drawing: an ordered collection of shapes (later = on top)."""

    def __init__(self, width: float = 800.0, height: float = 600.0):
        super().__init__()
        self.width = width
        self.height = height
        self._shapes: list[Shape] = []
        self.selection: set[Shape] = set()

    # -- contents ------------------------------------------------------------

    @property
    def shapes(self) -> tuple[Shape, ...]:
        return tuple(self._shapes)

    def __len__(self) -> int:
        return len(self._shapes)

    def __iter__(self) -> Iterator[Shape]:
        return iter(self._shapes)

    def __contains__(self, shape: Shape) -> bool:
        return shape in self._shapes

    # -- creation (the paper's [view createRect] etc.) --------------------------

    def add(self, shape: Shape) -> Shape:
        self._shapes.append(shape)
        self.changed()
        return shape

    def create_rect(self, x1: float, y1: float, x2: float, y2: float) -> RectShape:
        return self.add(RectShape(x1, y1, x2, y2))

    def create_line(self, x1: float, y1: float, x2: float, y2: float) -> LineShape:
        return self.add(LineShape(x1, y1, x2, y2))

    def create_ellipse(
        self, cx: float, cy: float, rx: float = 1.0, ry: float = 1.0
    ) -> EllipseShape:
        return self.add(EllipseShape(cx, cy, rx, ry))

    def create_text(self, x: float, y: float, text: str = "text") -> TextShape:
        return self.add(TextShape(x, y, text))

    # -- removal -------------------------------------------------------------

    def delete(self, shape: Shape) -> bool:
        """Remove a top-level shape; returns False if it was not present."""
        if shape not in self._shapes:
            return False
        self._shapes.remove(shape)
        self.selection.discard(shape)
        self.changed()
        return True

    def clear(self) -> None:
        self._shapes.clear()
        self.selection.clear()
        self.changed()

    # -- grouping -------------------------------------------------------------

    def group(self, members: list[Shape]) -> GroupShape:
        """Replace top-level ``members`` with one composite.

        Members not on the canvas are ignored; an empty effective member
        list still produces an (empty) group, which the group gesture's
        manipulation phase may then populate by touching shapes.
        """
        present = [s for s in self._shapes if s in members]
        for shape in present:
            self._shapes.remove(shape)
            self.selection.discard(shape)
        composite = GroupShape(present)
        self._shapes.append(composite)
        self.changed()
        return composite

    def add_to_group(self, composite: GroupShape, shape: Shape) -> bool:
        """Move a top-level shape into an existing group (manip phase)."""
        if shape not in self._shapes or shape is composite:
            return False
        self._shapes.remove(shape)
        self.selection.discard(shape)
        composite.add_member(shape)
        self.changed()
        return True

    def ungroup(self, composite: GroupShape) -> list[Shape]:
        """Dissolve a group back into its members."""
        if composite not in self._shapes:
            return []
        index = self._shapes.index(composite)
        self._shapes[index : index + 1] = composite.members
        self.selection.discard(composite)
        self.changed()
        return list(composite.members)

    # -- queries gesture semantics use --------------------------------------------

    def top_shape_at(
        self, x: float, y: float, tolerance: float = 6.0
    ) -> Shape | None:
        """Topmost shape hit by ``(x, y)``, or None."""
        for shape in reversed(self._shapes):
            if shape.hit(x, y, tolerance):
                return shape
        return None

    def shapes_enclosed_by(self, stroke: Stroke) -> list[Shape]:
        """Shapes whose reference point lies inside the circled region."""
        return [
            shape
            for shape in self._shapes
            if polygon_contains(stroke, shape.reference_point().x,
                                shape.reference_point().y)
        ]

    # -- selection (the dot gesture) ------------------------------------------------

    def select(self, shape: Shape, extend: bool = False) -> None:
        if not extend:
            self.selection.clear()
        if shape in self._shapes:
            self.selection.add(shape)
        self.changed()

    def clear_selection(self) -> None:
        if self.selection:
            self.selection.clear()
            self.changed()
