"""Multiprocess fan-out with a deterministic merge.

The pipeline's parallel stages all have the same shape: a list of
independent items, a pure worker, and a merge that must not depend on
the jobs count.  :func:`fan_out` delivers that by construction —
contiguous chunks, ``ProcessPoolExecutor.map`` (which returns results
in submission order regardless of completion order), and a flatten that
preserves item order.  ``jobs=1`` runs the same worker inline in this
process, so the parallel path can never drift from the serial one.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

__all__ = ["effective_workers", "fan_out", "split_chunks"]


def split_chunks(items: Sequence, jobs: int) -> list[list]:
    """Contiguous, near-even, non-empty chunks of ``items``.

    At most ``jobs`` chunks; order within and across chunks follows the
    input, so ``[x for chunk in split_chunks(v, j) for x in chunk] == v``
    for every ``j``.
    """
    items = list(items)
    n = len(items)
    parts = max(1, min(jobs, n))
    base, extra = divmod(n, parts)
    chunks = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def _pool_context():
    # fork keeps worker startup cheap (no re-import, no re-pickle of the
    # interpreter state); fall back to the platform default elsewhere.
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def effective_workers(jobs: int, chunks: list[list], min_chunk: int = 0) -> int:
    """How many processes a fan-out should actually use.

    Process fan-out pays a fixed tax per worker (fork, pickle, IPC), so
    ``--jobs N`` must degrade to fewer workers — down to serial — when
    the tax would dominate.  Three caps compose:

    * ``len(chunks)``: a worker with no chunk is pure overhead;
    * ``total_items // min_chunk``: each worker must have at least
      ``min_chunk`` items to amortize its startup (``min_chunk=0``
      disables the cap — callers whose per-item cost is known large);
    * ``os.cpu_count()``: more processes than cores never run
      concurrently, they just context-switch — the reason a 1-CPU host
      must fall back to serial no matter what ``--jobs`` says.

    Because the merge order never depends on the worker count, shrinking
    it changes wall time only, never output bits.
    """
    workers = min(jobs, len(chunks))
    if min_chunk > 0:
        total = sum(len(chunk) for chunk in chunks)
        workers = min(workers, max(1, total // min_chunk))
    return min(workers, os.cpu_count() or 1)


def fan_out(
    worker: Callable[[list], list],
    chunks: list[list],
    jobs: int,
    initializer: Callable | None = None,
    initargs: tuple = (),
    min_chunk: int = 0,
) -> list[list]:
    """Run ``worker`` over every chunk; results in chunk order.

    Falls back to running everything inline — including ``initializer``,
    so workers may rely on it unconditionally — whenever
    :func:`effective_workers` says one process is the right answer:
    ``jobs <= 1``, a single chunk, too few items per ``min_chunk``, or a
    host without the cores.  ``worker``, ``initializer``, and the chunk
    payloads must be picklable for the multiprocess path.
    """
    workers = effective_workers(jobs, chunks, min_chunk)
    if workers <= 1 or len(chunks) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [worker(chunk) for chunk in chunks]
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_pool_context(),
        initializer=initializer,
        initargs=initargs,
    ) as pool:
        return list(pool.map(worker, chunks))
