"""Canonical JSON and content hashing.

One serialization, one hash, shared by everything that names artifacts
by their content: the model registry's versions, the training
pipeline's stage cache keys, and the packaged-model hashes the
determinism tests and CI compare.  Python's ``repr``-based float
serialization round-trips IEEE doubles exactly, so a payload that
passes through ``canonical_json`` → ``json.loads`` → ``canonical_json``
produces the same bytes — which is what lets cached training stages be
bit-identical to freshly computed ones.
"""

from __future__ import annotations

import hashlib
import json

__all__ = ["canonical_json", "content_hash", "short_hash", "model_version"]


def canonical_json(payload) -> str:
    """The one canonical rendering: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_hash(payload) -> str:
    """SHA-256 of the canonical JSON, as 64 hex digits."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def short_hash(payload, digits: int = 16) -> str:
    """A truncated :func:`content_hash` for cache keys and filenames."""
    return content_hash(payload)[:digits]


def model_version(model: dict) -> str:
    """A model's registry version: its content hash, 12 hex digits.

    This is the historical :class:`~repro.serve.ModelRegistry` scheme;
    kept as its own function so the registry's on-disk layout never
    changes out from under existing registries.
    """
    return content_hash(model)[:12]
