"""``lp1``: optional length-prefixed binary framing for the wire protocol.

NDJSON (one JSON object per ``\\n``-terminated line) is the protocol's
native, debuggable wire format and remains the default everywhere.  On
high-throughput hops — the cluster router's connections to its workers
— newline scanning and per-line writes are pure overhead, and a payload
can never contain a newline.  ``lp1`` removes both limits:

Frame layout (everything after negotiation, both directions)::

    +--------+-----------------+------------------+
    | 0xA7   | u32 big-endian  |  payload bytes   |
    | magic  | payload length  |  (UTF-8 JSON)    |
    +--------+-----------------+------------------+

The payload is exactly the JSON text that NDJSON would carry on one
line, *without* the trailing newline — switching framings never changes
a single payload byte, which is what keeps the cluster's byte-identity
invariant framing-independent.  Payloads may contain newlines and may
exceed the NDJSON line cap (frames are bounded by ``max_frame``,
default 1 MiB).

Negotiation (one round trip, first line only)::

    client: {"op": "hello", "framing": "lp1"}\\n        # always NDJSON
    server: <lp1 frame containing {"kind": "hello", "framing": "lp1"}>

* A ``hello`` is only honoured as the **first** line of a connection;
  after any other line (valid or not) a hello gets a ``late hello``
  error reply and the framing stays NDJSON — the connection survives.
* ``{"framing": "ndjson"}`` is acked (as NDJSON) and changes nothing —
  a cheap capability probe.
* An unknown framing, or ``lp1`` against a server that disabled it
  (``allow_lp1=False`` / ``--no-lp1``), gets an error reply and the
  connection continues in NDJSON.  The router treats a refusal from a
  worker as "legacy worker" and falls back per link, so mixed fleets
  interoperate.

Decode-side error handling mirrors :class:`~repro.serve.lines.LineReader`
one-for-one — a damaged frame costs one error event, never the
connection:

* ``overflow``: a frame announced a length over ``max_frame``; its
  payload is skipped (the length is known) and the stream stays in
  sync;
* ``garbage``: bytes where a magic byte should be; everything up to
  the next ``0xA7`` candidate is discarded, one event per run;
* ``truncated``: the peer closed mid-frame; reported once, then
  ``eof``.
"""

from __future__ import annotations

import json

__all__ = [
    "DEFAULT_MAX_FRAME",
    "FRAME_MAGIC",
    "FrameReader",
    "encode_frame",
    "encode_frames",
    "encode_hello",
    "encode_hello_ack",
    "negotiate",
]

FRAME_MAGIC = 0xA7
_MAGIC_BYTE = bytes([FRAME_MAGIC])
_HEADER = 5  # magic + u32 length

# lp1 exists to carry payloads NDJSON cannot; its cap is deliberately
# larger than DEFAULT_MAX_LINE (64 KiB).
DEFAULT_MAX_FRAME = 1 << 20

_CHUNK = 65536

FRAMINGS = ("ndjson", "lp1")


def encode_frame(payload: bytes) -> bytes:
    """One lp1 frame: magic, u32 big-endian length, payload."""
    return _MAGIC_BYTE + len(payload).to_bytes(4, "big") + payload


def encode_frames(payloads) -> bytes:
    """Many frames as one buffer — the coalesced-write fast path.

    Accumulates into a single bytearray: per-frame ``bytes`` concats
    plus a final join would allocate three temporaries per frame."""
    buf = bytearray()
    for payload in payloads:
        buf += _MAGIC_BYTE
        buf += len(payload).to_bytes(4, "big")
        buf += payload
    return bytes(buf)


def encode_hello(framing: str) -> str:
    """The client-side negotiation request (sent as an NDJSON line)."""
    return json.dumps({"op": "hello", "framing": framing})


def encode_hello_ack(framing: str) -> str:
    """The server-side negotiation acknowledgement payload."""
    return json.dumps({"kind": "hello", "framing": framing})


def negotiate(payload: dict, *, first: bool, allow_lp1: bool):
    """Decide one ``hello``'s outcome; returns ``(reply_line, new_mode)``.

    ``new_mode`` is ``"lp1"`` when the connection must switch framing
    (the reply is then the first lp1 frame), else ``None`` — the reply
    goes out in the current framing and nothing changes.  Shared by
    :class:`~repro.serve.GestureServer` and the cluster router's client
    side so both ends refuse identically.
    """
    from .protocol import encode_error

    framing = payload.get("framing")
    if not first:
        return (
            encode_error("late hello: framing is negotiated on the first line"),
            None,
        )
    if framing == "ndjson":
        return encode_hello_ack("ndjson"), None
    if framing == "lp1":
        if not allow_lp1:
            return encode_error("framing lp1 unsupported"), None
        return encode_hello_ack("lp1"), "lp1"
    return encode_error(f"unknown framing: {framing!r}"), None


class FrameReader:
    """Split a ``StreamReader`` into lp1 frames of at most ``max_frame``.

    The interface matches :class:`~repro.serve.lines.LineReader`:
    :meth:`next` returns ``(kind, payload)`` with kind one of ``"line"``
    (a complete frame's payload), ``"overflow"``, ``"garbage"``,
    ``"truncated"``, or ``"eof"``; :meth:`next_batch` returns every
    event decodable from what has already arrived, awaiting the stream
    only when the buffer holds no complete frame.  ``initial`` seeds the
    buffer with bytes a line reader had already consumed before the
    framing switch (a client may pipeline its first frames behind the
    hello line).
    """

    def __init__(self, reader, max_frame: int = DEFAULT_MAX_FRAME, initial: bytes = b""):
        self._reader = reader
        self.max_frame = max_frame
        self._buf = bytearray(initial)
        self._pos = 0  # consumed prefix of _buf (compacted when starved)
        self._skip = 0  # payload bytes of an oversized frame still to drop
        self._in_garbage = False  # already reported the current garbage run
        self._eof = False

    def _starved(self, pos: int):
        """Drop the consumed prefix once per starved scan, not per frame
        (a per-frame ``del buf[:n]`` memmoves the whole tail)."""
        if pos:
            del self._buf[:pos]
        self._pos = 0
        return None

    def _scan(self):
        """One event from the buffer alone, or None if more bytes needed."""
        buf = self._buf
        pos = self._pos
        while True:
            if self._skip:
                avail = len(buf) - pos
                drop = self._skip if self._skip < avail else avail
                pos += drop
                self._skip -= drop
                if self._skip:
                    return self._starved(pos)
            if pos >= len(buf):
                return self._starved(pos)
            if buf[pos] != FRAME_MAGIC:
                nxt = buf.find(_MAGIC_BYTE, pos + 1)
                pos = len(buf) if nxt < 0 else nxt
                if not self._in_garbage:
                    self._in_garbage = True
                    self._pos = pos
                    return "garbage", b""
                continue  # same garbage run, already reported
            self._in_garbage = False
            if len(buf) - pos < _HEADER:
                return self._starved(pos)
            length = int.from_bytes(buf[pos + 1 : pos + _HEADER], "big")
            if length > self.max_frame:
                pos += _HEADER
                self._skip = length
                # Consume whatever payload already arrived right away.
                avail = len(buf) - pos
                drop = self._skip if self._skip < avail else avail
                pos += drop
                self._skip -= drop
                self._pos = pos
                return "overflow", b""
            end = pos + _HEADER + length
            if len(buf) < end:
                return self._starved(pos)
            payload = bytes(buf[pos + _HEADER : end])
            self._pos = end
            return "line", payload

    def _at_eof(self):
        if self._skip or self._buf:
            # Mid-frame (header or payload) when the peer vanished.
            # _scan just returned starved, so _pos is 0 and the buffer
            # holds only unconsumed bytes.
            self._skip = 0
            self._buf.clear()
            return "truncated", b""
        return "eof", b""

    async def next(self):
        while True:
            event = self._scan()
            if event is not None:
                return event
            if self._eof:
                return self._at_eof()
            chunk = await self._reader.read(_CHUNK)
            if not chunk:
                self._eof = True
            else:
                self._buf.extend(chunk)

    async def next_batch(self):
        """At least one event, plus everything else already buffered."""
        events = [await self.next()]
        if events[0][0] == "eof":
            return events
        while True:
            event = self._scan()
            if event is None:
                return events
            events.append(event)
