"""GDP's view layer.

One :class:`CanvasView` (the window GDP runs in — "view refers to the
object at which the gesture is directed, in this case the window in
which GDP runs") holds a :class:`ShapeView` per top-level shape, kept in
sync by observing the canvas model.  The edit gesture materializes
:class:`ControlPointView` children, each carrying a drag handler, which
is how GDP mixes gesture and direct manipulation in one interface: "the
control points do not themselves respond to gesture, but can be dragged
around directly".
"""

from __future__ import annotations

from ..geometry import BoundingBox
from ..interaction import DragHandler
from ..mvc import Model, View
from .canvas import Canvas
from .shapes import ControlPoint, Shape

__all__ = ["CanvasView", "ShapeView", "ControlPointView"]


class ControlPointView(View):
    """A small square handle over a shape's control point."""

    SIZE = 8.0

    def __init__(self, control_point: ControlPoint):
        super().__init__(model=control_point)
        self.control_point = control_point

    def bounds(self) -> BoundingBox:
        x, y = self.control_point.position
        half = self.SIZE / 2.0
        return BoundingBox(x - half, y - half, x + half, y + half)


# Control points respond to direct manipulation via a class handler —
# the paper's efficiency point: one handler object serves every control
# point in the application.
ControlPointView.add_class_handler(
    DragHandler(target_of=lambda view: view.model)
)


class ShapeView(View):
    """Displays one shape.

    Shape views carry no handlers: input over a shape falls through to
    the canvas view's gesture handler, which is what makes gestures that
    *start on* objects (delete, move, rotate-scale...) work.
    """

    def __init__(self, shape: Shape):
        super().__init__(model=shape)
        self.shape = shape
        self._editing = False

    @property
    def editing(self) -> bool:
        return self._editing

    def bounds(self) -> BoundingBox:
        return self.shape.bounds()

    def contains(self, x: float, y: float) -> bool:
        return self.shape.hit(x, y)

    def show_control_points(self) -> None:
        """The edit gesture: bring up draggable handles."""
        if self._editing:
            return
        self._editing = True
        for control_point in self.shape.control_points():
            self.add_child(ControlPointView(control_point))

    def hide_control_points(self) -> None:
        self._editing = False
        for child in list(self.children):
            if isinstance(child, ControlPointView):
                self.remove_child(child)


class CanvasView(View):
    """The GDP window: catches all input not claimed by a child view."""

    def __init__(self, canvas: Canvas):
        super().__init__(model=canvas)
        self.canvas = canvas
        self._shape_views: dict[int, ShapeView] = {}
        self.model_changed(canvas)

    def contains(self, x: float, y: float) -> bool:
        """The window covers its whole extent (gestures can start anywhere)."""
        return 0.0 <= x <= self.canvas.width and 0.0 <= y <= self.canvas.height

    def view_for(self, shape: Shape) -> ShapeView | None:
        return self._shape_views.get(shape.id)

    def model_changed(self, model: Model) -> None:
        """Reconcile shape views against the canvas contents."""
        current_ids = {shape.id for shape in self.canvas}
        for shape_id, view in list(self._shape_views.items()):
            if shape_id not in current_ids:
                self.remove_child(view)
                del self._shape_views[shape_id]
        for shape in self.canvas:
            if shape.id not in self._shape_views:
                view = ShapeView(shape)
                self._shape_views[shape.id] = view
                self.add_child(view)
