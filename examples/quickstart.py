"""Quickstart: train an eager recognizer and watch it commit mid-stroke.

Trains on the paper's figure-9 gesture set (eight two-segment direction
classes) and shows, for a few test gestures, how many mouse points the
eager recognizer needed before committing — versus the ground-truth
corner position where the gesture first becomes unambiguous.

Run:  python examples/quickstart.py
"""

from repro import (
    GestureGenerator,
    eight_direction_templates,
    train_eager_recognizer,
)


def main() -> None:
    # 1. "Record" training data: ten examples of each of the eight
    #    classes (ur = up-then-right, dl = down-then-left, ...).
    generator = GestureGenerator(eight_direction_templates(), seed=1)
    training_strokes = generator.generate_strokes(10)

    # 2. Train.  This builds the full classifier AND the
    #    ambiguous/unambiguous classifier that powers eager recognition.
    report = train_eager_recognizer(training_strokes)
    recognizer = report.recognizer
    print(f"trained on {8 * 10} gestures; classes: {recognizer.class_names}")
    print(
        f"eager training moved {report.moved_count} accidentally complete "
        f"subgestures and made {report.tweak_adjustments} safety tweaks\n"
    )

    # 3. Recognize unseen gestures, point by point.
    test_generator = GestureGenerator(eight_direction_templates(), seed=99)
    print(f"{'true':>6} {'recognized':>11} {'committed at':>13} {'corner at':>10}")
    for class_name in recognizer.class_names:
        example = test_generator.generate(class_name)
        result = recognizer.recognize(example.stroke)
        marker = "" if result.class_name == class_name else "   <-- wrong"
        print(
            f"{class_name:>6} {result.class_name:>11} "
            f"{result.points_seen:>6}/{result.total_points:<6} "
            f"{example.oracle_points:>7}{marker}"
        )

    # 4. The same recognizer, driven one point at a time (the way an
    #    interactive gesture handler uses it).
    example = test_generator.generate("ur")
    session = recognizer.session()
    for i, point in enumerate(example.stroke, start=1):
        decided = session.add_point(point)
        if decided is not None:
            print(
                f"\nincremental session: committed to {decided!r} after "
                f"{i} of {len(example.stroke)} points "
                f"(corner was at point {example.oracle_points})"
            )
            break


if __name__ == "__main__":
    main()
