"""Models — application objects.

"In GRANDMA, models are application objects, views are objects responsible
for displaying models, and event handlers deal with input directed at
views." (§3)

Models know nothing about input or display; they expose state and notify
observers (typically views) when that state changes, in the
Smalltalk-80 MVC tradition GRANDMA generalizes.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["Model"]


class Model:
    """Base class for application objects with change notification."""

    def __init__(self) -> None:
        self._observers: list[Callable[["Model"], None]] = []

    def add_observer(self, observer: Callable[["Model"], None]) -> None:
        """Register a callable invoked (with the model) on every change."""
        self._observers.append(observer)

    def remove_observer(self, observer: Callable[["Model"], None]) -> None:
        """Unregister an observer; unknown observers are ignored."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    def changed(self) -> None:
        """Notify observers that this model's state changed.

        Subclasses call this at the end of every mutating method.
        """
        for observer in list(self._observers):
            observer(self)
