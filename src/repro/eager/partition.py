"""Labelling and partitioning of training subgestures (paper §4.4–4.5).

Three steps happen here:

1. **Complete/incomplete labelling.**  A subgesture ``g[i]`` of training
   gesture ``g`` is *complete* when the full classifier classifies it and
   every larger prefix of ``g`` the same as ``g`` itself; otherwise it is
   *incomplete* (section 4.4, figure 5).

2. **The 2C-class split.**  A plain ambiguous/unambiguous two-class split
   is "wildly non-Gaussian", so complete subgestures go to class ``C-c``
   (``c`` = the full gesture's class) and incomplete ones to ``I-c``
   (``c`` = what the full classifier *called the prefix*, which is
   usually not the true class).

3. **Moving accidentally complete subgestures** (section 4.5, figure 6).
   Subgestures that happen to classify correctly while still being
   ambiguous — e.g. the horizontal run of a ``D`` gesture that the
   classifier already calls ``D`` — are detected by their Mahalanobis
   proximity to incomplete-class means and reassigned, largest first;
   once one prefix of a gesture moves, all its shorter complete prefixes
   move too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..geometry import Stroke
from ..recognizer import GestureClassifier, MahalanobisMetric
from .subgestures import MIN_PREFIX_POINTS, prefix_feature_vectors

__all__ = [
    "LabelledSubgesture",
    "ExampleLabelling",
    "SubgesturePartition",
    "label_example",
    "label_examples",
    "partition_subgestures",
    "move_accidentally_complete",
    "compute_move_threshold",
    "complete_set_name",
    "incomplete_set_name",
    "is_complete_set",
    "class_of_set",
]


def complete_set_name(class_name: str) -> str:
    """Name of the complete ("C-c") AUC class for a gesture class."""
    return f"C:{class_name}"


def incomplete_set_name(class_name: str) -> str:
    """Name of the incomplete ("I-c") AUC class for a gesture class."""
    return f"I:{class_name}"


def is_complete_set(set_name: str) -> bool:
    return set_name.startswith("C:")


def class_of_set(set_name: str) -> str:
    """The gesture class a C-c / I-c set name refers to."""
    prefix, _, class_name = set_name.partition(":")
    if prefix not in ("C", "I") or not class_name:
        raise ValueError(f"not an AUC set name: {set_name!r}")
    return class_name


@dataclass
class LabelledSubgesture:
    """One training subgesture with its full-classifier verdict."""

    example_id: int  # index of the parent training example
    true_class: str  # class of the full gesture
    length: int  # i — the number of points in this prefix
    features: np.ndarray
    predicted: str  # C(g[i])
    complete: bool  # per the §4.4 definition

    @property
    def initial_set(self) -> str:
        """The 2C-class set this subgesture starts in."""
        if self.complete:
            return complete_set_name(self.true_class)
        return incomplete_set_name(self.predicted)


@dataclass
class ExampleLabelling:
    """All labelled subgestures of one training example, smallest first."""

    example_id: int
    true_class: str
    stroke: Stroke
    subgestures: list[LabelledSubgesture] = field(default_factory=list)

    def label_string(self) -> str:
        """Figures 5–7 style rendering: one character per subgesture.

        Uppercase = complete, lowercase = incomplete; the character is the
        first letter of the full classifier's verdict for that prefix.
        """
        return "".join(
            sub.predicted[:1].upper() if sub.complete else sub.predicted[:1].lower()
            for sub in self.subgestures
        )


def label_example(
    full_classifier: GestureClassifier,
    stroke: Stroke,
    true_class: str,
    example_id: int,
    min_points: int = MIN_PREFIX_POINTS,
) -> ExampleLabelling:
    """Label every subgesture of one training example.

    Completeness is computed by scanning the example's prefixes from the
    largest down: a prefix is complete iff it and all larger prefixes
    were classified as the true class.  This is the per-example unit of
    work the :mod:`repro.train` pipeline fans out across processes —
    :func:`label_examples` and the pipeline's workers call this one
    function, so staged and in-memory training label identically.
    """
    prefixes = prefix_feature_vectors(stroke, min_points)
    predictions = [
        full_classifier.classify_features(v) for v in prefixes.vectors
    ]
    complete_flags = [False] * len(predictions)
    all_correct_above = True
    for idx in range(len(predictions) - 1, -1, -1):
        all_correct_above = (
            all_correct_above and predictions[idx] == true_class
        )
        complete_flags[idx] = all_correct_above
    subs = [
        LabelledSubgesture(
            example_id=example_id,
            true_class=true_class,
            length=length,
            features=vector,
            predicted=predicted,
            complete=complete,
        )
        for length, vector, predicted, complete in zip(
            prefixes.lengths, prefixes.vectors, predictions, complete_flags
        )
    ]
    return ExampleLabelling(
        example_id=example_id,
        true_class=true_class,
        stroke=stroke,
        subgestures=subs,
    )


def label_examples(
    full_classifier: GestureClassifier,
    examples_by_class: dict[str, Sequence[Stroke]],
    min_points: int = MIN_PREFIX_POINTS,
) -> list[ExampleLabelling]:
    """Run the full classifier over every subgesture of every example.

    Examples are numbered in class-major order — the same order the
    training pipeline's dataset manifest freezes — so ``example_id``
    means the same thing everywhere.
    """
    labelled: list[ExampleLabelling] = []
    example_id = 0
    for true_class, strokes in examples_by_class.items():
        for stroke in strokes:
            labelled.append(
                label_example(
                    full_classifier, stroke, true_class, example_id, min_points
                )
            )
            example_id += 1
    return labelled


@dataclass
class SubgesturePartition:
    """Subgestures grouped into the 2C AUC training sets."""

    sets: dict[str, list[LabelledSubgesture]]

    @property
    def set_names(self) -> list[str]:
        return list(self.sets.keys())

    def non_empty_sets(self) -> dict[str, list[LabelledSubgesture]]:
        return {name: subs for name, subs in self.sets.items() if subs}

    def mean_of(self, set_name: str) -> np.ndarray:
        subs = self.sets[set_name]
        if not subs:
            raise ValueError(f"set {set_name!r} is empty")
        return np.mean([s.features for s in subs], axis=0)

    def counts(self) -> dict[str, int]:
        return {name: len(subs) for name, subs in self.sets.items()}


def partition_subgestures(
    labelled: Iterable[ExampleLabelling],
    class_names: Sequence[str],
) -> SubgesturePartition:
    """Initial 2C-way partition (before the accidental-complete move)."""
    sets: dict[str, list[LabelledSubgesture]] = {}
    for name in class_names:
        sets[complete_set_name(name)] = []
        sets[incomplete_set_name(name)] = []
    for example in labelled:
        for sub in example.subgestures:
            sets[sub.initial_set].append(sub)
    return SubgesturePartition(sets=sets)


def compute_move_threshold(
    full_classifier: GestureClassifier,
    partition: SubgesturePartition,
    metric: MahalanobisMetric,
    minimum_fraction: float = 0.5,
    exclusion_distance: float = 1.0,
) -> float:
    """The §4.5 distance threshold for "sufficiently close".

    The distance from the mean of each *full gesture* class to the mean of
    each non-empty incomplete set is computed and the minimum taken — but
    distances below ``exclusion_distance`` are skipped, so an incomplete
    set that *looks like* a full gesture of another class (the paper's
    right-stroke example) does not collapse the threshold to zero.  The
    returned threshold is ``minimum_fraction`` (the paper's 50%) of that
    minimum.

    Returns 0.0 (disabling moves) when there are no usable distances.
    """
    distances: list[float] = []
    for class_name in full_classifier.class_names:
        full_mean = full_classifier.mean_of(class_name)
        for set_name, subs in partition.sets.items():
            if is_complete_set(set_name) or not subs:
                continue
            d = metric.distance(full_mean, partition.mean_of(set_name))
            if d >= exclusion_distance:
                distances.append(d)
    if not distances:
        return 0.0
    return minimum_fraction * min(distances)


def move_accidentally_complete(
    partition: SubgesturePartition,
    metric: MahalanobisMetric,
    threshold: float,
) -> int:
    """Reassign accidentally complete subgestures to incomplete sets.

    For each complete set, each parent gesture's subgestures are tested
    from largest to smallest; once one is within ``threshold`` of the
    nearest incomplete-set mean, it *and all smaller complete subgestures
    of that gesture* move to their respective closest incomplete sets.
    Incomplete-set means are frozen at entry (one pass, as in the paper).

    Returns:
        The number of subgestures moved.
    """
    incomplete_names = [
        name
        for name, subs in partition.sets.items()
        if not is_complete_set(name) and subs
    ]
    if not incomplete_names or threshold <= 0.0:
        return 0
    incomplete_means = np.vstack(
        [partition.mean_of(name) for name in incomplete_names]
    )

    moved = 0
    for set_name in list(partition.sets.keys()):
        if not is_complete_set(set_name):
            continue
        remaining: list[LabelledSubgesture] = []
        # Group this complete set's members by parent example.
        by_example: dict[int, list[LabelledSubgesture]] = {}
        for sub in partition.sets[set_name]:
            by_example.setdefault(sub.example_id, []).append(sub)
        for subs in by_example.values():
            subs.sort(key=lambda s: s.length, reverse=True)
            moving = False
            for sub in subs:
                if not moving:
                    nearest, squared = metric.nearest(
                        sub.features, incomplete_means
                    )
                    if np.sqrt(squared) < threshold:
                        moving = True
                if moving:
                    nearest, _ = metric.nearest(sub.features, incomplete_means)
                    sub.complete = False
                    partition.sets[incomplete_names[nearest]].append(sub)
                    moved += 1
                else:
                    remaining.append(sub)
        partition.sets[set_name] = remaining
    return moved
