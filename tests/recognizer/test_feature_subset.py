"""Tests for feature-subset ("currently twelve") classifiers."""

import numpy as np
import pytest

from repro.features import FEATURE_NAMES, NUM_FEATURES, features_of
from repro.recognizer import GestureClassifier


def twelve_indices():
    return [i for i in range(NUM_FEATURES) if FEATURE_NAMES[i] != "duration"]


class TestFeatureSubset:
    def test_masked_training_still_accurate(self, directions_train):
        classifier = GestureClassifier.train(directions_train, twelve_indices())
        hits = total = 0
        for name, strokes in directions_train.items():
            for stroke in strokes:
                total += 1
                hits += classifier.classify(stroke) == name
        assert hits / total > 0.95

    def test_classify_features_takes_full_vectors(self, directions_train):
        # Callers always pass 13-dim vectors; the classifier masks.
        classifier = GestureClassifier.train(directions_train, twelve_indices())
        stroke = directions_train["ur"][0]
        assert classifier.classify_features(
            features_of(stroke)
        ) == classifier.classify(stroke)

    def test_internal_dimensionality_is_reduced(self, directions_train):
        classifier = GestureClassifier.train(directions_train, twelve_indices())
        assert classifier.linear.num_features == 12
        assert classifier.means.shape[1] == 12

    def test_mask_survives_serialization(self, directions_train, tmp_path):
        classifier = GestureClassifier.train(directions_train, twelve_indices())
        path = tmp_path / "masked.json"
        classifier.save(path)
        restored = GestureClassifier.load(path)
        assert restored.feature_indices == twelve_indices()
        stroke = directions_train["dl"][0]
        assert restored.classify(stroke) == classifier.classify(stroke)

    def test_rejection_works_with_mask(self, directions_train):
        classifier = GestureClassifier.train(directions_train, twelve_indices())
        result = classifier.classify_with_rejection(directions_train["ur"][0])
        assert result.class_name == "ur"

    def test_empty_subset_rejected(self, directions_train):
        with pytest.raises(ValueError):
            GestureClassifier.train(directions_train, [])

    def test_single_feature_classifier(self, directions_train):
        # Degenerate but legal: classify on the initial-angle cosine only.
        classifier = GestureClassifier.train(directions_train, [0])
        assert classifier.linear.num_features == 1
        stroke = directions_train["ru"][0]
        assert classifier.classify(stroke) in classifier.class_names

    def test_eager_training_rejects_masked_full_classifier(
        self, directions_train
    ):
        from repro.eager import train_eager_recognizer

        masked = GestureClassifier.train(directions_train, twelve_indices())
        with pytest.raises(ValueError, match="full-feature"):
            train_eager_recognizer(directions_train, full_classifier=masked)
