"""Per-session op journals: the router's crash-recovery ground truth.

A worker's sessions live in its memory; when the supervisor restarts a
crashed worker that memory is gone.  The router therefore journals, per
live session, every line it routed — plus *clock markers*: a session's
decisions depend not only on its own operations but on where the shared
virtual clock stood between them (a motionless timeout fires when the
clock passes ``last_point + timeout``; a later move can only rescue the
session if it arrives *before* that advance).

Workers advance their clocks **only at tick/sweep barriers** (see
:meth:`~repro.serve.GestureServer._apply`), so the clock journaled in a
marker is the router's *broadcast* clock — the highest barrier actually
sent to workers before the op — never a value inferred from other
sessions' op timestamps.  Journaling op-derived clock values would be
unsound: an op's timestamp reaches the worker on the op line itself and
is folded into the clock at the *next* barrier, after the op applied; a
marker replayed *before* the op would fire a motionless timeout the
live worker never fired, and the restarted worker's replies would
diverge from the delivered prefix.

Rather than journal every broadcast barrier into every session, a
record lazily inserts one marker carrying the highest broadcast clock
reached since its previous entry — enough, because intermediate
advances between two consecutive ops of one session cannot change its
decisions (a timeout either fired at the first advance past the
horizon, with its timestamp pinned to ``last_point + timeout``
regardless, or it fires just the same at the highest value; advances at
or below the session's own last timestamp — subsumed by the record's
``clock_mark`` — can never reach its horizon at all).

Every entry carries a router-global sequence number.  Replay merges the
live records of a shard back into one stream in sequence order — the
original interleaving of ops and clock advances — and the restarted
worker, whose pump honours tick barriers in line order, walks the exact
decision path the crashed one did.  Decisions the router already
forwarded are suppressed by count (:attr:`SessionRecord.skip`); the
journal of a session is dropped the moment it reaches a terminal
decision (``commit`` or ``evict``), so journal memory tracks live
sessions only.
"""

from __future__ import annotations

import json
from heapq import merge

__all__ = ["SessionRecord", "replay_lines"]


class SessionRecord:
    """One live session's route, journal, and delivery cursor."""

    __slots__ = ("key", "client", "shard", "delivered", "skip", "clock_mark", "entries")

    def __init__(self, key: str, client: str, shard: str):
        self.key = key  # namespaced "client:stroke"
        self.client = client
        self.shard = shard
        self.delivered = 0  # replies already forwarded to the client
        self.skip = 0  # replayed replies still to suppress
        self.clock_mark = float("-inf")  # clock at the last journal entry
        self.entries: list[tuple[int, str]] = []  # (seq, line), seq ascending

    def journal(
        self,
        seq: int,
        line: str,
        clock: float,
        t: float,
        clock_line: str | None = None,
    ) -> int:
        """Append one routed op line; returns the next free sequence number.

        ``clock`` is the *broadcast* clock before this op — the highest
        tick/sweep barrier the router has sent to workers; if it moved
        past this record's last entry, a tick marker is inserted first
        so replay reproduces the advance at this position.  ``t`` is the
        op's own timestamp; it raises ``clock_mark`` (suppressing later
        markers at or below it) because a barrier advance that cannot
        exceed the session's last activity can never fire its timeout.

        ``clock_line`` is an optional pre-encoded marker for ``clock``:
        the router encodes it once per barrier instead of once per
        journalled op (markers are per *record*, so one barrier can
        otherwise cost thousands of identical ``json.dumps`` calls).
        """
        if clock > self.clock_mark:
            self.entries.append(
                (
                    seq,
                    clock_line
                    if clock_line is not None
                    else json.dumps({"op": "tick", "t": clock}),
                )
            )
            seq += 1
        self.entries.append((seq, line))
        self.clock_mark = max(clock, t)
        return seq + 1


def replay_lines(records, extras=(), final_t: float | None = None) -> list[str]:
    """Merge session journals back into one stream, in original order.

    ``records`` are the live :class:`SessionRecord` values of one shard;
    ``extras`` are shard-global ``(seq, line)`` entries (e.g. ``sweep``
    requests that arrived while the worker was down).  A trailing tick
    to ``final_t`` restores the worker's clock to the fleet's present,
    firing any timeouts that came due after the last journaled entry.
    """
    streams = [r.entries for r in records]
    if extras:
        streams.append(sorted(extras))
    lines = [line for _, line in merge(*streams)]
    if final_t is not None and final_t != float("-inf"):
        lines.append(json.dumps({"op": "tick", "t": final_t}))
    return lines
