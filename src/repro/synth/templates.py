"""Gesture class templates.

A template is the ideal, noise-free polyline of a gesture class, in unit
coordinates with screen orientation (y grows downward, so "up" is
negative y).  The generator perturbs templates into individual example
strokes.  Interior waypoints that are true corners are flagged: they are
the ground-truth unambiguity landmarks for two-segment gestures (figure
9's "determined by hand" column) and the sites where the generator may
inject the 270-degree corner-loop error mode the paper blames for most
eager misclassifications.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["GestureTemplate", "arc_waypoints"]


@dataclass(frozen=True)
class GestureTemplate:
    """The canonical shape of one gesture class."""

    name: str
    waypoints: tuple[tuple[float, float], ...]
    # Indices into waypoints marking sharp interior corners.  Modal
    # families (repro.synth.modal) reuse the slot for their commitment
    # landmarks — the waypoint where the modality's kinematic threshold
    # is crossed — which may be collinear rather than sharp; either way
    # the generator turns them into ground-truth sample indices.
    corner_indices: tuple[int, ...] = field(default_factory=tuple)
    # Pace multiplier on the generator's sample spacing: > 1 spreads
    # samples farther apart, i.e. the class is drawn faster than the
    # family default at the same mouse clock (a flick); < 1 draws it
    # slower (a deliberate scroll).  Spatial, not temporal, so the pace
    # survives tick-paced replay through the serving layer.  1.0 leaves
    # the generator byte-identical to the pre-modal behaviour.
    speed_scale: float = 1.0
    # Extra samples jittered in place at the *first* waypoint before
    # the path launches — the finger landing and loading before a flick
    # accelerates from rest.  Gives fast classes a shared near-origin
    # prefix (the ambiguity eager training needs).  0 adds nothing.
    press_samples: int = 0
    # Extra samples jittered in place at the final waypoint, continuing
    # the clock — a press that stays down (hold).  0 adds nothing.
    dwell_samples: int = 0

    def __post_init__(self) -> None:
        if len(self.waypoints) < 1:
            raise ValueError(f"template {self.name!r} has no waypoints")
        for idx in self.corner_indices:
            if not 0 < idx < len(self.waypoints) - 1:
                raise ValueError(
                    f"template {self.name!r}: corner index {idx} is not interior"
                )
        if not self.speed_scale > 0.0:
            raise ValueError(
                f"template {self.name!r}: speed_scale must be positive"
            )
        if self.press_samples < 0:
            raise ValueError(
                f"template {self.name!r}: press_samples must be >= 0"
            )
        if self.dwell_samples < 0:
            raise ValueError(
                f"template {self.name!r}: dwell_samples must be >= 0"
            )

    @property
    def is_dot(self) -> bool:
        """A degenerate template: a single position (GDP's dot gesture)."""
        return len(self.waypoints) == 1

    def path_length(self) -> float:
        """Arc length of the ideal polyline."""
        return sum(
            math.hypot(bx - ax, by - ay)
            for (ax, ay), (bx, by) in zip(self.waypoints, self.waypoints[1:])
        )

    def arc_length_at(self, waypoint_index: int) -> float:
        """Arc length from the start to a given waypoint."""
        if not 0 <= waypoint_index < len(self.waypoints):
            raise ValueError(f"waypoint index {waypoint_index} out of range")
        total = 0.0
        for i in range(waypoint_index):
            (ax, ay), (bx, by) = self.waypoints[i], self.waypoints[i + 1]
            total += math.hypot(bx - ax, by - ay)
        return total


def arc_waypoints(
    cx: float,
    cy: float,
    radius: float,
    start_angle: float,
    sweep: float,
    steps: int = 24,
) -> list[tuple[float, float]]:
    """Waypoints along a circular arc (angles in radians, y-down screen frame).

    Positive ``sweep`` runs clockwise on screen (the mathematically
    positive direction under a y-down axis).
    """
    if steps < 1:
        raise ValueError("need at least one step")
    return [
        (
            cx + radius * math.cos(start_angle + sweep * k / steps),
            cy + radius * math.sin(start_angle + sweep * k / steps),
        )
        for k in range(steps + 1)
    ]
