"""Unit tests for the text buffer substrate."""

import pytest

from repro.geometry import Stroke
from repro.textedit import CHAR_WIDTH, LINE_HEIGHT, TextBuffer, TextPosition


@pytest.fixture
def buffer():
    return TextBuffer("hello world\nsecond line", origin=(0.0, 0.0))


class TestGeometry:
    def test_lines_split(self, buffer):
        assert buffer.lines == ["hello world", "second line"]

    def test_empty_buffer_has_one_line(self):
        assert TextBuffer("").lines == [""]

    def test_position_to_xy(self, buffer):
        x, y = buffer.position_to_xy(TextPosition(1, 3))
        assert x == pytest.approx(3 * CHAR_WIDTH)
        assert y == pytest.approx(1 * LINE_HEIGHT)

    def test_char_center(self, buffer):
        cx, cy = buffer.char_center(0, 0)
        assert cx == pytest.approx(CHAR_WIDTH / 2)
        assert cy == pytest.approx(LINE_HEIGHT / 2)

    def test_origin_offsets_geometry(self):
        buffer = TextBuffer("x", origin=(100.0, 50.0))
        cx, cy = buffer.char_center(0, 0)
        assert cx == pytest.approx(100 + CHAR_WIDTH / 2)
        assert cy == pytest.approx(50 + LINE_HEIGHT / 2)

    def test_bounds_cover_widest_line(self, buffer):
        box = buffer.bounds()
        assert box.width == pytest.approx(11 * CHAR_WIDTH)
        assert box.height == pytest.approx(2 * LINE_HEIGHT)


class TestSnapping:
    def test_snap_to_exact_slot(self, buffer):
        x, y = buffer.position_to_xy(TextPosition(0, 5))
        assert buffer.snap(x, y + LINE_HEIGHT / 2) == TextPosition(0, 5)

    def test_snap_clamps_line(self, buffer):
        assert buffer.snap(0, -100).line == 0
        assert buffer.snap(0, 1e6).line == 1

    def test_snap_clamps_column_to_line_length(self, buffer):
        pos = buffer.snap(1e6, LINE_HEIGHT * 1.5)
        assert pos == TextPosition(1, len("second line"))

    def test_snap_is_always_legal(self, buffer):
        legal = set(buffer.legal_positions())
        for x in (-50, 0, 37, 91, 500):
            for y in (-10, 5, 20, 40, 300):
                assert buffer.snap(x, y) in legal

    def test_legal_positions_count(self):
        buffer = TextBuffer("ab\nc")
        # line 0: cols 0..2 (3 slots); line 1: cols 0..1 (2 slots).
        assert len(buffer.legal_positions()) == 5


class TestEnclosure:
    def circle_around(self, buffer, line, col_start, col_end):
        x1, y1 = buffer.position_to_xy(TextPosition(line, col_start))
        x2 = col_end * CHAR_WIDTH
        y2 = y1 + LINE_HEIGHT
        return Stroke.from_xy(
            [(x1 - 2, y1 - 2), (x2 + 2, y1 - 2), (x2 + 2, y2 + 2), (x1 - 2, y2 + 2)]
        )

    def test_chars_enclosed(self, buffer):
        loop = self.circle_around(buffer, 0, 0, 5)  # around "hello"
        enclosed = buffer.chars_enclosed_by(loop)
        assert set(enclosed) == {(0, c) for c in range(5)}

    def test_span_enclosed(self, buffer):
        loop = self.circle_around(buffer, 0, 6, 11)  # around "world"
        assert buffer.span_enclosed_by(loop) == (0, 6, 11)

    def test_empty_enclosure(self, buffer):
        loop = Stroke.from_xy([(500, 500), (510, 500), (510, 510), (500, 510)])
        assert buffer.span_enclosed_by(loop) is None

    def test_majority_line_wins(self, buffer):
        # A loop catching all of "hello" plus one char of line 1.
        loop = Stroke.from_xy(
            [(-2, -2), (5 * CHAR_WIDTH + 2, -2),
             (5 * CHAR_WIDTH + 2, LINE_HEIGHT + 10), (-2, LINE_HEIGHT + 10)]
        )
        span = buffer.span_enclosed_by(loop)
        assert span is not None and span[0] == 0


class TestEditing:
    def test_extract(self, buffer):
        removed = buffer.extract(0, 0, 5)
        assert removed == "hello"
        assert buffer.lines[0] == " world"

    def test_extract_bad_span(self, buffer):
        with pytest.raises(ValueError):
            buffer.extract(0, 5, 99)

    def test_insert(self, buffer):
        buffer.insert(TextPosition(1, 7), "XYZ ")
        assert buffer.lines[1] == "second XYZ line"

    def test_insert_rejects_newline(self, buffer):
        with pytest.raises(ValueError):
            buffer.insert(TextPosition(0, 0), "a\nb")

    def test_move_span_to_other_line(self, buffer):
        buffer.move_span(0, 0, 5, TextPosition(1, 0))
        assert buffer.lines[0] == " world"
        assert buffer.lines[1] == "hellosecond line"

    def test_move_span_right_on_same_line_adjusts_destination(self, buffer):
        # Move "hello" after "world": destination col shifts left by the
        # removed span's width.
        buffer.move_span(0, 0, 5, TextPosition(0, 11))
        assert buffer.lines[0] == " worldhello"

    def test_move_span_into_itself_is_noop_ish(self, buffer):
        before = buffer.lines[0]
        buffer.move_span(0, 0, 5, TextPosition(0, 3))
        assert sorted(buffer.lines[0]) == sorted(before)

    def test_mutations_notify(self, buffer):
        seen = []
        buffer.add_observer(seen.append)
        buffer.extract(0, 0, 1)
        buffer.insert(TextPosition(0, 0), "z")
        assert len(seen) == 2
