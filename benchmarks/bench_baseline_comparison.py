"""Baseline comparison — Rubine's statistical recognizer vs the
alternatives it displaced.

§4.2 surveys the landscape: hand-coded recognizers (Buxton, Coleman,
Minsky ... modelled here by the chain-code classifier) and
template/trainable methods (modelled by the resample-and-match
template recognizer).  Expected shape: on direction-dominated classes
(figure 9) all methods do well; on GDP's curvature/aspect-separated
classes the statistical recognizer wins, and it classifies in O(C*F)
per gesture while the template matcher pays O(templates x points).
"""

import pytest
from conftest import TEST_PER_CLASS, TRAIN_PER_CLASS, write_report

from repro.baselines import ChainCodeClassifier, TemplateMatcher
from repro.recognizer import GestureClassifier
from repro.synth import (
    GestureGenerator,
    eight_direction_templates,
    gdp_templates,
)


@pytest.fixture(scope="module", params=["directions", "gdp"])
def workload(request):
    templates = {
        "directions": eight_direction_templates,
        "gdp": gdp_templates,
    }[request.param]()
    train = GestureGenerator(templates, seed=141).generate_strokes(
        TRAIN_PER_CLASS
    )
    test = GestureGenerator(templates, seed=142).generate_strokes(
        TEST_PER_CLASS
    )
    return request.param, train, test


def accuracy(classify, test):
    hits = total = 0
    for name, strokes in test.items():
        for stroke in strokes:
            total += 1
            hits += classify(stroke) == name
    return hits / total


_report_rows = []


def test_baseline_accuracy(workload):
    family, train, test = workload
    rubine = GestureClassifier.train(train)
    template = TemplateMatcher.train(train)
    chain = ChainCodeClassifier.train(train)

    scores = {
        "rubine": accuracy(rubine.classify, test),
        "template": accuracy(template.classify, test),
        "chaincode": accuracy(chain.classify, test),
    }
    _report_rows.append(
        f"{family:<12} rubine {scores['rubine']:6.1%}   "
        f"template {scores['template']:6.1%}   "
        f"chaincode {scores['chaincode']:6.1%}"
    )
    write_report(
        "baseline_comparison",
        "Recognition accuracy: Rubine statistical vs baselines\n"
        f"({TRAIN_PER_CLASS} train / {TEST_PER_CLASS} test per class)\n\n"
        + "\n".join(_report_rows),
    )

    # The paper's technology must not lose to the methods it displaced.
    assert scores["rubine"] >= scores["chaincode"] - 0.02
    assert scores["rubine"] >= scores["template"] - 0.02
    if family == "gdp":
        # Curvature/aspect classes: the crude chain code falls behind.
        assert scores["rubine"] > scores["chaincode"] + 0.05


def test_rubine_classification_speed(workload, benchmark):
    family, train, test = workload
    rubine = GestureClassifier.train(train)
    strokes = [s for strokes in test.values() for s in strokes][:60]
    benchmark(lambda: [rubine.classify(s) for s in strokes])


def test_template_classification_speed(workload, benchmark):
    family, train, test = workload
    template = TemplateMatcher.train(train)
    strokes = [s for strokes in test.values() for s in strokes][:60]
    benchmark(lambda: [template.classify(s) for s in strokes])
