"""A gesture-based musical score editor (GSCORE's spirit).

Enter notes with the figure-8 note gestures — the duration is the
gesture class, the pitch and onset snap from where the gesture starts —
then drag during the manipulation phase to adjust pitch and time with
snapping feedback.  A zigzag erases.

Figure 8's lesson applies: the note gestures are nested prefixes of one
another, so this application runs with eager recognition off, using the
200 ms timeout and mouse-up transitions.

Run:  python examples/score_editor.py
"""

from repro.events import perform_gesture
from repro.geometry import Stroke
from repro.gscore import ScoreApp, score_templates, train_score_recognizer
from repro.synth import GestureGenerator


def enter(app, gestures, duration, beat, step, manip_xy=None):
    stroke = gestures.generate(duration).stroke
    x, y = app.staff.beat_to_x(beat), app.staff.step_to_y(step)
    stroke = stroke.translated(x - stroke.start.x, y - stroke.start.y)
    manip = Stroke.from_xy(manip_xy, dt=0.03) if manip_xy else None
    app.perform(perform_gesture(stroke, dwell=0.3, manipulation_path=manip))
    print(f"  {app.last_action}")


def main() -> None:
    print("training the score-gesture recognizer (6 classes)...")
    recognizer = train_score_recognizer()
    app = ScoreApp(recognizer=recognizer)
    gestures = GestureGenerator(score_templates(), seed=2025)

    print("\nentering a little melody:")
    melody = [
        ("quarter", 0.0, 2),   # G4
        ("quarter", 1.0, 4),   # B4
        ("eighth", 2.0, 5),    # C5
        ("eighth", 2.5, 7),    # E5
        ("sixteenth", 3.0, 9), # G5
        ("quarter", 4.0, 7),   # E5
    ]
    for duration, beat, step in melody:
        enter(app, gestures, duration, beat, step)

    # One more note, dragged during the manipulation phase: it starts
    # low, and the drag pulls it up to A5 at beat 6.
    print("\nentering a note and dragging it during manipulation:")
    enter(
        app,
        gestures,
        "eighth",
        beat=5.0,
        step=0,
        manip_xy=[(app.staff.beat_to_x(6.0), app.staff.step_to_y(10))],
    )

    print("\nthe staff (Q=quarter, E=eighth, S=sixteenth):\n")
    print(app.render())

    # Erase the sixteenth with the zigzag gesture.
    victim = next(n for n in app.staff.notes if n.duration == "sixteenth")
    erase = gestures.generate("erase").stroke
    x, y = app.staff.beat_to_x(victim.beat), app.staff.step_to_y(victim.step)
    erase = erase.translated(x - erase.start.x, y - erase.start.y)
    app.perform(perform_gesture(erase, dwell=0.3))
    print(f"\n{app.last_action}")

    print("\nfinal melody:")
    for note in app.staff.notes:
        print(f"  beat {note.beat:>4g}: {note.pitch_name:<3} ({note.duration})")


if __name__ == "__main__":
    main()
