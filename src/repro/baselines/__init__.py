"""Comparison recognizers: template matching and chain-code zoning."""

from .template import TemplateMatcher
from .zoning import ChainCodeClassifier

__all__ = ["ChainCodeClassifier", "TemplateMatcher"]
