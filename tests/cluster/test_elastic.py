"""Elastic cluster: autoscaler decisions, migration plumbing, and the
2 → 4 → 2 scale-cycle e2e.

The unit half exercises :mod:`repro.cluster.elastic` as pure functions
(every hysteresis/cooldown/watermark path with hand-built samples and an
injected clock) plus the router's migration helpers in isolation.  The
e2e half runs a real subprocess fleet through a scale-out → scale-in
cycle under live traffic — SIGKILLing a migration *destination* mid-move
— and requires the reply streams to stay string-equal to a single
:class:`~repro.serve.SessionPool`, with zero sessions evicted or lost.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.cluster import (
    Autoscaler,
    Cluster,
    Router,
    quantile_from_buckets,
    reference_lines,
    workload_ticks,
)
from repro.cluster.journal import SessionRecord
from repro.interaction import DEFAULT_TIMEOUT

from .test_cluster import DT, assert_byte_identical, end_time

# -- quantile_from_buckets ---------------------------------------------------


def test_quantile_empty_buckets_is_zero():
    assert quantile_from_buckets([[0.001, 0], [None, 0]]) == 0.0


def test_quantile_picks_bucket_upper_bound():
    buckets = [[0.001, 90], [0.01, 9], [0.1, 1], [None, 0]]
    assert quantile_from_buckets(buckets, q=0.5) == 0.001
    assert quantile_from_buckets(buckets, q=0.99) == 0.01
    assert quantile_from_buckets(buckets, q=1.0) == 0.1


def test_quantile_overflow_bucket_reports_last_finite_bound():
    buckets = [[0.001, 1], [0.01, 1], [None, 98]]
    assert quantile_from_buckets(buckets, q=0.99) == 0.01


def test_quantile_rejects_bad_q():
    with pytest.raises(ValueError):
        quantile_from_buckets([[1.0, 1]], q=0.0)
    with pytest.raises(ValueError):
        quantile_from_buckets([[1.0, 1]], q=1.5)


# -- Autoscaler.decide -------------------------------------------------------


def hot_sample(shards=2):
    return {
        "shards": shards,
        "sessions": shards * 100,
        "sessions_per_shard": 100.0,
        "max_queue_depth": 0,
    }


def cold_sample(shards=4):
    return {
        "shards": shards,
        "sessions": shards,
        "sessions_per_shard": 1.0,
        "max_queue_depth": 0,
    }


def test_autoscaler_validates_watermarks():
    with pytest.raises(ValueError):
        Autoscaler(min_workers=0)
    with pytest.raises(ValueError):
        Autoscaler(min_workers=4, max_workers=2)
    with pytest.raises(ValueError):
        Autoscaler(low_sessions=64.0, high_sessions=64.0)
    with pytest.raises(ValueError):
        Autoscaler(confirm=0)


def test_scale_out_needs_a_confirm_streak():
    scaler = Autoscaler(confirm=3, cooldown=0.0)
    assert scaler.decide(hot_sample(), 0.0) is None
    assert scaler.decide(hot_sample(), 1.0) is None
    assert scaler.decide(hot_sample(), 2.0) == 3  # 2 shards -> 3
    assert scaler.decisions == 1


def test_streak_resets_when_the_signal_flaps():
    scaler = Autoscaler(confirm=2, cooldown=0.0)
    assert scaler.decide(hot_sample(), 0.0) is None
    # A healthy sample in between kills the streak...
    assert scaler.decide({"shards": 2, "sessions_per_shard": 32.0}, 1.0) is None
    assert scaler.decide(hot_sample(), 2.0) is None
    # ...so confirmation has to start over.
    assert scaler.decide(hot_sample(), 3.0) == 3


def test_direction_change_restarts_the_streak():
    scaler = Autoscaler(confirm=2, cooldown=0.0)
    assert scaler.decide(hot_sample(4), 0.0) is None
    assert scaler.decide(cold_sample(4), 1.0) is None  # flip: streak = 1
    assert scaler.decide(cold_sample(4), 2.0) == 3


def test_cooldown_holds_and_resets_the_streak():
    scaler = Autoscaler(confirm=1, cooldown=10.0)
    assert scaler.decide(hot_sample(2), 0.0) == 3
    # Inside the cooldown window nothing fires, however hot it looks.
    assert scaler.decide(hot_sample(3), 5.0) is None
    assert scaler.decide(hot_sample(3), 9.0) is None
    # After the window a fresh verdict is allowed.
    assert scaler.decide(hot_sample(3), 10.0) == 4


def test_scale_out_clamps_at_max_workers():
    scaler = Autoscaler(confirm=1, cooldown=0.0, max_workers=2)
    assert scaler.decide(hot_sample(2), 0.0) is None


def test_scale_in_clamps_at_min_workers():
    scaler = Autoscaler(confirm=1, cooldown=0.0, min_workers=4)
    assert scaler.decide(cold_sample(4), 0.0) is None
    assert scaler.decide(cold_sample(5), 1.0) == 4


def test_scale_in_requires_a_drained_queue():
    scaler = Autoscaler(confirm=1, cooldown=0.0, high_queue=256)
    backlogged = dict(cold_sample(4), max_queue_depth=65)  # > 256 // 4
    assert scaler.decide(backlogged, 0.0) is None
    assert scaler.decide(cold_sample(4), 1.0) == 3


def test_queue_depth_alone_triggers_scale_out():
    scaler = Autoscaler(confirm=1, cooldown=0.0, high_queue=8)
    sample = {"shards": 2, "sessions_per_shard": 1.0, "max_queue_depth": 9}
    assert scaler.decide(sample, 0.0) == 3


def test_p99_ceiling_triggers_scale_out_only_when_configured():
    sample = dict(cold_sample(2), p99_decision_seconds=0.5)
    # p99 watermark unset: the sample reads cold, but 2 == default min+1
    # so it scales in rather than out.
    assert Autoscaler(confirm=1, cooldown=0.0).decide(sample, 0.0) == 1
    scaler = Autoscaler(confirm=1, cooldown=0.0, high_p99=0.1)
    assert scaler.decide(sample, 0.0) == 3


def test_run_loop_feeds_samples_and_applies_verdicts():
    scaler = Autoscaler(confirm=1, cooldown=0.0, interval=0.01)
    applied = []

    async def run():
        async def scale_fn(workers):
            applied.append(workers)

        task = asyncio.create_task(scaler.run(lambda: hot_sample(2), scale_fn))
        deadline = asyncio.get_running_loop().time() + 30
        while not applied:
            assert asyncio.get_running_loop().time() < deadline
            await asyncio.sleep(0.01)
        task.cancel()

    asyncio.run(run())
    assert applied[0] == 3


# -- router migration helpers ------------------------------------------------


def _record(key: str, first_seq: int | None) -> SessionRecord:
    record = SessionRecord(key, "k1", "w0")
    if first_seq is not None:
        record.entries.append((first_seq, '{"op": "down"}'))
    return record


def test_pinned_model_trichotomy():
    router = Router(["w0", "w1"])
    record = _record("k1:s1", 10)
    # No swap history at all: no pin needed.
    assert router._pinned_model(record) is None
    router._swap_history.append((5, "k2:u", "alt"))
    # History exists but nothing matches this key: still no pin.
    assert router._pinned_model(record) is None
    # A matching swap routed *after* the open: the session bound the
    # default model, and a warm destination must be told so.
    router._swap_history.append((20, "k1:s1", "alt"))
    assert router._pinned_model(record) == ""
    # A matching swap before the open pins its label.
    router._swap_history.append((3, "k1:", "gdp"))
    assert router._pinned_model(record) == "gdp"
    # Longest prefix wins over an earlier shorter one...
    router._swap_history.append((4, "k1:s1", "alt"))
    assert router._pinned_model(record) == "alt"
    # ...and the last write on the same prefix wins.
    router._swap_history.append((6, "k1:s1", "gdp"))
    assert router._pinned_model(record) == "gdp"


def test_load_sample_excludes_retired_and_draining_shards():
    router = Router(["w0", "w1", "w2"])
    router.retired.add("w2")
    router.draining.add("w1")
    sample = router.load_sample()
    assert sample == {
        "shards": 1,
        "sessions": 0,
        "sessions_per_shard": 0.0,
        "max_queue_depth": 0,
    }
    router.sessions["k1:s1"] = _record("k1:s1", 0)
    assert router.load_sample()["sessions_per_shard"] == 1.0


def test_clients_cannot_send_internal_migration_ops():
    # ``release`` and ``pin`` are router->worker ops; a client sending
    # them must get an error, not a forwarded line.
    async def run():
        router = Router(["w0"])
        await router.start()
        try:
            host, port = router.address
            reader, writer = await asyncio.open_connection(host, port)

            async def ask(line: bytes) -> dict:
                writer.write(line + b"\n")
                await writer.drain()
                return json.loads(await asyncio.wait_for(reader.readline(), 10))

            for line in (
                b'{"op": "release", "stroke": "s1"}',
                b'{"op": "pin", "stroke": "s1", "model": "alt"}',
            ):
                reply = await ask(line)
                assert reply["kind"] == "error"
                assert "internal op" in reply["reason"]
            # Scale needs a positive integer worker count and a
            # supervisor to apply it.
            for line in (
                b'{"op": "scale"}',
                b'{"op": "scale", "workers": 0}',
                b'{"op": "scale", "workers": true}',
                b'{"op": "scale", "workers": "four"}',
            ):
                reply = await ask(line)
                assert reply["kind"] == "error"
                assert "positive workers count" in reply["reason"]
            reply = await ask(b'{"op": "scale", "workers": 4}')
            assert reply["kind"] == "error"
            assert "no supervisor" in reply["reason"]
            writer.close()
            await writer.wait_closed()
        finally:
            await router.stop()

    asyncio.run(run())


# -- end to end --------------------------------------------------------------


async def _admin(host, port, line: str) -> dict:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(line.encode() + b"\n")
    await writer.drain()
    reply = json.loads(await asyncio.wait_for(reader.readline(), 30))
    writer.close()
    await writer.wait_closed()
    return reply


def _live(cluster) -> set:
    return {
        s
        for s in cluster.router.links
        if s not in cluster.router.retired and s not in cluster.router.draining
    }


async def _wait_live(cluster, n: int) -> None:
    loop = asyncio.get_running_loop()
    deadline = loop.time() + 60
    while len(_live(cluster)) != n or cluster.router.draining:
        assert loop.time() < deadline, (_live(cluster), n)
        await asyncio.sleep(0.02)


def test_scale_cycle_2_4_2_with_destination_kill(
    recognizer_path, cluster_recognizer, cluster_workload
):
    """The acceptance run: live traffic through 2 -> 4 -> 2 workers.

    Mid-stream the fleet scales out to four shards (two joins, each a
    rebalance that live-migrates open sessions), one migration
    *destination* is SIGKILLed right after sessions land on it, and the
    fleet then scales back in to two (two drain-by-migration retires).
    The reply streams must be byte-identical to a single pool, with
    every journaled session reaching terminal — nothing evicted,
    nothing dropped.
    """
    ticks = workload_ticks(cluster_workload, dt=DT)
    end_t = end_time(ticks)
    reference = reference_lines(
        cluster_recognizer, ticks, end_t=end_t, timeout=DEFAULT_TIMEOUT
    )
    out_at = len(ticks) // 3
    in_at = 2 * len(ticks) // 3

    async def run():
        from repro.cluster import drive_cluster

        async with Cluster(
            recognizer_path,
            workers=2,
            timeout=DEFAULT_TIMEOUT,
            min_workers=1,
            max_workers=6,
        ) as cluster:
            host, port = cluster.address
            loop = asyncio.get_running_loop()

            async def before_tick(i, t):
                if i == out_at:
                    reply = await _admin(
                        host, port, '{"op": "scale", "workers": 4}'
                    )
                    assert reply == {
                        "kind": "scale", "workers": 4, "status": "started",
                    }
                    # Wait for a migration to land on a *new* shard,
                    # then SIGKILL that destination while its sessions
                    # are mid-stroke.  Replay must heal the loss.
                    deadline = loop.time() + 60
                    victim = None
                    while victim is None:
                        assert loop.time() < deadline
                        for record in cluster.router.sessions.values():
                            if record.shard in ("w2", "w3"):
                                victim = record.shard
                                break
                        await asyncio.sleep(0)
                    ups = cluster.router.links[victim].ups
                    assert cluster.kill(victim) is not None
                    await cluster.wait_recovered(victim, ups)
                    await _wait_live(cluster, 4)
                    await cluster.wait_all_up()
                if i == in_at:
                    reply = await _admin(
                        host, port, '{"op": "scale", "workers": 2}'
                    )
                    assert reply["status"] == "started"
                    await _wait_live(cluster, 2)

            async def before_barrier():
                await cluster.wait_all_up()

            replies, stats = await drive_cluster(
                host,
                port,
                ticks,
                end_t=end_t,
                before_tick=before_tick,
                before_barrier=before_barrier,
            )
            status = await _admin(host, port, '{"op": "cluster"}')
            return replies, stats, status, cluster.metrics.snapshot()

    replies, stats, status, snapshot = asyncio.run(run())
    assert_byte_identical(replies, reference)
    # Nothing was evicted to make the topology change happen.
    assert not any(
        json.loads(line)["kind"] == "evict"
        for lines in replies.values()
        for line in lines
    )
    # The cycle actually happened: two joins, two retires, sessions
    # moved both ways, and the killed destination was replayed.
    counters = snapshot["counters"]
    assert counters["cluster.joins"] == 2
    assert counters["cluster.drains"] == 2
    assert counters["cluster.migrations"] >= 2
    assert counters["cluster.worker_restarts"] >= 1
    assert counters["cluster.replays"] >= 1
    assert snapshot["histograms"]["cluster.migration_seconds"]["count"] == (
        counters["cluster.migrations"]
    )
    retired = {s for s, info in status["shards"].items() if info["retired"]}
    assert len(retired) == 2
    # Every journaled session reached terminal — zero dropped.
    assert stats["cluster"]["sessions"] == 0


def test_autoscaler_scales_a_live_cluster_out(recognizer_path):
    """The wired-in loop, not just ``decide``: a one-worker fleet with a
    low session watermark grows itself once traffic arrives."""
    scaler = Autoscaler(
        min_workers=1,
        max_workers=2,
        high_sessions=0.5,
        low_sessions=0.1,
        interval=0.02,
        confirm=2,
        cooldown=60.0,
    )

    async def run():
        async with Cluster(
            recognizer_path,
            workers=1,
            timeout=DEFAULT_TIMEOUT,
            min_workers=1,
            max_workers=2,
            autoscale=scaler,
        ) as cluster:
            host, port = cluster.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                b'{"op": "down", "stroke": "s0", "x": 0, "y": 0, "t": 0.0}\n'
                b'{"op": "tick", "t": 0.0}\n'
            )
            await writer.drain()
            await _wait_live(cluster, 2)
            await cluster.wait_all_up()
            # Finish the stroke on the (possibly migrated) session.
            writer.write(
                b'{"op": "move", "stroke": "s0", "x": 15, "y": 0, "t": 0.1}\n'
                b'{"op": "up", "stroke": "s0", "x": 30, "y": 0, "t": 0.2}\n'
                b'{"op": "tick", "t": 0.2}\n'
            )
            await writer.drain()
            reply = json.loads(await asyncio.wait_for(reader.readline(), 30))
            writer.close()
            await writer.wait_closed()
            return reply, cluster.metrics.snapshot()

    reply, snapshot = asyncio.run(run())
    assert reply["stroke"] == "s0"
    assert reply["kind"] not in ("evict", "error")
    assert scaler.decisions == 1
    assert snapshot["counters"]["cluster.joins"] == 1
