"""Multi-stroke gestures — the §2/§6 future-work extension."""

from .classifier import MultiStrokeClassifier
from .collector import StrokeCollector
from .gesture import MultiStrokeGesture, connect_strokes
from .synth import MULTISTROKE_CLASS_NAMES, MultiStrokeGenerator

__all__ = [
    "MULTISTROKE_CLASS_NAMES",
    "MultiStrokeClassifier",
    "MultiStrokeGenerator",
    "MultiStrokeGesture",
    "StrokeCollector",
    "connect_strokes",
]
