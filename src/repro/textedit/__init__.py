"""The gesture-based text editor — the paper's figure-1 scenario."""

from .app import TextEditApp, train_textedit_recognizer
from .buffer import CHAR_WIDTH, LINE_HEIGHT, TextBuffer, TextPosition
from .gestures import TailedGestureGenerator, editing_templates

__all__ = [
    "CHAR_WIDTH",
    "LINE_HEIGHT",
    "TailedGestureGenerator",
    "TextBuffer",
    "TextEditApp",
    "TextPosition",
    "editing_templates",
    "train_textedit_recognizer",
]
