"""Dedicated tests for the Model observer protocol."""

from repro.mvc import Model


class Counter(Model):
    """A tiny concrete model."""

    def __init__(self):
        super().__init__()
        self.value = 0

    def increment(self):
        self.value += 1
        self.changed()


class TestObservers:
    def test_changed_notifies_all_observers(self):
        model = Counter()
        seen_a, seen_b = [], []
        model.add_observer(seen_a.append)
        model.add_observer(seen_b.append)
        model.increment()
        assert seen_a == [model]
        assert seen_b == [model]

    def test_notification_order_is_registration_order(self):
        model = Counter()
        order = []
        model.add_observer(lambda m: order.append("first"))
        model.add_observer(lambda m: order.append("second"))
        model.increment()
        assert order == ["first", "second"]

    def test_observer_sees_updated_state(self):
        model = Counter()
        values = []
        model.add_observer(lambda m: values.append(m.value))
        model.increment()
        model.increment()
        assert values == [1, 2]

    def test_observer_added_during_notification_not_called_this_round(self):
        model = Counter()
        late = []

        def adder(m):
            m.add_observer(late.append)

        model.add_observer(adder)
        model.increment()
        assert late == []  # snapshot semantics
        model.increment()
        assert late == [model]

    def test_observer_removed_during_notification_still_gets_this_round(self):
        model = Counter()
        calls = []

        def self_removing(m):
            calls.append("removed-one")
            m.remove_observer(self_removing)

        model.add_observer(self_removing)
        model.add_observer(lambda m: calls.append("stable"))
        model.increment()
        assert calls == ["removed-one", "stable"]
        model.increment()
        assert calls == ["removed-one", "stable", "stable"]

    def test_same_observer_registered_twice_fires_twice(self):
        model = Counter()
        seen = []
        model.add_observer(seen.append)
        model.add_observer(seen.append)
        model.increment()
        assert len(seen) == 2

    def test_remove_one_of_duplicate_registrations(self):
        model = Counter()
        seen = []
        model.add_observer(seen.append)
        model.add_observer(seen.append)
        model.remove_observer(seen.append)
        model.increment()
        assert len(seen) == 1
