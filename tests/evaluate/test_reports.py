"""Unit tests for the figure-style report printers."""

from repro.evaluate import (
    comparison_table,
    evaluate_recognizer,
    figure9_grid,
    labelling_diagram,
    summary_row,
)


class TestFigure9Grid:
    def test_grid_lists_every_class(
        self, directions_recognizer, directions_test_set
    ):
        result = evaluate_recognizer(directions_recognizer, directions_test_set)
        grid = figure9_grid(result)
        for class_name in directions_recognizer.class_names:
            assert f"{class_name}:" in grid

    def test_cells_have_caption_shape(
        self, directions_recognizer, directions_test_set
    ):
        result = evaluate_recognizer(directions_recognizer, directions_test_set)
        grid = figure9_grid(result)
        assert "/" in grid  # seen/total separators


class TestSummaryRow:
    def test_contains_percentages(
        self, directions_recognizer, directions_test_set
    ):
        result = evaluate_recognizer(directions_recognizer, directions_test_set)
        row = summary_row("fig9", result)
        assert "fig9" in row
        assert "%" in row
        assert "oracle" in row


class TestComparisonTable:
    def test_stacks_rows(self, directions_recognizer, directions_test_set):
        result = evaluate_recognizer(directions_recognizer, directions_test_set)
        table = comparison_table([("one", result), ("two", result)])
        assert "one" in table and "two" in table
        assert table.count("\n") >= 3  # header + rule + 2 rows


class TestLabellingDiagram:
    def test_figures_5_7_shape(self, directions_report):
        diagram = labelling_diagram(directions_report, max_examples=2)
        lines = diagram.splitlines()
        # 8 classes x 2 examples.
        assert len(lines) == 16
        for line in lines:
            class_name, _, labels = line.partition(": ")
            assert labels  # one character per subgesture
            # Mixed case: lowercase = incomplete, uppercase = complete.
            assert labels != labels.upper() or labels != labels.lower()
