"""The runtime eager recognizer.

"Each time a new mouse point arrives it is appended to the gesture being
collected, and D is applied to this gesture.  As long as D returns false
we iterate and collect the next point.  Once D returns true the collected
gesture is passed to C whose result is returned and the manipulation
phase entered." (section 4.3)

:class:`EagerSession` is that loop's state for one interaction;
:class:`EagerRecognizer` bundles the full classifier with the AUC and
offers both the point-at-a-time API (used by the gesture handler) and a
whole-stroke convenience API (used by the evaluation harness).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..features import IncrementalFeatures
from ..geometry import Point, Stroke
from ..recognizer import GestureClassifier
from .auc import AmbiguityClassifier
from .subgestures import MIN_PREFIX_POINTS

__all__ = ["EagerRecognizer", "EagerSession", "EagerResult"]


@dataclass(frozen=True)
class EagerResult:
    """Outcome of running the eager recognizer over a complete stroke."""

    class_name: str
    points_seen: int  # mouse points consumed before classification
    total_points: int
    eager: bool  # True if classified before the stroke ended

    @property
    def fraction_seen(self) -> float:
        """Fraction of the stroke's points examined before classification.

        This is the paper's eagerness measure: figure 9 reports the eager
        recognizer examining 67.9% of the mouse points on average.
        """
        if self.total_points == 0:
            return 0.0
        return self.points_seen / self.total_points


class EagerSession:
    """Point-at-a-time eager recognition for one gesture in progress."""

    def __init__(
        self,
        full_classifier: GestureClassifier,
        auc: AmbiguityClassifier,
        min_points: int = MIN_PREFIX_POINTS,
    ):
        self._full = full_classifier
        self._auc = auc
        self._min_points = min_points
        self._inc = IncrementalFeatures()
        self._decided: str | None = None

    @property
    def points_seen(self) -> int:
        return self._inc.count

    @property
    def feature_vector(self):
        """The current scalar feature vector (a fresh array, O(1)).

        After a decision this is exactly the *decided prefix's* vector —
        :meth:`add_point` ignores manipulation-phase points — which is
        what lets quality telemetry read it instead of replaying the
        prefix through a second :class:`IncrementalFeatures`.
        """
        return self._inc.vector

    @property
    def decided(self) -> bool:
        """True once the gesture has been classified (eagerly or not)."""
        return self._decided is not None

    @property
    def class_name(self) -> str | None:
        """The classification, or None while still ambiguous."""
        return self._decided

    def add_point(self, point: Point) -> str | None:
        """Feed one mouse point; returns the class if now unambiguous.

        After the session has decided, further points are ignored — they
        belong to the manipulation phase, not the gesture.
        """
        if self._decided is not None:
            return self._decided
        self._inc.add_point(point)
        if self._inc.count < self._min_points:
            return None
        features = self._inc.vector
        if self._auc.is_unambiguous(features):
            self._decided = self._full.classify_features(features)
        return self._decided

    def finish(self) -> str:
        """End of input (mouse up): classify now if still undecided."""
        if self._decided is None:
            if self._inc.count == 0:
                raise ValueError("cannot classify an empty gesture")
            self._decided = self._full.classify_features(self._inc.vector)
        return self._decided


class EagerRecognizer:
    """A trained eager recognizer: full classifier + AUC."""

    def __init__(
        self,
        full_classifier: GestureClassifier,
        auc: AmbiguityClassifier,
        min_points: int = MIN_PREFIX_POINTS,
    ):
        self.full_classifier = full_classifier
        self.auc = auc
        self.min_points = min_points

    @property
    def class_names(self) -> list[str]:
        return self.full_classifier.class_names

    def session(self) -> EagerSession:
        """A fresh per-interaction session."""
        return EagerSession(self.full_classifier, self.auc, self.min_points)

    def recognize(self, gesture: Stroke) -> EagerResult:
        """Replay a complete stroke through the eager loop."""
        session = self.session()
        for seen, point in enumerate(gesture, start=1):
            if session.add_point(point) is not None:
                return EagerResult(
                    class_name=session.class_name,
                    points_seen=seen,
                    total_points=len(gesture),
                    eager=seen < len(gesture),
                )
        return EagerResult(
            class_name=session.finish(),
            points_seen=len(gesture),
            total_points=len(gesture),
            eager=False,
        )

    def classify_full(self, gesture: Stroke) -> str:
        """Bypass eagerness: the full classifier's verdict on the stroke."""
        return self.full_classifier.classify(gesture)

    # -- persistence --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "full_classifier": self.full_classifier.to_dict(),
            "auc": self.auc.to_dict(),
            "min_points": self.min_points,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EagerRecognizer":
        return cls(
            full_classifier=GestureClassifier.from_dict(data["full_classifier"]),
            auc=AmbiguityClassifier.from_dict(data["auc"]),
            min_points=data["min_points"],
        )

    def save(self, path: str | Path) -> None:
        """Write the recognizer to a JSON file.

        Parity with :meth:`GestureClassifier.save`: the CLI, the
        :class:`~repro.serve.ModelRegistry`, and user code all round-trip
        trained recognizers through this one pair of methods.
        """
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "EagerRecognizer":
        return cls.from_dict(json.loads(Path(path).read_text()))
