"""Training-pipeline benchmark: determinism, cache replay, fan-out.

The staged trainer's claims, measured:

* **bit-identity** — the packaged model's content hash is the same for
  any ``jobs`` count, for a killed-and-resumed run, and matches the
  in-memory :func:`~repro.eager.train_eager_recognizer` exactly;
* **cache replay** — re-running an identical job computes no stage and
  is much faster than training;
* **fan-out speedup** — with real cores available, ``jobs=4`` beats
  ``jobs=1`` by >= 2x on the per-example stages.  The speedup assertion
  is skipped on boxes with fewer than four CPUs (a 1-core container
  cannot demonstrate parallelism); the measured wall times and the CPU
  count are published regardless, so the numbers are honest either way.
  A second floor holds on *any* host: ``--jobs N`` must never lose to
  serial — the min-chunk and cpu-count gates in
  :func:`~repro.train.parallel.effective_workers` degrade the fan-out
  to the identical inline path wherever the fork tax would dominate, so
  the worst case is serial plus scheduler noise.  Wall times are the
  median of ``REPEATS`` fresh runs, for the same reason as
  ``bench_cluster.py``: single samples wobble more than the effect.

Results go to ``BENCH_train.json`` at the repo root.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest
from conftest import write_bench_json, write_report

from repro.eager import train_eager_recognizer
from repro.hashing import content_hash
from repro.synth import GestureGenerator, family_templates
from repro.train import TrainJobSpec, TrainingKilled, TrainingPipeline

FAMILY = "gdp"
EXAMPLES = 15
SEED = 7
PARALLEL_JOBS = 4
REPEATS = 5

SPEC = TrainJobSpec(family=FAMILY, examples=EXAMPLES, seed=SEED)


def _median(samples: list) -> float:
    return sorted(samples)[len(samples) // 2]


def _timed_run(cache_dir: Path, jobs: int):
    pipeline = TrainingPipeline(SPEC, cache_dir=cache_dir, jobs=jobs)
    start = time.perf_counter()
    result = pipeline.run()
    return result, time.perf_counter() - start


def test_model_bit_identical_across_jobs_and_in_memory(tmp_path):
    """jobs=1, jobs=2, and the in-memory trainer agree bit for bit."""
    serial, _ = _timed_run(tmp_path / "serial", jobs=1)
    parallel, _ = _timed_run(tmp_path / "parallel", jobs=2)
    assert serial.model_hash == parallel.model_hash
    assert serial.model == parallel.model

    generator = GestureGenerator(family_templates(FAMILY), seed=SEED)
    report = train_eager_recognizer(generator.generate_strokes(EXAMPLES))
    assert content_hash(report.recognizer.to_dict()) == serial.model_hash


def test_killed_run_resumes_to_identical_model(tmp_path):
    """Kill after every stage in turn; each resume completes identically."""
    reference, _ = _timed_run(tmp_path / "ref", jobs=1)
    for stage in ("manifest", "classifier", "subgestures", "auc"):
        cache = tmp_path / f"killed-{stage}"
        with pytest.raises(TrainingKilled):
            TrainingPipeline(
                SPEC, cache_dir=cache, jobs=2, kill_after=stage
            ).run()
        resumed = TrainingPipeline(
            SPEC, cache_dir=cache, jobs=1, resume=True
        ).run()
        assert resumed.model_hash == reference.model_hash
        assert stage in resumed.stages_cached


def test_train_pipeline_numbers(tmp_path):
    """Measure serial, parallel, and cached-replay wall times."""
    serial = None
    serial_times, parallel_times = [], []
    for i in range(REPEATS):
        # Alternate which configuration runs first so a drifting host
        # (caches warming, the container throttling) biases neither.
        order = [
            ("serial", 1, serial_times),
            ("parallel", PARALLEL_JOBS, parallel_times),
        ]
        if i % 2:
            order.reverse()
        for name, jobs, times in order:
            result, elapsed = _timed_run(tmp_path / f"{name}-{i}", jobs=jobs)
            if serial is None:
                serial = result
                assert serial.stages_run == list(
                    (
                        "manifest",
                        "features",
                        "classifier",
                        "subgestures",
                        "auc",
                        "package",
                    )
                )
            assert result.model_hash == serial.model_hash
            times.append(elapsed)
    serial_s = _median(serial_times)
    parallel_s = _median(parallel_times)

    replay, replay_s = _timed_run(tmp_path / "serial-0", jobs=1)
    assert replay.stages_run == []
    assert replay.model_hash == serial.model_hash
    assert replay_s < serial_s, "cache replay should beat training"

    # Paired ratios, not a ratio of medians: each iteration's serial
    # and parallel runs are adjacent in time, so host drift (this
    # container wobbles +/- 30% minute to minute) cancels within a
    # pair, and the median pair is a far tighter speedup estimate than
    # two independently-noisy medians divided.
    speedup = _median(
        [s / p for s, p in zip(serial_times, parallel_times) if p > 0]
    )
    cpus = os.cpu_count() or 1
    write_report(
        "train_pipeline",
        f"Staged training pipeline ({FAMILY}, {EXAMPLES}/class, seed {SEED})\n"
        f"serial   (jobs=1): {serial_s * 1000:.1f} ms\n"
        f"parallel (jobs={PARALLEL_JOBS}): {parallel_s * 1000:.1f} ms "
        f"({speedup:.2f}x, {cpus} cpus)\n"
        f"cached replay:     {replay_s * 1000:.1f} ms\n"
        f"model hash: {serial.model_hash} (identical at every jobs count)",
    )
    write_bench_json(
        "train",
        params={
            "family": FAMILY,
            "examples_per_class": EXAMPLES,
            "seed": SEED,
            "parallel_jobs": PARALLEL_JOBS,
            "repeats": REPEATS,
            "cpus": cpus,
        },
        results={
            "serial_s": round(serial_s, 4),
            "parallel_s": round(parallel_s, 4),
            "replay_s": round(replay_s, 4),
            "parallel_speedup": round(speedup, 3),
            "replay_speedup": round(serial_s / replay_s, 1) if replay_s else None,
            "model_hash": serial.model_hash,
            "examples": serial.example_count,
            "classes": serial.class_count,
            "subgestures": serial.stats["set_counts"]
            and sum(serial.stats["set_counts"].values()),
        },
    )
    # The any-host floor: the gates in effective_workers must degrade
    # --jobs N to the identical inline path wherever forking would not
    # pay, so a parallel run can lose at most scheduler noise to serial.
    assert speedup >= 0.9, (
        f"jobs={PARALLEL_JOBS} took {parallel_s:.3f}s vs jobs=1 "
        f"{serial_s:.3f}s = {speedup:.2f}x — the fan-out gates should "
        "never let --jobs lose to serial"
    )
    if cpus < 4:
        pytest.skip(
            f"only {cpus} CPU(s): hash identity and the no-regression "
            "floor asserted above, but a parallel speedup cannot be "
            "demonstrated on this machine"
        )
    assert speedup >= 2.0, (
        f"jobs={PARALLEL_JOBS} took {parallel_s:.3f}s vs jobs=1 "
        f"{serial_s:.3f}s = {speedup:.2f}x, expected >= 2x"
    )
