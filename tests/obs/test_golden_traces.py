"""Golden-trace regression tests.

Checked-in GDP strokes (``tests/obs/data/gdp_strokes.json``) are
replayed through a :class:`SessionPool` with tracing and metrics on,
and the resulting span stream (canonical NDJSON) plus the deterministic
counter snapshot are diffed byte-for-byte against committed golden
files.  Because the whole pipeline runs on virtual time and a seeded
dataset, the trace is a pure function of the checked-in bytes — any
diff is a behaviour change, not noise.

Regenerate after an *intentional* change with::

    PYTHONPATH=src python -m pytest tests/obs/test_golden_traces.py --regen-golden
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.datasets import GestureSet
from repro.eager import train_eager_recognizer
from repro.obs import MetricsRegistry, PoolObserver, Tracer
from repro.serve import SessionPool

DATA = Path(__file__).parent / "data" / "gdp_strokes.json"
GOLDEN_TRACE = Path(__file__).parent / "golden" / "gdp_trace.ndjson"
GOLDEN_COUNTERS = Path(__file__).parent / "golden" / "gdp_counters.json"

DT = 0.01
TIMEOUT = 0.2
# Every 4th stroke dwells mid-gesture long enough to fire the
# motionless timeout, so the golden trace pins all three decision paths
# (eager, timeout, mouse-up) and the manipulate phase after each.
DWELL_EVERY = 4
DWELL_TICKS = 25


@pytest.fixture(scope="module")
def golden_setup():
    gesture_set = GestureSet.load(DATA)
    recognizer = train_eager_recognizer(gesture_set.strokes_by_class()).recognizer
    # One replay script per stroke: staggered starts, one point per
    # tick, a dwell for every DWELL_EVERY-th stroke, and a short
    # manipulation drag after half the ups.
    scripts = []
    for i, example in enumerate(gesture_set.examples[:24]):
        points = list(example.stroke)
        key = f"s{i}"
        ops: list = [("idle",)] * (i % 7)
        ops.append(("down", key, points[0].x, points[0].y))
        dwell_after = max(2, len(points) // 3) if i % DWELL_EVERY == 3 else None
        for j, p in enumerate(points[1:], start=1):
            ops.append(("move", key, p.x, p.y))
            if j == dwell_after:
                ops.extend([("idle",)] * DWELL_TICKS)
        if i % 2 == 0:  # manipulation drag before release
            last = points[-1]
            for k in range(3):
                ops.append(("move", key, last.x + 5.0 * (k + 1), last.y))
        ops.append(("up", key, points[-1].x, points[-1].y))
        scripts.append(ops)
    return recognizer, scripts


def _replay(recognizer, scripts, batched: bool):
    tracer = Tracer()
    metrics = MetricsRegistry()
    pool = SessionPool(
        recognizer,
        batched=batched,
        timeout=TIMEOUT,
        max_sessions=len(scripts) + 1,
        observer=PoolObserver(metrics=metrics, tracer=tracer),
    )
    n_ticks = max(len(ops) for ops in scripts)
    for tick in range(n_ticks + 1):
        ops = [
            script[tick]
            for script in scripts
            if tick < len(script) and script[tick][0] != "idle"
        ]
        if ops:
            pool.submit(ops, tick * DT)
        pool.advance_to(tick * DT)
    pool.advance_to((n_ticks + 1) * DT + TIMEOUT)
    trace = "\n".join(tracer.lines()) + "\n"
    counters = (
        json.dumps(metrics.snapshot()["counters"], indent=2, sort_keys=True)
        + "\n"
    )
    return trace, counters


def test_golden_trace_matches(golden_setup, regen_golden):
    recognizer, scripts = golden_setup
    trace, counters = _replay(recognizer, scripts, batched=True)
    if regen_golden:
        GOLDEN_TRACE.write_text(trace)
        GOLDEN_COUNTERS.write_text(counters)
    assert trace == GOLDEN_TRACE.read_text()
    assert counters == GOLDEN_COUNTERS.read_text()


def test_trace_byte_stable_across_runs(golden_setup):
    """Two consecutive instrumented replays emit identical bytes."""
    recognizer, scripts = golden_setup
    first = _replay(recognizer, scripts, batched=True)
    second = _replay(recognizer, scripts, batched=True)
    assert first == second


def test_sequential_mode_emits_the_same_trace(golden_setup):
    """The span stream is mode-independent, like the decisions it mirrors."""
    recognizer, scripts = golden_setup
    batched_trace, _ = _replay(recognizer, scripts, batched=True)
    sequential_trace, _ = _replay(recognizer, scripts, batched=False)
    assert sequential_trace == batched_trace


def test_golden_trace_covers_every_phase(golden_setup):
    recognizer, scripts = golden_setup
    trace, _ = _replay(recognizer, scripts, batched=True)
    phases = {
        json.loads(line).get("phase")
        for line in trace.splitlines()
        if '"span"' in line
    }
    assert {"collect", "classify", "timeout", "manipulate"} <= phases
