"""Linear evaluation functions over feature vectors.

Classification in the paper is "done via linear discrimination: each class
has a linear evaluation function (including a constant term) that is
applied to the features, and the class with the maximum evaluation is
chosen" (section 4.2).  :class:`LinearClassifier` is that object: a
``(C, F)`` weight matrix plus a length-``C`` vector of constants.

Two properties the eager-recognition trainer exploits live here:

* constants are mutable, so the trainer can bias the classifier away from
  classes whose misclassification is costly (section 4.6), and
* evaluations double as (unnormalized) log-likelihoods, so a softmax over
  them estimates the probability that the winner is correct — the basis
  of rejection.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["LinearClassifier"]

# Relative score-margin slack under which a batched (matrix-matrix)
# evaluation is not trusted to agree with the sequential (matrix-vector)
# one.  BLAS is free to accumulate the two in different orders, so the
# results can differ in the last few ulps; 2^11 * F * eps is orders of
# magnitude above any such difference while still being vanishingly rare
# as an actual margin between trained classes.
_MARGIN_SLACK_FACTOR = 2048.0 * np.finfo(float).eps


class LinearClassifier:
    """Per-class linear evaluation functions ``v_c(f) = w_c . f + b_c``."""

    def __init__(
        self,
        class_names: Sequence[str],
        weights: np.ndarray,
        constants: np.ndarray,
    ):
        """
        Args:
            class_names: label for each row of ``weights``.
            weights: ``(C, F)`` array of per-class feature weights.
            constants: length-``C`` array of constant terms ``b_c``.
        """
        weights = np.asarray(weights, dtype=float)
        constants = np.asarray(constants, dtype=float)
        if weights.ndim != 2:
            raise ValueError("weights must be a (C, F) matrix")
        if constants.shape != (weights.shape[0],):
            raise ValueError("constants must have one entry per class")
        if len(class_names) != weights.shape[0]:
            raise ValueError("class_names must have one entry per class")
        if len(set(class_names)) != len(class_names):
            raise ValueError("class names must be unique")
        self.class_names = list(class_names)
        self.weights = weights
        self.constants = constants
        self._index = {name: i for i, name in enumerate(self.class_names)}

    @property
    def num_classes(self) -> int:
        return self.weights.shape[0]

    @property
    def num_features(self) -> int:
        return self.weights.shape[1]

    def class_index(self, name: str) -> int:
        """Row index of a class name."""
        return self._index[name]

    def evaluations(self, features: np.ndarray) -> np.ndarray:
        """All class evaluations ``v_c(f)`` for one feature vector."""
        features = np.asarray(features, dtype=float)
        if features.shape != (self.num_features,):
            raise ValueError(
                f"expected {self.num_features} features, got {features.shape}"
            )
        return self.weights @ features + self.constants

    def classify(self, features: np.ndarray) -> str:
        """The class with the maximum evaluation."""
        return self.class_names[int(np.argmax(self.evaluations(features)))]

    def classify_with_scores(self, features: np.ndarray) -> tuple[str, np.ndarray]:
        """Winner plus the full evaluation vector (for rejection logic)."""
        v = self.evaluations(features)
        return self.class_names[int(np.argmax(v))], v

    # -- batched evaluation --------------------------------------------------

    def evaluations_many(self, features: np.ndarray) -> np.ndarray:
        """All class evaluations for a stack of feature vectors.

        Args:
            features: ``(n, F)`` matrix, one feature vector per row.

        Returns:
            ``(n, C)`` matrix of evaluations; row ``i`` is (up to BLAS
            accumulation order) :meth:`evaluations` of ``features[i]``.
        """
        features = np.asarray(features, dtype=float)
        if features.ndim != 2 or features.shape[1] != self.num_features:
            raise ValueError(
                f"expected an (n, {self.num_features}) matrix, "
                f"got {features.shape}"
            )
        return features @ self.weights.T + self.constants

    def classify_many_indices(
        self, features: np.ndarray, extra_tolerance: np.ndarray | None = None
    ) -> np.ndarray:
        """Winning class *row index* for each feature vector in a stack.

        Guaranteed identical to ``[argmax(evaluations(f)) for f in
        features]``: the scores come from one matrix-matrix product, but
        any row whose winning margin is within floating-point slack of
        the runner-up (where a different BLAS accumulation order could
        change the argmax, or an exact tie could break differently) is
        re-evaluated through the sequential :meth:`evaluations` path.

        Args:
            features: ``(n, F)`` matrix.
            extra_tolerance: optional per-row additional margin slack, in
                score units, below which a row is also re-evaluated
                sequentially.  Callers whose *feature rows* are inexact
                (e.g. vectorized incremental features) pass the score
                error bound of that inexactness here; rows with margins
                above it are then provably unaffected by it.
        """
        scores = self.evaluations_many(features)
        winners = np.argmax(scores, axis=1)
        if self.num_classes == 1:
            return winners
        top2 = np.partition(scores, -2, axis=1)[:, -2:]
        margin = top2[:, 1] - top2[:, 0]
        # Scale the slack by the largest absolute term that entered each
        # row's accumulation: |f| . |w|^T + |b| bounds every partial sum.
        magnitude = np.abs(features) @ np.abs(self.weights).T + np.abs(
            self.constants
        )
        tolerance = _MARGIN_SLACK_FACTOR * self.num_features * np.max(
            magnitude, axis=1
        )
        if extra_tolerance is not None:
            tolerance = tolerance + extra_tolerance
        for row in np.flatnonzero(margin <= tolerance):
            winners[row] = int(np.argmax(self.evaluations(features[row])))
        return winners

    def classify_many(
        self, features: np.ndarray, extra_tolerance: np.ndarray | None = None
    ) -> list[str]:
        """Winning class name per row; see :meth:`classify_many_indices`.

        Bit-identical to ``[classify(f) for f in features]``.
        """
        return [
            self.class_names[i]
            for i in self.classify_many_indices(features, extra_tolerance)
        ]

    def probability_correct(self, features: np.ndarray) -> float:
        """Softmax estimate that the winning class is the right one.

        Rubine's rejection rule: with evaluations ``v_j`` and winner ``i``,
        the estimate is ``1 / sum_j exp(v_j - v_i)``.
        """
        v = self.evaluations(features)
        vmax = float(np.max(v))
        return float(1.0 / np.sum(np.exp(np.clip(v - vmax, -500.0, 0.0))))

    def add_to_constant(self, class_name: str, delta: float) -> None:
        """Shift one class's constant term — the paper's biasing knob."""
        self.constants[self._index[class_name]] += delta

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return {
            "class_names": self.class_names,
            "weights": self.weights.tolist(),
            "constants": self.constants.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LinearClassifier":
        return cls(
            class_names=data["class_names"],
            weights=np.array(data["weights"], dtype=float),
            constants=np.array(data["constants"], dtype=float),
        )
