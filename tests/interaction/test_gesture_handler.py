"""Unit tests for the two-phase gesture handler (paper §3.2, §1).

These drive the handler through a real dispatcher + event queue, with
gestures from the synthetic generator, and verify all three phase
transition modes:

1. mouse-up (manipulation omitted),
2. the 200 ms motionless timeout,
3. eager recognition.
"""

import pytest

from repro.events import EventQueue, VirtualClock, perform_gesture, stroke_events
from repro.geometry import BoundingBox, Stroke
from repro.interaction import GestureHandler, GestureSemantics, Phase
from repro.mvc import Dispatcher, View
from repro.synth import GestureGenerator, eight_direction_templates


class WindowView(View):
    def __init__(self):
        super().__init__()
        self._box = BoundingBox(-10_000, -10_000, 10_000, 10_000)

    def bounds(self):
        return self._box


class Trace:
    """Records semantics evaluations for assertions."""

    def __init__(self):
        self.recognized = []  # (class_name, eagerly, point_count)
        self.manips = []  # (x, y)
        self.dones = []  # class_name

    def semantics_for(self, class_names):
        def recog(ctx):
            self.recognized.append(
                (ctx.class_name, ctx.eagerly_recognized, len(ctx.gesture))
            )
            return ctx.class_name

        def manip(ctx):
            self.manips.append((ctx.current_x, ctx.current_y))

        def done(ctx):
            self.dones.append(ctx.class_name)

        return {
            name: GestureSemantics(recog=recog, manip=manip, done=done)
            for name in class_names
        }


@pytest.fixture
def generator():
    return GestureGenerator(eight_direction_templates(), seed=888)


def make_app(recognizer, trace, use_eager=True, use_timeout=True):
    view = WindowView()
    handler = GestureHandler(
        recognizer=recognizer,
        semantics=trace.semantics_for(recognizer.class_names),
        use_eager=use_eager,
        use_timeout=use_timeout,
    )
    view.add_handler(handler)
    queue = EventQueue(VirtualClock())
    dispatcher = Dispatcher(view, queue)
    return handler, queue, dispatcher


class TestMouseUpTransition:
    def test_release_classifies_and_skips_manipulation(
        self, directions_recognizer, generator
    ):
        trace = Trace()
        handler, queue, dispatcher = make_app(
            directions_recognizer, trace, use_eager=False, use_timeout=False
        )
        gesture = generator.generate("ur").stroke
        queue.post_all(stroke_events(gesture))
        dispatcher.run()
        assert len(trace.recognized) == 1
        class_name, eagerly, _ = trace.recognized[0]
        assert class_name == "ur"
        assert not eagerly
        assert trace.manips == []  # manipulation omitted
        assert trace.dones == ["ur"]

    def test_handler_idle_after_interaction(
        self, directions_recognizer, generator
    ):
        trace = Trace()
        handler, queue, dispatcher = make_app(
            directions_recognizer, trace, use_eager=False, use_timeout=False
        )
        queue.post_all(stroke_events(generator.generate("dl").stroke))
        dispatcher.run()
        assert handler.phase is Phase.IDLE


class TestTimeoutTransition:
    def test_dwell_triggers_recognition_before_release(
        self, directions_recognizer, generator
    ):
        trace = Trace()
        handler, queue, dispatcher = make_app(
            directions_recognizer, trace, use_eager=False, use_timeout=True
        )
        gesture = generator.generate("rd").stroke
        manip = Stroke.from_xy([(300, 300), (400, 400)], dt=0.05)
        queue.post_all(
            perform_gesture(gesture, dwell=0.5, manipulation_path=manip)
        )
        dispatcher.run()
        assert len(trace.recognized) == 1
        class_name, eagerly, points = trace.recognized[0]
        assert class_name == "rd"
        assert not eagerly
        assert points == len(gesture)  # classified on the full stroke
        # The two manipulation moves were evaluated with app feedback.
        assert (300, 300) in trace.manips
        assert (400, 400) in trace.manips

    def test_no_timeout_while_mouse_keeps_moving(
        self, directions_recognizer, generator
    ):
        trace = Trace()
        handler, queue, dispatcher = make_app(
            directions_recognizer, trace, use_eager=False, use_timeout=True
        )
        # Continuous motion with 10 ms between samples never dwells 200 ms.
        gesture = generator.generate("lu").stroke
        queue.post_all(stroke_events(gesture))
        dispatcher.run()
        _, _, points = trace.recognized[0]
        assert points == len(gesture)

    def test_custom_timeout_value(self, directions_recognizer, generator):
        trace = Trace()
        view = WindowView()
        handler = GestureHandler(
            recognizer=directions_recognizer,
            semantics=trace.semantics_for(directions_recognizer.class_names),
            use_eager=False,
            use_timeout=True,
            timeout=0.05,
        )
        view.add_handler(handler)
        queue = EventQueue(VirtualClock())
        dispatcher = Dispatcher(view, queue)
        gesture = generator.generate("ur").stroke
        # Dwell 0.1 s: over the custom 50 ms timeout.
        queue.post_all(perform_gesture(gesture, dwell=0.1))
        dispatcher.run()
        assert trace.recognized[0][0] == "ur"


class TestEagerTransition:
    def test_eager_recognition_fires_mid_stroke(
        self, directions_recognizer, generator
    ):
        trace = Trace()
        handler, queue, dispatcher = make_app(
            directions_recognizer, trace, use_eager=True, use_timeout=False
        )
        gesture = generator.generate("ur").stroke
        queue.post_all(stroke_events(gesture))
        dispatcher.run()
        class_name, eagerly, points = trace.recognized[0]
        assert class_name == "ur"
        assert eagerly
        assert points < len(gesture)

    def test_tail_of_stroke_becomes_manipulation(
        self, directions_recognizer, generator
    ):
        # After eager recognition, the rest of the physical stroke is
        # manipulation: §6's insight that "the tail is no longer part of
        # the gesture, but instead part of the manipulation".
        trace = Trace()
        handler, queue, dispatcher = make_app(
            directions_recognizer, trace, use_eager=True, use_timeout=False
        )
        gesture = generator.generate("dr").stroke
        queue.post_all(stroke_events(gesture))
        dispatcher.run()
        _, _, points_at_recog = trace.recognized[0]
        expected_manip_moves = len(gesture) - points_at_recog
        assert len(trace.manips) == expected_manip_moves

    def test_eager_flag_false_for_plain_classifier(
        self, directions_classifier, generator
    ):
        # A non-eager recognizer silently disables eager mode.
        trace = Trace()
        handler, queue, dispatcher = make_app(
            directions_classifier, trace, use_eager=True, use_timeout=False
        )
        assert not handler.use_eager
        queue.post_all(stroke_events(generator.generate("ul").stroke))
        dispatcher.run()
        assert trace.recognized[0][0] == "ul"


class TestInkAndState:
    def test_ink_grows_during_collection(self, directions_recognizer, generator):
        trace = Trace()
        handler, queue, dispatcher = make_app(
            directions_recognizer, trace, use_eager=False, use_timeout=False
        )
        gesture = generator.generate("ur").stroke
        events = stroke_events(gesture)
        dispatcher.dispatch(events[0])
        assert handler.phase is Phase.COLLECTING
        assert len(handler.ink) == 1
        dispatcher.dispatch(events[1])
        assert len(handler.ink) == 2

    def test_unknown_gesture_class_runs_empty_semantics(
        self, directions_recognizer, generator
    ):
        # A gesture whose class has no registered semantics must not crash.
        view = WindowView()
        handler = GestureHandler(recognizer=directions_recognizer, semantics={})
        view.add_handler(handler)
        queue = EventQueue(VirtualClock())
        dispatcher = Dispatcher(view, queue)
        queue.post_all(stroke_events(generator.generate("ur").stroke))
        dispatcher.run()  # no exception
        assert handler.phase is Phase.IDLE

    def test_set_semantics(self, directions_recognizer):
        handler = GestureHandler(recognizer=directions_recognizer)
        semantics = GestureSemantics()
        handler.set_semantics("ur", semantics)
        assert handler.semantics["ur"] is semantics

    def test_recog_result_available_to_manip(self, directions_recognizer, generator):
        seen = []

        def recog(ctx):
            return "the-created-object"

        def manip(ctx):
            seen.append(ctx.recog)

        view = WindowView()
        handler = GestureHandler(
            recognizer=directions_recognizer,
            semantics={
                name: GestureSemantics(recog=recog, manip=manip)
                for name in directions_recognizer.class_names
            },
            use_eager=False,
        )
        view.add_handler(handler)
        queue = EventQueue(VirtualClock())
        dispatcher = Dispatcher(view, queue)
        gesture = generator.generate("ur").stroke
        manip_path = Stroke.from_xy([(10, 10)], dt=0.05)
        queue.post_all(
            perform_gesture(gesture, dwell=0.5, manipulation_path=manip_path)
        )
        dispatcher.run()
        assert seen == ["the-created-object"]
