"""Property-based tests on the stroke algebra and transforms."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Affine, Point, Stroke

coordinates = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)


@st.composite
def strokes(draw, min_points=1, max_points=30):
    n = draw(st.integers(min_value=min_points, max_value=max_points))
    return Stroke(
        Point(draw(coordinates), draw(coordinates), i * 0.01)
        for i in range(n)
    )


@st.composite
def similarities(draw):
    angle = draw(st.floats(min_value=-math.pi, max_value=math.pi))
    scale = draw(st.floats(min_value=0.1, max_value=10.0))
    dx = draw(st.floats(min_value=-100, max_value=100))
    dy = draw(st.floats(min_value=-100, max_value=100))
    return (
        Affine.translation(dx, dy)
        @ Affine.rotation(angle)
        @ Affine.scaling(scale)
    )


class TestSubgestureLaws:
    @given(strokes(), st.data())
    @settings(max_examples=100, deadline=None)
    def test_prefix_law(self, stroke, data):
        # g[i][j] == g[j] for j <= i.
        i = data.draw(st.integers(min_value=0, max_value=len(stroke)))
        j = data.draw(st.integers(min_value=0, max_value=i))
        assert stroke.subgesture(i).subgesture(j) == stroke.subgesture(j)

    @given(strokes(), st.data())
    @settings(max_examples=100, deadline=None)
    def test_subgesture_is_always_prefix(self, stroke, data):
        i = data.draw(st.integers(min_value=0, max_value=len(stroke)))
        assert stroke.subgesture(i).is_prefix_of(stroke)

    @given(strokes(min_points=2), st.data())
    @settings(max_examples=100, deadline=None)
    def test_path_length_monotone_in_prefix(self, stroke, data):
        i = data.draw(st.integers(min_value=1, max_value=len(stroke)))
        assert (
            stroke.subgesture(i).path_length() <= stroke.path_length() + 1e-9
        )

    @given(strokes(min_points=1))
    @settings(max_examples=50, deadline=None)
    def test_path_length_at_least_endpoint_distance(self, stroke):
        assert (
            stroke.path_length()
            >= stroke.start.distance_to(stroke.end) - 1e-9
        )


class TestTransformLaws:
    @given(similarities(), similarities())
    @settings(max_examples=100, deadline=None)
    def test_composition_associativity_on_points(self, t1, t2):
        p = Point(3.0, -7.0)
        via_compose = (t1 @ t2).apply(p)
        via_sequence = t1.apply(t2.apply(p))
        assert via_compose.x == round(via_compose.x, 10) or True
        assert math.isclose(via_compose.x, via_sequence.x, abs_tol=1e-6)
        assert math.isclose(via_compose.y, via_sequence.y, abs_tol=1e-6)

    @given(similarities())
    @settings(max_examples=100, deadline=None)
    def test_inverse_round_trip(self, transform):
        p = Point(11.0, -4.0)
        back = transform.inverse().apply(transform.apply(p))
        assert math.isclose(back.x, p.x, abs_tol=1e-6)
        assert math.isclose(back.y, p.y, abs_tol=1e-6)

    @given(strokes(min_points=2), similarities())
    @settings(max_examples=50, deadline=None)
    def test_similarity_scales_path_length(self, stroke, transform):
        scale = math.sqrt(abs(transform.determinant))
        before = stroke.path_length()
        after = stroke.transformed(transform).path_length()
        assert math.isclose(after, before * scale, rel_tol=1e-6, abs_tol=1e-6)


class TestResampleLaws:
    @given(strokes(min_points=2), st.integers(min_value=2, max_value=64))
    @settings(max_examples=100, deadline=None)
    def test_resample_count_and_endpoints(self, stroke, n):
        resampled = stroke.resampled(n)
        assert len(resampled) == n
        assert math.isclose(resampled.start.x, stroke.start.x, abs_tol=1e-6)
        assert math.isclose(resampled.end.x, stroke.end.x, abs_tol=1e-6)

    @given(strokes(min_points=2), st.integers(min_value=2, max_value=64))
    @settings(max_examples=100, deadline=None)
    def test_resample_does_not_stretch(self, stroke, n):
        resampled = stroke.resampled(n)
        assert resampled.path_length() <= stroke.path_length() + 1e-6


class TestDatasetRoundTrip:
    @given(strokes(min_points=1))
    @settings(max_examples=100, deadline=None)
    def test_example_json_round_trip(self, stroke):
        from repro.datasets import GestureExample

        example = GestureExample(stroke=stroke, class_name="x", corner_indices=())
        clone = GestureExample.from_dict(example.to_dict())
        assert clone == example
