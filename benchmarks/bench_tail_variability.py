"""§6's closing claim — two-phase interaction simplifies recognition.

"Consider the 'move text' gesture ... after the text is selected the
gesture continues and the destination of the text is indicated by the
'tail' of the gesture.  The size and shape of this tail will vary
greatly with each instance ... This variation makes the gesture
difficult to recognize in general, especially when using a trainable
recognizer. ... in a two-phase interaction the tail is no longer part
of the gesture, but instead part of the manipulation.  Trainable
recognition techniques will be much more successful on the remaining
prefix."

The experiment: an editing gesture set in which move-text carries a
random-direction, random-length tail, alongside fixed-stem classes
(pilcrow-style paragraph and footnote marks) the tail can collide with.
Condition A trains and tests on full tailed gestures (the classical
one-shot interaction); condition B trains and tests on prefixes only
(the two-phase interaction, where the tail is manipulation).
"""

import pytest
from conftest import write_report

from repro.recognizer import GestureClassifier
from repro.textedit import TailedGestureGenerator
from repro.textedit.gestures import extended_editing_templates

TRAIN_PER_CLASS = 12
TEST_PER_CLASS = 40


@pytest.fixture(scope="module")
def conditions():
    templates = extended_editing_templates()
    tailed_train = TailedGestureGenerator(templates, seed=151).generate_strokes(
        TRAIN_PER_CLASS, strip_tails=False
    )
    prefix_train = TailedGestureGenerator(templates, seed=151).generate_strokes(
        TRAIN_PER_CLASS, strip_tails=True
    )
    return (
        templates,
        GestureClassifier.train(tailed_train),
        GestureClassifier.train(prefix_train),
    )


def evaluate(templates, clf_tailed, clf_prefix, seed=152):
    test_gen = TailedGestureGenerator(templates, seed=seed)
    per_class = {}
    for class_name in test_gen.class_names:
        tailed_hits = prefix_hits = 0
        for _ in range(TEST_PER_CLASS):
            example = test_gen.generate(class_name)
            tailed_hits += clf_tailed.classify(example.stroke) == class_name
            prefix = example.stroke
            if example.corner_sample_indices:
                prefix = prefix.subgesture(example.corner_sample_indices[0] + 1)
            prefix_hits += clf_prefix.classify(prefix) == class_name
        per_class[class_name] = (
            tailed_hits / TEST_PER_CLASS,
            prefix_hits / TEST_PER_CLASS,
        )
    return per_class


def test_tail_variability_claim(conditions):
    templates, clf_tailed, clf_prefix = conditions
    per_class = evaluate(templates, clf_tailed, clf_prefix)
    rows = [
        f"{name:>16}: one-shot (with tail) {tailed:6.1%}   "
        f"two-phase (prefix) {prefix:6.1%}"
        for name, (tailed, prefix) in per_class.items()
    ]
    overall_tailed = sum(t for t, _ in per_class.values()) / len(per_class)
    overall_prefix = sum(p for _, p in per_class.values()) / len(per_class)
    write_report(
        "tail_variability",
        "§6 claim: the two-phase interaction removes the variable tail\n"
        "from the gesture, making trainable recognition more reliable\n\n"
        + "\n".join(rows)
        + f"\n\noverall: one-shot {overall_tailed:6.1%}   "
        f"two-phase {overall_prefix:6.1%}",
    )
    move_tailed, move_prefix = per_class["move-text"]
    # The headline: the tailed move gesture is hard; its prefix is easy.
    assert move_prefix > move_tailed + 0.15
    assert overall_prefix >= overall_tailed


def test_tail_variability_classification_speed(conditions, benchmark):
    templates, clf_tailed, clf_prefix = conditions
    test_gen = TailedGestureGenerator(templates, seed=153)
    strokes = [
        test_gen.generate(name).stroke for name in test_gen.class_names
        for _ in range(10)
    ]
    benchmark(lambda: [clf_prefix.classify(s) for s in strokes])
