"""Multiprocess fan-out with a deterministic merge.

The pipeline's parallel stages all have the same shape: a list of
independent items, a pure worker, and a merge that must not depend on
the jobs count.  :func:`fan_out` delivers that by construction —
contiguous chunks, ``ProcessPoolExecutor.map`` (which returns results
in submission order regardless of completion order), and a flatten that
preserves item order.  ``jobs=1`` runs the same worker inline in this
process, so the parallel path can never drift from the serial one.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

__all__ = ["fan_out", "split_chunks"]


def split_chunks(items: Sequence, jobs: int) -> list[list]:
    """Contiguous, near-even, non-empty chunks of ``items``.

    At most ``jobs`` chunks; order within and across chunks follows the
    input, so ``[x for chunk in split_chunks(v, j) for x in chunk] == v``
    for every ``j``.
    """
    items = list(items)
    n = len(items)
    parts = max(1, min(jobs, n))
    base, extra = divmod(n, parts)
    chunks = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def _pool_context():
    # fork keeps worker startup cheap (no re-import, no re-pickle of the
    # interpreter state); fall back to the platform default elsewhere.
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def fan_out(
    worker: Callable[[list], list],
    chunks: list[list],
    jobs: int,
    initializer: Callable | None = None,
    initargs: tuple = (),
) -> list[list]:
    """Run ``worker`` over every chunk; results in chunk order.

    With ``jobs <= 1`` (or a single chunk) everything runs inline —
    including ``initializer``, so workers may rely on it
    unconditionally.  ``worker``, ``initializer``, and the chunk
    payloads must be picklable for the multiprocess path.
    """
    if jobs <= 1 or len(chunks) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [worker(chunk) for chunk in chunks]
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(chunks)),
        mp_context=_pool_context(),
        initializer=initializer,
        initargs=initargs,
    ) as pool:
        return list(pool.map(worker, chunks))
