"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures.  The
regenerated artifact (a text table in the shape of the paper's) is
written to ``benchmarks/results/<experiment>.txt`` so it can be compared
with the paper after the run, and the experiment's hot path is measured
with pytest-benchmark.

Perf-trajectory benchmarks additionally publish machine-readable
results at the repo root (``BENCH_<name>.json``, via
:func:`write_bench_json`) so successive PRs can diff throughput and
overhead numbers instead of re-reading prose reports.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

import pytest

from repro.datasets import GestureSet
from repro.eager import EagerTrainingConfig, train_eager_recognizer
from repro.evaluate import evaluate_recognizer
from repro.synth import (
    GenerationParams,
    GestureGenerator,
    eight_direction_templates,
    gdp_templates,
)

RESULTS_DIR = Path(__file__).parent / "results"

# The paper's §5 protocol: 10 training and 30 test examples per class.
TRAIN_PER_CLASS = 10
TEST_PER_CLASS = 30

# Test sets include occasional 270-degree corner loops — the paper's
# dominant eager error mode ("most of the eager recognizer's errors were
# due to a corner looping 270 degrees rather than being a sharp 90
# degrees").  Training data is clean, as a careful trainer's would be.
TEST_PARAMS = GenerationParams(corner_loop_probability=0.08)


REPO_ROOT = Path(__file__).parent.parent


def write_report(name: str, content: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(content + "\n")
    return path


def _git_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def write_bench_json(bench: str, params: dict, results: dict) -> Path:
    """Publish one benchmark's numbers as ``BENCH_<bench>.json``.

    The schema is ``{bench, commit, params, results}``: ``params`` pins
    what was run (so a future PR changing the workload is visible as a
    params diff, not a silent regression) and ``results`` carries the
    measured numbers.
    """
    path = REPO_ROOT / f"BENCH_{bench}.json"
    payload = {
        "bench": bench,
        "commit": _git_commit(),
        "params": params,
        "results": results,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def train_and_evaluate(
    templates: dict,
    train_seed: int,
    test_seed: int,
    config: EagerTrainingConfig | None = None,
    test_params: GenerationParams | None = None,
):
    """Run the full §5 protocol on a template family."""
    train_gen = GestureGenerator(templates, seed=train_seed)
    report = train_eager_recognizer(
        train_gen.generate_strokes(TRAIN_PER_CLASS), config=config
    )
    test_gen = GestureGenerator(
        templates, params=test_params or TEST_PARAMS, seed=test_seed
    )
    test_set = GestureSet.from_generator("test", test_gen, TEST_PER_CLASS)
    result = evaluate_recognizer(report.recognizer, test_set)
    return report, result, test_set


@pytest.fixture(scope="session")
def fig9_experiment():
    """Figure 9: the eight direction-pair classes."""
    return train_and_evaluate(
        eight_direction_templates(), train_seed=101, test_seed=202
    )


@pytest.fixture(scope="session")
def fig10_experiment():
    """Figure 10: the eleven GDP classes."""
    return train_and_evaluate(gdp_templates(), train_seed=303, test_seed=404)
