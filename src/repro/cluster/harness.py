"""Cluster orchestration and the deterministic test/bench driver.

:class:`Cluster` wires the three tentpole pieces together — a
:class:`~repro.cluster.router.Router` in this process and a
:class:`~repro.cluster.supervisor.Supervisor` spawning one
:class:`~repro.cluster.worker` subprocess per shard — and owns the
elasticity choreography: ``drain`` migrates a shard's live sessions
off and retires it in one pass (nobody is evicted), ``join`` spawns a
fresh worker and rebalances exactly the ring-moved sessions onto it,
``scale_to`` walks the live fleet to a target size one move at a time,
and an optional :class:`~repro.cluster.elastic.Autoscaler` drives
``scale_to`` from the router's load samples.

The driver half exists for one claim: *cluster output is byte-identical
to a single pool*.  :func:`workload_ticks` pivots a
:func:`~repro.serve.generate_workload` script (or a fault plan's
``delivered_log``) into per-tick groups; :func:`drive_cluster` plays
them over one TCP connection with an explicit ``tick`` barrier after
each group — the same (apply, advance) cadence
:func:`~repro.serve.run_load` uses — and collects the reply lines per
stroke; :func:`reference_lines` produces what a single
:class:`~repro.serve.SessionPool` says to the identical cadence.
Comparing the two dicts *as strings* is the invariance test.

The driver ends with a trailing tick + ``sweep`` (the drain
``run_load`` performs in-process) and then uses a ``stats`` request as
a completion barrier: each worker answers stats after everything it was
sent earlier, and the router's fleet reply waits on every live worker,
so when the stats reply lands every prior decision has, too.
"""

from __future__ import annotations

import asyncio
import json
from contextlib import suppress

from ..interaction import DEFAULT_TIMEOUT
from ..serve import SessionPool, encode_decision
from .router import Router
from .supervisor import Supervisor

__all__ = [
    "Cluster",
    "drive_cluster",
    "reference_lines",
    "workload_ticks",
]


class Cluster:
    """A router, a supervisor, and N worker processes, as one object."""

    def __init__(
        self,
        recognizer_path: str,
        workers: int = 2,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float | None = None,
        max_sessions: int = 4096,
        heartbeat: float = 0.5,
        backoff_base: float = 0.05,
        metrics: bool = True,
        shard_names=None,
        registry=None,
        framing: str = "lp1",
        no_lp1_shards=(),
        quality: bool = False,
        quality_sample: float = 1.0,
        quality_seed: int = 0,
        min_workers: int = 1,
        max_workers: int | None = None,
        autoscale=False,
        model_cache: int | None = None,
    ):
        from ..obs import MetricsRegistry

        shards = (
            tuple(shard_names)
            if shard_names is not None
            else tuple(f"w{i}" for i in range(workers))
        )
        self.metrics = MetricsRegistry() if metrics else None
        if min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if max_workers is not None and max_workers < min_workers:
            raise ValueError("max_workers must be >= min_workers")
        self.min_workers = min_workers
        self.max_workers = max_workers
        # ``autoscale`` is False (off), True (default-tuned
        # Autoscaler), or a ready-made Autoscaler instance.
        self.autoscale = autoscale
        self._autoscale_task: asyncio.Task | None = None
        self._scale_lock = asyncio.Lock()
        self._next_worker = len(shards)
        # ``framing`` picks the router→worker wire ("lp1" negotiated
        # per link, "ndjson" legacy); ``no_lp1_shards`` spawns selected
        # workers with --no-lp1, producing a mixed fleet where those
        # links fall back to NDJSON — outputs are byte-identical either
        # way, which tests assert.
        self.router = Router(
            shards, host=host, port=port, metrics=self.metrics,
            registry=registry, worker_framing=framing,
        )
        self.supervisor = Supervisor(
            recognizer_path,
            shards,
            timeout=timeout,
            max_sessions=max_sessions,
            heartbeat=heartbeat,
            backoff_base=backoff_base,
            on_up=self.router.worker_up,
            on_down=self.router.worker_down,
            registry=registry,
            no_lp1_shards=no_lp1_shards,
            quality=quality,
            quality_sample=quality_sample,
            quality_seed=quality_seed,
            model_cache=model_cache,
        )
        self.router.drain_hook = self.drain
        self.router.scale_hook = self.scale_to
        self.router.supervisor_status = self.supervisor.status

    async def start(self) -> None:
        await self.router.start()
        await self.supervisor.start()
        if self.autoscale:
            from .elastic import Autoscaler

            scaler = (
                self.autoscale
                if isinstance(self.autoscale, Autoscaler)
                else Autoscaler(
                    min_workers=self.min_workers,
                    max_workers=(
                        self.max_workers
                        if self.max_workers is not None
                        else max(self.min_workers, 8)
                    ),
                )
            )
            self._autoscale_task = asyncio.get_running_loop().create_task(
                scaler.run(self.router.load_sample, self.scale_to)
            )

    async def stop(self) -> None:
        if self._autoscale_task is not None:
            self._autoscale_task.cancel()
            with suppress(asyncio.CancelledError):
                await self._autoscale_task
            self._autoscale_task = None
        await self.supervisor.stop()
        await self.router.stop()

    async def __aenter__(self) -> "Cluster":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    @property
    def address(self) -> tuple[str, int]:
        return self.router.address

    def status(self) -> dict:
        return self.router.status()

    def kill(self, shard: str) -> int | None:
        """SIGKILL one worker; the supervisor will restart it."""
        return self.supervisor.kill(shard)

    async def wait_all_up(self, timeout: float = 30.0) -> None:
        """Block until every non-retired shard is spawned and connected."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while True:
            pending = [
                shard
                for shard, link in self.router.links.items()
                if shard not in self.router.retired and link.state != "up"
            ]
            if not pending:
                return
            if loop.time() >= deadline:
                raise TimeoutError(f"shards never came up: {pending}")
            await asyncio.sleep(0.02)

    async def wait_recovered(
        self, shard: str, ups_before: int, timeout: float = 60.0
    ) -> None:
        """Block until ``shard`` has *reconnected* since ``ups_before``.

        Death detection is asynchronous — immediately after a SIGKILL
        the link still reads "up" — so crash tests snapshot
        ``router.links[shard].ups`` before killing and wait here for it
        to move, which proves the death was noticed, the worker
        respawned, and the journal replay was enqueued.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        link = self.router.links[shard]
        while not (link.ups > ups_before and link.state == "up"):
            if loop.time() >= deadline:
                raise TimeoutError(
                    f"{shard} never recovered (ups {link.ups}, "
                    f"state {link.state})"
                )
            await asyncio.sleep(0.02)

    async def drain(self, shard: str) -> None:
        """Gracefully retire ``shard``: spill new sessions to the ring
        successors and *migrate* its live sessions off — journal replay
        into each session's new shard, byte-identical, nobody evicted —
        then terminate the worker.

        Migration is synchronous router work, so the drain completes in
        one pass regardless of client behaviour: a client that opened a
        session and went silent simply carries its session to another
        shard.  The shard stays in the ring but in the ``retired`` skip
        set — by skip-spill equivalence, removing it would change no
        route, and keeping it keeps every historical journal seq valid.
        """
        if shard in self.router.draining or shard in self.router.retired:
            return
        loop = asyncio.get_running_loop()
        started = loop.time()
        self.router.draining.add(shard)
        if self.metrics is not None:
            self.metrics.counter("cluster.drains").inc()
        # Freeze, then move: quiesce() resolves every in-flight sweep,
        # and migrate_off runs in the same synchronous continuation.
        await self.router.quiesce()
        self.router.migrate_off(shard)
        await self.supervisor.retire(shard)
        self.router.retired.add(shard)
        self.router.draining.discard(shard)
        if self.metrics is not None:
            self.metrics.histogram(
                "cluster.drain_seconds", (0.1, 1.0, 10.0, 60.0)
            ).observe(loop.time() - started)

    async def join(self, shard: str | None = None) -> str:
        """Scale out by one worker: register its link, spawn it, wait
        until the router is connected, then rebalance — migrating
        exactly the sessions the grown ring assigns to the newcomer
        (the :meth:`HashRing.plan_rebalance` minimum) and no others.
        """
        if shard is None:
            while shard is None or shard in self.router.links:
                shard = f"w{self._next_worker}"
                self._next_worker += 1
        self.router.add_shard(shard)
        await self.supervisor.add_shard(shard)
        await self.router.quiesce()
        self.router.rebalance(self.router.ring.with_shard(shard))
        if self.metrics is not None:
            self.metrics.counter("cluster.joins").inc()
        return shard

    async def scale_to(self, workers: int) -> None:
        """Walk the live fleet to ``workers`` shards, one join or drain
        at a time, clamped to ``[min_workers, max_workers]``.

        Serialized on a lock so an admin ``scale`` op and the
        autoscaler can never interleave half-finished topology moves.
        """
        target = max(self.min_workers, workers)
        if self.max_workers is not None:
            target = min(target, self.max_workers)
        async with self._scale_lock:
            while True:
                live = [
                    s
                    for s in self.router.links
                    if s not in self.router.retired
                    and s not in self.router.draining
                ]
                if len(live) < target:
                    await self.join()
                elif len(live) > target:
                    # Shrink newest-first: the highest-numbered live
                    # shard is the cheapest to empty again.
                    await self.drain(live[-1])
                else:
                    return


def workload_ticks(source, dt: float = 0.01):
    """Pivot ops into ``[(t, [op, ...]), ...]`` tick groups.

    ``source`` is either a :func:`~repro.serve.generate_workload` script
    (list of per-client op lists; tick ``k`` is ``t = k * dt``, client
    order preserved within a tick, as in ``run_load``) or a
    ``delivered_log`` from a faulted ``run_load`` (``(t, op)`` pairs,
    already timestamped — the post-fault ground truth).
    """
    if source and isinstance(source[0], tuple):  # a delivered_log
        ticks: list[tuple[float, list]] = []
        for t, op in source:
            if ticks and ticks[-1][0] == t:
                ticks[-1][1].append(op)
            else:
                ticks.append((t, [op]))
        return ticks
    n_ticks = max((len(ops) for ops in source), default=0)
    out = []
    for k in range(n_ticks):
        group = [
            ops[k]
            for ops in source
            if k < len(ops) and ops[k][0] != "idle"
        ]
        out.append((k * dt, group))
    return out


async def drive_cluster(
    host: str,
    port: int,
    ticks,
    *,
    end_t: float | None = None,
    sweep_idle: float = 0.0,
    before_tick=None,
    before_barrier=None,
    barrier_timeout: float = 120.0,
):
    """Play tick groups against a server; return per-stroke reply lines.

    Works against a :class:`~repro.serve.GestureServer` or a
    :class:`~repro.cluster.router.Router` alike — the protocol is the
    same, which is the invariant under test.  ``before_tick(i, t)``
    runs ahead of group ``i`` (chaos hooks inject crashes here);
    ``before_barrier()`` runs after the final sweep, before the
    ``stats`` completion barrier (crash tests wait for the fleet to
    heal here, so the barrier covers the replay too).

    Returns ``(replies, stats)``: ``replies`` maps each stroke id to
    its reply lines in arrival order; ``stats`` is the decoded barrier
    reply.
    """
    reader, writer = await asyncio.open_connection(host, port)
    replies: dict[str, list[str]] = {}
    stats: dict | None = None
    done = asyncio.Event()

    async def read_replies() -> None:
        nonlocal stats
        while True:
            raw = await reader.readline()
            if not raw:
                break
            obj = json.loads(raw)
            if obj.get("kind") == "stats":
                stats = obj
                done.set()
                break
            replies.setdefault(obj.get("stroke", ""), []).append(
                raw.decode().rstrip("\n")
            )

    read_task = asyncio.get_running_loop().create_task(read_replies())
    try:
        for i, (t, group) in enumerate(ticks):
            if before_tick is not None:
                await before_tick(i, t)
            out = [
                json.dumps(
                    {"op": name, "stroke": key, "x": x, "y": y, "t": t}
                )
                for name, key, x, y in group
            ]
            out.append(json.dumps({"op": "tick", "t": t}))
            writer.write(("\n".join(out) + "\n").encode())
            await writer.drain()
        tail = []
        if end_t is not None:
            tail.append(json.dumps({"op": "tick", "t": end_t}))
        tail.append(json.dumps({"op": "sweep", "max_idle": sweep_idle}))
        writer.write(("\n".join(tail) + "\n").encode())
        await writer.drain()
        if before_barrier is not None:
            await before_barrier()
        writer.write(b'{"op": "stats"}\n')
        await writer.drain()
        await asyncio.wait_for(done.wait(), timeout=barrier_timeout)
    finally:
        read_task.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return replies, stats


def reference_lines(
    recognizer,
    ticks,
    *,
    end_t: float | None = None,
    sweep_idle: float = 0.0,
    timeout: float = DEFAULT_TIMEOUT,
    batched: bool = True,
    max_sessions: int = 4096,
) -> dict[str, list[str]]:
    """What one :class:`SessionPool` replies to the same cadence.

    The pool is driven exactly as :func:`~repro.serve.run_load` drives
    it — submit each tick's ops, advance to the tick's time — and the
    decisions are encoded with the protocol encoder, so the returned
    per-stroke line lists are directly comparable (``==``) with
    :func:`drive_cluster`'s.
    """
    pool = SessionPool(
        recognizer, timeout=timeout, batched=batched, max_sessions=max_sessions
    )
    replies: dict[str, list[str]] = {}

    def emit(decisions) -> None:
        for d in decisions:
            replies.setdefault(d.key, []).append(encode_decision(d, d.key))

    for t, group in ticks:
        if group:
            pool.submit(group, t)
        emit(pool.advance_to(t))
    if end_t is not None:
        emit(pool.advance_to(end_t))
    emit(pool.evict_idle(sweep_idle))
    return replies
