"""repro — a reproduction of Rubine's *Integrating Gesture Recognition and
Direct Manipulation* (USENIX 1991).

The package provides, bottom to top:

* :mod:`repro.geometry` — points, strokes, transforms;
* :mod:`repro.features` — Rubine's 13 features, batch and incremental;
* :mod:`repro.recognizer` — the statistical full classifier;
* :mod:`repro.eager` — eager recognition (train + runtime);
* :mod:`repro.events` — synthetic mouse events and the virtual clock;
* :mod:`repro.mvc` — the GRANDMA model/view/event-handler architecture;
* :mod:`repro.interaction` — the two-phase interaction technique;
* :mod:`repro.gdp` — GDP, the gesture-based drawing program;
* :mod:`repro.synth` — parametric gesture generation;
* :mod:`repro.datasets` — labelled gesture sets and JSON persistence;
* :mod:`repro.evaluate` — the paper's evaluation harness;
* :mod:`repro.baselines` — comparison recognizers;
* :mod:`repro.multipath` — the multi-finger future-work extension;
* :mod:`repro.multistroke` — the multi-stroke future-work extension;
* :mod:`repro.textedit` — the figure-1 move-text editor scenario;
* :mod:`repro.gscore` — a mini score editor on figure 8's note gestures.

Quickstart::

    from repro import GestureGenerator, eight_direction_templates
    from repro import train_eager_recognizer

    gen = GestureGenerator(eight_direction_templates(), seed=1)
    report = train_eager_recognizer(gen.generate_strokes(10))
    result = report.recognizer.recognize(gen.generate("ur").stroke)
    print(result.class_name, result.fraction_seen)
"""

from .eager import (
    EagerRecognizer,
    EagerResult,
    EagerSession,
    EagerTrainingConfig,
    EagerTrainingReport,
    train_eager_recognizer,
)
from .features import FEATURE_NAMES, NUM_FEATURES, IncrementalFeatures, features_of
from .geometry import Affine, BoundingBox, Point, Stroke
from .recognizer import GestureClassifier, RejectionPolicy
from .synth import (
    GeneratedGesture,
    GenerationParams,
    GestureGenerator,
    GestureTemplate,
    eight_direction_templates,
    gdp_templates,
    note_templates,
    ud_templates,
)

__version__ = "1.0.0"

__all__ = [
    "Affine",
    "BoundingBox",
    "EagerRecognizer",
    "EagerResult",
    "EagerSession",
    "EagerTrainingConfig",
    "EagerTrainingReport",
    "FEATURE_NAMES",
    "GeneratedGesture",
    "GenerationParams",
    "GestureClassifier",
    "GestureGenerator",
    "GestureTemplate",
    "IncrementalFeatures",
    "NUM_FEATURES",
    "Point",
    "RejectionPolicy",
    "Stroke",
    "eight_direction_templates",
    "features_of",
    "gdp_templates",
    "note_templates",
    "train_eager_recognizer",
    "ud_templates",
    "__version__",
]
