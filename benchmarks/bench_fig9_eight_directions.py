"""Figure 9 — the eager recognizer on the eight direction-pair classes.

Paper numbers (USENIX 1991, §5):

* full classifier:  99.2% correct
* eager recognizer: 97.0% correct
* points examined before classification: 67.9% on average
* hand-determined minimum (through the corner turn): 59.4%

The reproduction regenerates the same protocol (10 train / 30 test per
class) on synthetic gestures, writes a figure-9-style per-example grid
to ``results/fig9_eight_directions.txt``, and asserts the paper's
qualitative shape: full >= eager in accuracy, and the eager recognizer
examines more than the oracle minimum but much less than the whole
gesture.
"""

from conftest import write_report

from repro.evaluate import figure9_grid, render_eager_examples, summary_row


def test_fig9_shape_and_report(fig9_experiment):
    report, result, test_set = fig9_experiment

    # Figure 9's stroke drawings: '.' ambiguous, '#' unambiguous-but-not-
    # yet-classified (the eagerness shortfall), '*' the classification
    # point, 'o' the manipulated tail.
    art_rows = []
    picked = set()
    for example, outcome in zip(test_set, result.outcomes):
        if outcome.class_name in picked or len(picked) >= 4:
            continue
        picked.add(outcome.class_name)
        art_rows.append(
            (
                outcome.class_name,
                example.stroke,
                outcome.points_seen,
                outcome.oracle_points,
            )
        )

    lines = [
        "Figure 9 reproduction: eight direction-pair gesture classes",
        "paper:   full 99.2%   eager 97.0%   seen 67.9%   oracle 59.4%",
        summary_row("reproduction", result),
        "",
        "Per-example grid (oracle,seen/total; E = eager error, F = full error):",
        figure9_grid(result, per_row=6, max_rows_per_class=2),
        "",
        "Example strokes ('.' ambiguous, '#' shortfall, '*' classified, 'o' after):",
        render_eager_examples(art_rows, cols=26, rows=9),
        "",
        "Eager confusion matrix:",
        result.eager_confusion.to_table(),
    ]
    write_report("fig9_eight_directions", "\n".join(lines))

    # Who wins, and by roughly what factor (the shape, not the digits):
    assert result.full_accuracy >= result.eager_accuracy
    assert result.full_accuracy > 0.95
    assert result.eager_accuracy > 0.90
    # Eagerness sits between the oracle minimum and the whole gesture.
    seen = result.eagerness.mean_fraction_seen
    oracle = result.eagerness.mean_oracle_fraction
    assert oracle < seen < 0.95
    assert 0.4 < oracle < 0.75  # the corner sits near mid-gesture


def test_fig9_recognition_throughput(fig9_experiment, benchmark):
    report, result, test_set = fig9_experiment
    strokes = [example.stroke for example in test_set][:40]

    def recognize_all():
        return [report.recognizer.recognize(s).class_name for s in strokes]

    labels = benchmark(recognize_all)
    assert len(labels) == len(strokes)


def test_fig9_training_time(benchmark):
    from conftest import TRAIN_PER_CLASS

    from repro.eager import train_eager_recognizer
    from repro.synth import GestureGenerator, eight_direction_templates

    train = GestureGenerator(
        eight_direction_templates(), seed=11
    ).generate_strokes(TRAIN_PER_CLASS)
    report = benchmark(lambda: train_eager_recognizer(train))
    assert report.recognizer is not None
