"""Property-based tests on classifier invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.recognizer import (
    LinearClassifier,
    MahalanobisMetric,
    train_linear_classifier,
)

finite = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


@st.composite
def linear_classifiers(draw, num_classes=3, num_features=4):
    weights = np.array(
        [
            [draw(finite) for _ in range(num_features)]
            for _ in range(num_classes)
        ]
    )
    constants = np.array([draw(finite) for _ in range(num_classes)])
    names = [f"c{i}" for i in range(num_classes)]
    return LinearClassifier(names, weights, constants)


@st.composite
def feature_vectors(draw, num_features=4):
    return np.array([draw(finite) for _ in range(num_features)])


class TestArgmaxConsistency:
    @given(linear_classifiers(), feature_vectors())
    @settings(max_examples=150, deadline=None)
    def test_classify_is_argmax_of_evaluations(self, classifier, features):
        winner, scores = classifier.classify_with_scores(features)
        assert scores[classifier.class_index(winner)] == max(scores)

    @given(linear_classifiers(), feature_vectors(), finite)
    @settings(max_examples=100, deadline=None)
    def test_uniform_constant_shift_never_changes_winner(
        self, classifier, features, shift
    ):
        before = classifier.classify(features)
        for name in classifier.class_names:
            classifier.add_to_constant(name, shift)
        after, scores = classifier.classify_with_scores(features)
        if after != before:
            # The invariant is exact in real arithmetic but not in
            # floats: scores that differ by less than one ulp at the
            # shifted magnitude can collapse into an exact tie, and the
            # argmax then picks the lower index.  Only that collapse is
            # acceptable — a genuine reordering still fails.
            assert scores[classifier.class_index(after)] == (
                scores[classifier.class_index(before)]
            )

    @given(linear_classifiers(), feature_vectors())
    @settings(max_examples=100, deadline=None)
    def test_probability_in_unit_interval(self, classifier, features):
        p = classifier.probability_correct(features)
        assert 0.0 < p <= 1.0 + 1e-12

    @given(linear_classifiers(), feature_vectors())
    @settings(max_examples=100, deadline=None)
    def test_serialization_preserves_decision(self, classifier, features):
        clone = LinearClassifier.from_dict(classifier.to_dict())
        assert clone.classify(features) == classifier.classify(features)


@st.composite
def spd_metrics(draw, dim=3):
    # Build a symmetric positive-definite matrix A'A + eps*I.
    a = np.array([[draw(finite) for _ in range(dim)] for _ in range(dim)])
    return MahalanobisMetric(a.T @ a / 100.0 + np.eye(dim) * 0.1)


class TestMetricProperties:
    @given(spd_metrics(), feature_vectors(3), feature_vectors(3))
    @settings(max_examples=150, deadline=None)
    def test_symmetry_and_nonnegativity(self, metric, x, y):
        d_xy = metric.squared_distance(x, y)
        d_yx = metric.squared_distance(y, x)
        assert d_xy >= 0.0
        assert abs(d_xy - d_yx) <= 1e-6 * max(1.0, d_xy)

    @given(spd_metrics(), feature_vectors(3))
    @settings(max_examples=100, deadline=None)
    def test_identity_of_indiscernibles(self, metric, x):
        assert metric.squared_distance(x, x) == 0.0

    @given(spd_metrics(), feature_vectors(3), feature_vectors(3))
    @settings(max_examples=100, deadline=None)
    def test_translation_invariance(self, metric, x, y):
        shift = np.ones(3) * 17.0
        d1 = metric.squared_distance(x, y)
        d2 = metric.squared_distance(x + shift, y + shift)
        assert abs(d1 - d2) <= 1e-6 * max(1.0, d1)


class TestTrainerProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_training_examples_mostly_classified_correctly(self, seed):
        rng = np.random.default_rng(seed)
        centers = rng.uniform(-50, 50, size=(3, 5))
        # Force separation.
        centers[1] += 100.0
        centers[2] -= 100.0
        examples = {
            f"c{i}": [
                centers[i] + rng.normal(0, 1.0, size=5) for _ in range(12)
            ]
            for i in range(3)
        }
        result = train_linear_classifier(examples)
        hits = sum(
            result.classifier.classify(v) == name
            for name, vectors in examples.items()
            for v in vectors
        )
        assert hits / 36 > 0.9

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_classification_matches_nearest_mahalanobis_mean(self, seed):
        # §4.2: the linear classifier equals nearest-class-mean under the
        # shared Mahalanobis metric (equal priors).
        rng = np.random.default_rng(seed)
        examples = {
            "a": [rng.normal(0, 1, size=4) for _ in range(20)],
            "b": [rng.normal(6, 1, size=4) for _ in range(20)],
        }
        result = train_linear_classifier(examples)
        for _ in range(10):
            probe = rng.normal(3, 3, size=4)
            by_linear = result.classifier.classify(probe)
            index, _ = result.metric.nearest(probe, result.means)
            by_metric = result.classifier.class_names[index]
            assert by_linear == by_metric
