"""Unit tests for repro.geometry.point."""

import math

import pytest

from repro.geometry import Point, angle_between, distance, midpoint


class TestPoint:
    def test_fields(self):
        p = Point(1.0, 2.0, 3.0)
        assert (p.x, p.y, p.t) == (1.0, 2.0, 3.0)

    def test_time_defaults_to_zero(self):
        assert Point(1.0, 2.0).t == 0.0

    def test_points_are_immutable(self):
        p = Point(1.0, 2.0)
        with pytest.raises(AttributeError):
            p.x = 5.0

    def test_equality_by_value(self):
        assert Point(1.0, 2.0, 3.0) == Point(1.0, 2.0, 3.0)
        assert Point(1.0, 2.0, 3.0) != Point(1.0, 2.0, 4.0)

    def test_hashable(self):
        assert len({Point(0, 0), Point(0, 0), Point(1, 0)}) == 2

    def test_as_tuple(self):
        assert Point(1.0, 2.0, 3.0).as_tuple() == (1.0, 2.0, 3.0)


class TestPointOperations:
    def test_translated(self):
        p = Point(1.0, 2.0, 9.0).translated(3.0, -1.0)
        assert p == Point(4.0, 1.0, 9.0)

    def test_translated_preserves_time(self):
        assert Point(0, 0, 7.5).translated(1, 1).t == 7.5

    def test_scaled_uniform(self):
        assert Point(2.0, 3.0).scaled(2.0) == Point(4.0, 6.0)

    def test_scaled_anisotropic(self):
        assert Point(2.0, 3.0).scaled(2.0, 10.0) == Point(4.0, 30.0)

    def test_rotated_quarter_turn_about_origin(self):
        p = Point(1.0, 0.0).rotated(math.pi / 2)
        assert p.x == pytest.approx(0.0, abs=1e-12)
        assert p.y == pytest.approx(1.0)

    def test_rotated_about_center(self):
        p = Point(2.0, 1.0).rotated(math.pi, cx=1.0, cy=1.0)
        assert p.x == pytest.approx(0.0, abs=1e-12)
        assert p.y == pytest.approx(1.0)

    def test_distance_to(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_ignores_time(self):
        assert Point(0, 0, 0).distance_to(Point(0, 0, 99)) == 0.0


class TestModuleFunctions:
    def test_distance_function(self):
        assert distance(Point(0, 0), Point(0, 2)) == pytest.approx(2.0)

    def test_midpoint_averages_time(self):
        m = midpoint(Point(0, 0, 0), Point(2, 4, 6))
        assert (m.x, m.y, m.t) == (1.0, 2.0, 3.0)

    def test_angle_between_cardinal_directions(self):
        origin = Point(0, 0)
        assert angle_between(origin, Point(1, 0)) == pytest.approx(0.0)
        assert angle_between(origin, Point(0, 1)) == pytest.approx(math.pi / 2)
        assert angle_between(origin, Point(-1, 0)) == pytest.approx(math.pi)

    def test_angle_between_coincident_points_is_zero(self):
        # Degenerate segments occur in real traces; must not raise.
        assert angle_between(Point(5, 5), Point(5, 5)) == 0.0
