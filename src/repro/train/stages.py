"""The six training stages, as pure payload-to-payload functions.

Each stage maps JSON-serializable inputs to a JSON-serializable output:

1. **manifest** — freeze the dataset: class order + every stroke's points.
2. **features** — the full-gesture feature vector of every example.
3. **classifier** — per-class statistics, merged into the full classifier.
4. **subgestures** — label every prefix of every example (§4.4).
5. **auc** — partition, move accidental completes, train + tweak (§4.5–4.6).
6. **package** — assemble the :class:`~repro.eager.EagerRecognizer` dict.

Stages 2–4 fan out over examples/classes via :func:`repro.train.parallel.
fan_out`; their merges are fixed in manifest order, so the output — and
therefore the packaged model's content hash — is bit-identical for any
jobs count.  Bit-identity with the in-memory
:func:`~repro.eager.train_eager_recognizer` holds too, because each stage
runs the *same* functions on the same floats: JSON round-trips IEEE
doubles exactly (``repr``-based serialization), the per-class scatter is
accumulated in class order from zeros exactly as
:func:`~repro.recognizer.pooled_covariance` does, and labelling/AUC
construction call :func:`~repro.eager.label_example` and
:func:`~repro.eager.build_auc` directly.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..datasets import GestureSet
from ..eager import (
    AmbiguityClassifier,
    EagerRecognizer,
    EagerTrainingConfig,
    ExampleLabelling,
    LabelledSubgesture,
    build_auc,
    label_example,
    partition_subgestures,
)
from ..features import features_of
from ..geometry import Point, Stroke
from ..hashing import content_hash, short_hash
from ..recognizer import (
    GestureClassifier,
    LinearClassifier,
    MahalanobisMetric,
    TrainingResult,
    regularized_inverse,
)
from ..synth import GestureGenerator, family_templates
from .parallel import fan_out, split_chunks
from .spec import TrainJobSpec

__all__ = [
    "STAGES",
    "stage_key",
    "manifest_params",
    "build_manifest",
    "run_features",
    "run_classifier",
    "run_subgestures",
    "run_auc",
    "run_package",
]

STAGES = ("manifest", "features", "classifier", "subgestures", "auc", "package")

# Bump a stage's version whenever its computation changes meaning, so
# stale cached objects from older code can never be replayed into new runs.
_STAGE_VERSIONS = {
    "manifest": 1,
    "features": 1,
    "classifier": 1,
    "subgestures": 1,
    "auc": 1,
    "package": 1,
}


def stage_key(stage: str, inputs: dict, params: dict) -> str:
    """Cache key of one stage invocation.

    ``inputs`` maps input names to *content hashes of upstream outputs*
    (not stage keys), so two specs that happen to produce an identical
    intermediate share everything downstream of it.  The jobs count is
    deliberately absent: parallelism changes how fast a stage runs,
    never what it produces.
    """
    return short_hash(
        {
            "stage": stage,
            "v": _STAGE_VERSIONS[stage],
            "inputs": inputs,
            "params": params,
        }
    )


# -- stage 1: manifest ---------------------------------------------------------


def manifest_params(spec: TrainJobSpec) -> dict:
    """The manifest stage's key parameters.

    A dataset file is keyed by its parsed *content*, so reformatting or
    moving the file does not re-key the pipeline, while editing a stroke
    does.
    """
    if spec.family:
        return {
            "source": "family",
            "family": spec.family,
            "examples": spec.examples,
            "seed": spec.seed,
        }
    return {
        "source": "dataset",
        "content": content_hash(json.loads(Path(spec.dataset).read_text())),
    }


def build_manifest(spec: TrainJobSpec) -> dict:
    """Freeze the training data: class order plus every stroke's points.

    Examples are listed in class-major order — the order
    :func:`~repro.eager.label_examples` numbers them — so ``example_id``
    is simply the index into this list everywhere downstream.
    """
    if spec.family:
        generator = GestureGenerator(family_templates(spec.family), seed=spec.seed)
        strokes_by_class = generator.generate_strokes(spec.examples)
    else:
        strokes_by_class = GestureSet.load(spec.dataset).strokes_by_class()
    classes = list(strokes_by_class.keys())
    examples = [
        {"class": name, "points": [[p.x, p.y, p.t] for p in stroke]}
        for name in classes
        for stroke in strokes_by_class[name]
    ]
    return {"classes": classes, "examples": examples}


def _stroke_from_points(points: list) -> Stroke:
    return Stroke(Point(x, y, t) for x, y, t in points)


# -- stage 2: features ---------------------------------------------------------


def _featurize_chunk(chunk: list) -> list:
    """Worker: ``(index, points)`` pairs to ``(index, vector)`` pairs."""
    return [
        (index, features_of(_stroke_from_points(points)).tolist())
        for index, points in chunk
    ]


def run_features(manifest: dict, jobs: int = 1) -> dict:
    """Full-gesture feature vector of every manifest example."""
    items = [(i, ex["points"]) for i, ex in enumerate(manifest["examples"])]
    vectors: list = [None] * len(items)
    # Featurizing one example is tens of microseconds, while a forked
    # worker costs ~10ms before it does anything; a worker needs a few
    # hundred examples to amortize that, so below 512 per worker
    # fan_out degrades toward serial rather than losing to it.
    for chunk in fan_out(
        _featurize_chunk, split_chunks(items, jobs), jobs, min_chunk=512
    ):
        for index, vector in chunk:
            vectors[index] = vector
    return {
        "classes": list(manifest["classes"]),
        "examples": [
            {"class": ex["class"], "vector": vectors[i]}
            for i, ex in enumerate(manifest["examples"])
        ],
    }


# -- stage 3: classifier -------------------------------------------------------


def _class_stats_chunk(chunk: list) -> list:
    """Worker: per-class mean / scatter / count.

    The mean and centered scatter use the exact expressions of
    :func:`~repro.recognizer.train_linear_classifier` and
    :func:`~repro.recognizer.pooled_covariance`, so the merged classifier
    matches the in-memory one bit for bit.
    """
    out = []
    for name, vectors in chunk:
        arr = np.asarray(vectors, dtype=float)
        mean = arr.mean(axis=0)
        centered = arr - mean
        scatter = centered.T @ centered
        out.append(
            {
                "class": name,
                "mean": mean.tolist(),
                "scatter": scatter.tolist(),
                "count": len(vectors),
            }
        )
    return out


def run_classifier(features: dict, jobs: int = 1) -> dict:
    """Merge per-class statistics into the full classifier's dict.

    The merge is fixed in manifest class order: means are stacked and the
    scatter accumulated from zeros class by class — the same reduction
    order as :func:`~repro.recognizer.pooled_covariance` — so any jobs
    count reproduces the serial result exactly.
    """
    classes = list(features["classes"])
    by_class: dict[str, list] = {name: [] for name in classes}
    for ex in features["examples"]:
        by_class[ex["class"]].append(ex["vector"])
    items = [(name, by_class[name]) for name in classes]
    stats: dict[str, dict] = {}
    # One item = one class (a mean + a BLAS matmul): sub-millisecond,
    # far below the fork/pickle tax, so this stage only forks on class
    # counts large enough to give every worker a real batch.
    for chunk in fan_out(
        _class_stats_chunk, split_chunks(items, jobs), jobs, min_chunk=8
    ):
        for entry in chunk:
            stats[entry["class"]] = entry

    means = np.vstack(
        [np.asarray(stats[name]["mean"], dtype=float) for name in classes]
    )
    num_features = means.shape[1]
    scatter = np.zeros((num_features, num_features))
    total = 0
    for name in classes:
        scatter += np.asarray(stats[name]["scatter"], dtype=float)
        total += stats[name]["count"]
    denom = max(total - len(classes), 1)
    inv_cov = regularized_inverse(scatter / denom)

    weights = means @ inv_cov.T
    constants = -0.5 * np.einsum("cf,cf->c", weights, means)
    classifier = GestureClassifier(
        TrainingResult(
            classifier=LinearClassifier(classes, weights, constants),
            means=means,
            metric=MahalanobisMetric(inv_cov),
        )
    )
    return classifier.to_dict()


# -- stage 4: subgestures ------------------------------------------------------

# Per-process worker state, shipped once via the fan_out initializer
# instead of once per chunk.
_WORKER: dict = {}


def _init_labeller(classifier_payload: dict, min_points: int) -> None:
    _WORKER["classifier"] = GestureClassifier.from_dict(classifier_payload)
    _WORKER["min_points"] = min_points


def _label_chunk(chunk: list) -> list:
    """Worker: label every prefix of each ``(id, class, points)`` example."""
    out = []
    for example_id, true_class, points in chunk:
        labelling = label_example(
            _WORKER["classifier"],
            _stroke_from_points(points),
            true_class,
            example_id,
            _WORKER["min_points"],
        )
        subs = labelling.subgestures
        out.append(
            {
                "id": example_id,
                "class": true_class,
                "lengths": [sub.length for sub in subs],
                "vectors": [sub.features.tolist() for sub in subs],
                "predicted": [sub.predicted for sub in subs],
                "complete": [sub.complete for sub in subs],
            }
        )
    return out


def run_subgestures(
    manifest: dict, classifier_payload: dict, min_points: int, jobs: int = 1
) -> dict:
    """Label every subgesture of every example (§4.4), fanned out by example."""
    items = [
        (i, ex["class"], ex["points"])
        for i, ex in enumerate(manifest["examples"])
    ]
    chunks = split_chunks(items, jobs)
    # Labelling enumerates every prefix of an example — the pipeline's
    # dominant cost — so even two examples per worker beat the fork tax;
    # this stage keeps full fan-out on any multi-core host.
    results = fan_out(
        _label_chunk,
        chunks,
        jobs,
        initializer=_init_labeller,
        initargs=(classifier_payload, min_points),
        min_chunk=2,
    )
    return {"examples": [ex for chunk in results for ex in chunk]}


# -- stage 5: auc --------------------------------------------------------------

# The EagerTrainingConfig knobs that shape this stage (min_prefix_points
# already shaped the subgestures stage upstream).
AUC_PARAM_FIELDS = (
    "move_accidental",
    "move_threshold_fraction",
    "move_exclusion_distance",
    "ambiguity_bias_ratio",
    "tweak",
    "tweak_margin",
    "tweak_max_rounds",
    "two_class_only",
)


def run_auc(
    subgestures: dict, classifier_payload: dict, config: EagerTrainingConfig
) -> dict:
    """Partition the labelled subgestures and build the tweaked AUC.

    Reconstructs the :class:`~repro.eager.ExampleLabelling` list from the
    cached stage payload (strokes are not needed past labelling) and runs
    the shared :func:`~repro.eager.build_auc` — the identical §4.5–4.6
    code path the in-memory trainer uses.
    """
    full_classifier = GestureClassifier.from_dict(classifier_payload)
    labelled = []
    for ex in subgestures["examples"]:
        subs = [
            LabelledSubgesture(
                example_id=ex["id"],
                true_class=ex["class"],
                length=length,
                features=np.asarray(vector, dtype=float),
                predicted=predicted,
                complete=complete,
            )
            for length, vector, predicted, complete in zip(
                ex["lengths"], ex["vectors"], ex["predicted"], ex["complete"]
            )
        ]
        labelled.append(
            ExampleLabelling(
                example_id=ex["id"],
                true_class=ex["class"],
                stroke=None,  # partitioning never touches the raw stroke
                subgestures=subs,
            )
        )
    partition = partition_subgestures(labelled, full_classifier.class_names)
    auc, stats = build_auc(full_classifier, partition, config)
    return {
        "auc": auc.to_dict(),
        "stats": {
            "move_threshold": stats.move_threshold,
            "moved_count": stats.moved_count,
            "tweak_adjustments": stats.tweak_adjustments,
        },
        "set_counts": partition.counts(),
        "subgesture_count": sum(
            len(ex["lengths"]) for ex in subgestures["examples"]
        ),
    }


# -- stage 6: package ----------------------------------------------------------


def run_package(
    classifier_payload: dict, auc_payload: dict, min_points: int
) -> dict:
    """Assemble the final recognizer dict and stamp its content hash."""
    recognizer = EagerRecognizer(
        full_classifier=GestureClassifier.from_dict(classifier_payload),
        auc=AmbiguityClassifier.from_dict(auc_payload["auc"]),
        min_points=min_points,
    )
    model = recognizer.to_dict()
    return {"model": model, "model_hash": content_hash(model)}
