"""Unit tests for GDP's view layer."""

from repro.gdp import Canvas
from repro.gdp.views import CanvasView, ControlPointView, ShapeView


class TestCanvasViewSync:
    def test_views_created_for_existing_shapes(self):
        canvas = Canvas()
        shape = canvas.create_rect(0, 0, 10, 10)
        view = CanvasView(canvas)
        assert view.view_for(shape) is not None

    def test_views_track_creation(self):
        canvas = Canvas()
        view = CanvasView(canvas)
        shape = canvas.create_line(0, 0, 5, 5)
        assert view.view_for(shape) is not None
        assert view.view_for(shape) in view.children

    def test_views_track_deletion(self):
        canvas = Canvas()
        view = CanvasView(canvas)
        shape = canvas.create_line(0, 0, 5, 5)
        shape_view = view.view_for(shape)
        canvas.delete(shape)
        assert view.view_for(shape) is None
        assert shape_view not in view.children

    def test_grouping_replaces_views(self):
        canvas = Canvas()
        view = CanvasView(canvas)
        a = canvas.create_rect(0, 0, 10, 10)
        group = canvas.group([a])
        assert view.view_for(a) is None  # a is no longer top-level
        assert view.view_for(group) is not None

    def test_contains_covers_window(self):
        view = CanvasView(Canvas(width=200, height=100))
        assert view.contains(0, 0)
        assert view.contains(199, 99)
        assert not view.contains(201, 50)
        assert not view.contains(-1, 50)


class TestShapeViewPicking:
    def test_pick_prefers_shape_over_window(self):
        canvas = Canvas()
        shape = canvas.create_rect(10, 10, 50, 50)
        view = CanvasView(canvas)
        hit = view.pick(30, 10)  # on the rect outline
        assert isinstance(hit, ShapeView)
        assert hit.shape is shape

    def test_pick_falls_back_to_window(self):
        canvas = Canvas()
        canvas.create_rect(10, 10, 50, 50)
        view = CanvasView(canvas)
        assert view.pick(300, 300) is view


class TestControlPoints:
    def test_show_hide_control_points(self):
        canvas = Canvas()
        shape = canvas.create_line(0, 0, 100, 0)
        view = CanvasView(canvas)
        shape_view = view.view_for(shape)
        shape_view.show_control_points()
        assert shape_view.editing
        handles = [
            c for c in shape_view.children if isinstance(c, ControlPointView)
        ]
        assert len(handles) == 2
        shape_view.hide_control_points()
        assert not shape_view.editing
        assert not shape_view.children

    def test_show_is_idempotent(self):
        canvas = Canvas()
        shape = canvas.create_line(0, 0, 100, 0)
        view = CanvasView(canvas)
        shape_view = view.view_for(shape)
        shape_view.show_control_points()
        shape_view.show_control_points()
        assert len(shape_view.children) == 2

    def test_control_point_view_bounds_follow_position(self):
        canvas = Canvas()
        shape = canvas.create_line(0, 0, 100, 0)
        view = CanvasView(canvas)
        shape_view = view.view_for(shape)
        shape_view.show_control_points()
        handle = shape_view.children[1]
        assert handle.contains(100, 0)
        shape.set_endpoint(1, 200, 50)
        assert handle.contains(200, 50)
        assert not handle.contains(100, 0)

    def test_control_point_views_carry_class_drag_handler(self):
        canvas = Canvas()
        shape = canvas.create_line(0, 0, 100, 0)
        view = CanvasView(canvas)
        shape_view = view.view_for(shape)
        shape_view.show_control_points()
        handle = shape_view.children[0]
        assert any(True for _ in handle.handlers())
