"""Incremental (interactive) training.

GRANDMA was an interactive tool: a designer added example gestures — and
whole new gesture classes — to a running application, and the classifier
retrained instantly ("Training is also efficient, as there is a closed
form expression ... for determining the evaluation functions").
:class:`OnlineTrainer` keeps the per-class sufficient statistics in
their lossless form — the raw feature vectors themselves, grouped by
class — and :meth:`OnlineTrainer.build` hands them to the exact batch
closed form, :func:`~repro.recognizer.train_linear_classifier`.  That
makes the incremental path *bit-identical* to batch training on the
same example set, not merely numerically close: floating-point addition
is not associative, so a separately-maintained running sum would agree
only to rounding error, and the repo's content-hashed model versions
demand exact equality.

Trainer state round-trips through JSON (:meth:`~OnlineTrainer.to_dict` /
:meth:`~OnlineTrainer.from_dict`) with ``repr``-exact floats, so a
persisted per-user trainer resumes to the same bits — the property
:mod:`repro.adapt` relies on for deterministic personalization.
"""

from __future__ import annotations

import numpy as np

from ..features import NUM_FEATURES, features_of
from ..geometry import Stroke
from .classifier import GestureClassifier
from .training import train_linear_classifier

__all__ = ["OnlineTrainer"]


class OnlineTrainer:
    """Accumulates examples; builds classifiers on demand.

    Usage, mirroring GRANDMA's add-a-gesture-at-runtime flow::

        trainer = OnlineTrainer()
        for stroke in recorded:            # designer draws examples
            trainer.add_example("lasso", stroke)
        handler.recognizer = trainer.build()   # live immediately

    Classes keep their first-seen order and examples their insertion
    order, matching the class-major manifest order of batch training, so
    folding the same examples in the same order always rebuilds the same
    classifier — hash and all.
    """

    def __init__(self, num_features: int = NUM_FEATURES):
        self.num_features = num_features
        self._vectors: dict[str, list[np.ndarray]] = {}

    # -- accumulating -------------------------------------------------------

    def add_example(self, class_name: str, stroke: Stroke) -> None:
        """Fold one example stroke into a class (creating it if new)."""
        self.add_feature_vector(class_name, features_of(stroke))

    def add_feature_vector(self, class_name: str, vector: np.ndarray) -> None:
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (self.num_features,):
            raise ValueError(
                f"expected {self.num_features} features, got {vector.shape}"
            )
        self._vectors.setdefault(class_name, []).append(vector)

    def remove_class(self, class_name: str) -> bool:
        """Forget a class entirely; returns False if unknown."""
        return self._vectors.pop(class_name, None) is not None

    # -- introspection ---------------------------------------------------------

    @property
    def class_names(self) -> list[str]:
        return list(self._vectors.keys())

    def example_count(self, class_name: str) -> int:
        return len(self._vectors.get(class_name, ()))

    @property
    def total_examples(self) -> int:
        return sum(len(v) for v in self._vectors.values())

    def examples_by_class(self) -> dict[str, list[np.ndarray]]:
        """The accumulated vectors, class-ordered — the batch trainer's input."""
        return {name: list(vs) for name, vs in self._vectors.items()}

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable trainer state (floats survive via ``repr``)."""
        return {
            "num_features": self.num_features,
            "classes": [
                {"class": name, "vectors": [v.tolist() for v in vs]}
                for name, vs in self._vectors.items()
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "OnlineTrainer":
        trainer = cls(num_features=int(payload["num_features"]))
        for entry in payload["classes"]:
            for vector in entry["vectors"]:
                trainer.add_feature_vector(
                    entry["class"], np.asarray(vector, dtype=float)
                )
        return trainer

    # -- building ----------------------------------------------------------------

    def build(self) -> GestureClassifier:
        """A classifier over everything accumulated so far.

        Delegates to the batch closed form on the stored vectors, so the
        result is bit-identical to batch training on the same example
        set — same weights, same covariance, same content hash.

        Raises:
            ValueError: with fewer than two classes, or an empty class.
        """
        if len(self._vectors) < 2:
            raise ValueError("need at least two classes to discriminate")
        return GestureClassifier(train_linear_classifier(self._vectors))
