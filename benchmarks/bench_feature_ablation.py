"""Feature ablation — which of Rubine's 13 features carry the load?

§4.2 describes the vector as "(currently twelve) features": the set was
a moving target, with the dynamic features (maximum speed, duration)
the usual candidates for removal because they vary with user mood more
than with gesture class.  This bench trains the full classifier with
each feature removed in turn (and with the dynamic pair removed — the
"twelve features" configuration) on the GDP workload and reports the
accuracy deltas.
"""

import pytest
from conftest import TEST_PER_CLASS, TRAIN_PER_CLASS, write_report

from repro.datasets import GestureSet
from repro.features import FEATURE_NAMES, NUM_FEATURES
from repro.recognizer import GestureClassifier
from repro.synth import GestureGenerator, gdp_templates


@pytest.fixture(scope="module")
def workload():
    train = GestureGenerator(gdp_templates(), seed=161).generate_strokes(
        TRAIN_PER_CLASS
    )
    test = GestureSet.from_generator(
        "test", GestureGenerator(gdp_templates(), seed=162), TEST_PER_CLASS
    )
    return train, test


def accuracy(classifier, test):
    hits = sum(
        classifier.classify(example.stroke) == example.class_name
        for example in test
    )
    return hits / len(test)


def test_feature_ablation(workload):
    train, test = workload
    full = accuracy(GestureClassifier.train(train), test)
    rows = [f"{'all 13 features':<26} {full:6.1%}"]
    drops = {}
    for drop in range(NUM_FEATURES):
        indices = [i for i in range(NUM_FEATURES) if i != drop]
        acc = accuracy(GestureClassifier.train(train, indices), test)
        drops[FEATURE_NAMES[drop]] = full - acc
        rows.append(f"{'- ' + FEATURE_NAMES[drop]:<26} {acc:6.1%}")
    # The historical "twelve features": drop duration (and its sibling
    # configuration dropping both dynamic features).
    twelve = [i for i in range(NUM_FEATURES) if FEATURE_NAMES[i] != "duration"]
    static_only = [
        i
        for i in range(NUM_FEATURES)
        if FEATURE_NAMES[i] not in ("duration", "max_speed_sq")
    ]
    acc_twelve = accuracy(GestureClassifier.train(train, twelve), test)
    acc_static = accuracy(GestureClassifier.train(train, static_only), test)
    rows.append(f"{'twelve (no duration)':<26} {acc_twelve:6.1%}")
    rows.append(f"{'eleven (geometric only)':<26} {acc_static:6.1%}")
    write_report(
        "feature_ablation",
        "Leave-one-out feature ablation, GDP workload\n"
        f"({TRAIN_PER_CLASS} train / {TEST_PER_CLASS} test per class)\n\n"
        + "\n".join(rows),
    )
    # No single feature should be so load-bearing that accuracy
    # collapses without it (the set is deliberately redundant)...
    assert all(delta < 0.25 for delta in drops.values())
    # ...and the paper's 12-feature configuration works about as well.
    assert acc_twelve > full - 0.05
    assert acc_static > full - 0.10


def test_masked_training_time(workload, benchmark):
    train, _ = workload
    twelve = [i for i in range(NUM_FEATURES) if FEATURE_NAMES[i] != "duration"]
    benchmark(lambda: GestureClassifier.train(train, twelve))
