"""End-to-end integration tests across the whole stack."""

import pytest

from repro.datasets import GestureSet
from repro.eager import EagerRecognizer, train_eager_recognizer
from repro.evaluate import evaluate_recognizer
from repro.events import perform_gesture
from repro.gdp import GDPApp
from repro.geometry import Stroke
from repro.synth import (
    GestureGenerator,
    eight_direction_templates,
    gdp_templates,
)


class TestPaperProtocolEndToEnd:
    """The full §5 protocol: generate, split, train, evaluate, report."""

    def test_directions_experiment_shape(self):
        generator = GestureGenerator(eight_direction_templates(), seed=2026)
        dataset = GestureSet.from_generator("fig9", generator, 14)
        split = dataset.split(10)
        report = train_eager_recognizer(split.train.strokes_by_class())
        result = evaluate_recognizer(report.recognizer, split.test)
        # The paper's qualitative claims:
        assert result.full_accuracy >= result.eager_accuracy  # full wins
        assert result.eager_accuracy > 0.85  # eager still good
        assert 0.4 < result.eagerness.mean_fraction_seen < 0.95
        assert (
            result.eagerness.mean_oracle_fraction
            <= result.eagerness.mean_fraction_seen
        )

    def test_gdp_experiment_shape(self):
        generator = GestureGenerator(gdp_templates(), seed=2027)
        dataset = GestureSet.from_generator("fig10", generator, 13)
        split = dataset.split(10)
        report = train_eager_recognizer(split.train.strokes_by_class())
        result = evaluate_recognizer(report.recognizer, split.test)
        assert result.full_accuracy >= result.eager_accuracy
        assert result.eager_accuracy > 0.8
        assert result.eagerness.mean_fraction_seen < 1.0


class TestSerializationPipeline:
    def test_save_recognizer_drive_gdp(self, gdp_recognizer, tmp_path):
        import json

        path = tmp_path / "recognizer.json"
        path.write_text(json.dumps(gdp_recognizer.to_dict()))
        restored = EagerRecognizer.from_dict(json.loads(path.read_text()))
        app = GDPApp(recognizer=restored, use_eager=False)
        stroke = (
            GestureGenerator(gdp_templates(), seed=31)
            .generate("rect")
            .stroke.translated(200, 200)
        )
        app.perform(perform_gesture(stroke, dwell=0.3))
        assert len(app.shapes) == 1


class TestScriptedGdpSession:
    """A full drawing session exercising many gestures in sequence."""

    def test_session(self, gdp_recognizer):
        app = GDPApp(recognizer=gdp_recognizer, use_eager=False)
        generator = GestureGenerator(gdp_templates(), seed=55)

        def anchored(stroke, x, y):
            return stroke.translated(x - stroke.start.x, y - stroke.start.y)

        # 1. Draw a rectangle, rubberbanded out to (400, 300).
        rect_stroke = generator.generate("rect").stroke.translated(120, 120)
        app.perform(
            perform_gesture(
                rect_stroke,
                dwell=0.3,
                manipulation_path=Stroke.from_xy([(400, 300)], dt=0.02),
            )
        )
        assert len(app.shapes) == 1
        rect = app.shapes[0]

        # 2. Draw a line elsewhere.
        line_stroke = generator.generate("line").stroke.translated(500, 100)
        app.perform(perform_gesture(line_stroke, dwell=0.3))
        assert len(app.shapes) == 2

        # 3. Copy the rectangle and drop the copy to the right.
        copy_stroke = anchored(
            generator.generate("copy").stroke, *rect.corners[0]
        )
        app.perform(
            perform_gesture(
                copy_stroke,
                dwell=0.3,
                manipulation_path=Stroke.from_xy(
                    [(copy_stroke.end.x + 200, copy_stroke.end.y)], dt=0.02
                ),
            )
        )
        assert len(app.shapes) == 3

        # 4. Delete the original rectangle.
        delete_stroke = anchored(
            generator.generate("delete").stroke, *rect.corners[0]
        )
        app.perform(perform_gesture(delete_stroke, dwell=0.3))
        assert rect not in app.canvas
        assert len(app.shapes) == 2

        # 5. The rendered canvas shows what remains.
        rendering = app.render(cols=60, rows=20)
        assert rendering.count("\n") == 21


class TestTimeoutVsEagerConsistency:
    def test_same_gesture_same_class_via_both_transitions(
        self, directions_recognizer
    ):
        generator = GestureGenerator(eight_direction_templates(), seed=77)
        agreements = 0
        trials = 20
        for i in range(trials):
            stroke = generator.generate("dr").stroke
            eager_class = directions_recognizer.recognize(stroke).class_name
            full_class = directions_recognizer.classify_full(stroke)
            agreements += eager_class == full_class
        # Eager commits on a prefix, so occasional disagreement is
        # expected — but the two must agree overwhelmingly.
        assert agreements / trials >= 0.9
