"""Journal and replay-merge semantics (pure, no processes)."""

from __future__ import annotations

import json

from repro.cluster import SessionRecord, replay_lines


def op(stroke: str, name: str = "move", t: float = 0.0) -> str:
    return json.dumps({"op": name, "stroke": stroke, "x": 1, "y": 2, "t": t})


def kinds(lines: list) -> list:
    return [json.loads(line)["op"] for line in lines]


def test_journal_inserts_clock_marker_when_clock_moved():
    r = SessionRecord("k1:s1", "k1", "w0")
    seq = r.journal(0, op("k1:s1", "down", 0.1), clock=0.1, t=0.1)
    # First entry: the clock stood at 0.1 before the down, so replay
    # must advance there first.
    assert kinds([line for _, line in r.entries]) == ["tick", "down"]
    # Clock unchanged since the record's mark: no new marker.
    seq = r.journal(seq, op("k1:s1", "move", 0.11), clock=0.1, t=0.11)
    assert kinds([line for _, line in r.entries]) == ["tick", "down", "move"]
    # Clock jumped (other sessions kept time moving): marker inserted
    # carrying the highest value reached before this op.
    r.journal(seq, op("k1:s1", "move", 0.5), clock=0.48, t=0.5)
    assert kinds([line for _, line in r.entries]) == [
        "tick", "down", "move", "tick", "move",
    ]
    marker = json.loads(r.entries[3][1])
    assert marker == {"op": "tick", "t": 0.48}


def test_journal_no_marker_at_negative_infinity():
    # Before any tick the router clock is -inf; nothing to mark.
    r = SessionRecord("k1:s1", "k1", "w0")
    r.journal(0, op("k1:s1", "down"), clock=float("-inf"), t=0.0)
    assert kinds([line for _, line in r.entries]) == ["down"]


def test_replay_merges_by_global_sequence():
    a = SessionRecord("k1:s1", "k1", "w0")
    b = SessionRecord("k1:s2", "k1", "w0")
    seq = a.journal(0, op("k1:s1", "down", 0.0), clock=0.0, t=0.0)
    seq = b.journal(seq, op("k1:s2", "down", 0.0), clock=0.0, t=0.0)
    seq = a.journal(seq, op("k1:s1", "move", 0.2), clock=0.1, t=0.2)
    seq = b.journal(seq, op("k1:s2", "up", 0.3), clock=0.2, t=0.3)
    lines = replay_lines([a, b], final_t=0.4)
    strokes = [json.loads(line).get("stroke") for line in lines]
    ops = kinds(lines)
    # Original interleaving restored — each record carries its own lazy
    # markers (a redundant advance is a no-op) — plus one trailing tick
    # to the present.
    assert ops == [
        "tick", "down", "tick", "down", "tick", "move", "tick", "up", "tick",
    ]
    assert strokes == [
        None, "k1:s1", None, "k1:s2", None, "k1:s1", None, "k1:s2", None,
    ]
    assert json.loads(lines[-1]) == {"op": "tick", "t": 0.4}


def test_replay_includes_extras_in_order():
    a = SessionRecord("k1:s1", "k1", "w0")
    seq = a.journal(0, op("k1:s1", "down", 0.0), clock=0.0, t=0.0)
    sweep = json.dumps({"op": "sweep", "max_idle": 0.0})
    extras = [(seq, sweep)]
    lines = replay_lines([a], extras=extras, final_t=None)
    assert kinds(lines) == ["tick", "down", "sweep"]


def test_replay_without_final_t_appends_nothing():
    a = SessionRecord("k1:s1", "k1", "w0")
    a.journal(0, op("k1:s1", "down", 0.0), clock=0.0, t=0.0)
    assert kinds(replay_lines([a])) == ["tick", "down"]
    assert kinds(replay_lines([a], final_t=float("-inf"))) == ["tick", "down"]
