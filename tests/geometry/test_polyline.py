"""Unit tests for repro.geometry.polyline."""

import math

import pytest

from repro.geometry import (
    Stroke,
    find_corner_indices,
    point_segment_distance,
    polygon_contains,
    stroke_hits_point,
    stroke_self_closes,
)


def l_shaped(n: int = 10) -> Stroke:
    """An L: right n steps, then down n steps, unit spacing."""
    xs = [(i, 0) for i in range(n + 1)]
    ys = [(n, j) for j in range(1, n + 1)]
    return Stroke.from_xy(xs + ys)


class TestCornerDetection:
    def test_finds_the_l_corner(self):
        corners = find_corner_indices(l_shaped())
        assert len(corners) == 1
        assert corners[0] == 10  # the corner sample

    def test_straight_line_has_no_corners(self):
        line = Stroke.from_xy([(i, 0) for i in range(20)])
        assert find_corner_indices(line) == []

    def test_gentle_arc_has_no_sharp_corners(self):
        arc = Stroke.from_xy(
            [
                (math.cos(a) * 50, math.sin(a) * 50)
                for a in [i * 0.05 for i in range(40)]
            ]
        )
        assert find_corner_indices(arc, min_turn=math.pi / 3) == []

    def test_zigzag_finds_multiple_corners(self):
        zig = Stroke.from_xy(
            [(i, 0) for i in range(8)]
            + [(7, j) for j in range(1, 8)]
            + [(7 + i, 7) for i in range(1, 8)]
        )
        assert len(find_corner_indices(zig)) == 2

    def test_too_short_stroke(self):
        assert find_corner_indices(Stroke.from_xy([(0, 0), (1, 1)])) == []

    def test_duplicate_points_do_not_create_corners(self):
        pts = [(i // 2, 0) for i in range(20)]  # each point doubled
        assert find_corner_indices(Stroke.from_xy(pts)) == []


class TestPointSegmentDistance:
    def test_perpendicular_distance(self):
        assert point_segment_distance(5, 3, 0, 0, 10, 0) == pytest.approx(3.0)

    def test_point_on_segment(self):
        assert point_segment_distance(5, 0, 0, 0, 10, 0) == pytest.approx(0.0)

    def test_beyond_endpoint_clamps(self):
        assert point_segment_distance(13, 4, 0, 0, 10, 0) == pytest.approx(5.0)

    def test_degenerate_segment(self):
        assert point_segment_distance(3, 4, 0, 0, 0, 0) == pytest.approx(5.0)


class TestStrokeHitsPoint:
    def test_hit_on_path(self):
        assert stroke_hits_point(l_shaped(), 5.0, 0.5, tolerance=1.0)

    def test_miss_far_from_path(self):
        assert not stroke_hits_point(l_shaped(), 0.0, 9.0, tolerance=1.0)

    def test_single_point_stroke(self):
        s = Stroke.from_xy([(5, 5)])
        assert stroke_hits_point(s, 5.5, 5.0, tolerance=1.0)
        assert not stroke_hits_point(s, 8.0, 5.0, tolerance=1.0)

    def test_empty_stroke_hits_nothing(self):
        assert not stroke_hits_point(Stroke(), 0, 0, tolerance=100.0)


class TestPolygonContains:
    def square(self) -> Stroke:
        return Stroke.from_xy([(0, 0), (10, 0), (10, 10), (0, 10)])

    def test_inside(self):
        assert polygon_contains(self.square(), 5, 5)

    def test_outside(self):
        assert not polygon_contains(self.square(), 15, 5)

    def test_implicit_closure(self):
        # The polygon closes from last point back to first, like a
        # circling group gesture that does not quite complete the loop.
        almost_closed = Stroke.from_xy(
            [(0, 0), (10, 0), (10, 10), (0, 10), (0, 2)]
        )
        assert polygon_contains(almost_closed, 5, 5)

    def test_degenerate_polygon(self):
        assert not polygon_contains(Stroke.from_xy([(0, 0), (1, 1)]), 0.5, 0.5)


class TestSelfCloses:
    def test_circle_closes(self):
        circle = Stroke.from_xy(
            [
                (math.cos(a) * 50, math.sin(a) * 50)
                for a in [2 * math.pi * i / 30 for i in range(30)]
            ]
        )
        assert stroke_self_closes(circle)

    def test_line_does_not_close(self):
        line = Stroke.from_xy([(i * 10, 0) for i in range(10)])
        assert not stroke_self_closes(line)

    def test_short_stroke_does_not_close(self):
        assert not stroke_self_closes(Stroke.from_xy([(0, 0), (1, 1)]))

    def test_zero_length_stroke(self):
        s = Stroke.from_xy([(3, 3), (3, 3), (3, 3)])
        assert not stroke_self_closes(s)
