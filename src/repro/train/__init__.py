"""Staged, cacheable, parallel training of eager recognizers.

The in-memory trainer (:func:`repro.eager.train_eager_recognizer`) is
one closed-form pass; this package decomposes that pass into six
content-addressed stages (manifest → features → classifier →
subgestures → auc → package) so that

* re-running an identical job replays from cache,
* a hyperparameter sweep recomputes only the stages downstream of the
  changed knob,
* a killed run resumes from its last completed stage, and
* the per-example/per-class stages fan out across processes —

all while producing a packaged model whose content hash is bit-identical
to the in-memory trainer's, for any jobs count, interrupted or not.
"""

from .cache import StageCache, checkpoint_path, load_checkpoint, write_checkpoint
from .parallel import fan_out, split_chunks
from .pipeline import TrainingKilled, TrainingPipeline, TrainingRunResult
from .spec import CONFIG_FIELD_NAMES, TrainJobSpec
from .stages import STAGES, stage_key

__all__ = [
    "CONFIG_FIELD_NAMES",
    "STAGES",
    "StageCache",
    "TrainJobSpec",
    "TrainingKilled",
    "TrainingPipeline",
    "TrainingRunResult",
    "checkpoint_path",
    "fan_out",
    "load_checkpoint",
    "split_chunks",
    "stage_key",
    "write_checkpoint",
]
