"""First-class interaction modalities over the two-phase engine.

The paper's cycle — *collect points, classify, manipulate* — treats
every gesture as a stroke.  This package makes the common interaction
modalities (hold, tap/double-tap, scroll, swipe/flick, pinch/rotate)
first-class: each gets its own collection→manipulation semantics,
composed *on top of* the unchanged serving protocol.  The pool, server
and cluster still see only down/move/up and still emit the same
decisions; :class:`ModalComposer` reads the op stream and the decision
stream side by side and derives :class:`ModalEvent` streams from them.

Layering:

* :class:`ModalityConfig` (:mod:`repro.modal.config`) — every
  threshold, validated at construction;
* :mod:`repro.modal.detectors` — pure incremental kinematics (drift,
  axis lock, velocity window, pair TRS);
* :mod:`repro.modal.semantics` — per-stroke and per-pair state
  machines mapping (ops, decisions) to modal events;
* :mod:`repro.modal.compose` — the composer sink, the
  :func:`run_modal` driver, and two-finger workload generation.

Because the composer is a passive sink, attaching it can never change a
decision — the same guarantee the serving layer's observers carry, and
the compose tests assert it the same way (batched == sequential, with
and without the composer, byte-identical through the cluster).
"""

from .compose import ModalComposer, generate_pair_workload, pair_base, run_modal
from .config import ModalityConfig
from .detectors import (
    HoldDetector,
    PairTracker,
    ScrollAxisLock,
    SwipeDetector,
    SwipeHit,
    TapTracker,
    edge_of,
    quantize_direction,
)
from .semantics import (
    MODALITIES,
    ModalEvent,
    PairSemantics,
    StrokeSemantics,
    modality_of,
)

__all__ = [
    "MODALITIES",
    "HoldDetector",
    "ModalComposer",
    "ModalEvent",
    "ModalityConfig",
    "PairSemantics",
    "PairTracker",
    "ScrollAxisLock",
    "StrokeSemantics",
    "SwipeDetector",
    "SwipeHit",
    "TapTracker",
    "edge_of",
    "generate_pair_workload",
    "modality_of",
    "pair_base",
    "quantize_direction",
    "run_modal",
]
