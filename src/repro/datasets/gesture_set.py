"""Labelled gesture collections.

A :class:`GestureSet` is the unit the trainers and the evaluation
harness exchange: named examples with class labels and optional ground
truth (the oracle corner index synthetic gestures carry).  Sets
round-trip through JSON so recorded data, synthetic data, and trained
models can be shipped together.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from ..geometry import Point, Stroke
from ..synth import GeneratedGesture, GestureGenerator

__all__ = ["GestureExample", "GestureSet", "TrainTestSplit"]


@dataclass(frozen=True)
class GestureExample:
    """One labelled gesture."""

    stroke: Stroke
    class_name: str
    # Sample index of each ground-truth corner (empty when unknown).
    corner_indices: tuple[int, ...] = ()

    @property
    def oracle_points(self) -> int | None:
        """Points through the first corner turn — the hand-determined
        minimum of figure 9 — when ground truth is available."""
        if not self.corner_indices:
            return None
        return self.corner_indices[0] + 1

    @classmethod
    def from_generated(cls, generated: GeneratedGesture) -> "GestureExample":
        return cls(
            stroke=generated.stroke,
            class_name=generated.class_name,
            corner_indices=generated.corner_sample_indices,
        )

    def to_dict(self) -> dict:
        return {
            "class": self.class_name,
            "points": [[p.x, p.y, p.t] for p in self.stroke],
            "corners": list(self.corner_indices),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GestureExample":
        return cls(
            stroke=Stroke(Point(x, y, t) for x, y, t in data["points"]),
            class_name=data["class"],
            corner_indices=tuple(data.get("corners", ())),
        )


@dataclass
class TrainTestSplit:
    """A deterministic train/test partition of a gesture set."""

    train: "GestureSet"
    test: "GestureSet"


@dataclass
class GestureSet:
    """A named collection of labelled gestures."""

    name: str
    examples: list[GestureExample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.examples)

    def __iter__(self) -> Iterator[GestureExample]:
        return iter(self.examples)

    def add(self, example: GestureExample) -> None:
        self.examples.append(example)

    @property
    def class_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for example in self.examples:
            seen.setdefault(example.class_name, None)
        return list(seen.keys())

    def by_class(self) -> dict[str, list[GestureExample]]:
        grouped: dict[str, list[GestureExample]] = {}
        for example in self.examples:
            grouped.setdefault(example.class_name, []).append(example)
        return grouped

    def strokes_by_class(self) -> dict[str, list[Stroke]]:
        """The shape the trainers consume."""
        return {
            name: [example.stroke for example in examples]
            for name, examples in self.by_class().items()
        }

    def split(self, train_per_class: int) -> TrainTestSplit:
        """First ``train_per_class`` examples of each class train; the
        rest test.  Order within the set is preserved, so a set built
        from a seeded generator splits identically every run."""
        train = GestureSet(name=f"{self.name}-train")
        test = GestureSet(name=f"{self.name}-test")
        counts: dict[str, int] = {}
        for example in self.examples:
            used = counts.get(example.class_name, 0)
            if used < train_per_class:
                train.add(example)
                counts[example.class_name] = used + 1
            else:
                test.add(example)
        return TrainTestSplit(train=train, test=test)

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_generator(
        cls, name: str, generator: GestureGenerator, count_per_class: int
    ) -> "GestureSet":
        """Draw ``count_per_class`` examples of every class."""
        gesture_set = cls(name=name)
        for class_name in generator.class_names:
            for _ in range(count_per_class):
                gesture_set.add(
                    GestureExample.from_generated(generator.generate(class_name))
                )
        return gesture_set

    @classmethod
    def from_strokes(
        cls, name: str, strokes_by_class: Mapping[str, Iterable[Stroke]]
    ) -> "GestureSet":
        gesture_set = cls(name=name)
        for class_name, strokes in strokes_by_class.items():
            for stroke in strokes:
                gesture_set.add(
                    GestureExample(stroke=stroke, class_name=class_name)
                )
        return gesture_set

    # -- persistence --------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "examples": [example.to_dict() for example in self.examples],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GestureSet":
        return cls(
            name=data["name"],
            examples=[GestureExample.from_dict(e) for e in data["examples"]],
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "GestureSet":
        return cls.from_dict(json.loads(Path(path).read_text()))
