"""CLI wiring: ``loadgen --cluster`` runs real workers and verifies
byte-identity itself; incompatible observer flags fail fast."""

from __future__ import annotations

import pytest

from repro.cli import main


def test_loadgen_cluster_verifies_byte_identity(capsys):
    code = main(
        [
            "loadgen",
            "--cluster", "2",
            "--clients", "4",
            "--gestures", "1",
            "--examples", "8",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "cluster: 2 workers" in out
    assert "byte-identical" in out
    assert "MISMATCH" not in out


def test_loadgen_cluster_rejects_per_pool_observers(tmp_path):
    with pytest.raises(SystemExit) as exc:
        main(
            [
                "loadgen",
                "--cluster", "2",
                "--trace", str(tmp_path / "trace.ndjson"),
            ]
        )
    assert "--cluster" in str(exc.value)


def test_cluster_subcommand_needs_one_recognizer_source():
    with pytest.raises(SystemExit) as exc:
        main(["cluster", "--workers", "2"])
    assert "exactly one" in str(exc.value)


def test_serve_model_cache_requires_a_registry():
    with pytest.raises(SystemExit) as exc:
        main(
            [
                "serve",
                "--family", "directions",
                "--examples", "2",
                "--model-cache", "2",
            ]
        )
    assert "--registry" in str(exc.value)


def test_cluster_rejects_inverted_scale_bounds(tmp_path):
    # Cluster.__init__ validates the bounds before any worker spawns;
    # the CLI surfaces that as a clean error, not a live fleet.
    with pytest.raises(ValueError, match="max_workers"):
        main(
            [
                "cluster",
                "--family", "directions",
                "--examples", "2",
                "--min-workers", "4",
                "--max-workers", "2",
            ]
        )


def test_drain_timeout_is_hidden_from_help(capsys):
    # The flag is vestigial: drains migrate live sessions immediately,
    # so the knob is deprecated and kept out of the documented surface.
    with pytest.raises(SystemExit):
        main(["cluster", "--help"])
    assert "--drain-timeout" not in capsys.readouterr().out


def test_drain_timeout_still_parses_with_a_warning(capsys):
    # Old scripts keep working: the flag parses, warns on stderr, and
    # changes nothing — the command then fails on its usual validation
    # (no recognizer source), not on the deprecated flag.
    with pytest.raises(SystemExit) as exc:
        main(["cluster", "--workers", "2", "--drain-timeout", "5"])
    assert "exactly one" in str(exc.value)
    assert "deprecated" in capsys.readouterr().err
