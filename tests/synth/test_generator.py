"""Unit tests for the parametric gesture generator."""

import math

import pytest

from repro.synth import (
    GenerationParams,
    GestureGenerator,
    eight_direction_templates,
    gdp_templates,
    with_params,
)


@pytest.fixture
def generator():
    return GestureGenerator(eight_direction_templates(), seed=7)


class TestDeterminism:
    def test_same_seed_same_gestures(self):
        a = GestureGenerator(eight_direction_templates(), seed=42)
        b = GestureGenerator(eight_direction_templates(), seed=42)
        ga, gb = a.generate("ur"), b.generate("ur")
        assert ga.stroke == gb.stroke
        assert ga.corner_sample_indices == gb.corner_sample_indices

    def test_different_seed_different_gestures(self):
        a = GestureGenerator(eight_direction_templates(), seed=1)
        b = GestureGenerator(eight_direction_templates(), seed=2)
        assert a.generate("ur").stroke != b.generate("ur").stroke

    def test_successive_draws_vary(self, generator):
        assert generator.generate("ur").stroke != generator.generate("ur").stroke


class TestGeneratedGeometry:
    def test_roughly_at_nominal_scale(self, generator):
        stroke = generator.generate("dr").stroke
        diag = stroke.bounding_box().diagonal
        # Scale 100 with +-3 sigma of log-scale wobble.
        assert 40 < diag < 250

    def test_point_count_reflects_spacing(self, generator):
        stroke = generator.generate("dr").stroke
        expected = stroke.path_length() / generator.params.spacing
        assert len(stroke) == pytest.approx(expected, rel=0.5)

    def test_timestamps_monotonic(self, generator):
        stroke = generator.generate("lu").stroke
        times = [p.t for p in stroke]
        assert times == sorted(times)
        assert times[0] == 0.0

    def test_unknown_class_raises(self, generator):
        with pytest.raises(KeyError):
            generator.generate("nope")


class TestGroundTruth:
    def test_corner_index_recorded(self, generator):
        example = generator.generate("ur")
        assert len(example.corner_sample_indices) == 1
        assert 0 < example.corner_sample_indices[0] < len(example.stroke)

    def test_oracle_points(self, generator):
        example = generator.generate("ur")
        assert example.oracle_points == example.corner_sample_indices[0] + 1

    def test_corner_is_near_the_geometric_corner(self, generator):
        # The recorded corner sample should be close to where the path
        # actually turns: for "ur" (up then right) the corner is the
        # minimum-y region of the stroke.
        example = generator.generate("ur")
        stroke = example.stroke
        corner_point = stroke[example.corner_sample_indices[0]]
        min_y = min(p.y for p in stroke)
        assert corner_point.y - min_y < 20.0

    def test_cornerless_class_has_no_oracle(self):
        generator = GestureGenerator(gdp_templates(), seed=3)
        example = generator.generate("ellipse")
        assert example.corner_sample_indices == ()
        assert example.oracle_points is None


class TestDotGeneration:
    def test_dot_has_two_points(self):
        generator = GestureGenerator(gdp_templates(), seed=4)
        stroke = generator.generate("dot").stroke
        assert len(stroke) == 2
        assert stroke.path_length() < 5.0


class TestCornerLoops:
    def test_loops_appear_with_probability_one(self):
        params = GenerationParams(corner_loop_probability=1.0)
        generator = GestureGenerator(
            eight_direction_templates(), params=params, seed=5
        )
        example = generator.generate("ur")
        assert example.looped_corner

    def test_loop_increases_turning(self):
        clean_gen = GestureGenerator(eight_direction_templates(), seed=6)
        loop_gen = GestureGenerator(
            eight_direction_templates(),
            params=GenerationParams(corner_loop_probability=1.0),
            seed=6,
        )
        from repro.features import features_of

        clean_abs = features_of(clean_gen.generate("ur").stroke)[9]
        looped_abs = features_of(loop_gen.generate("ur").stroke)[9]
        # A 270-degree loop adds far more absolute turning than a sharp
        # 90-degree corner.
        assert looped_abs > clean_abs + math.pi / 2

    def test_no_loops_by_default(self, generator):
        assert not any(
            generator.generate("ur").looped_corner for _ in range(10)
        )


class TestBatchGeneration:
    def test_generate_examples_counts(self, generator):
        batch = generator.generate_examples(4)
        assert set(batch) == set(eight_direction_templates())
        assert all(len(v) == 4 for v in batch.values())

    def test_generate_strokes_shape(self, generator):
        strokes = generator.generate_strokes(3)
        for class_name, items in strokes.items():
            assert len(items) == 3
            for stroke in items:
                assert len(stroke) > 0


class TestWithParams:
    def test_overrides_parameters(self, generator):
        louder = with_params(generator, jitter=50.0)
        assert louder.params.jitter == 50.0
        assert louder.params.scale == generator.params.scale
        assert louder.templates == generator.templates

    def test_empty_templates_rejected(self):
        with pytest.raises(ValueError):
            GestureGenerator({}, seed=0)
