"""End-to-end: pipeline-train, publish, reload, classify — identically.

The checked-in GDP sample strokes are the paper-shaped workload; a model
trained by the staged pipeline, published into the registry, and loaded
back must classify every one of them exactly as the in-memory trainer's
recognizer does — eagerness point included.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.datasets import GestureSet
from repro.eager import train_eager_recognizer
from repro.serve import ModelRegistry
from repro.synth import GestureGenerator, family_templates
from repro.train import TrainJobSpec, TrainingPipeline

GDP_SAMPLE = Path(__file__).parent.parent.parent / "data" / "gdp_sample.json"

SPEC = TrainJobSpec(family="gdp", examples=8, seed=21, name="gdp-rt")


@pytest.fixture(scope="module")
def published(tmp_path_factory):
    root = tmp_path_factory.mktemp("registry")
    pipeline = TrainingPipeline(SPEC, jobs=2)
    result = pipeline.run()
    version = pipeline.publish(root, result)
    return root, version, result


class TestRegistryRoundTrip:
    def test_registry_version_is_the_model_hash_prefix(self, published):
        _, version, result = published
        assert version.version == result.model_hash[:12]
        assert version.name == "gdp-rt"

    def test_lineage_stored_in_registry_metadata(self, published):
        root, version, result = published
        metadata = ModelRegistry(root).metadata_of("gdp-rt", version.version)
        assert metadata["source"] == "repro.train"
        assert metadata["lineage"]["model_hash"] == result.model_hash
        assert metadata["lineage"]["spec"] == SPEC.identity()

    def test_reloaded_model_classifies_gdp_samples_identically(self, published):
        root, version, _ = published
        reloaded = ModelRegistry(root).load("gdp-rt", version.version)

        generator = GestureGenerator(family_templates("gdp"), seed=21)
        reference = train_eager_recognizer(
            generator.generate_strokes(8)
        ).recognizer

        sample = GestureSet.load(GDP_SAMPLE)
        assert len(sample) > 0
        for example in sample:
            ours = reloaded.recognize(example.stroke)
            theirs = reference.recognize(example.stroke)
            assert ours == theirs  # class, points seen, eagerness — all of it

    def test_republish_is_idempotent(self, published):
        root, version, result = published
        pipeline = TrainingPipeline(SPEC)
        again = pipeline.publish(root, pipeline.run())
        assert again.version == version.version
        assert ModelRegistry(root).versions("gdp-rt") == [version.version]
