"""Recognition-quality telemetry: is the *recognizer* healthy?

PR 2's observer answers mechanical questions (how many decisions, how
big the batches).  :class:`QualityMonitor` answers the questions the
paper's evaluation reasons about:

* **classification margin** — how far the winning class's linear
  evaluation sits above the runner-up's.  Shrinking margins mean the
  classifier is being asked to make closer calls than it was trained
  for (the quantity the §4.6 bias-tweak procedure manipulates).
* **Mahalanobis rejection distance** — the squared distance from the
  decided feature vector to the winning class's training mean under the
  pooled covariance.  Rubine rejects gestures with ``d^2 > 0.5 F^2``;
  the monitor counts those as ``quality.outliers``.
* **feature drift** — per class, the running mean of ``d^2 / F``.  A
  *complete* in-distribution gesture has expectation ≈ 1 (``E[d^2] = F``
  under the training Gaussian); an eager decision measures a truncated
  prefix against the full-gesture mean, which inflates the level (there
  is no observable "rest of the gesture" — post-decision motion is
  manipulation, not gesture).  The score is therefore a *relative*
  signal: compare a class against its own history or against its peers
  under the same traffic mix, not against an absolute 1.0.
* **eager-trigger progress** — the fraction of the stroke consumed
  before the AUC judged it unambiguous (the paper's eagerness measure,
  figures 9–10).  Known only once the stroke *ends*, so it is recorded
  when the session commits, not when it decides.
* **ambiguous dwell** — virtual seconds from the first point to the
  decision: how long the user waited for an answer.

Everything is computed from the decided gesture prefix by replaying it
through the scalar :class:`~repro.features.IncrementalFeatures` path —
the same arbiter the batched evaluator's exact-fallback uses — so the
numbers are bit-identical across the pool's batched and sequential
modes and independent of any attached tracer.  The monitor is pure
read-only observation: it never touches the recognizer's state and is
only ever *called*, never consulted, by the serving layer.

Like the rest of :mod:`repro.obs`, this module imports nothing from
:mod:`repro.serve`; the pool hands it plain point sequences and
duck-typed decision records.
"""

from __future__ import annotations

from ..features import IncrementalFeatures
from ..geometry import Point

__all__ = ["QualityMonitor"]

import numpy as np

# Bucket ladders sized to what each quantity actually spans.
_MARGIN_BUCKETS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0,
)
# Squared Mahalanobis distances concentrate around F (= 13); Rubine's
# rejection threshold 0.5 F^2 sits at 84.5.
_MAHAL_BUCKETS = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)
# Ambiguous dwell in virtual seconds; the motionless timeout is 0.2 s.
_DWELL_BUCKETS = (
    0.01, 0.025, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 1.0, 2.5,
)
_EAGERNESS_BUCKETS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def _replay_vector(points) -> np.ndarray:
    """The scalar feature vector of a decided prefix.

    Accepts both point shapes the pool stores: ``(x, y, t)`` tuples
    (batched mode) and :class:`~repro.geometry.Point` (sequential mode).
    Replaying through :class:`IncrementalFeatures` makes the result the
    *reference* vector — identical bits in either execution mode.
    """
    inc = IncrementalFeatures()
    for p in points:
        if type(p) is tuple:
            p = Point(p[0], p[1], p[2])
        inc.add_point(p)
    return inc.vector


class QualityMonitor:
    """Per-decision recognition-quality metrics, trace records, drift.

    Attach through :class:`~repro.obs.PoolObserver` (``quality=``).  The
    pool calls two hooks:

    * :meth:`decided` with the decided prefix and the ``recog`` decision
      — margins, distance, and dwell are computed here;
    * :meth:`closed` when the session reaches a terminal event, with the
      stroke's total point count — eagerness needs the whole stroke.

    ``metrics`` and ``tracer`` are both optional: metrics-only is the
    always-on configuration, tracer-only is what the golden analyze
    tests use, and neither still accumulates :meth:`drift_scores`.
    """

    def __init__(self, recognizer, metrics=None, tracer=None):
        full = recognizer.full_classifier
        self._linear = full.linear
        self._columns = full.feature_indices  # None = all 13
        self._metric = full.metric
        self._means = full.means
        self._dim = self._metric.dim
        # Rubine's rejection rule, applied to what the serving layer
        # actually classified (the decided prefix): an input further
        # than 0.5 F^2 from its winner's mean "probably looks nothing
        # like" that class and would be rejected in the paper's
        # click-and-classify mode.
        self._outlier_sq = 0.5 * self._dim * self._dim
        self.metrics = metrics
        self.tracer = tracer
        # key -> staged record, completed (and emitted) at close time.
        self._pending: dict[str, dict] = {}
        # class -> [decisions, sum of d^2] for drift_scores().
        self._drift: dict[str, list] = {}
        self._h_margin: dict[str, object] = {}
        self._h_mahal: dict[str, object] = {}
        self._h_eager: dict[str, object] = {}
        self._h_dwell: dict[str, object] = {}
        if metrics is not None:
            self._c_decisions = metrics.counter("quality.decisions")
            self._c_outliers = metrics.counter("quality.outliers")

    # -- hooks (called by the pool) ------------------------------------------

    def decided(self, points, decision) -> None:
        """A session decided: compute margin, distance, and dwell."""
        features = _replay_vector(points)
        if self._columns is not None:
            features = features[self._columns]
        scores = self._linear.evaluations(features)
        if len(scores) > 1:
            top2 = np.partition(scores, -2)[-2:]
            margin = float(top2[1] - top2[0])
        else:
            margin = 0.0
        winner = int(np.argmax(scores))
        d_sq = self._metric.squared_distance(features, self._means[winner])
        first_t = points[0][2] if type(points[0]) is tuple else points[0].t
        dwell = decision.t - first_t
        name = decision.class_name
        cell = self._drift.get(name)
        if cell is None:
            cell = self._drift[name] = [0, 0.0]
        cell[0] += 1
        cell[1] += d_sq
        metrics = self.metrics
        if metrics is not None:
            self._c_decisions.inc()
            if d_sq > self._outlier_sq:
                self._c_outliers.inc()
            self._class_hist(
                self._h_margin, "quality.margin", name, _MARGIN_BUCKETS
            ).observe(margin)
            self._class_hist(
                self._h_mahal, "quality.mahal_sq", name, _MAHAL_BUCKETS
            ).observe(d_sq)
            self._class_hist(
                self._h_dwell, "quality.dwell", decision.reason, _DWELL_BUCKETS
            ).observe(dwell)
        self._pending[decision.key] = {
            "class": name,
            "reason": decision.reason,
            "eager": decision.eager,
            "points": decision.points_seen,
            "margin": margin,
            "d2": d_sq,
            "drift": d_sq / self._dim,
            "outlier": bool(d_sq > self._outlier_sq),
            "dwell": dwell,
            "t": decision.t,
        }

    def closed(self, key: str, total_points: int) -> None:
        """The session ended; ``total_points`` covers the whole stroke.

        ``total_points`` counts the gesture prefix *plus* any
        manipulation-phase motion after the decision — the denominator
        of the paper's eagerness measure.  Sessions that never decided
        (killed or evicted mid-collection) have nothing staged and are
        a no-op here.
        """
        record = self._pending.pop(key, None)
        if record is None:
            return
        eagerness = (
            record["points"] / total_points if total_points > 0 else 0.0
        )
        record["total"] = total_points
        record["eagerness"] = eagerness
        if self.metrics is not None:
            self._class_hist(
                self._h_eager,
                "quality.eagerness",
                record["class"],
                _EAGERNESS_BUCKETS,
            ).observe(eagerness)
        if self.tracer is not None:
            record["rec"] = "quality"
            record["session"] = key
            self.tracer.record(record)

    # -- read-outs -----------------------------------------------------------

    def drift_scores(self) -> dict:
        """Per-class drift: mean ``d^2 / F`` over the decisions seen.

        ≈ 1.0 for *complete* gestures matching the training
        distribution; eager-truncated prefixes raise the baseline (see
        the module docstring), so read this per class against its own
        history under a comparable traffic mix — a class whose score
        moves while its neighbours hold still has drifted.
        """
        return {
            name: (total / count) / self._dim
            for name, (count, total) in sorted(self._drift.items())
            if count
        }

    # -- internal ------------------------------------------------------------

    def _class_hist(self, cache: dict, prefix: str, label: str, bounds):
        hist = cache.get(label)
        if hist is None:
            hist = cache[label] = self.metrics.histogram(
                f"{prefix}.{label}", bounds
            )
        return hist
