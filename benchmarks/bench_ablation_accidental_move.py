"""Ablation — moving accidentally complete subgestures (§4.5) and its
50%-of-minimum Mahalanobis threshold.

The move step exists because subgestures that happen to classify
correctly while still ambiguous would otherwise train the AUC to call
genuinely ambiguous prefixes unambiguous.  Expected shape: disabling the
move makes the recognizer commit earlier but misclassify more; the
threshold fraction sweeps between those poles.
"""

import pytest
from conftest import TEST_PARAMS, TEST_PER_CLASS, TRAIN_PER_CLASS, write_report

from repro.datasets import GestureSet
from repro.eager import EagerTrainingConfig, train_eager_recognizer
from repro.evaluate import evaluate_recognizer
from repro.synth import GestureGenerator, eight_direction_templates


@pytest.fixture(scope="module")
def workload():
    train = GestureGenerator(
        eight_direction_templates(), seed=121
    ).generate_strokes(TRAIN_PER_CLASS)
    test = GestureSet.from_generator(
        "test",
        GestureGenerator(
            eight_direction_templates(), params=TEST_PARAMS, seed=122
        ),
        TEST_PER_CLASS,
    )
    return train, test


def test_accidental_move_ablation(workload):
    train, test = workload
    rows = []
    results = {}
    for label, config in [
        ("move on (paper)", EagerTrainingConfig()),
        ("move off", EagerTrainingConfig(move_accidental=False)),
    ]:
        report = train_eager_recognizer(train, config=config)
        result = evaluate_recognizer(report.recognizer, test)
        results[label] = (report, result)
        rows.append(
            f"{label:<18} moved {report.moved_count:>4}   "
            f"eager acc {result.eager_accuracy:6.1%}   "
            f"seen {result.eagerness.mean_fraction_seen:6.1%}"
        )

    sweep_rows = []
    for fraction in (0.25, 0.5, 0.75, 1.0):
        config = EagerTrainingConfig(move_threshold_fraction=fraction)
        report = train_eager_recognizer(train, config=config)
        result = evaluate_recognizer(report.recognizer, test)
        sweep_rows.append(
            f"  threshold = {fraction:0.2f} x min: moved {report.moved_count:>4}, "
            f"eager acc {result.eager_accuracy:6.1%}, "
            f"seen {result.eagerness.mean_fraction_seen:6.1%}"
        )

    write_report(
        "ablation_accidental_move",
        "Ablation: moving accidentally complete subgestures (§4.5)\n\n"
        + "\n".join(rows)
        + "\n\nthreshold-fraction sweep (paper uses 0.50):\n"
        + "\n".join(sweep_rows),
    )

    on_report, on_result = results["move on (paper)"]
    off_report, off_result = results["move off"]
    assert on_report.moved_count > 0
    assert off_report.moved_count == 0
    # Without the move the AUC trains on polluted complete sets and
    # commits earlier (or equally early).
    assert (
        off_result.eagerness.mean_fraction_seen
        <= on_result.eagerness.mean_fraction_seen + 1e-9
    )


def test_larger_threshold_moves_more(workload):
    train, _ = workload
    moved = []
    for fraction in (0.25, 0.5, 1.0):
        report = train_eager_recognizer(
            train, config=EagerTrainingConfig(move_threshold_fraction=fraction)
        )
        moved.append(report.moved_count)
    assert moved == sorted(moved)


def test_move_step_cost(workload, benchmark):
    train, _ = workload
    benchmark(
        lambda: train_eager_recognizer(train, config=EagerTrainingConfig())
    )
