"""Regression tests for ``loadgen`` observability under empty traffic.

A zero-client (or otherwise decisionless) run used to crash twice over:
the ``--mode both`` speedup line divided by a zero sequential
throughput, and ``--metrics`` printing assumed every histogram had
samples.  These tests pin the fixed behaviour — a clean exit, a
speedup of "n/a", and the exact shape of an empty metrics snapshot
(count 0, ``min``/``max`` null, all bucket counts zero).
"""

from __future__ import annotations

import json

from repro.cli import main
from repro.obs import MetricsRegistry, PoolObserver
from repro.serve import generate_workload, run_load
from repro.synth import eight_direction_templates


def test_loadgen_both_mode_survives_zero_clients(capsys):
    assert main(["loadgen", "--clients", "0", "--gestures", "0"]) == 0
    out = capsys.readouterr().out
    assert "speedup: n/a (no points delivered)" in out


def test_loadgen_metrics_survives_zero_clients(capsys):
    assert (
        main(
            [
                "loadgen",
                "--clients", "0",
                "--gestures", "0",
                "--mode", "batched",
                "--metrics",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "metrics counters:" in out
    assert "Traceback" not in out


def test_loadgen_metrics_out_round_trips_empty_snapshot(capsys, tmp_path):
    """The written snapshot of an idle run parses and keeps its shape."""
    path = tmp_path / "metrics.json"
    assert (
        main(
            [
                "loadgen",
                "--clients", "0",
                "--gestures", "0",
                "--mode", "batched",
                "--metrics-out", str(path),
            ]
        )
        == 0
    )
    capsys.readouterr()
    snapshot = json.loads(path.read_text())
    assert set(snapshot) == {"counters", "histograms"}
    for h in snapshot["histograms"].values():
        assert h["count"] == 0
        assert h["min"] is None and h["max"] is None
        assert all(n == 0 for _, n in h["buckets"])


def test_empty_snapshot_shape_is_pinned():
    """An observed run with no traffic yields the canonical empty shape."""
    workload = generate_workload(
        eight_direction_templates(), clients=0, gestures_per_client=0, seed=1
    )
    from repro.eager import train_eager_recognizer
    from repro.synth import GestureGenerator

    generator = GestureGenerator(eight_direction_templates(), seed=2)
    recognizer = train_eager_recognizer(
        generator.generate_strokes(10)
    ).recognizer
    metrics = MetricsRegistry()
    result = run_load(
        recognizer,
        workload,
        batched=True,
        observer=PoolObserver(metrics=metrics),
    )
    assert result.points == 0
    snapshot = result.metrics
    assert snapshot == metrics.snapshot()  # loadgen returns the final one
    assert all(v == 0 for v in snapshot["counters"].values())
    for h in snapshot["histograms"].values():
        assert h["count"] == 0 and h["sum"] == 0.0
        assert h["min"] is None and h["max"] is None
