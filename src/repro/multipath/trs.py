"""Two-finger translate-rotate-scale manipulation.

"The translate-rotate-scale gesture is made with two fingers, which
during the manipulation phase allow for simultaneous rotation,
translation, and scaling of graphic objects." (§6)

Given the two fingers' reference positions and their current positions,
there is a unique similarity transform (rotation + uniform scale +
translation) mapping the reference pair onto the current pair; graphics
objects follow that transform.  :class:`TwoFingerTracker` applies it
incrementally as new finger positions arrive.
"""

from __future__ import annotations

import math

from ..geometry import Affine, Point

__all__ = ["similarity_from_pairs", "TwoFingerTracker"]


def similarity_from_pairs(
    a0: Point, b0: Point, a1: Point, b1: Point
) -> Affine:
    """The similarity mapping segment (a0, b0) onto (a1, b1).

    Raises:
        ValueError: if the reference fingers are coincident (no segment
            to define rotation and scale).
    """
    ref_dx, ref_dy = b0.x - a0.x, b0.y - a0.y
    cur_dx, cur_dy = b1.x - a1.x, b1.y - a1.y
    ref_len = math.hypot(ref_dx, ref_dy)
    if ref_len < 1e-9:
        raise ValueError("reference fingers are coincident")
    cur_len = math.hypot(cur_dx, cur_dy)
    scale = cur_len / ref_len
    angle = math.atan2(cur_dy, cur_dx) - math.atan2(ref_dy, ref_dx)
    # Rotate-scale about a0, then translate a0 to a1.
    rotate_scale = Affine.about(
        a0, Affine.rotation(angle) @ Affine.scaling(scale)
    )
    return Affine.translation(a1.x - a0.x, a1.y - a0.y) @ rotate_scale


class TwoFingerTracker:
    """Feeds successive finger pairs; yields the incremental transform.

    Use during a multi-path manipulation phase::

        tracker = TwoFingerTracker(first_a, first_b)
        for a, b in finger_updates:
            shape.apply_transform(tracker.update(a, b))
    """

    def __init__(self, finger_a: Point, finger_b: Point):
        if finger_a.distance_to(finger_b) < 1e-9:
            raise ValueError("fingers must start apart")
        self._a = finger_a
        self._b = finger_b

    def update(self, finger_a: Point, finger_b: Point) -> Affine:
        """The transform from the previous pair to this pair."""
        transform = similarity_from_pairs(self._a, self._b, finger_a, finger_b)
        self._a = finger_a
        self._b = finger_b
        return transform
