"""Malformed-input edges: the protocol decoder, the line framer, and
per-session error isolation over real TCP.

Companion to ``test_server.py``'s happy paths: every test here feeds
the server something broken — truncated JSON, unknown ops, missing
session ids, duplicate opens, a line bigger than the frame cap — and
asserts the damage stays confined to an error reply on the offending
stroke/line while everything else on the connection keeps working.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve import (
    DEFAULT_MAX_LINE,
    GestureServer,
    LineReader,
    ProtocolError,
    decode_request,
)


# -- decoder edges (pure) -----------------------------------------------------


@pytest.mark.parametrize(
    "line,fragment",
    [
        ('{"op": "down", "stroke": "s1", "x": 1,', "bad json"),  # truncated
        ("", "bad json"),
        ("[1, 2, 3]", "json object"),
        ('{"op": "merge", "t": 0.1}', "unknown op"),
        ('{"t": 0.1}', "unknown op"),  # no op at all
        ('{"op": "down", "x": 1, "y": 2, "t": 0.1}', "missing stroke"),
        ('{"op": "down", "stroke": "", "x": 1, "y": 2, "t": 0.1}', "missing stroke"),
        ('{"op": "down", "stroke": 7, "x": 1, "y": 2, "t": 0.1}', "missing stroke"),
        ('{"op": "down", "stroke": "s1", "x": 1, "y": 2}', "non-numeric t"),
        ('{"op": "down", "stroke": "s1", "x": 1, "y": 2, "t": "soon"}', "non-numeric t"),
        ('{"op": "down", "stroke": "s1", "y": 2, "t": 0.1}', "x/y"),
        ('{"op": "down", "stroke": "s1", "x": "a", "y": 2, "t": 0.1}', "x/y"),
        ('{"op": "tick"}', "non-numeric t"),  # tick requires t
        ('{"op": "sweep", "max_idle": "all"}', "max_idle"),
        ('{"op": "sweep", "max_idle": -1}', "max_idle"),
    ],
)
def test_decode_request_rejects(line, fragment):
    with pytest.raises(ProtocolError) as exc:
        decode_request(line)
    assert fragment in str(exc.value)


def test_decode_request_optional_t():
    # sweep and stats may omit t (clock no-op); tick may not.
    assert decode_request('{"op": "sweep"}').t == 0.0
    assert decode_request('{"op": "stats"}').t == 0.0
    assert decode_request('{"op": "sweep", "max_idle": 2}').max_idle == 2.0


# -- the bounded line framer (pure asyncio, no server) ------------------------


class _FeedReader:
    """A minimal StreamReader stand-in fed from a byte script."""

    def __init__(self, chunks):
        self._chunks = list(chunks)

    async def read(self, n):
        if not self._chunks:
            return b""
        return self._chunks.pop(0)


def _drain(reader: LineReader):
    async def run():
        events = []
        while True:
            kind, line = await reader.next()
            events.append((kind, line))
            if kind == "eof":
                return events

    return asyncio.run(run())


def test_line_reader_plain_lines_across_chunks():
    reader = LineReader(_FeedReader([b"ab", b"c\nde\nf", b"g\n"]), 64)
    assert _drain(reader) == [
        ("line", b"abc"),
        ("line", b"de"),
        ("line", b"fg"),
        ("eof", b""),
    ]


def test_line_reader_oversized_line_is_one_overflow():
    big = b"x" * 200
    reader = LineReader(_FeedReader([big, b"yyy\nok\n"]), 64)
    assert _drain(reader) == [
        ("overflow", b""),
        ("line", b"ok"),
        ("eof", b""),
    ]


def test_line_reader_oversized_complete_line_in_one_chunk():
    # The newline is already in the buffer: still an overflow, not a
    # 100KiB "line".
    reader = LineReader(_FeedReader([b"x" * 100 + b"\nok\n"]), 64)
    assert _drain(reader) == [
        ("overflow", b""),
        ("line", b"ok"),
        ("eof", b""),
    ]


def test_line_reader_unterminated_tail():
    reader = LineReader(_FeedReader([b"tail"]), 64)
    assert _drain(reader) == [("line", b"tail"), ("eof", b"")]
    # ...and an unterminated oversized tail is an overflow.
    reader = LineReader(_FeedReader([b"x" * 100]), 64)
    assert _drain(reader) == [("overflow", b""), ("eof", b"")]


# -- TCP error isolation ------------------------------------------------------


async def _tcp_scenario(recognizer, script, **server_kwargs):
    """Run ``script(reader, writer)`` against a live TCP server."""
    server = GestureServer(recognizer, **server_kwargs)
    await server.start()
    try:
        host, port = server.address
        reader, writer = await asyncio.open_connection(host, port)
        try:
            return await script(reader, writer)
        finally:
            writer.close()
            await writer.wait_closed()
    finally:
        await server.stop()


async def _readline(reader) -> dict:
    return json.loads(await asyncio.wait_for(reader.readline(), timeout=10.0))


def test_oversized_line_gets_error_and_connection_survives(
    directions_recognizer,
):
    # The regression this file exists for: a >64KiB unterminated line
    # used to blow up the reader task with LimitOverrunError and kill
    # the connection.  Now: one error reply, stroke state intact.
    async def script(reader, writer):
        writer.write(
            json.dumps(
                {"op": "down", "stroke": "s1", "x": 0, "y": 0, "t": 0.0}
            ).encode()
            + b"\n"
        )
        # 100 KiB of garbage on one line, bigger than DEFAULT_MAX_LINE.
        writer.write(b"z" * (DEFAULT_MAX_LINE + 40000) + b"\n")
        await writer.drain()
        error = await _readline(reader)
        # The open stroke is unharmed: finish it and get its decisions.
        for i in range(1, 10):
            writer.write(
                json.dumps(
                    {
                        "op": "move",
                        "stroke": "s1",
                        "x": i * 5.0,
                        "y": i * 5.0,
                        "t": i * 0.01,
                    }
                ).encode()
                + b"\n"
            )
        writer.write(
            json.dumps(
                {"op": "up", "stroke": "s1", "x": 45.0, "y": 45.0, "t": 0.1}
            ).encode()
            + b"\n"
        )
        await writer.drain()
        replies = [error]
        while replies[-1]["kind"] != "commit":
            replies.append(await _readline(reader))
        return replies

    replies = asyncio.run(_tcp_scenario(directions_recognizer, script))
    assert replies[0]["kind"] == "error"
    assert str(DEFAULT_MAX_LINE) in replies[0]["reason"]
    assert replies[-1]["kind"] == "commit"
    assert replies[-1]["stroke"] == "s1"


def test_malformed_lines_are_isolated_per_connection(directions_recognizer):
    async def script(reader, writer):
        bad = [
            b'{"op": "down", "stroke": "s1", "x": 1,',
            b'{"op": "merge", "t": 0.0}',
            b'{"op": "down", "x": 1, "y": 2, "t": 0.0}',
        ]
        for line in bad:
            writer.write(line + b"\n")
        await writer.drain()
        errors = [await _readline(reader) for _ in bad]
        # The connection still speaks protocol afterwards.
        writer.write(b'{"op": "stats"}\n')
        await writer.drain()
        stats = await _readline(reader)
        return errors, stats

    errors, stats = asyncio.run(_tcp_scenario(directions_recognizer, script))
    assert [e["kind"] for e in errors] == ["error"] * 3
    assert "bad json" in errors[0]["reason"]
    assert "unknown op" in errors[1]["reason"]
    assert "missing stroke" in errors[2]["reason"]
    assert stats["kind"] == "stats"


def test_duplicate_down_errors_only_the_offender(directions_recognizer):
    async def script(reader, writer):
        ops = [
            {"op": "down", "stroke": "a", "x": 0, "y": 0, "t": 0.0},
            {"op": "down", "stroke": "b", "x": 9, "y": 9, "t": 0.0},
            {"op": "down", "stroke": "a", "x": 1, "y": 1, "t": 0.01},  # dup
        ]
        for i in range(1, 8):
            t = i * 0.01
            ops.append({"op": "move", "stroke": "a", "x": i * 5.0, "y": 0, "t": t})
            ops.append({"op": "move", "stroke": "b", "x": 9 - i, "y": 9, "t": t})
        ops.append({"op": "up", "stroke": "a", "x": 35.0, "y": 0, "t": 0.08})
        ops.append({"op": "up", "stroke": "b", "x": 2.0, "y": 9, "t": 0.08})
        for payload in ops:
            writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()
        per_stroke: dict = {}
        commits = 0
        while commits < 2:
            reply = await _readline(reader)
            per_stroke.setdefault(reply["stroke"], []).append(reply)
            if reply["kind"] == "commit":
                commits += 1
        return per_stroke

    per_stroke = asyncio.run(_tcp_scenario(directions_recognizer, script))
    a_kinds = [r["kind"] for r in per_stroke["a"]]
    b_kinds = [r["kind"] for r in per_stroke["b"]]
    # The duplicate down errored on "a"...
    assert "error" in a_kinds
    assert per_stroke["a"][a_kinds.index("error")]["reason"] == "duplicate down"
    # ...but both sessions still recognized and committed.
    assert a_kinds[-1] == "commit" and b_kinds[-1] == "commit"
    assert "error" not in b_kinds
