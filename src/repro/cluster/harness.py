"""Cluster orchestration and the deterministic test/bench driver.

:class:`Cluster` wires the three tentpole pieces together — a
:class:`~repro.cluster.router.Router` in this process and a
:class:`~repro.cluster.supervisor.Supervisor` spawning one
:class:`~repro.cluster.worker` subprocess per shard — and owns the
drain choreography.

The driver half exists for one claim: *cluster output is byte-identical
to a single pool*.  :func:`workload_ticks` pivots a
:func:`~repro.serve.generate_workload` script (or a fault plan's
``delivered_log``) into per-tick groups; :func:`drive_cluster` plays
them over one TCP connection with an explicit ``tick`` barrier after
each group — the same (apply, advance) cadence
:func:`~repro.serve.run_load` uses — and collects the reply lines per
stroke; :func:`reference_lines` produces what a single
:class:`~repro.serve.SessionPool` says to the identical cadence.
Comparing the two dicts *as strings* is the invariance test.

The driver ends with a trailing tick + ``sweep`` (the drain
``run_load`` performs in-process) and then uses a ``stats`` request as
a completion barrier: each worker answers stats after everything it was
sent earlier, and the router's fleet reply waits on every live worker,
so when the stats reply lands every prior decision has, too.
"""

from __future__ import annotations

import asyncio
import json

from ..interaction import DEFAULT_TIMEOUT
from ..serve import SessionPool, encode_decision
from .router import Router
from .supervisor import Supervisor

__all__ = [
    "Cluster",
    "drive_cluster",
    "reference_lines",
    "workload_ticks",
]


class Cluster:
    """A router, a supervisor, and N worker processes, as one object."""

    def __init__(
        self,
        recognizer_path: str,
        workers: int = 2,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float | None = None,
        max_sessions: int = 4096,
        heartbeat: float = 0.5,
        backoff_base: float = 0.05,
        drain_timeout: float = 30.0,
        metrics: bool = True,
        shard_names=None,
        registry=None,
        framing: str = "lp1",
        no_lp1_shards=(),
        quality: bool = False,
        quality_sample: float = 1.0,
        quality_seed: int = 0,
    ):
        from ..obs import MetricsRegistry

        shards = (
            tuple(shard_names)
            if shard_names is not None
            else tuple(f"w{i}" for i in range(workers))
        )
        self.metrics = MetricsRegistry() if metrics else None
        self.drain_timeout = drain_timeout
        # ``framing`` picks the router→worker wire ("lp1" negotiated
        # per link, "ndjson" legacy); ``no_lp1_shards`` spawns selected
        # workers with --no-lp1, producing a mixed fleet where those
        # links fall back to NDJSON — outputs are byte-identical either
        # way, which tests assert.
        self.router = Router(
            shards, host=host, port=port, metrics=self.metrics,
            registry=registry, worker_framing=framing,
        )
        self.supervisor = Supervisor(
            recognizer_path,
            shards,
            timeout=timeout,
            max_sessions=max_sessions,
            heartbeat=heartbeat,
            backoff_base=backoff_base,
            on_up=self.router.worker_up,
            on_down=self.router.worker_down,
            registry=registry,
            no_lp1_shards=no_lp1_shards,
            quality=quality,
            quality_sample=quality_sample,
            quality_seed=quality_seed,
        )
        self.router.drain_hook = self.drain
        self.router.supervisor_status = self.supervisor.status

    async def start(self) -> None:
        await self.router.start()
        await self.supervisor.start()

    async def stop(self) -> None:
        await self.supervisor.stop()
        await self.router.stop()

    async def __aenter__(self) -> "Cluster":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    @property
    def address(self) -> tuple[str, int]:
        return self.router.address

    def status(self) -> dict:
        return self.router.status()

    def kill(self, shard: str) -> int | None:
        """SIGKILL one worker; the supervisor will restart it."""
        return self.supervisor.kill(shard)

    async def wait_all_up(self, timeout: float = 30.0) -> None:
        """Block until every non-retired shard is spawned and connected."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while True:
            pending = [
                shard
                for shard, link in self.router.links.items()
                if shard not in self.router.retired and link.state != "up"
            ]
            if not pending:
                return
            if loop.time() >= deadline:
                raise TimeoutError(f"shards never came up: {pending}")
            await asyncio.sleep(0.02)

    async def wait_recovered(
        self, shard: str, ups_before: int, timeout: float = 60.0
    ) -> None:
        """Block until ``shard`` has *reconnected* since ``ups_before``.

        Death detection is asynchronous — immediately after a SIGKILL
        the link still reads "up" — so crash tests snapshot
        ``router.links[shard].ups`` before killing and wait here for it
        to move, which proves the death was noticed, the worker
        respawned, and the journal replay was enqueued.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        link = self.router.links[shard]
        while not (link.ups > ups_before and link.state == "up"):
            if loop.time() >= deadline:
                raise TimeoutError(
                    f"{shard} never recovered (ups {link.ups}, "
                    f"state {link.state})"
                )
            await asyncio.sleep(0.02)

    async def drain(self, shard: str) -> None:
        """Gracefully retire ``shard``: spill new sessions to the ring
        successor, wait out its live sessions, then terminate it.

        The wait is bounded by ``drain_timeout``: a client that opened
        a session and went silent would otherwise stall the drain
        forever (with the shard stuck "draining" and un-drainable
        again).  At the deadline the router force-sweeps the shard
        (targeted ``max_idle=0`` eviction, journaled like any sweep);
        if sessions still survive a grace period — e.g. ops timestamped
        ahead of the virtual clock cannot be idle — the drain aborts,
        the shard returns to normal routing, and it can be re-drained
        later.  ``cluster.drains_forced`` / ``cluster.drain_aborts``
        record both escalations.
        """
        if shard in self.router.draining or shard in self.router.retired:
            return
        loop = asyncio.get_running_loop()
        started = loop.time()
        self.router.draining.add(shard)
        if self.metrics is not None:
            self.metrics.counter("cluster.drains").inc()
        deadline = started + self.drain_timeout
        forced = False
        while any(
            r.shard == shard for r in self.router.sessions.values()
        ):
            if loop.time() >= deadline:
                if not forced:
                    forced = True
                    deadline = loop.time() + min(5.0, self.drain_timeout)
                    self.router.force_sweep(shard)
                    if self.metrics is not None:
                        self.metrics.counter("cluster.drains_forced").inc()
                else:
                    self.router.draining.discard(shard)
                    if self.metrics is not None:
                        self.metrics.counter("cluster.drain_aborts").inc()
                    return
            await asyncio.sleep(0.02)
        await self.supervisor.retire(shard)
        self.router.retired.add(shard)
        if self.metrics is not None:
            self.metrics.histogram(
                "cluster.drain_seconds", (0.1, 1.0, 10.0, 60.0)
            ).observe(loop.time() - started)


def workload_ticks(source, dt: float = 0.01):
    """Pivot ops into ``[(t, [op, ...]), ...]`` tick groups.

    ``source`` is either a :func:`~repro.serve.generate_workload` script
    (list of per-client op lists; tick ``k`` is ``t = k * dt``, client
    order preserved within a tick, as in ``run_load``) or a
    ``delivered_log`` from a faulted ``run_load`` (``(t, op)`` pairs,
    already timestamped — the post-fault ground truth).
    """
    if source and isinstance(source[0], tuple):  # a delivered_log
        ticks: list[tuple[float, list]] = []
        for t, op in source:
            if ticks and ticks[-1][0] == t:
                ticks[-1][1].append(op)
            else:
                ticks.append((t, [op]))
        return ticks
    n_ticks = max((len(ops) for ops in source), default=0)
    out = []
    for k in range(n_ticks):
        group = [
            ops[k]
            for ops in source
            if k < len(ops) and ops[k][0] != "idle"
        ]
        out.append((k * dt, group))
    return out


async def drive_cluster(
    host: str,
    port: int,
    ticks,
    *,
    end_t: float | None = None,
    sweep_idle: float = 0.0,
    before_tick=None,
    before_barrier=None,
    barrier_timeout: float = 120.0,
):
    """Play tick groups against a server; return per-stroke reply lines.

    Works against a :class:`~repro.serve.GestureServer` or a
    :class:`~repro.cluster.router.Router` alike — the protocol is the
    same, which is the invariant under test.  ``before_tick(i, t)``
    runs ahead of group ``i`` (chaos hooks inject crashes here);
    ``before_barrier()`` runs after the final sweep, before the
    ``stats`` completion barrier (crash tests wait for the fleet to
    heal here, so the barrier covers the replay too).

    Returns ``(replies, stats)``: ``replies`` maps each stroke id to
    its reply lines in arrival order; ``stats`` is the decoded barrier
    reply.
    """
    reader, writer = await asyncio.open_connection(host, port)
    replies: dict[str, list[str]] = {}
    stats: dict | None = None
    done = asyncio.Event()

    async def read_replies() -> None:
        nonlocal stats
        while True:
            raw = await reader.readline()
            if not raw:
                break
            obj = json.loads(raw)
            if obj.get("kind") == "stats":
                stats = obj
                done.set()
                break
            replies.setdefault(obj.get("stroke", ""), []).append(
                raw.decode().rstrip("\n")
            )

    read_task = asyncio.get_running_loop().create_task(read_replies())
    try:
        for i, (t, group) in enumerate(ticks):
            if before_tick is not None:
                await before_tick(i, t)
            out = [
                json.dumps(
                    {"op": name, "stroke": key, "x": x, "y": y, "t": t}
                )
                for name, key, x, y in group
            ]
            out.append(json.dumps({"op": "tick", "t": t}))
            writer.write(("\n".join(out) + "\n").encode())
            await writer.drain()
        tail = []
        if end_t is not None:
            tail.append(json.dumps({"op": "tick", "t": end_t}))
        tail.append(json.dumps({"op": "sweep", "max_idle": sweep_idle}))
        writer.write(("\n".join(tail) + "\n").encode())
        await writer.drain()
        if before_barrier is not None:
            await before_barrier()
        writer.write(b'{"op": "stats"}\n')
        await writer.drain()
        await asyncio.wait_for(done.wait(), timeout=barrier_timeout)
    finally:
        read_task.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return replies, stats


def reference_lines(
    recognizer,
    ticks,
    *,
    end_t: float | None = None,
    sweep_idle: float = 0.0,
    timeout: float = DEFAULT_TIMEOUT,
    batched: bool = True,
    max_sessions: int = 4096,
) -> dict[str, list[str]]:
    """What one :class:`SessionPool` replies to the same cadence.

    The pool is driven exactly as :func:`~repro.serve.run_load` drives
    it — submit each tick's ops, advance to the tick's time — and the
    decisions are encoded with the protocol encoder, so the returned
    per-stroke line lists are directly comparable (``==``) with
    :func:`drive_cluster`'s.
    """
    pool = SessionPool(
        recognizer, timeout=timeout, batched=batched, max_sessions=max_sessions
    )
    replies: dict[str, list[str]] = {}

    def emit(decisions) -> None:
        for d in decisions:
            replies.setdefault(d.key, []).append(encode_decision(d, d.key))

    for t, group in ticks:
        if group:
            pool.submit(group, t)
        emit(pool.advance_to(t))
    if end_t is not None:
        emit(pool.advance_to(end_t))
    emit(pool.evict_idle(sweep_idle))
    return replies
