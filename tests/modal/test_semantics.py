"""StrokeSemantics / PairSemantics against hand-fed op+decision streams.

Each test plays the two streams a real run would produce — moves, a
``recog`` decision with its reason, a terminal ``commit``/``evict``,
tick boundaries — and pins the modal events they must yield.
"""

from __future__ import annotations

import pytest

from repro.modal import ModalityConfig, PairSemantics, StrokeSemantics

CONFIG = ModalityConfig()


def stroke(key="s", x=0.0, y=0.0, t=0.0, config=CONFIG, viewport=None):
    return StrokeSemantics(key, x, y, t, config, viewport)


def kinds(events):
    return [(e.modality, e.kind) for e in events]


class TestHoldPromotion:
    def test_motionless_timeout_promotes_after_duration(self):
        s = stroke()
        # The pool's motionless timeout fires at 0.2; the hold needs
        # the press to be 0.35 old, so the promotion arms and the tick
        # boundary at/after 0.35 confirms it.
        events = s.on_decision("recog", "timeout", "hold", 0.2)
        assert events == []
        assert s.on_tick(0.3) == []
        begin = s.on_tick(0.35)
        assert kinds(begin) == [("hold", "begin")]
        assert begin[0].t == 0.35
        assert begin[0].data["held_s"] == pytest.approx(0.35)
        # Confirmation is one-shot.
        assert s.on_tick(0.4) == []
        end = s.on_decision("commit", None, "hold", 0.6)
        assert kinds(end) == [("hold", "end")]

    def test_timeout_promotion_is_kinematic_not_class_routed(self):
        # A 3-point blob misclassified as "tap" that then goes
        # motionless: the stillness is the signal, the class is noise.
        s = stroke()
        s.on_move(1.0, 0.0, 0.01)
        s.on_decision("recog", "timeout", "tap", 0.21)
        assert kinds(s.on_tick(0.35)) == [("hold", "begin")]

    def test_eager_hold_decision_promotes_without_a_timeout(self):
        # A jittery press: samples keep arriving so the motionless
        # timeout never fires, but the eager path names it "hold".
        s = stroke()
        s.on_move(2.0, 1.0, 0.05)
        s.on_decision("recog", "eager", "hold", 0.1)
        assert kinds(s.on_tick(0.35)) == [("hold", "begin")]

    def test_eager_promotion_already_past_duration_begins_at_decision(self):
        s = stroke(t=0.0, config=CONFIG.with_overrides(hold_duration=0.05))
        events = s.on_decision("recog", "eager", "hold", 0.1)
        assert kinds(events) == [("hold", "begin")]
        assert events[0].t == 0.1

    def test_drifted_press_never_promotes(self):
        s = stroke()
        s.on_move(CONFIG.hold_max_drift + 1.0, 0.0, 0.05)
        s.on_decision("recog", "timeout", "hold", 0.25)
        assert s.on_tick(1.0) == []

    def test_released_before_duration_is_too_brief_to_hold(self):
        s = stroke()
        s.on_up(0.0, 0.0, 0.1)
        events = s.on_decision("recog", "up", "hold", 0.1)
        assert events == []  # closed, no hold begin
        assert s.closed
        assert s.on_tick(1.0) == []

    def test_up_after_duration_fires_begin_then_end(self):
        s = stroke(config=CONFIG.with_overrides(hold_duration=0.05))
        s.on_up(0.0, 0.0, 0.1)
        events = s.on_decision("recog", "up", "hold", 0.1)
        assert kinds(events) == [("hold", "begin"), ("hold", "end")]

    def test_moves_during_hold_stream_drag_updates(self):
        s = stroke(config=CONFIG.with_overrides(hold_duration=0.05))
        s.on_decision("recog", "eager", "hold", 0.1)
        update = s.on_move(3.0, 4.0, 0.15)
        assert kinds(update) == [("hold", "update")]
        assert update[0].data == {"dx": 3.0, "dy": 4.0}


class TestScrollSemantics:
    def test_locked_before_decision_begins_at_decision(self):
        s = stroke()
        s.on_move(0.0, 30.0, 0.05)  # travel 30 >= 24: lock engages
        events = s.on_decision("recog", "eager", "scroll_v", 0.06)
        assert kinds(events) == [("scroll", "begin")]
        assert events[0].data["axis"] == "v"

    def test_updates_project_on_the_locked_axis(self):
        s = stroke()
        s.on_move(0.0, 30.0, 0.05)
        s.on_decision("recog", "eager", "scroll_v", 0.06)
        update = s.on_move(100.0, 40.0, 0.07)  # a hard horizontal turn
        assert kinds(update) == [("scroll", "update")]
        assert update[0].data == {"axis": "v", "delta": 10.0}
        end = s.on_decision("commit", None, "scroll_v", 0.2)
        assert kinds(end) == [("scroll", "end")]
        assert end[0].data["total"] == pytest.approx(10.0)

    def test_lock_after_decision_begins_at_the_lock(self):
        s = stroke()
        s.on_move(0.0, 10.0, 0.05)  # below scroll_min_travel
        assert s.on_decision("recog", "eager", "scroll_v", 0.06) == []
        events = s.on_move(0.0, 40.0, 0.07)  # travel crosses 24 here
        assert kinds(events) == [("scroll", "begin"), ("scroll", "update")]

    def test_non_scroll_class_never_scrolls(self):
        s = stroke()
        s.on_move(0.0, 30.0, 0.05)
        s.on_decision("recog", "eager", "tap", 0.06)
        assert s.on_move(0.0, 60.0, 0.07) == []


class TestSwipeSemantics:
    FAST = 15.0  # px per 10 ms tick = 1500 px/s

    def _flick(self, s, n, t0=0.0):
        events = []
        for i in range(1, n + 1):
            events.extend(s.on_move(self.FAST * i, 0.0, t0 + 0.01 * i))
        return events

    def test_window_hit_then_decision_fires_at_decision(self):
        s = stroke()
        self._flick(s, 6)  # 90 px in 60 ms: qualifies
        events = s.on_decision("recog", "eager", "swipe_e", 0.07)
        assert kinds(events) == [("swipe", "fire")]
        assert events[0].data["direction"] == "e"
        assert events[0].data["velocity"] >= CONFIG.swipe_min_velocity

    def test_decision_then_window_hit_fires_on_the_move(self):
        s = stroke()
        self._flick(s, 2)  # 30 px: window not yet qualified
        assert s.on_decision("recog", "eager", "swipe_e", 0.025) == []
        events = []
        for i in range(3, 10):  # the flick continues past the decision
            events.extend(s.on_move(self.FAST * i, 0.0, 0.01 * i))
        fires = [e for e in events if e.kind == "fire"]
        assert len(fires) == 1  # latched: later qualifying samples don't re-fire

    def test_classified_swipe_that_never_qualified_rejects(self):
        s = stroke()
        for i in range(1, 30):  # a slow amble east
            s.on_move(2.0 * i, 0.0, 0.01 * i)
        s.on_decision("recog", "eager", "swipe_e", 0.1)
        s.on_up(60.0, 0.0, 0.3)
        events = s.on_decision("recog", "up", "swipe_e", 0.3)
        assert kinds(events) == [("swipe", "reject")]
        assert events[0].data == {"reason": "window"}

    def test_edge_swipe_carries_the_edge(self):
        s = stroke(x=4.0, y=300.0, viewport=(800.0, 600.0))
        for i in range(1, 7):
            s.on_move(4.0 + self.FAST * i, 300.0, 0.01 * i)
        events = s.on_decision("recog", "eager", "swipe_e", 0.07)
        assert events[0].data["edge"] == "w"

    def test_interior_swipe_has_no_edge(self):
        s = stroke(x=400.0, y=300.0, viewport=(800.0, 600.0))
        for i in range(1, 7):
            s.on_move(400.0 + self.FAST * i, 300.0, 0.01 * i)
        events = s.on_decision("recog", "eager", "swipe_e", 0.07)
        assert "edge" not in events[0].data


class TestLifecycle:
    def test_close_is_idempotent(self):
        s = stroke(config=CONFIG.with_overrides(hold_duration=0.05))
        s.on_decision("recog", "eager", "hold", 0.1)
        assert kinds(s.on_decision("commit", None, "hold", 0.2)) == [
            ("hold", "end")
        ]
        assert s.on_decision("evict", None, None, 0.3) == []

    def test_evict_closes_like_commit(self):
        s = stroke()
        s.on_move(0.0, 30.0, 0.05)
        s.on_decision("recog", "eager", "scroll_v", 0.06)
        assert kinds(s.on_decision("evict", None, None, 0.5)) == [
            ("scroll", "end")
        ]

    def test_plain_stroke_class_emits_nothing(self):
        s = stroke()
        s.on_move(0.0, 30.0, 0.05)
        assert s.on_decision("recog", "eager", "line", 0.06) == []
        assert s.on_decision("commit", None, "line", 0.2) == []
        assert s.modality == "stroke"


class TestPairSemantics:
    def _pair(self):
        a = stroke(key="p:a", x=-50.0, y=0.0)
        b = stroke(key="p:b", x=50.0, y=0.0)
        return a, b, PairSemantics("p", CONFIG, a, b)

    def test_pinch_out_begins_updates_ends(self):
        a, b, pair = self._pair()
        a.on_move(-60.0, 0.0, 0.01)
        b.on_move(60.0, 0.0, 0.01)
        assert pair.on_pair_move(0.01) == []  # gap +20 < 24
        a.on_move(-70.0, 0.0, 0.02)
        b.on_move(70.0, 0.0, 0.02)
        begin = pair.on_pair_move(0.02)
        assert kinds(begin) == [("pinch", "begin")]
        assert begin[0].key == "p"
        assert begin[0].data["pair_kind"] == "pinch_out"
        assert begin[0].data["gap_change"] == pytest.approx(40.0)
        a.on_move(-80.0, 0.0, 0.03)
        update = pair.on_pair_move(0.03)
        assert kinds(update) == [("pinch", "update")]
        end = pair.on_close(0.05)
        assert kinds(end) == [("pinch", "end")]
        assert pair.on_close(0.06) == []  # idempotent

    def test_rotation_names_the_rotate_modality(self):
        a = stroke(key="p:a", x=0.0, y=-50.0)
        b = stroke(key="p:b", x=0.0, y=50.0)
        pair = PairSemantics("p", CONFIG, a, b)
        import math

        for i, angle in enumerate((0.15, 0.3), start=1):
            ax, ay = 50.0 * math.sin(angle), -50.0 * math.cos(angle)
            a.on_move(ax, ay, 0.01 * i)
            b.on_move(-ax, -ay, 0.01 * i)
            events = pair.on_pair_move(0.01 * i)
        assert kinds(events) == [("rotate", "begin")]
        assert abs(events[0].data["turn"]) >= CONFIG.rotate_min_angle

    def test_uncommitted_pair_ends_silently(self):
        a, b, pair = self._pair()
        a.on_move(-52.0, 0.0, 0.01)
        pair.on_pair_move(0.01)
        assert pair.on_close(0.02) == []
