"""Observer overhead — what does watching the serving layer cost?

PR 2's contract is that observability is *injected*: with no observer
the pool's hot path pays one ``is not None`` test per hook site, and
with one attached the bookkeeping is pre-bound counters and histogram
inserts.  This benchmark prices that contract at the serving layer's
reference scale (256 concurrent sessions, the throughput benchmark's
workload): the metrics-observed batched run must stay within 10 % of
the bare run.

Quality telemetry is asserted too: since the monitor consumes the
feature bank's raw sidecar snapshots and defers all scoring to scrape
time, always-on quality must stay within 15 % of bare — the bound that
makes "leave it on in production" a budgeted claim rather than a hope.
The tracer configuration (per-decision record building, which forces
eager scoring) stays informational.  One profiled run's per-section
timings ride along, and everything lands in ``BENCH_obs.json`` at the
repo root so the overhead trajectory is diffable across PRs.

Measurements interleave configurations within each repeat (bare, then
each observed flavour) and keep the best repeat per configuration, so a
machine-load hiccup hits all configurations alike rather than biasing
one side of the ratio.
"""

from __future__ import annotations

import gc

from conftest import write_bench_json, write_report

from repro.eager import train_eager_recognizer
from repro.obs import (
    MetricsRegistry,
    PerfProfiler,
    PoolObserver,
    QualityMonitor,
    Tracer,
)
from repro.serve import family_templates, generate_workload, run_load
from repro.synth import GestureGenerator

CLIENTS = 256
GESTURES_PER_CLIENT = 4
REPEATS = 5
MAX_METRICS_OVERHEAD = 1.10
MAX_QUALITY_OVERHEAD = 1.15


def _setup():
    templates = family_templates("notes")
    generator = GestureGenerator(templates, seed=3)
    recognizer = train_eager_recognizer(
        generator.generate_strokes(12)
    ).recognizer
    workload = generate_workload(
        templates,
        clients=CLIENTS,
        gestures_per_client=GESTURES_PER_CLIENT,
        seed=5,
        dwell_every=0,
    )
    return recognizer, workload


def _timed(recognizer, workload, observer_factory):
    gc.collect()
    gc.disable()
    try:
        result = run_load(
            recognizer, workload, batched=True, observer=observer_factory()
        )
    finally:
        gc.enable()
    return result.points_per_sec


def test_observer_overhead_256_sessions():
    """Metrics-observed hot path within 10% of bare at 256 sessions."""
    recognizer, workload = _setup()

    configs = {
        "bare": lambda: None,
        "metrics": lambda: PoolObserver(metrics=MetricsRegistry()),
        "tracer": lambda: PoolObserver(
            metrics=MetricsRegistry(), tracer=Tracer()
        ),
        "quality": lambda: (
            lambda m: PoolObserver(
                metrics=m, quality=QualityMonitor(recognizer, metrics=m)
            )
        )(MetricsRegistry()),
    }
    # Warm numpy, the allocator, and every configuration's code paths.
    for factory in configs.values():
        run_load(recognizer, workload, batched=True, observer=factory())

    best = {name: 0.0 for name in configs}
    for _ in range(REPEATS):
        for name, factory in configs.items():
            pps = _timed(recognizer, workload, factory)
            if pps > best[name]:
                best[name] = pps

    ratios = {
        name: best["bare"] / best[name] for name in configs if name != "bare"
    }
    if (
        ratios["metrics"] > MAX_METRICS_OVERHEAD
        or ratios["quality"] > MAX_QUALITY_OVERHEAD
    ):
        # One retry for the asserted pairs: absorb a throttled repeat.
        for _ in range(REPEATS):
            for name in ("bare", "metrics", "quality"):
                pps = _timed(recognizer, workload, configs[name])
                if pps > best[name]:
                    best[name] = pps
        ratios = {
            name: best["bare"] / best[name]
            for name in configs
            if name != "bare"
        }

    # One profiled run for the per-section cost breakdown (wall-clock,
    # informational — not part of the asserted ratio).
    profiler = PerfProfiler()
    run_load(
        recognizer,
        workload,
        batched=True,
        observer=PoolObserver(metrics=MetricsRegistry(), profiler=profiler),
    )

    lines = [
        "Observer overhead, 256 concurrent sessions "
        f"(notes family, best of {REPEATS}, batched)",
        f"bare:    {best['bare']:,.0f} points/sec",
    ]
    for name in ("metrics", "tracer", "quality"):
        lines.append(
            f"{name:<8} {best[name]:,.0f} points/sec "
            f"(overhead {ratios[name]:.3f}x)"
        )
    write_report("obs_overhead", "\n".join(lines))
    write_bench_json(
        "obs",
        params={
            "family": "notes",
            "clients": CLIENTS,
            "gestures_per_client": GESTURES_PER_CLIENT,
            "repeats": REPEATS,
            "dwell_every": 0,
            "seed": 5,
            "max_metrics_overhead": MAX_METRICS_OVERHEAD,
            "max_quality_overhead": MAX_QUALITY_OVERHEAD,
        },
        results={
            "points_per_sec": {
                name: round(pps, 1) for name, pps in best.items()
            },
            "overhead_ratio": {
                name: round(ratio, 4) for name, ratio in ratios.items()
            },
            "profile": profiler.snapshot(),
        },
    )
    assert ratios["metrics"] <= MAX_METRICS_OVERHEAD, (
        f"metrics observer costs {ratios['metrics']:.3f}x "
        f"(bare {best['bare']:,.0f} vs observed {best['metrics']:,.0f} "
        f"points/sec), expected <= {MAX_METRICS_OVERHEAD}x"
    )
    assert ratios["quality"] <= MAX_QUALITY_OVERHEAD, (
        f"always-on quality telemetry costs {ratios['quality']:.3f}x "
        f"(bare {best['bare']:,.0f} vs observed {best['quality']:,.0f} "
        f"points/sec), expected <= {MAX_QUALITY_OVERHEAD}x"
    )
