"""The modal synth families: registration, pacing, landmarks, determinism.

Also pins the neutrality claim the pacing refactor rests on: templates
with default ``speed_scale``/``press_samples`` generate byte-identical
strokes to the pre-modal generator, so every existing family's datasets
and golden traces are untouched.
"""

from __future__ import annotations

import math

import pytest

from repro.synth import (
    FAMILY_NAMES,
    GestureGenerator,
    GestureTemplate,
    family_templates,
    modal_templates,
    pinch_templates,
)
from repro.synth.modal import (
    MODAL_CLASS_NAMES,
    PINCH_CLASS_NAMES,
    SWIPE_CLASS_NAMES,
    modality_of,
    swipe_templates,
)


class TestRegistration:
    def test_families_are_registered(self):
        for family in ("modal", "swipes", "pinch"):
            assert family in FAMILY_NAMES
            assert family_templates(family)

    def test_class_name_tuples_match_templates(self):
        assert MODAL_CLASS_NAMES == tuple(modal_templates())
        assert SWIPE_CLASS_NAMES == tuple(swipe_templates())
        assert PINCH_CLASS_NAMES == tuple(pinch_templates())

    def test_every_modal_class_has_a_modality(self):
        for name in MODAL_CLASS_NAMES + SWIPE_CLASS_NAMES + PINCH_CLASS_NAMES:
            assert modality_of(name) != "stroke", name


class TestTemplateFields:
    def test_speed_scale_must_be_positive(self):
        with pytest.raises(ValueError, match="speed_scale"):
            GestureTemplate(
                name="x", waypoints=((0, 0), (1, 0)), speed_scale=0.0
            )
        with pytest.raises(ValueError, match="speed_scale"):
            GestureTemplate(
                name="x", waypoints=((0, 0), (1, 0)), speed_scale=-1.0
            )

    def test_press_samples_must_be_non_negative(self):
        with pytest.raises(ValueError, match="press_samples"):
            GestureTemplate(
                name="x", waypoints=((0, 0), (1, 0)), press_samples=-1
            )

    def test_swipes_are_fast_scrolls_are_slow(self):
        templates = modal_templates()
        assert templates["swipe_e"].speed_scale > 1.0
        assert templates["scroll_v"].speed_scale < 1.0
        assert templates["swipe_e"].press_samples > 0
        assert templates["scroll_v"].press_samples == 0
        assert templates["hold"].dwell_samples > 0


class TestGeneration:
    def test_deterministic_per_seed(self):
        for templates in (modal_templates(), pinch_templates()):
            a = GestureGenerator(templates, seed=9).generate_strokes(3)
            b = GestureGenerator(templates, seed=9).generate_strokes(3)
            assert a == b

    def test_speed_scale_changes_sample_count_not_geometry(self):
        fast = GestureGenerator(modal_templates(), seed=5).generate("swipe_e")
        slow = GestureGenerator(modal_templates(), seed=5).generate("scroll_h")
        # Same eastward geometry family; the flick covers more ground
        # per sample, so it lands far fewer samples per unit length.
        def px_per_sample(g):
            pts = list(g.stroke)
            length = sum(
                math.hypot(b.x - a.x, b.y - a.y)
                for a, b in zip(pts, pts[1:])
            )
            return length / max(1, len(pts) - 1)

        assert px_per_sample(fast) > 2.0 * px_per_sample(slow)

    def test_press_samples_cluster_at_the_origin(self):
        gesture = GestureGenerator(modal_templates(), seed=5).generate("swipe_n")
        pts = list(gesture.stroke)
        first = pts[0]
        # The press prefix sits within jitter of the landing point while
        # the flick travels ~150 px: the first few inter-sample gaps are
        # tiny compared to the flight gaps.
        press_span = math.hypot(pts[2].x - first.x, pts[2].y - first.y)
        flight = math.hypot(pts[-1].x - first.x, pts[-1].y - first.y)
        assert press_span < 0.1 * flight

    def test_landmarks_become_oracle_points(self):
        generator = GestureGenerator(modal_templates(), seed=5)
        for name in ("swipe_e", "scroll_v", "swipe_s", "scroll_h"):
            gesture = generator.generate(name)
            assert gesture.oracle_points is not None, name
            assert 1 < gesture.oracle_points < len(list(gesture.stroke)), name

    def test_dots_have_no_oracle(self):
        generator = GestureGenerator(modal_templates(), seed=5)
        assert generator.generate("tap").oracle_points is None
        assert generator.generate("hold").oracle_points is None

    def test_hold_dwells_in_place(self):
        gesture = GestureGenerator(modal_templates(), seed=5).generate("hold")
        pts = list(gesture.stroke)
        assert len(pts) > 30  # the dwell samples are really there
        spread = max(
            math.hypot(p.x - pts[0].x, p.y - pts[0].y) for p in pts
        )
        assert spread < 8.0  # within the hold drift budget

    def test_pinch_fingers_converge(self):
        generator = GestureGenerator(pinch_templates(), seed=5)
        a = list(generator.generate("pinch_a").stroke)
        b = list(generator.generate("pinch_b").stroke)
        gap_start = math.hypot(b[0].x - a[0].x, b[0].y - a[0].y)
        gap_end = math.hypot(b[-1].x - a[-1].x, b[-1].y - a[-1].y)
        assert gap_end < gap_start - 24.0  # past pinch_min_travel


class TestNeutrality:
    """Default pacing fields must not perturb existing families."""

    def test_default_speed_scale_is_float_neutral(self):
        # A template with explicit defaults generates the same bytes as
        # one that never mentions the new fields.
        plain = GestureTemplate(name="l", waypoints=((0.0, 0.0), (1.0, 0.0)))
        spelled = GestureTemplate(
            name="l",
            waypoints=((0.0, 0.0), (1.0, 0.0)),
            speed_scale=1.0,
            press_samples=0,
        )
        a = GestureGenerator({"l": plain}, seed=3).generate_strokes(5)
        b = GestureGenerator({"l": spelled}, seed=3).generate_strokes(5)
        assert a == b

    def test_legacy_families_have_default_pacing(self):
        for family in FAMILY_NAMES:
            if family in ("modal", "swipes", "pinch"):
                continue
            for template in family_templates(family).values():
                assert template.speed_scale == 1.0, template.name
                assert template.press_samples == 0, template.name
