"""Affine transforms of the plane.

GDP's manipulation phase moves, scales and rotates shapes interactively
(rubberbanding a rectangle corner, dragging the rotate-scale handle), and
the synthetic gesture generator perturbs class templates with small
rotations and scalings.  Both are expressed as affine maps.

The transform is the 2x3 matrix ``[[a, b, tx], [c, d, ty]]`` applied as::

    x' = a*x + b*y + tx
    y' = c*x + d*y + ty
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .point import Point

__all__ = ["Affine"]


@dataclass(frozen=True)
class Affine:
    """An immutable 2-D affine transform."""

    a: float = 1.0
    b: float = 0.0
    c: float = 0.0
    d: float = 1.0
    tx: float = 0.0
    ty: float = 0.0

    @classmethod
    def identity(cls) -> "Affine":
        return cls()

    @classmethod
    def translation(cls, dx: float, dy: float) -> "Affine":
        return cls(tx=dx, ty=dy)

    @classmethod
    def scaling(cls, sx: float, sy: float | None = None) -> "Affine":
        if sy is None:
            sy = sx
        return cls(a=sx, d=sy)

    @classmethod
    def rotation(cls, theta: float) -> "Affine":
        co, si = math.cos(theta), math.sin(theta)
        return cls(a=co, b=-si, c=si, d=co)

    @classmethod
    def about(cls, center: Point, inner: "Affine") -> "Affine":
        """Conjugate ``inner`` so it acts about ``center`` instead of the origin."""
        return (
            cls.translation(center.x, center.y)
            @ inner
            @ cls.translation(-center.x, -center.y)
        )

    def __matmul__(self, other: "Affine") -> "Affine":
        """Composition: ``(self @ other)(p) == self(other(p))``."""
        return Affine(
            a=self.a * other.a + self.b * other.c,
            b=self.a * other.b + self.b * other.d,
            c=self.c * other.a + self.d * other.c,
            d=self.c * other.b + self.d * other.d,
            tx=self.a * other.tx + self.b * other.ty + self.tx,
            ty=self.c * other.tx + self.d * other.ty + self.ty,
        )

    def apply(self, p: Point) -> Point:
        """Transform a point; time is preserved."""
        return Point(
            self.a * p.x + self.b * p.y + self.tx,
            self.c * p.x + self.d * p.y + self.ty,
            p.t,
        )

    def apply_xy(self, x: float, y: float) -> tuple[float, float]:
        """Transform a bare coordinate pair."""
        return (self.a * x + self.b * y + self.tx, self.c * x + self.d * y + self.ty)

    @property
    def determinant(self) -> float:
        return self.a * self.d - self.b * self.c

    def inverse(self) -> "Affine":
        """Inverse transform.

        Raises:
            ZeroDivisionError: if the transform is singular (zero scale).
        """
        det = self.determinant
        if det == 0.0:
            raise ZeroDivisionError("singular affine transform has no inverse")
        ia, ib = self.d / det, -self.b / det
        ic, id_ = -self.c / det, self.a / det
        return Affine(
            a=ia,
            b=ib,
            c=ic,
            d=id_,
            tx=-(ia * self.tx + ib * self.ty),
            ty=-(ic * self.tx + id_ * self.ty),
        )
