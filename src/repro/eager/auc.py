"""The Ambiguous/Unambiguous Classifier (AUC).

"In order to implement eager recognition, a module is needed that can
answer the question: has enough of the gesture being entered been seen so
that it may be unambiguously classified?" (section 4.3)

The AUC is a linear classifier over the 2C sets produced by
:mod:`repro.eager.partition`; the paper's decision function ``D`` returns
true iff the AUC places the subgesture's feature vector in one of the
complete ("C-c") sets.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np

from ..recognizer import LinearClassifier
from .partition import is_complete_set

__all__ = ["AmbiguityClassifier", "AMBIGUITY_BIAS_RATIO"]

# "The increment is chosen to bias the classifier so that it believes
# that ambiguous gestures are five times more likely than unambiguous
# gestures." (section 4.6)
AMBIGUITY_BIAS_RATIO = 5.0


class AmbiguityClassifier:
    """Wraps a 2C-class linear classifier into the decision function D."""

    def __init__(self, linear: LinearClassifier):
        self.linear = linear
        self._complete = {
            name for name in linear.class_names if is_complete_set(name)
        }
        if not self._complete:
            raise ValueError("AUC has no complete classes; D would be constant")
        self._complete_row_mask = np.array(
            [name in self._complete for name in linear.class_names]
        )

    @property
    def complete_class_names(self) -> set[str]:
        return set(self._complete)

    @property
    def incomplete_class_names(self) -> set[str]:
        return set(self.linear.class_names) - self._complete

    def classify_set(self, features: np.ndarray) -> str:
        """The winning C-c / I-c set for a subgesture's features."""
        return self.linear.classify(features)

    def is_unambiguous(self, features: np.ndarray) -> bool:
        """The paper's D: true iff the winner is a complete set."""
        return self.classify_set(features) in self._complete

    # -- batched evaluation --------------------------------------------------

    def classify_set_many(
        self, features: np.ndarray, extra_tolerance: np.ndarray | None = None
    ) -> list[str]:
        """Winning set per row of an ``(n, F)`` matrix.

        Bit-identical to ``[classify_set(f) for f in features]`` — see
        :meth:`~repro.recognizer.LinearClassifier.classify_many`.
        """
        return self.linear.classify_many(features, extra_tolerance)

    def is_unambiguous_many(
        self, features: np.ndarray, extra_tolerance: np.ndarray | None = None
    ) -> np.ndarray:
        """The decision function D over a stack of feature vectors.

        Returns a boolean array, bit-identical to
        ``[is_unambiguous(f) for f in features]``, evaluated with one
        matrix product instead of a per-row Python loop.
        """
        winners = self.linear.classify_many_indices(features, extra_tolerance)
        return self._complete_row_mask[winners]

    def apply_ambiguity_bias(self, ratio: float = AMBIGUITY_BIAS_RATIO) -> None:
        """Raise every incomplete class's constant by ``ln(ratio)``.

        Under the Gaussian model the constant term absorbs the class log
        prior, so adding ``ln(ratio)`` to the incomplete classes makes the
        AUC treat ambiguity as ``ratio`` times more likely a priori.
        """
        if ratio <= 0.0:
            raise ValueError("bias ratio must be positive")
        increment = math.log(ratio)
        for name in self.incomplete_class_names:
            self.linear.add_to_constant(name, increment)

    def tweak_against(
        self,
        incomplete_vectors: list[np.ndarray],
        margin: float = 0.1,
        max_rounds: int = 20,
    ) -> int:
        """Lower complete-class constants until no training incomplete
        subgesture is judged unambiguous (section 4.6).

        Each time an incomplete subgesture lands in a complete set — "a
        serious mistake" — that set's constant is reduced "by just enough
        plus a little more": the evaluation gap to the best incomplete
        class, plus ``margin``.  One adjustment can surface new
        violations, so the scan repeats until a pass is clean or
        ``max_rounds`` passes have run.

        Returns:
            The number of constant adjustments performed.
        """
        incomplete_names = self.incomplete_class_names
        if not incomplete_names:
            return 0
        incomplete_rows = [
            self.linear.class_index(name) for name in incomplete_names
        ]
        adjustments = 0
        for _ in range(max_rounds):
            clean = True
            for features in incomplete_vectors:
                winner, scores = self.linear.classify_with_scores(features)
                if winner not in self._complete:
                    continue
                clean = False
                best_incomplete = max(scores[row] for row in incomplete_rows)
                gap = scores[self.linear.class_index(winner)] - best_incomplete
                self.linear.add_to_constant(winner, -(gap + margin))
                adjustments += 1
            if clean:
                break
        return adjustments

    # -- persistence --------------------------------------------------------

    def to_dict(self) -> dict:
        return {"linear": self.linear.to_dict()}

    @classmethod
    def from_dict(cls, data: dict) -> "AmbiguityClassifier":
        return cls(LinearClassifier.from_dict(data["linear"]))

    def save(self, path: str | Path) -> None:
        """Write the AUC to a JSON file (cf. ``GestureClassifier.save``)."""
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "AmbiguityClassifier":
        return cls.from_dict(json.loads(Path(path).read_text()))
