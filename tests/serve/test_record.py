"""``GestureServer(record=...)``: the live traffic journal.

A recording server writes every applied ``down``/``move``/``up`` as an
adapt-harvest ``{"rec": "op", ...}`` record — the same NDJSON
``repro adapt`` consumes — so the online-learning loop can run straight
off production traffic with no separate ``--record`` loadgen replay.
The journal is written *post-fault* (after the pool applied the op), so
it holds exactly what the recognizer saw.
"""

from __future__ import annotations

import asyncio
import io
import json

from repro.adapt import AdaptStore
from repro.serve import GestureServer, Request

DT = 0.01


def _stroke(channel_reqs, key: str, n: int = 6, t0: float = 0.0):
    reqs = [Request("down", t0, key, 0.0, 0.0)]
    for i in range(1, n):
        reqs.append(Request("move", t0 + i * DT, key, i * 5.0, i * 5.0))
    reqs.append(Request("up", t0 + n * DT, key, n * 5.0, n * 5.0))
    channel_reqs.extend(reqs)
    return reqs


def test_record_path_journals_applied_ops(directions_recognizer, tmp_path):
    path = tmp_path / "traffic.ndjson"

    async def scenario():
        server = GestureServer(directions_recognizer, record=str(path))
        await server.start()
        try:
            channel = await server.open_channel()
            sent = []
            for request in _stroke(sent, "u1:s1"):
                await channel.send(request)
            await channel.send(Request("tick", 1.0))
            # stats is the completion barrier: once it answers, every
            # earlier op has been applied (and therefore journaled).
            await channel.send(Request("stats", 1.0))
            while True:
                line = await asyncio.wait_for(channel.recv(), 5.0)
                if json.loads(line)["kind"] == "stats":
                    break
            return sent
        finally:
            await server.stop()

    sent = asyncio.run(scenario())
    records = [json.loads(l) for l in path.read_text().splitlines()]
    ops = [r for r in records if r["rec"] == "op"]
    # Strokes only: tick/stats are barriers, not traffic.
    assert [r["op"] for r in ops] == [r.op for r in sent]
    # Stroke keys are channel-namespaced (the pool's own key), so two
    # clients reusing a stroke id cannot collide in the journal.
    assert all(r["stroke"] == f"{r['user']}/u1:s1" for r in ops)
    # Point-for-point bit equality with what the pool applied.
    assert [[r["x"], r["y"], r["t"]] for r in ops] == [
        [r.x, r.y, r.t] for r in sent
    ]
    # The journal's user field is the channel id, so multi-client
    # journals keep traffic attributable.
    assert ops[0]["user"]

    # The harvester ingests the journal as-is — the contract
    # `repro adapt` relies on.
    store = AdaptStore()
    assert store.load_traffic(path) == len(ops)


def test_record_accepts_an_open_stream(directions_recognizer):
    stream = io.StringIO()

    async def scenario():
        server = GestureServer(directions_recognizer, record=stream)
        await server.start()
        try:
            channel = await server.open_channel()
            sent = []
            for request in _stroke(sent, "s1", n=4):
                await channel.send(request)
            await channel.send(Request("stats", 1.0))
            while True:
                line = await asyncio.wait_for(channel.recv(), 5.0)
                if json.loads(line)["kind"] == "stats":
                    break
        finally:
            await server.stop()

    asyncio.run(scenario())
    # A caller-owned stream is flushed but never closed by the server.
    ops = [json.loads(l) for l in stream.getvalue().splitlines()]
    assert len(ops) == 5  # down + 3 moves + up ... and nothing else
    assert {r["rec"] for r in ops} == {"op"}
