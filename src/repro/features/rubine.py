"""Rubine's feature set for single-stroke gestures.

Section 4.2 of the USENIX paper represents a gesture by "a vector of
(currently twelve) features", each updatable in constant time per mouse
point.  The definitive list is the thirteen features of Rubine's
SIGGRAPH'91 paper *Specifying Gestures by Example* / his dissertation;
the twelfth and thirteenth (maximum speed and duration) are the ones
variously dropped, so this module implements all thirteen and lets the
caller select a subset.

With ``P`` points ``p = 0 .. P-1`` and deltas
``dx_p = x_{p+1} - x_p`` etc., the features are:

==== ==========================================================
f1   cosine of the initial angle: ``(x_2 - x_0) / d``
f2   sine of the initial angle:   ``(y_2 - y_0) / d``
f3   length of the bounding-box diagonal
f4   angle of the bounding-box diagonal
f5   distance between first and last point
f6   cosine of the angle between first and last point
f7   sine of the angle between first and last point
f8   total gesture (arc) length
f9   total angle traversed (sum of signed turn angles)
f10  sum of absolute turn angles
f11  sum of squared turn angles ("sharpness")
f12  maximum squared speed between successive points
f13  gesture duration
==== ==========================================================

``d`` in f1/f2 is the distance from the first to the *third* point, a
smoothing choice from the original paper that makes the initial angle
robust to one-pixel jitter at the pen-down.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..geometry import BoundingBox, Stroke

__all__ = [
    "FEATURE_NAMES",
    "NUM_FEATURES",
    "features_of",
    "feature_matrix",
]

FEATURE_NAMES: tuple[str, ...] = (
    "cos_initial",
    "sin_initial",
    "bbox_diagonal",
    "bbox_angle",
    "endpoint_distance",
    "cos_endpoints",
    "sin_endpoints",
    "total_length",
    "total_angle",
    "total_abs_angle",
    "sharpness",
    "max_speed_sq",
    "duration",
)

NUM_FEATURES = len(FEATURE_NAMES)

# Below this squared distance two samples are treated as coincident when
# computing turn angles, matching Rubine's noise floor of 3 pixels.
_MIN_SEGMENT_SQ = 9.0

# Distances below a thousandth of a pixel are treated as zero when
# normalizing directions: no input device resolves them, and denormal
# magnitudes make the direction cosines numerically unstable under
# translation.
_MIN_DISTANCE = 1e-3

# Inter-sample gaps below a microsecond are treated as simultaneous:
# no physical input device delivers them, and tiny denominators would
# underflow or blow the speed feature up to infinity.
_MIN_DT = 1e-6


def features_of(stroke: Stroke) -> np.ndarray:
    """Compute the 13-dimensional feature vector of a stroke.

    Degenerate strokes (fewer than 3 points, or zero extent) yield zeros
    for the undefined trigonometric features rather than raising: the
    eager recognizer evaluates every prefix of a gesture, including ones
    only a couple of points long.
    """
    f = np.zeros(NUM_FEATURES)
    pts = list(stroke)
    n = len(pts)
    if n == 0:
        return f

    first = pts[0]

    # f1, f2 — initial direction, smoothed over the first three points.
    anchor = pts[min(2, n - 1)]
    dx0, dy0 = anchor.x - first.x, anchor.y - first.y
    d0 = math.hypot(dx0, dy0)
    if d0 > _MIN_DISTANCE:
        f[0] = dx0 / d0
        f[1] = dy0 / d0

    # f3, f4 — bounding-box diagonal.
    box = BoundingBox.of(pts)
    f[2] = box.diagonal
    f[3] = box.diagonal_angle

    # f5, f6, f7 — endpoint chord.
    last = pts[-1]
    dxe, dye = last.x - first.x, last.y - first.y
    de = math.hypot(dxe, dye)
    f[4] = de
    if de > _MIN_DISTANCE:
        f[5] = dxe / de
        f[6] = dye / de

    # f8..f12 — per-segment accumulations.
    total_len = 0.0
    total_angle = 0.0
    total_abs = 0.0
    sharpness = 0.0
    max_speed_sq = 0.0
    prev_dx = prev_dy = None
    for a, b in zip(pts, pts[1:]):
        dx, dy = b.x - a.x, b.y - a.y
        seg_sq = dx * dx + dy * dy
        total_len += math.sqrt(seg_sq)
        dt = b.t - a.t
        if dt >= _MIN_DT:
            speed_sq = seg_sq / (dt * dt)
            if speed_sq > max_speed_sq:
                max_speed_sq = speed_sq
        if (
            prev_dx is not None
            and seg_sq >= _MIN_SEGMENT_SQ
            and prev_dx * prev_dx + prev_dy * prev_dy >= _MIN_SEGMENT_SQ
        ):
            theta = math.atan2(
                prev_dx * dy - prev_dy * dx, prev_dx * dx + prev_dy * dy
            )
            total_angle += theta
            total_abs += abs(theta)
            sharpness += theta * theta
        if seg_sq > 0.0:
            prev_dx, prev_dy = dx, dy
    f[7] = total_len
    f[8] = total_angle
    f[9] = total_abs
    f[10] = sharpness
    f[11] = max_speed_sq

    # f13 — duration.
    f[12] = last.t - first.t
    return f


def feature_matrix(strokes: Sequence[Stroke]) -> np.ndarray:
    """Stack feature vectors of many strokes into an ``(n, 13)`` matrix."""
    if not strokes:
        return np.zeros((0, NUM_FEATURES))
    return np.vstack([features_of(s) for s in strokes])
