"""A mini gesture-based score editor (GSCORE's spirit, figure 8's set)."""

from .app import ScoreApp, score_templates, train_score_recognizer
from .staff import DURATION_BEATS, DURATIONS, Note, Staff

__all__ = [
    "DURATIONS",
    "DURATION_BEATS",
    "Note",
    "ScoreApp",
    "Staff",
    "score_templates",
    "train_score_recognizer",
]
