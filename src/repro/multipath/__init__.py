"""Multi-path (multi-finger) gestures — the paper's §6 extension."""

from .gesture import MultiPathGesture
from .recognizer import MultiPathClassifier, multipath_features
from .synth import MULTIPATH_CLASS_NAMES, MultiPathGenerator
from .trs import TwoFingerTracker, similarity_from_pairs

__all__ = [
    "MULTIPATH_CLASS_NAMES",
    "MultiPathClassifier",
    "MultiPathGenerator",
    "MultiPathGesture",
    "TwoFingerTracker",
    "multipath_features",
    "similarity_from_pairs",
]
