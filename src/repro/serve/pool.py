"""A pool of concurrent eager-recognition sessions.

The reproduction's interactive layer runs *one* two-phase interaction at
a time — one mouse, one :class:`~repro.interaction.GestureHandler`.  The
:class:`SessionPool` runs thousands, keyed by an arbitrary stroke id,
with the same semantics per session:

* ``down`` starts a session and contributes the first gesture point
  (exactly as ``GestureHandler.begin`` does);
* ``move`` while undecided contributes a point and may trigger eager
  recognition (the paper's D, then C);
* holding still for ``timeout`` seconds of virtual time classifies the
  prefix collected so far (the paper's 200 ms motionless timeout);
* ``up`` while undecided classifies the full gesture (no point is
  appended for the release, matching ``GestureHandler.end``), and always
  commits — the session ends and its resources are reclaimed;
* input after the decision is the manipulation phase: it refreshes the
  session's activity but emits nothing — the client received the class
  in the ``recog`` decision and applies its gesture semantics locally,
  so echoing every manipulation point back would be pure chatter.

Recognition outcomes are reported as :class:`Decision` values (kinds
``recog``, ``commit``, ``evict``, ``error``); malformed operations
(duplicate ``down``, unknown key, pool exhaustion) produce per-session
``error`` decisions and never disturb other sessions.  :meth:`kill`
force-terminates one session (fault injection's hammer) with an
``evict`` decision, again without touching its neighbours.

The pool is observable but never observes itself: pass an
:class:`~repro.obs.PoolObserver` (or anything with the same hook
methods) as ``observer`` and the pool reports ticks, decisions, session
opens, and batched-evaluation rounds to it.  With ``observer=None`` —
the default — every hook site is a single ``is not None`` test on the
cold side of the branch, so the hot path allocates nothing and runs at
full speed.

Time is virtual throughout (:class:`~repro.events.VirtualClock`):
operations carry timestamps, and :meth:`SessionPool.advance_to` both
applies buffered input and fires motionless timeouts, so identical input
produces identical decision streams on every run.  Timeouts are
evaluated when time advances: buffered operations are applied first,
then any undecided session whose last point is at least ``timeout`` old
fires, its decision stamped at ``last_t + timeout``.

Two execution modes, one contract.  ``batched=False`` advances each
session through its own :class:`~repro.eager.EagerSession` — the
reference path.  ``batched=True`` keeps all feature state in a
:class:`~repro.serve.bank.FeatureBank` and decides every session with
one matrix product per round via
:class:`~repro.serve.batch.BatchEvaluator`; rows the evaluator cannot
*prove* unaffected by vectorization are re-decided here by replaying the
stored gesture prefix through the scalar path.  The decision streams of
the two modes are identical, element for element.

Hot model swaps (:meth:`SessionPool.swap_model`) bind a key *prefix* —
in serving terms, a user — to a different recognizer.  A session pins
its model when it opens and keeps it until commit, so a swap takes
effect for the user's next stroke, never mid-gesture; every other
session's decision stream is byte-identical to a run without the swap,
because batched evaluation partitions rows by model and the evaluator's
decisions are provably independent of batch composition (risky rows
fall back to the scalar path).  Until the first swap is applied the
pool runs the single-model fast path untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..eager import EagerRecognizer, EagerSession
from ..events import VirtualClock
from ..features import IncrementalFeatures
from ..geometry import Point
from ..interaction import DEFAULT_TIMEOUT
from .bank import FeatureBank
from .batch import BatchEvaluator

__all__ = ["DEFAULT_IDLE_TIMEOUT", "Decision", "SessionPool"]

# Sessions that have gone this long without any input are presumed
# abandoned by their client and may be evicted.
DEFAULT_IDLE_TIMEOUT = 30.0

# Entry tags used inside a processing round (see _run_round).
_ERROR, _DECIDED, _FINISH, _COMMIT, _KILL, _RELEASE = 0, 1, 2, 3, 4, 5


@dataclass(frozen=True)
class Decision:
    """One event on a session's output stream."""

    key: str
    kind: str  # "recog" | "commit" | "evict" | "error"
    t: float
    class_name: str | None = None
    eager: bool = False
    points_seen: int = 0
    total_points: int = 0
    reason: str = ""


class _PoolModel:
    """One recognizer resident in the pool, with its batched evaluator.

    Sessions reference a ``_PoolModel`` (pinned at open), and swaps to
    the same recognizer object share one instance — many users swapping
    to one registry-cached candidate cost one evaluator, not N.
    """

    __slots__ = ("recognizer", "evaluator", "label")

    def __init__(self, recognizer: EagerRecognizer, evaluator, label: str):
        self.recognizer = recognizer
        self.evaluator = evaluator
        self.label = label


class _Session:
    """Mutable per-stroke state; gesture points stop at the decision."""

    __slots__ = (
        "key",
        "slot",
        "points",
        "eseq",
        "decided",
        "class_name",
        "eager",
        "decided_points",
        "count",
        "manip",
        "last_t",
        "stamp",
        "model",
    )

    def __init__(self, key: str, t: float):
        self.key = key
        self.stamp = 0
        self.model: _PoolModel | None = None
        self.slot: int | None = None
        self.points: list = []  # Point (sequential) or (x, y, t) (batched)
        self.eseq: EagerSession | None = None
        self.decided = False
        self.class_name: str | None = None
        self.eager = False
        self.decided_points = 0
        self.count = 0
        # Manipulation-phase samples after the decision: together with
        # decided_points this is the whole stroke — the denominator of
        # the paper's eagerness measure (quality telemetry only; the
        # Decision stream still reports gesture points).
        self.manip = 0
        self.last_t = t


class SessionPool:
    """Thousands of concurrent eager recognitions over one recognizer."""

    def __init__(
        self,
        recognizer: EagerRecognizer,
        *,
        clock: VirtualClock | None = None,
        timeout: float = DEFAULT_TIMEOUT,
        max_sessions: int = 4096,
        batched: bool = True,
        observer=None,
        max_models: int | None = None,
        model_loader=None,
    ):
        self.recognizer = recognizer
        self.clock = clock if clock is not None else VirtualClock()
        self.timeout = timeout
        self.max_sessions = max_sessions
        self.batched = batched
        self.observer = observer
        # Optional extensions carried by the observer (duck-typed, both
        # default-off): a QualityMonitor fed decided prefixes, and a
        # PerfProfiler timing the hot sections.  Cached here so the hook
        # sites stay one `is not None` test each.
        self._quality = getattr(observer, "quality", None)
        self._profiler = getattr(observer, "profiler", None)
        # Hot-swap hook, optional like the extensions above.
        self._on_swap = getattr(observer, "model_swapped", None)
        self._sessions: dict[str, _Session] = {}
        # Insertion-ordered view of sessions still collecting a gesture:
        # the motionless-timeout scan never visits decided sessions.
        self._undecided: dict[str, _Session] = {}
        # With quality attached the bank maintains its scalar-theta
        # sidecar, so decided prefixes get O(1) bit-exact feature
        # vectors instead of per-decision scalar replays.
        self._bank = (
            FeatureBank(max_sessions, quality=self._quality is not None)
            if batched
            else None
        )
        self._evaluator = BatchEvaluator(recognizer) if batched else None
        if self._evaluator is not None:
            self._evaluator.profiler = self._profiler
        # Model table for hot swaps.  `_assign` maps a key prefix to the
        # model its new sessions pin; `_model_cache` (keyed by recognizer
        # object identity) shares one evaluator across prefixes swapped
        # to the same recognizer.  `_swapped` gates the grouped-eval
        # path: until a swap is applied, evaluation is the single-model
        # fast path, byte for byte.  `_min_floor` is the smallest
        # min_points over every resident model — the candidate prefilter
        # bound; per-session thresholds re-check exactly.
        self._default_model = _PoolModel(recognizer, self._evaluator, "")
        self._model_cache: dict[int, _PoolModel] = {
            id(recognizer): self._default_model
        }
        self._assign: dict[str, _PoolModel | str] = {}
        self._swapped = False
        self._min_floor = recognizer.min_points
        # Bound on *swapped-in* models resident at once (the default
        # model is never counted or evicted).  Past the bound the
        # least-recently-used model is dropped and its prefix
        # assignments degrade to label strings; `_model_for` reloads a
        # marker through `model_loader` (label -> recognizer) on the
        # next session open, so eviction never changes a decision —
        # registry models are content-addressed and reload bit-equal.
        if max_models is not None and model_loader is None:
            raise ValueError("max_models needs a model_loader to reload from")
        self._max_models = max_models
        self._model_loader = model_loader
        self.model_evictions = 0
        # One-shot model pins consumed at the key's next session open —
        # how a migrated-in session keeps the model it originally
        # opened under, regardless of swaps applied here since.
        self._pins: dict[str, _PoolModel] = {}
        # Slot -> session table, so the candidate scan after a batched
        # tick recovers sessions without any per-operation bookkeeping.
        self._slot_session: list = [None] * max_sessions if batched else []
        self._ops: list[tuple] = []  # (t, ops-chunk) pairs
        self._round_id = 0
        # Lower bound on any undecided session's last activity: the
        # motionless-timeout scan can be skipped entirely while
        # ``now - timeout`` has not reached it (it may be stale-low,
        # which only costs a scan, never misses one).
        self._scan_floor = float("inf")

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, key: str) -> bool:
        return key in self._sessions

    # -- buffered input ------------------------------------------------------

    def down(self, key: str, x: float, y: float, t: float) -> None:
        """Button press: start the session keyed ``key``."""
        self._ops.append((t, (("down", key, x, y),)))

    def move(self, key: str, x: float, y: float, t: float) -> None:
        """Mouse sample for an existing session."""
        self._ops.append((t, (("move", key, x, y),)))

    def up(self, key: str, x: float, y: float, t: float) -> None:
        """Button release: decide if needed, then commit and end."""
        self._ops.append((t, (("up", key, x, y),)))

    def kill(self, key: str, t: float) -> None:
        """Force-terminate session ``key`` at ``t`` (fault injection).

        The session is dropped with an ``evict`` decision (reason
        ``"killed"``); killing a key with no session is a silent no-op,
        so fault schedules need not know which strokes are still alive.
        Ordered with the other buffered operations: input for the key
        already buffered ahead of the kill is still applied first.
        """
        self._ops.append((t, (("kill", key, 0.0, 0.0),)))

    def release(self, key: str, t: float) -> None:
        """Silently forget session ``key`` (live migration handoff).

        Unlike :meth:`kill` no decision is emitted — the session now
        lives elsewhere and its byte stream must come from there alone.
        Ordered with the other buffered operations; releasing a key
        with no session is a silent no-op.
        """
        self._ops.append((t, (("release", key, 0.0, 0.0),)))

    def pin(self, key: str, recognizer, t: float, label: str = "") -> None:
        """One-shot model pin for ``key``'s *next* session open.

        The pin binds exactly one future session of exactly this key to
        ``recognizer`` (``None`` pins the default model), overriding the
        prefix assignments a :meth:`swap_model` would consult, then
        expires.  Buffered and ordered like every other operation.
        """
        self._ops.append((t, (("pin", key, recognizer, label),)))

    def swap_model(
        self,
        prefix: str,
        recognizer: EagerRecognizer,
        t: float,
        label: str = "",
    ) -> None:
        """Bind every session key starting with ``prefix`` to ``recognizer``.

        Buffered and ordered with the other operations: the swap takes
        effect at its position in the input sequence, for sessions that
        *open* from then on.  Sessions already in flight — with or
        without buffered input ahead of the swap — finish on the model
        they pinned at open, so no gesture is ever judged by two
        different classifiers.  The longest matching prefix wins when
        several bind one key; swapping the empty prefix rebinds every
        future session.  ``label`` is carried to the observer's
        ``model_swapped`` hook (e.g. the registry ``name@version``).
        """
        self._ops.append((t, (("swap", prefix, recognizer, label),)))

    def submit(self, ops, t: float) -> None:
        """Bulk-submit one tick of ``(kind, key, x, y)`` operations at ``t``.

        Equivalent to calling :meth:`down`/:meth:`move`/:meth:`up` once
        per element, without the per-operation overhead — the shape load
        generators and replay drivers want.
        """
        self._ops.append((t, ops))

    # -- processing ----------------------------------------------------------

    def flush(self) -> list[Decision]:
        """Apply all buffered operations; return the decisions they caused.

        Input is consumed in *rounds* of at most one operation per
        session, in arrival order — the batched tick feeds each feature
        slot at most one point, exactly like the per-session loop; a
        session's second operation waits for the next round — and
        decisions are emitted in that same order in both modes.
        """
        out = self._drain()
        obs = self.observer
        if obs is not None and out:
            obs.decisions(out)
        return out

    def _drain(self) -> list[Decision]:
        """Run buffered operations to completion (no observer callout)."""
        out: list[Decision] = []
        chunks = self._ops
        self._ops = []
        obs = self.observer
        if obs is not None:
            obs.tick(
                sum(len(chunk) for _, chunk in chunks),
                len(chunks),
                len(self._sessions),
            )
        while chunks:
            chunks = self._run_round(chunks, out)
        return out

    def advance_to(self, t: float) -> list[Decision]:
        """Apply buffered input, move virtual time to ``t``, fire timeouts."""
        out = self._drain()
        # One clock read per tick: the advance's return value is the
        # `now` every timeout below is judged against.  Re-reading the
        # clock here could observe a later time (a shared clock advanced
        # between the two reads) and fire timeouts for sessions created
        # within this very tick before their dwell has elapsed.
        now = self.clock.advance_to(t)
        horizon = now - self.timeout
        if horizon < self._scan_floor:
            obs = self.observer
            if obs is not None and out:
                obs.decisions(out)
            return out
        expired = []
        floor = float("inf")
        for s in self._undecided.values():
            if s.last_t <= horizon:
                expired.append(s)
            elif s.last_t < floor:
                floor = s.last_t
        self._scan_floor = floor
        if expired:
            quality = self._quality
            names = self._classify_full(expired)
            for session, name in zip(expired, names):
                self._decide(session, name, eager=False)
                decision = Decision(
                    key=session.key,
                    kind="recog",
                    t=session.last_t + self.timeout,
                    class_name=name,
                    eager=False,
                    points_seen=session.count,
                    total_points=session.count,
                    reason="timeout",
                )
                out.append(decision)
                if quality is not None:
                    quality.decided(
                        session.points, decision, self._quality_vector(session)
                    )
        obs = self.observer
        if obs is not None and out:
            obs.decisions(out)
        return out

    def evict_idle(self, max_idle: float = DEFAULT_IDLE_TIMEOUT) -> list[Decision]:
        """Drop sessions with no input for ``max_idle`` seconds of virtual time."""
        out = self._drain()
        now = self.clock.now
        stale = [
            s for s in self._sessions.values() if now - s.last_t >= max_idle
        ]
        quality = self._quality
        for session in stale:
            if self.batched and not session.decided:
                session.count = self._bank.count_of(session.slot)
            self._remove(session)
            out.append(
                Decision(
                    key=session.key,
                    kind="evict",
                    t=now,
                    class_name=session.class_name,
                    eager=session.eager,
                    points_seen=session.decided_points,
                    total_points=session.count,
                    reason="idle",
                )
            )
            if quality is not None:
                quality.closed(
                    session.key, session.decided_points + session.manip
                )
        obs = self.observer
        if obs is not None and out:
            obs.decisions(out)
        return out

    # -- one round -----------------------------------------------------------

    def _run_round(self, chunks: list[tuple], out: list[Decision]) -> list[tuple]:
        """Process one round of chunked input; return the deferred chunks.

        First pass, in arrival order: lifecycle + feeds.  The hot path
        (a move on an undecided session) is kept as lean as possible;
        anything that will emit a decision is recorded with its round
        position so the emission pass can interleave eager decisions
        with ups/errors in exact arrival order.  A session that already
        consumed an operation this round (its ``stamp`` matches) has the
        rest of its operations deferred to the next round.
        """
        sessions = self._sessions
        batched = self.batched
        min_points = self._min_floor
        stamp = self._round_id = self._round_id + 1
        sget = sessions.get
        obs = self.observer
        # Entries interleave with feeds in arrival order; each records
        # how many feeds preceded it, which is all the emission pass
        # needs to restore exact arrival order (an operation is either
        # a feed or an entry, never both).
        entries: list[tuple] = []  # (feeds-before, tag, ...)
        fed_slots: list[int] = []
        fed_points: list[tuple] = []  # shared with session.points
        finish_sessions: list[_Session] = []
        deferred: list[tuple] = []

        for t, chunk in chunks:
            later: list | None = None
            for op in chunk:
                kind, key, x, y = op
                if kind == "swap":
                    # x = recognizer, y = label (see swap_model); applied
                    # at this position in arrival order, so the swap
                    # governs sessions opened from here on.
                    self._apply_swap(key, x, y, t)
                    continue
                if kind == "pin":
                    # x = recognizer (None = default), y = label.
                    self._apply_pin(key, x, y)
                    continue
                session = sget(key)
                if session is None:
                    if kind != "down":
                        # killing or releasing a dead key: no-op
                        if kind != "kill" and kind != "release":
                            entries.append(
                                (len(fed_slots), _ERROR, key, t, "unknown stroke")
                            )
                        continue
                    if len(sessions) >= self.max_sessions:
                        entries.append(
                            (len(fed_slots), _ERROR, key, t, "pool full")
                        )
                        continue
                    session = _Session(key, t)
                    session.stamp = stamp
                    pinned = self._pins.pop(key, None) if self._pins else None
                    session.model = (
                        pinned
                        if pinned is not None
                        else self._model_for(key)
                        if self._swapped
                        else self._default_model
                    )
                    if batched:
                        session.slot = self._bank.open_slot()
                        self._slot_session[session.slot] = session
                    else:
                        session.eseq = session.model.recognizer.session()
                    sessions[key] = session
                    self._undecided[key] = session
                    if t < self._scan_floor:
                        self._scan_floor = t
                    if obs is not None:
                        obs.session_started(key, t)
                elif session.stamp != stamp:
                    session.stamp = stamp
                    if session.decided:
                        if kind == "up":
                            entries.append(
                                (len(fed_slots), _COMMIT, session, t)
                            )
                        elif kind == "kill":
                            entries.append(
                                (len(fed_slots), _KILL, session, t)
                            )
                        elif kind == "release":
                            entries.append(
                                (len(fed_slots), _RELEASE, session, t)
                            )
                        else:
                            # Manipulation phase: refresh activity and
                            # count the sample toward the whole stroke.
                            session.last_t = t
                            session.manip += 1
                        continue
                    if kind != "move":
                        if kind == "up":
                            finish_sessions.append(session)
                            entries.append(
                                (len(fed_slots), _FINISH, session, t)
                            )
                        elif kind == "kill":
                            entries.append(
                                (len(fed_slots), _KILL, session, t)
                            )
                        elif kind == "release":
                            entries.append(
                                (len(fed_slots), _RELEASE, session, t)
                            )
                        else:
                            entries.append(
                                (
                                    len(fed_slots),
                                    _ERROR,
                                    key,
                                    t,
                                    "duplicate down",
                                )
                            )
                        continue
                else:
                    if later is None:
                        later = []
                        deferred.append((t, later))
                    later.append(op)
                    continue

                # A gesture point: a down's press point or an undecided move.
                session.last_t = t
                if batched:
                    pt = (x, y, t)
                    session.points.append(pt)
                    fed_slots.append(session.slot)
                    fed_points.append(pt)
                else:
                    session.count = session.count + 1
                    point = Point(x, y, t)
                    session.points.append(point)
                    decided = session.eseq.add_point(point)
                    if decided is not None:
                        entries.append(
                            (len(fed_slots), _DECIDED, session, t, decided)
                        )

        # Batched math: one vectorized tick, then one feature gather and
        # one fused matrix product over every eager candidate (a fed
        # session with enough points — found from the bank's counts, not
        # per-operation bookkeeping) and every finishing session.
        unamb_rows: list[int] = []
        eval_sessions: list[_Session] = []
        cand = None  # candidates' indices into the fed arrays
        names: list[str] = []
        n_unambiguous = 0
        if batched:
            timing = obs is not None
            prof = self._profiler
            t_start = perf_counter() if timing else 0.0
            n_fallbacks = 0
            n_rows = 0
            n_eval = 0
            if fed_slots:
                slot_arr = np.array(fed_slots)
                fed_x, fed_y, fed_t = zip(*fed_points)
                t_feed = perf_counter() if prof is not None else 0.0
                new_counts = self._bank.add_points(
                    slot_arr, np.array(fed_x), np.array(fed_y), np.array(fed_t)
                )
                if prof is not None:
                    prof.add(
                        "feature_update",
                        perf_counter() - t_feed,
                        len(fed_slots),
                    )
                cand = np.flatnonzero(new_counts >= min_points)
                n_eval = len(cand)
                if n_eval:
                    cand_slots = slot_arr[cand]
                    table = self._slot_session
                    eval_sessions = [table[s] for s in cand_slots.tolist()]
                    if self._swapped:
                        # min_points is the floor over all resident
                        # models; re-check each candidate against its
                        # own model's threshold.
                        keep = [
                            j
                            for j, s in enumerate(eval_sessions)
                            if new_counts[cand[j]]
                            >= s.model.recognizer.min_points
                        ]
                        if len(keep) != n_eval:
                            cand = cand[keep]
                            cand_slots = slot_arr[cand]
                            eval_sessions = [eval_sessions[j] for j in keep]
                            n_eval = len(cand)
            if n_eval or finish_sessions:
                if finish_sessions:
                    finish_slots = np.array([s.slot for s in finish_sessions])
                    row_slots = (
                        np.concatenate([cand_slots, finish_slots])
                        if n_eval
                        else finish_slots
                    )
                else:
                    row_slots = cand_slots
                features, counts, guard_risk = self._bank.features(row_slots)
                rows = eval_sessions + finish_sessions
                if self._swapped:
                    (
                        unambiguous,
                        auc_risky,
                        full_winners,
                        full_risky,
                    ) = self._eval_rows_grouped(
                        rows, features, counts, guard_risk
                    )
                else:
                    (
                        unambiguous,
                        auc_risky,
                        full_winners,
                        full_risky,
                    ) = self._evaluator.combined_decisions(
                        features, counts, guard_risk
                    )
                if n_eval:
                    eager_unambiguous = unambiguous[:n_eval]
                    auc_replays = np.flatnonzero(auc_risky[:n_eval])
                    n_fallbacks += len(auc_replays)
                    if len(auc_replays):
                        t_fb = perf_counter() if prof is not None else 0.0
                        for i in auc_replays:
                            eager_unambiguous[i] = eval_sessions[
                                i
                            ].model.recognizer.auc.is_unambiguous(
                                self._replay_vector(eval_sessions[i])
                            )
                        if prof is not None:
                            prof.add(
                                "exact_fallback",
                                perf_counter() - t_fb,
                                len(auc_replays),
                            )
                    unamb_rows = np.flatnonzero(eager_unambiguous).tolist()
                # Full classification: unambiguous candidates (in row
                # order), then finishers — `names` keeps that layout.
                n_unambiguous = len(unamb_rows)
                full_names = self._evaluator.full_names
                swapped = self._swapped
                n_rows = len(rows)
                for r_i in unamb_rows + list(range(n_eval, n_rows)):
                    if full_risky[r_i]:
                        n_fallbacks += 1
                        names.append(self._fallback_full(rows[r_i]))
                    elif swapped:
                        names.append(
                            rows[r_i].model.evaluator.full_names[
                                full_winners[r_i]
                            ]
                        )
                    else:
                        names.append(full_names[full_winners[r_i]])
            if timing and (fed_slots or n_rows):
                obs.batch_round(
                    len(fed_slots), n_rows, n_fallbacks, perf_counter() - t_start
                )

        # Emission pass: merge eager decisions with the recorded entries
        # back into exact arrival order.  Candidate j's feed index is
        # cand[j]; an entry recorded after f feeds precedes feed f.
        entry_i = 0
        n_entries = len(entries)
        next_finish = iter(names[n_unambiguous:])
        quality = self._quality
        for k, j in enumerate(unamb_rows):
            p = cand[j]
            while entry_i < n_entries and entries[entry_i][0] <= p:
                self._emit(entries[entry_i], out, next_finish)
                entry_i += 1
            session = eval_sessions[j]
            self._decide(session, names[k], eager=True)
            decision = self._recog(session, session.last_t, "eager")
            out.append(decision)
            if quality is not None:
                quality.decided(
                    session.points,
                    decision,
                    self._bank.quality_state(session.slot),
                )
        while entry_i < n_entries:
            self._emit(entries[entry_i], out, next_finish)
            entry_i += 1
        return deferred

    def _emit(self, entry: tuple, out: list[Decision], next_finish) -> None:
        """Emit one recorded round entry in arrival-order position."""
        tag = entry[1]
        quality = self._quality
        if tag == _ERROR:
            _, _, key, t, reason = entry
            out.append(Decision(key=key, kind="error", t=t, reason=reason))
        elif tag == _DECIDED:
            _, _, session, t, name = entry
            self._decide(session, name, eager=True)
            decision = self._recog(session, t, "eager")
            out.append(decision)
            if quality is not None:
                quality.decided(
                    session.points, decision, session.eseq.feature_vector
                )
        elif tag == _FINISH:
            _, _, session, t = entry
            if self.batched:
                name = next(next_finish)
            else:
                name = session.eseq.finish()
            self._decide(session, name, eager=False)
            decision = self._recog(session, t, "up")
            out.append(decision)
            if quality is not None:
                quality.decided(
                    session.points, decision, self._quality_vector(session)
                )
            self._remove(session)
            out.append(self._commit(session, t))
            if quality is not None:
                quality.closed(
                    session.key, session.decided_points + session.manip
                )
        elif tag == _COMMIT:
            _, _, session, t = entry
            self._remove(session)
            out.append(self._commit(session, t))
            if quality is not None:
                quality.closed(
                    session.key, session.decided_points + session.manip
                )
        elif tag == _KILL:
            _, _, session, t = entry
            if self.batched and not session.decided:
                session.count = self._bank.count_of(session.slot)
            self._remove(session)
            out.append(
                Decision(
                    key=session.key,
                    kind="evict",
                    t=t,
                    class_name=session.class_name,
                    eager=session.eager,
                    points_seen=session.decided_points,
                    total_points=session.count,
                    reason="killed",
                )
            )
            if quality is not None:
                quality.closed(
                    session.key, session.decided_points + session.manip
                )
        else:  # _RELEASE: the session migrated away — forget, emit nothing
            _, _, session, _t = entry
            self._remove(session)
            if quality is not None:
                quality.closed(
                    session.key, session.decided_points + session.manip
                )

    # -- helpers -------------------------------------------------------------

    def _resident_model(
        self, recognizer: EagerRecognizer, label: str
    ) -> _PoolModel:
        """The shared ``_PoolModel`` for ``recognizer``, LRU-maintained."""
        cache = self._model_cache
        model = cache.get(id(recognizer))
        if model is None:
            evaluator = BatchEvaluator(recognizer) if self.batched else None
            if evaluator is not None:
                evaluator.profiler = self._profiler
            model = _PoolModel(recognizer, evaluator, label)
            cache[id(recognizer)] = model
            self._evict_models()
        else:
            model.label = label
            if self._max_models is not None and model is not self._default_model:
                # Refresh recency: dict order is the LRU order.
                cache[id(recognizer)] = cache.pop(id(recognizer))
        if recognizer.min_points < self._min_floor:
            self._min_floor = recognizer.min_points
        return model

    def _evict_models(self) -> None:
        """Drop least-recently-used swapped-in models past the bound.

        Assignments to an evicted model degrade to its label string;
        :meth:`_model_for` reloads the label through ``model_loader`` on
        the next session open.  Sessions in flight keep their direct
        model reference, so eviction never touches a live gesture.
        ``_min_floor`` is left alone — stale-low only over-selects
        candidates (each is re-checked against its own model's exact
        threshold); raising it could miss a decision.
        """
        bound = self._max_models
        if bound is None:
            return
        cache = self._model_cache
        default = self._default_model
        while len(cache) - (id(self.recognizer) in cache) > bound:
            victim = None
            for mid, model in cache.items():
                if model is not default:
                    victim = (mid, model)
                    break
            if victim is None:
                return
            mid, model = victim
            del cache[mid]
            self.model_evictions += 1
            for prefix, assigned in self._assign.items():
                if assigned is model:
                    self._assign[prefix] = model.label

    def _apply_swap(
        self, prefix: str, recognizer: EagerRecognizer, label: str, t: float
    ) -> None:
        self._assign[prefix] = self._resident_model(recognizer, label)
        self._swapped = True
        if self._on_swap is not None:
            self._on_swap(prefix, label, t)

    def _apply_pin(self, key: str, recognizer, label: str) -> None:
        if recognizer is None:
            self._pins[key] = self._default_model
            return
        self._pins[key] = self._resident_model(recognizer, label)
        # A pinned non-default model must route evaluation through the
        # grouped path even if no swap ever ran here.
        self._swapped = True

    def _model_for(self, key: str) -> _PoolModel:
        """The model a session opening under ``key`` pins (longest prefix)."""
        best: _PoolModel | str = self._default_model
        best_len = -1
        for prefix, model in self._assign.items():
            if len(prefix) > best_len and key.startswith(prefix):
                best, best_len = model, len(prefix)
        if type(best) is str:
            # An evicted assignment: reload the label and re-materialize
            # every prefix that degraded to it.
            recognizer = self._model_loader(best)
            model = self._resident_model(recognizer, best)
            for prefix, assigned in self._assign.items():
                if assigned == best and type(assigned) is str:
                    self._assign[prefix] = model
            return model
        if self._max_models is not None and best is not self._default_model:
            cache = self._model_cache
            mid = id(best.recognizer)
            if mid in cache:
                cache[mid] = cache.pop(mid)
        return best

    def _decide(self, session: _Session, name: str, eager: bool) -> None:
        if self.batched:
            # Batched feeds don't maintain the per-session counter; the
            # bank's count (points fed so far) is materialized into the
            # session at decision time, after which it never changes —
            # manipulation-phase input is not counted in either mode.
            session.count = self._bank.count_of(session.slot)
        session.decided = True
        session.class_name = name
        session.eager = eager
        session.decided_points = session.count
        self._undecided.pop(session.key, None)

    def _recog(self, session: _Session, t: float, reason: str) -> Decision:
        return Decision(
            key=session.key,
            kind="recog",
            t=t,
            class_name=session.class_name,
            eager=session.eager,
            points_seen=session.decided_points,
            total_points=session.count,
            reason=reason,
        )

    def _commit(self, session: _Session, t: float) -> Decision:
        return Decision(
            key=session.key,
            kind="commit",
            t=t,
            class_name=session.class_name,
            eager=session.eager,
            points_seen=session.decided_points,
            total_points=session.count,
        )

    def _remove(self, session: _Session) -> None:
        del self._sessions[session.key]
        self._undecided.pop(session.key, None)
        if session.slot is not None:
            self._slot_session[session.slot] = None
            self._bank.close_slot(session.slot)
            session.slot = None

    def _quality_vector(self, session: _Session):
        """The decided prefix's feature snapshot, without a scalar replay.

        Batched mode reads the bank's quality sidecar as a raw
        accumulator tuple (O(1) per call; the monitor assembles it
        lazily); sequential mode reads the eager session's own
        incremental vector.  Both are bit-identical to
        :meth:`_replay_vector` once assembled — that identity is what
        lets :class:`~repro.obs.QualityMonitor` stay attached in
        production without re-walking every decided prefix.
        """
        if self.batched:
            return self._bank.quality_state(session.slot)
        return session.eseq.feature_vector

    def _replay_vector(self, session: _Session) -> np.ndarray:
        """The scalar path's exact feature vector for a session's prefix.

        This is the arbiter behind the batched mode's equivalence
        guarantee: rows the :class:`BatchEvaluator` flags as risky are
        re-decided from features computed precisely as
        :class:`~repro.eager.EagerSession` computes them.
        """
        inc = IncrementalFeatures()
        for p in session.points:
            if type(p) is tuple:
                p = Point(p[0], p[1], p[2])
            inc.add_point(p)
        return inc.vector

    def _fallback_full(self, session: _Session) -> str:
        """One exact-fallback full classification, profiled when attached."""
        prof = self._profiler
        t_start = perf_counter() if prof is not None else 0.0
        name = session.model.recognizer.full_classifier.classify_features(
            self._replay_vector(session)
        )
        if prof is not None:
            prof.add("exact_fallback", perf_counter() - t_start)
        return name

    def _eval_rows_grouped(self, rows, features, counts, guard_risk):
        """Combined decisions with rows partitioned by pinned model.

        Each group is sliced out, decided by its own model's evaluator,
        and scattered back into full-length result arrays.  Because the
        evaluator's discrete decisions never depend on which other rows
        share a batch (risky rows are exact-replayed), the default
        model's group decides exactly as it would have in an unpartition-
        ed, swap-free batch — the hot-swap byte-identity invariant.
        """
        n = len(rows)
        unambiguous = np.zeros(n, dtype=bool)
        auc_risky = np.zeros(n, dtype=bool)
        full_winners = np.zeros(n, dtype=np.intp)
        full_risky = np.zeros(n, dtype=bool)
        groups: dict[int, list[int]] = {}
        for i, session in enumerate(rows):
            groups.setdefault(id(session.model), []).append(i)
        for indices in groups.values():
            model = rows[indices[0]].model
            idx = np.asarray(indices, dtype=np.intp)
            u, a, w, f = model.evaluator.combined_decisions(
                features[idx], counts[idx], guard_risk[idx]
            )
            unambiguous[idx] = u
            auc_risky[idx] = a
            full_winners[idx] = w
            full_risky[idx] = f
        return unambiguous, auc_risky, full_winners, full_risky

    def _classify_full(self, sessions: list[_Session]) -> list[str]:
        """Full-classifier verdicts on current prefixes (timeout path)."""
        if not self.batched:
            return [
                s.model.recognizer.full_classifier.classify_features(
                    self._replay_vector(s)
                )
                for s in sessions
            ]
        slots = np.array([s.slot for s in sessions])
        features, counts, guard_risk = self._bank.features(slots)
        if self._swapped:
            names: list = [None] * len(sessions)
            risky = np.zeros(len(sessions), dtype=bool)
            groups: dict[int, list[int]] = {}
            for i, session in enumerate(sessions):
                groups.setdefault(id(session.model), []).append(i)
            for indices in groups.values():
                model = sessions[indices[0]].model
                idx = np.asarray(indices, dtype=np.intp)
                group_names, group_risky = model.evaluator.full_decisions(
                    features[idx], counts[idx], guard_risk[idx]
                )
                for k, i in enumerate(indices):
                    names[i] = group_names[k]
                risky[idx] = group_risky
        else:
            names, risky = self._evaluator.full_decisions(
                features, counts, guard_risk
            )
        replays = np.flatnonzero(risky)
        for i in replays:
            names[i] = self._fallback_full(sessions[i])
        obs = self.observer
        if obs is not None:
            obs.timeout_round(len(sessions), len(replays))
        return names
