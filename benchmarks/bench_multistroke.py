"""Extension — multi-stroke marks via the connect adaptation (§2/§6).

§2: "many common marks (e.g. 'X' and '->') cannot be used as gestures by
GRANDMA.  A number of techniques exist for adapting single-stroke
recognizers to multiple stroke recognition [8, 15], so perhaps
GRANDMA's recognizer will be extended this way in the future."

This bench exercises that extension: five mark classes ('X', '+', '=',
'->', 'O'), strokes grouped by a segmentation timeout, classified by the
unmodified Rubine recognizer on connected strokes, gated by stroke
count.
"""

import pytest
from conftest import write_report

from repro.multistroke import (
    MULTISTROKE_CLASS_NAMES,
    MultiStrokeClassifier,
    MultiStrokeGenerator,
    StrokeCollector,
)

TRAIN_PER_CLASS = 10
TEST_PER_CLASS = 30


@pytest.fixture(scope="module")
def trained():
    train = MultiStrokeGenerator(seed=171).generate_examples(TRAIN_PER_CLASS)
    return MultiStrokeClassifier.train(train)


def test_multistroke_accuracy(trained):
    test = MultiStrokeGenerator(seed=172).generate_examples(TEST_PER_CLASS)
    per_class = {}
    for name, gestures in test.items():
        hits = sum(trained.classify(g) == name for g in gestures)
        per_class[name] = hits / len(gestures)
    overall = sum(per_class.values()) / len(per_class)
    rows = [f"{name:>8}: {acc:6.1%}" for name, acc in per_class.items()]
    write_report(
        "multistroke_extension",
        "Multi-stroke extension: connect adaptation + stroke-count gating\n"
        f"({TRAIN_PER_CLASS} train / {TEST_PER_CLASS} test per class)\n\n"
        + "\n".join(rows)
        + f"\n\noverall: {overall:6.1%}",
    )
    assert overall > 0.9


def test_segmentation_pipeline(trained):
    """Raw stroke sequences through the collector, end to end."""
    from repro.geometry import Point, Stroke
    from repro.multistroke import MultiStrokeGesture

    generator = MultiStrokeGenerator(seed=173)
    collector = StrokeCollector(timeout=0.8)
    expected = []
    stream = []
    clock = 0.0
    for name in MULTISTROKE_CLASS_NAMES * 3:
        gesture = generator.generate(name)
        expected.append(name)
        for stroke in gesture.strokes:
            shifted = Stroke(
                Point(p.x, p.y, p.t + clock - gesture.strokes[0].start.t)
                for p in stroke
            )
            stream.append(shifted)
        clock = stream[-1].end.t + 2.0  # inter-gesture pause
    results = []
    for stroke in stream:
        finished = collector.add_stroke(stroke)
        if finished is not None:
            results.append(trained.classify(finished))
    final = collector.flush()
    if final is not None:
        results.append(trained.classify(final))
    hits = sum(a == b for a, b in zip(results, expected))
    assert len(results) == len(expected)
    assert hits / len(expected) > 0.85


def test_multistroke_classification_speed(trained, benchmark):
    test_gen = MultiStrokeGenerator(seed=174)
    gestures = [
        test_gen.generate(name) for name in MULTISTROKE_CLASS_NAMES
        for _ in range(6)
    ]
    benchmark(lambda: [trained.classify(g) for g in gestures])
