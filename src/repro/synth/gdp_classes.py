"""Templates for GDP's eleven gesture classes (paper §2, figures 3 and 10).

"In GDP, C = 11 (the classes are line, rectangle, ellipse, group, text,
delete, edit, move, rotate-scale, copy, and dot)."

The exact strokes Rubine's users drew are lost to history; these templates
are reconstructed from the paper's figures and descriptions:

* ``rect`` is the corner-hook of figure 3 — eagerly recognized after only
  4 of ~20 points in figure 10, so its opening must be unique (we start
  with the down-then-right hook).
* ``group`` is a large circle, drawn **clockwise**: "the group gesture was
  trained clockwise because when it was counterclockwise it prevented the
  copy gesture from ever being eagerly recognized" (§5).  ``copy`` is the
  open counterclockwise "C" of figure 10, which shares a prefix with a
  counterclockwise circle — reproducing that interaction.
* ``ellipse`` is a closed oval, smaller and counterclockwise so it remains
  separable from ``group``.
* ``edit`` "looks like '2'" (§2).
* ``dot`` is a two-point tap.

Under the y-down screen frame, positive arc sweep is clockwise.
"""

from __future__ import annotations

import math

from .templates import GestureTemplate, arc_waypoints

__all__ = ["GDP_CLASS_NAMES", "gdp_templates"]

GDP_CLASS_NAMES: tuple[str, ...] = (
    "line",
    "rect",
    "ellipse",
    "group",
    "text",
    "delete",
    "edit",
    "move",
    "rotate-scale",
    "copy",
    "dot",
)


def gdp_templates() -> dict[str, GestureTemplate]:
    """Build the eleven GDP gesture templates."""
    templates: list[GestureTemplate] = []

    # line — a plain stroke down-right (figure 3 draws it as a diagonal).
    templates.append(
        GestureTemplate(
            name="line",
            waypoints=((0.0, 0.0), (0.8, 0.6)),
        )
    )

    # rect — the figure-3 rectangle gesture: a sharp down-then-right hook.
    # Its first segment is unlike any other class's opening, which is why
    # figure 10 shows it recognized after ~4 points.
    templates.append(
        GestureTemplate(
            name="rect",
            waypoints=((0.0, 0.0), (0.0, 0.55), (0.6, 0.55)),
            corner_indices=(1,),
        )
    )

    # ellipse — a closed clockwise oval, starting at the right edge.
    # Clockwise keeps its prefix apart from copy's counterclockwise arc,
    # the same directional-separation trick §5 applies to group.
    oval = [
        (
            0.3 + 0.3 * math.cos(2 * math.pi * k / 28),
            0.2 + 0.2 * math.sin(2 * math.pi * k / 28),
        )
        for k in range(29)
    ]
    templates.append(
        GestureTemplate(name="ellipse", waypoints=tuple(oval))
    )

    # group — a large clockwise circle starting at the top.
    circle = arc_waypoints(
        cx=0.5, cy=0.5, radius=0.5, start_angle=-math.pi / 2, sweep=2 * math.pi * 0.95, steps=30
    )
    templates.append(
        GestureTemplate(name="group", waypoints=tuple(circle))
    )

    # text — a small horizontal squiggle (two bumps), like a scribbled word.
    templates.append(
        GestureTemplate(
            name="text",
            waypoints=(
                (0.0, 0.0),
                (0.15, -0.12),
                (0.3, 0.0),
                (0.45, -0.12),
                (0.6, 0.0),
            ),
            corner_indices=(1, 2, 3),
        )
    )

    # delete — a sharp zigzag slash: down-right, back up-right, down-right.
    templates.append(
        GestureTemplate(
            name="delete",
            waypoints=((0.0, 0.0), (0.35, 0.5), (0.5, 0.1), (0.85, 0.6)),
            corner_indices=(1, 2),
        )
    )

    # edit — "looks like '2'": a top arc, a diagonal down-left, a flat base.
    top_arc = arc_waypoints(
        cx=0.25, cy=0.15, radius=0.22, start_angle=math.pi, sweep=math.pi, steps=10
    )
    edit_points = top_arc + [(0.03, 0.62), (0.5, 0.62)]
    templates.append(
        GestureTemplate(
            name="edit",
            waypoints=tuple(edit_points),
            corner_indices=(len(top_arc) - 1 + 1,),
        )
    )

    # move — a caret: up-right then down-right.
    templates.append(
        GestureTemplate(
            name="move",
            waypoints=((0.0, 0.0), (0.3, -0.5), (0.6, 0.0)),
            corner_indices=(1,),
        )
    )

    # rotate-scale — a long clockwise hook sweeping about 300 degrees,
    # starting at the center of rotation and spiralling out.
    hook = arc_waypoints(
        cx=0.35,
        cy=0.35,
        radius=0.35,
        start_angle=math.pi,
        sweep=2 * math.pi * 0.8,
        steps=26,
    )
    rs_points = [(0.35, 0.35)] + hook
    templates.append(
        GestureTemplate(name="rotate-scale", waypoints=tuple(rs_points))
    )

    # copy — an open counterclockwise "C", starting at the top like the
    # group circle.  Its entire path coincides with the prefix of a
    # *counterclockwise* circle of the same size, which is exactly why §5
    # reports that training group counterclockwise "prevented the copy
    # gesture from ever being eagerly recognized"; with group trained
    # clockwise (the paper's fix, and our default), copy diverges from
    # group at the very first samples.
    c_arc = arc_waypoints(
        cx=0.5,
        cy=0.5,
        radius=0.5,
        start_angle=-math.pi / 2,
        sweep=-2 * math.pi * 0.65,
        steps=20,
    )
    templates.append(GestureTemplate(name="copy", waypoints=tuple(c_arc)))

    # dot — a tap: one waypoint, generated as two nearly coincident points.
    templates.append(
        GestureTemplate(name="dot", waypoints=((0.0, 0.0),))
    )

    by_name = {t.name: t for t in templates}
    assert tuple(by_name.keys()) == GDP_CLASS_NAMES
    return by_name
