"""Tests for the figure-9 stroke-art renderer."""

from repro.evaluate import render_eager_examples, render_eager_stroke
from repro.geometry import Stroke


def sample_stroke(n=20) -> Stroke:
    return Stroke.from_xy([(i * 5.0, (i % 7) * 3.0) for i in range(n)], dt=0.01)


class TestRenderEagerStroke:
    def test_contains_all_line_weights(self):
        art = render_eager_stroke(
            sample_stroke(), points_seen=12, oracle_points=8
        )
        assert "." in art  # ambiguous part
        assert "#" in art  # shortfall
        assert "*" in art  # classification point
        assert "o" in art  # manipulated tail

    def test_no_oracle_means_no_shortfall(self):
        art = render_eager_stroke(sample_stroke(), points_seen=12)
        assert "#" not in art
        assert "*" in art

    def test_classification_at_end_means_no_tail(self):
        stroke = sample_stroke()
        art = render_eager_stroke(stroke, points_seen=len(stroke))
        assert "o" not in art

    def test_fits_requested_grid(self):
        art = render_eager_stroke(
            sample_stroke(), points_seen=10, cols=20, rows=6
        )
        lines = art.split("\n")
        assert len(lines) <= 6
        assert all(len(line) <= 20 for line in lines)

    def test_degenerate_strokes(self):
        assert render_eager_stroke(Stroke(), points_seen=0) == ""
        dot = Stroke.from_xy([(5, 5), (5, 5)])
        art = render_eager_stroke(dot, points_seen=2)
        assert "*" in art


class TestRenderEagerExamples:
    def test_side_by_side_layout(self):
        rows = [
            ("a", sample_stroke(), 10, 7),
            ("b", sample_stroke(15), 15, None),
        ]
        art = render_eager_examples(rows, cols=20, rows=6)
        lines = art.split("\n")
        assert len(lines) == 7  # caption + grid rows
        assert "a (7,10/20)" in lines[0]
        assert "b (15/15)" in lines[0]
