"""Buxton's musical-note gestures (paper figure 8).

"Because all but the last gesture is approximately a subgesture of the one
to its right, these gestures would always be considered ambiguous by the
eager recognizer, and thus would never be eagerly recognized."

The set models Buxton's SSSP note-duration gestures: each shorter-duration
note extends the previous one with one more flag stroke.  The nesting is
what matters — class k's full template is a strict prefix of class k+1's —
so the eager recognizer can never commit before the gesture ends.
"""

from __future__ import annotations

from .templates import GestureTemplate

__all__ = ["NOTE_CLASS_NAMES", "note_templates"]

NOTE_CLASS_NAMES: tuple[str, ...] = (
    "quarter",
    "eighth",
    "sixteenth",
    "thirtysecond",
    "sixtyfourth",
)

# The shared backbone: a down stem, then alternating flag strokes.  Note
# class k uses the first k+2 waypoints, so each class is a prefix of the
# next.
_BACKBONE: tuple[tuple[float, float], ...] = (
    (0.0, 0.0),
    (0.0, 0.8),  # quarter: the stem
    (0.3, 0.55),  # eighth: first flag, up-right
    (0.3, 0.3),  # sixteenth: second flag, straight up
    (0.6, 0.1),  # thirtysecond: third flag, up-right
    (0.6, -0.15),  # sixtyfourth: fourth flag, straight up
)


def note_templates() -> dict[str, GestureTemplate]:
    """The five nested note classes."""
    templates: dict[str, GestureTemplate] = {}
    for k, name in enumerate(NOTE_CLASS_NAMES):
        waypoints = _BACKBONE[: k + 2]
        corners = tuple(range(1, len(waypoints) - 1))
        templates[name] = GestureTemplate(
            name=name, waypoints=waypoints, corner_indices=corners
        )
    return templates
