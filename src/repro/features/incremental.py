"""Constant-time-per-point feature extraction.

The paper's eager recognizer evaluates the feature vector of the gesture
prefix after *every* mouse point ("first the feature vector must be
updated, taking 0.5 msec on a DEC MicroVAX II").  That is only feasible
because every Rubine feature admits an O(1) incremental update; this
module provides that updater.  The invariant — checked by property-based
tests — is that after feeding points ``p_0 .. p_{i-1}``,
:attr:`IncrementalFeatures.vector` equals
:func:`repro.features.features_of` on the same prefix.
"""

from __future__ import annotations

import math

import numpy as np

from ..geometry import Point, Stroke
from .rubine import NUM_FEATURES, _MIN_DISTANCE, _MIN_DT, _MIN_SEGMENT_SQ

__all__ = ["IncrementalFeatures", "fold_turn_angles", "vector_from_snapshot"]


def fold_turn_angles(crosses, dots) -> tuple[float, float, float]:
    """Fold per-segment cross/dot products into the turn-angle features.

    ``crosses[i]`` / ``dots[i]`` are the cross and dot products of
    segment ``i`` against its predecessor — the two operands
    :meth:`IncrementalFeatures.add_point` hands to ``math.atan2`` for
    each turning point, in arrival order.  The fold here is that
    method's theta block verbatim (``math.atan2``, then ``+= theta``,
    ``+= abs(theta)``, ``+= theta * theta`` per point, left to right),
    so a caller holding the products — however it computed them — gets
    accumulators bit-identical to the scalar path's.

    Returns ``(total_angle, total_abs_angle, sharpness)``.
    """
    total_angle = 0.0
    total_abs = 0.0
    sharpness = 0.0
    for cross, dot in zip(crosses, dots):
        theta = math.atan2(cross, dot)
        total_angle += theta
        total_abs += abs(theta)
        sharpness += theta * theta
    return total_angle, total_abs, sharpness


def vector_from_snapshot(
    dx0: float,
    dy0: float,
    width: float,
    height: float,
    dxe: float,
    dye: float,
    total_len: float,
    total_angle: float,
    total_abs: float,
    sharpness: float,
    max_speed_sq: float,
    duration: float,
) -> np.ndarray:
    """Assemble the 13-feature vector from raw accumulator deltas.

    The arguments are exactly the intermediate scalars
    :attr:`IncrementalFeatures.vector` derives before its ``hypot`` /
    ``atan2`` / divide stage: the initial-angle anchor deltas, the
    bounding-box extents, the first-to-last chord deltas, and the five
    accumulators that pass through unchanged.  Subtraction is
    IEEE-exact, so a caller that produces those deltas from its own
    state (e.g. a :class:`~repro.serve.bank.FeatureBank` row) gets a
    result bit-identical to the scalar property — the point of this
    function is letting such callers *capture* the cheap deltas on the
    hot path and defer the transcendental assembly to read time.

    Mirrors the property operation for operation; the property stays
    hand-inlined because it runs per mouse point in sequential mode.
    """
    f = [0.0] * NUM_FEATURES
    d0 = math.hypot(dx0, dy0)
    if d0 > _MIN_DISTANCE:
        f[0] = dx0 / d0
        f[1] = dy0 / d0
    f[2] = math.hypot(width, height)
    if width != 0.0 or height != 0.0:
        f[3] = math.atan2(height, width)
    de = math.hypot(dxe, dye)
    f[4] = de
    if de > _MIN_DISTANCE:
        f[5] = dxe / de
        f[6] = dye / de
    f[7] = total_len
    f[8] = total_angle
    f[9] = total_abs
    f[10] = sharpness
    f[11] = max_speed_sq
    f[12] = duration
    return np.array(f)


class IncrementalFeatures:
    """Accumulates Rubine's 13 features one mouse point at a time.

    Typical use inside an event handler::

        inc = IncrementalFeatures()
        for event in mouse_events:
            inc.add_point(Point(event.x, event.y, event.t))
            decision = auc.classify(inc.vector)
    """

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Forget all points; ready for a new gesture."""
        self._count = 0
        self._first: Point | None = None
        self._third: Point | None = None
        self._last: Point | None = None
        self._min_x = self._min_y = math.inf
        self._max_x = self._max_y = -math.inf
        self._total_len = 0.0
        self._total_angle = 0.0
        self._total_abs = 0.0
        self._sharpness = 0.0
        self._max_speed_sq = 0.0
        # Direction of the last non-degenerate segment, for turn angles.
        self._prev_dx: float | None = None
        self._prev_dy: float | None = None

    @property
    def count(self) -> int:
        """Number of points seen so far."""
        return self._count

    def add_point(self, p: Point) -> None:
        """Fold one more mouse point into the feature state.  O(1)."""
        if p.x < self._min_x:
            self._min_x = p.x
        if p.x > self._max_x:
            self._max_x = p.x
        if p.y < self._min_y:
            self._min_y = p.y
        if p.y > self._max_y:
            self._max_y = p.y

        if self._count == 0:
            self._first = p
        elif self._count <= 2:
            # Points 1 and 2 both update the initial-angle anchor so the
            # incremental vector matches the batch computation on 2-point
            # prefixes (which anchor on the last available point).
            self._third = p

        last = self._last
        if last is not None:
            dx, dy = p.x - last.x, p.y - last.y
            seg_sq = dx * dx + dy * dy
            self._total_len += math.sqrt(seg_sq)
            dt = p.t - last.t
            if dt >= _MIN_DT:
                speed_sq = seg_sq / (dt * dt)
                if speed_sq > self._max_speed_sq:
                    self._max_speed_sq = speed_sq
            if (
                self._prev_dx is not None
                and seg_sq >= _MIN_SEGMENT_SQ
                and self._prev_dx**2 + self._prev_dy**2 >= _MIN_SEGMENT_SQ
            ):
                theta = math.atan2(
                    self._prev_dx * dy - self._prev_dy * dx,
                    self._prev_dx * dx + self._prev_dy * dy,
                )
                self._total_angle += theta
                self._total_abs += abs(theta)
                self._sharpness += theta * theta
            if seg_sq > 0.0:
                self._prev_dx, self._prev_dy = dx, dy

        self._last = p
        self._count += 1

    def add_stroke(self, stroke: Stroke) -> None:
        """Feed every point of a stroke."""
        for p in stroke:
            self.add_point(p)

    @property
    def vector(self) -> np.ndarray:
        """The current 13-feature vector (a fresh array each call)."""
        f = np.zeros(NUM_FEATURES)
        if self._count == 0:
            return f
        first = self._first
        anchor = self._third if self._third is not None else first
        dx0, dy0 = anchor.x - first.x, anchor.y - first.y
        d0 = math.hypot(dx0, dy0)
        if d0 > _MIN_DISTANCE:
            f[0] = dx0 / d0
            f[1] = dy0 / d0
        width = self._max_x - self._min_x
        height = self._max_y - self._min_y
        f[2] = math.hypot(width, height)
        if width != 0.0 or height != 0.0:
            f[3] = math.atan2(height, width)
        last = self._last
        dxe, dye = last.x - first.x, last.y - first.y
        de = math.hypot(dxe, dye)
        f[4] = de
        if de > _MIN_DISTANCE:
            f[5] = dxe / de
            f[6] = dye / de
        f[7] = self._total_len
        f[8] = self._total_angle
        f[9] = self._total_abs
        f[10] = self._sharpness
        f[11] = self._max_speed_sq
        f[12] = last.t - first.t
        return f
