"""AdaptStore: labelling precedence, skip rules, determinism."""

from __future__ import annotations

import json

from repro.adapt import AdaptStore, harvest_hash
from repro.hashing import canonical_json


def _ops(key: str, user: str, n: int = 5, t0: float = 0.0):
    out = [
        {"rec": "op", "op": "down", "user": user, "stroke": key,
         "x": 0.0, "y": 0.0, "t": t0}
    ]
    for i in range(1, n):
        out.append(
            {"rec": "op", "op": "move", "user": user, "stroke": key,
             "x": i * 5.0, "y": i * 5.0, "t": t0 + i * 0.01}
        )
    out.append(
        {"rec": "op", "op": "up", "user": user, "stroke": key,
         "x": n * 5.0, "y": n * 5.0, "t": t0 + n * 0.01}
    )
    return out


def _quality(key: str, **overrides):
    record = {
        "rec": "quality", "session": key, "class": "line",
        "reason": "eager", "eager": True, "points": 5, "margin": 50.0,
        "d2": 1.0, "drift": 0.1, "outlier": False, "dwell": 0.04,
        "t": 0.05, "total": 6, "eagerness": 0.8,
    }
    record.update(overrides)
    return record


def _store(**kwargs) -> AdaptStore:
    return AdaptStore(**kwargs)


def _feed(store, records):
    for r in records:
        store.add_op(r)


class TestLabelling:
    def test_correction_wins_over_everything(self):
        store = _store()
        _feed(store, _ops("s1", "u1"))
        store.add_trace(_quality("s1", outlier=True))  # would be skipped
        store.add_correction(
            {"rec": "correction", "user": "u1", "stroke": "s1", "class": "rect"}
        )
        by_user, counts = store.harvest()
        assert counts["correction"] == 1
        assert by_user["u1"][0]["class"] == "rect"
        assert by_user["u1"][0]["source"] == "correction"

    def test_correction_is_per_user(self):
        # A correction from another user must not label this stroke.
        store = _store()
        _feed(store, _ops("s1", "u1"))
        store.add_correction(
            {"rec": "correction", "user": "u2", "stroke": "s1", "class": "rect"}
        )
        by_user, counts = store.harvest()
        assert by_user == {}
        assert counts["skipped_undecided"] == 1

    def test_outlier_decision_is_skipped(self):
        store = _store()
        _feed(store, _ops("s1", "u1"))
        store.add_trace(_quality("s1", outlier=True))
        by_user, counts = store.harvest()
        assert by_user == {}
        assert counts["skipped_outlier"] == 1

    def test_timeout_dwell_and_margin_harvest_under_decided_class(self):
        store = _store(dwell_threshold=0.15, margin_threshold=0.5)
        _feed(store, _ops("s1", "u1", t0=0.0))
        _feed(store, _ops("s2", "u1", t0=1.0))
        _feed(store, _ops("s3", "u1", t0=2.0))
        store.add_trace(_quality("s1", reason="timeout", dwell=0.25))
        store.add_trace(_quality("s2", dwell=0.2))
        store.add_trace(_quality("s3", margin=0.1, dwell=0.01))
        by_user, counts = store.harvest()
        assert [e["source"] for e in by_user["u1"]] == [
            "timeout", "dwell", "margin",
        ]
        assert counts["harvested"] == 3
        assert all(e["class"] == "line" for e in by_user["u1"])

    def test_healthy_and_undecided_are_skipped(self):
        store = _store()
        _feed(store, _ops("s1", "u1"))  # no quality record at all
        _feed(store, _ops("s2", "u1"))
        store.add_trace(_quality("s2", margin=400.0, dwell=0.01))
        by_user, counts = store.harvest()
        assert by_user == {}
        assert counts["skipped_undecided"] == 1
        assert counts["skipped_healthy"] == 1

    def test_short_stroke_is_skipped_even_with_correction(self):
        store = _store(min_points=3)
        _feed(store, _ops("s1", "u1", n=2))  # down + 1 move = 2 points
        store.add_correction(
            {"rec": "correction", "user": "u1", "stroke": "s1", "class": "rect"}
        )
        by_user, counts = store.harvest()
        assert by_user == {}
        assert counts["skipped_short"] == 1


class TestDeterminism:
    def test_examples_in_traffic_arrival_order_with_stable_hash(self):
        def build():
            store = _store()
            _feed(store, _ops("b", "u1", t0=0.0))
            _feed(store, _ops("a", "u1", t0=1.0))
            store.add_trace(_quality("a", dwell=0.3))
            store.add_trace(_quality("b", dwell=0.3))
            return store.harvest()

        (users1, counts1), (users2, counts2) = build(), build()
        assert [e["stroke"] for e in users1["u1"]] == ["b", "a"]  # arrival
        assert canonical_json(users1) == canonical_json(users2)
        assert counts1 == counts2
        assert harvest_hash(users1["u1"]) == harvest_hash(users2["u1"])

    def test_points_are_what_the_recognizer_saw(self):
        # down + moves contribute points; up does not.
        store = _store()
        _feed(store, _ops("s1", "u1", n=5))
        store.add_trace(_quality("s1", dwell=0.3))
        by_user, _ = store.harvest()
        points = by_user["u1"][0]["points"]
        assert len(points) == 5
        assert points[0] == [0.0, 0.0, 0.0]

    def test_harvest_does_not_mutate_inputs(self):
        store = _store()
        _feed(store, _ops("s1", "u1"))
        store.add_trace(_quality("s1", dwell=0.3))
        by_user, _ = store.harvest()
        by_user["u1"][0]["points"][0][0] = 999.0
        again, _ = store.harvest()
        assert again["u1"][0]["points"][0][0] == 0.0


class TestLoaders:
    def test_ndjson_round_trip(self, tmp_path):
        traffic = tmp_path / "traffic.ndjson"
        trace = tmp_path / "trace.ndjson"
        corrections = tmp_path / "corrections.ndjson"
        traffic.write_text(
            "".join(json.dumps(r) + "\n" for r in _ops("s1", "u1"))
        )
        trace.write_text(json.dumps(_quality("s1", outlier=True)) + "\n")
        corrections.write_text(
            json.dumps(
                {"rec": "correction", "user": "u1", "stroke": "s1",
                 "class": "rect"}
            )
            + "\n\n"  # blank lines are tolerated
        )
        store = _store()
        assert store.load_traffic(traffic) == 6
        assert store.load_traces(trace) == 1
        assert store.load_corrections(corrections) == 1
        by_user, _ = store.harvest()
        assert by_user["u1"][0]["class"] == "rect"
