"""Unit tests for Rubine's batch feature computation."""

import math

import numpy as np
import pytest

from repro.features import FEATURE_NAMES, NUM_FEATURES, feature_matrix, features_of
from repro.geometry import Stroke


def rightward_line(n: int = 10, spacing: float = 10.0) -> Stroke:
    return Stroke.from_xy([(i * spacing, 0) for i in range(n)], dt=0.01)


IDX = {name: i for i, name in enumerate(FEATURE_NAMES)}


class TestShape:
    def test_thirteen_features(self):
        assert NUM_FEATURES == 13
        assert len(FEATURE_NAMES) == 13

    def test_vector_shape(self):
        assert features_of(rightward_line()).shape == (NUM_FEATURES,)

    def test_feature_matrix(self):
        m = feature_matrix([rightward_line(), rightward_line(5)])
        assert m.shape == (2, NUM_FEATURES)

    def test_feature_matrix_empty(self):
        assert feature_matrix([]).shape == (0, NUM_FEATURES)


class TestInitialAngle:
    def test_rightward_initial_angle(self):
        f = features_of(rightward_line())
        assert f[IDX["cos_initial"]] == pytest.approx(1.0)
        assert f[IDX["sin_initial"]] == pytest.approx(0.0)

    def test_downward_initial_angle(self):
        down = Stroke.from_xy([(0, i * 10.0) for i in range(10)], dt=0.01)
        f = features_of(down)
        assert f[IDX["cos_initial"]] == pytest.approx(0.0)
        assert f[IDX["sin_initial"]] == pytest.approx(1.0)

    def test_initial_angle_uses_third_point(self):
        # Jitter at point 1 must not dominate: the anchor is point 2.
        s = Stroke.from_xy([(0, 0), (0.5, 3.0), (20, 0)], dt=0.01)
        f = features_of(s)
        assert f[IDX["cos_initial"]] == pytest.approx(1.0)

    def test_initial_angle_of_two_points_uses_second(self):
        s = Stroke.from_xy([(0, 0), (10, 0)])
        assert features_of(s)[IDX["cos_initial"]] == pytest.approx(1.0)


class TestBoundingBoxFeatures:
    def test_diagonal_length(self):
        s = Stroke.from_xy([(0, 0), (30, 40)])
        assert features_of(s)[IDX["bbox_diagonal"]] == pytest.approx(50.0)

    def test_diagonal_angle(self):
        s = Stroke.from_xy([(0, 0), (10, 10)])
        assert features_of(s)[IDX["bbox_angle"]] == pytest.approx(math.pi / 4)


class TestEndpointFeatures:
    def test_endpoint_distance(self):
        f = features_of(rightward_line(n=11, spacing=10.0))
        assert f[IDX["endpoint_distance"]] == pytest.approx(100.0)

    def test_endpoint_angle(self):
        s = Stroke.from_xy([(0, 0), (5, 5), (0, 10)])
        f = features_of(s)
        assert f[IDX["cos_endpoints"]] == pytest.approx(0.0)
        assert f[IDX["sin_endpoints"]] == pytest.approx(1.0)

    def test_closed_stroke_has_zero_endpoint_distance(self):
        s = Stroke.from_xy([(0, 0), (10, 0), (10, 10), (0, 10), (0, 0)])
        f = features_of(s)
        assert f[IDX["endpoint_distance"]] == pytest.approx(0.0)
        assert f[IDX["cos_endpoints"]] == 0.0  # undefined -> 0, not NaN
        assert f[IDX["sin_endpoints"]] == 0.0


class TestAccumulatedFeatures:
    def test_total_length(self):
        f = features_of(rightward_line(n=11, spacing=10.0))
        assert f[IDX["total_length"]] == pytest.approx(100.0)

    def test_straight_line_has_no_turning(self):
        f = features_of(rightward_line())
        assert f[IDX["total_angle"]] == pytest.approx(0.0)
        assert f[IDX["total_abs_angle"]] == pytest.approx(0.0)
        assert f[IDX["sharpness"]] == pytest.approx(0.0)

    def test_right_angle_turn_total_angle(self):
        s = Stroke.from_xy([(0, 0), (10, 0), (20, 0), (20, 10), (20, 20)])
        f = features_of(s)
        assert abs(f[IDX["total_angle"]]) == pytest.approx(math.pi / 2)
        assert f[IDX["total_abs_angle"]] == pytest.approx(math.pi / 2)
        assert f[IDX["sharpness"]] == pytest.approx((math.pi / 2) ** 2)

    def test_opposite_turns_cancel_in_signed_sum_only(self):
        zigzag = Stroke.from_xy(
            [(0, 0), (10, 0), (20, 10), (30, 0), (40, 0)]
        )
        f = features_of(zigzag)
        assert abs(f[IDX["total_angle"]]) < 1e-9
        assert f[IDX["total_abs_angle"]] > 1.0

    def test_tiny_segments_do_not_contribute_angles(self):
        # Sub-noise-floor jitter (under 3 px) is ignored for turn angles.
        s = Stroke.from_xy(
            [(0, 0), (10, 0), (10.5, 0.5), (20, 0), (30, 0)]
        )
        f = features_of(s)
        assert f[IDX["total_abs_angle"]] < 0.3


class TestTimingFeatures:
    def test_duration(self):
        s = Stroke.from_xy([(0, 0), (1, 0), (2, 0)], dt=0.5)
        assert features_of(s)[IDX["duration"]] == pytest.approx(1.0)

    def test_max_speed(self):
        # 10 px per 0.1 s -> speed 100 px/s -> squared 1e4.
        s = Stroke.from_xy([(0, 0), (10, 0), (20, 0)], dt=0.1)
        assert features_of(s)[IDX["max_speed_sq"]] == pytest.approx(1e4)

    def test_max_speed_takes_the_fastest_segment(self):
        pts = [(0.0, 0.0, 0.0), (1.0, 0.0, 0.1), (50.0, 0.0, 0.2)]
        from repro.geometry import Point

        s = Stroke([Point(*p) for p in pts])
        assert features_of(s)[IDX["max_speed_sq"]] == pytest.approx(490.0**2)

    def test_zero_dt_does_not_divide_by_zero(self):
        from repro.geometry import Point

        s = Stroke([Point(0, 0, 0.0), Point(10, 0, 0.0)])
        f = features_of(s)
        assert np.isfinite(f).all()


class TestDegenerateStrokes:
    def test_empty_stroke_is_all_zero(self):
        assert not features_of(Stroke()).any()

    def test_single_point(self):
        f = features_of(Stroke.from_xy([(5, 5)]))
        assert np.isfinite(f).all()
        assert f[IDX["total_length"]] == 0.0

    def test_repeated_point(self):
        f = features_of(Stroke.from_xy([(5, 5)] * 10))
        assert np.isfinite(f).all()
        assert f[IDX["endpoint_distance"]] == 0.0

    def test_features_never_nan_on_collinear_input(self):
        f = features_of(Stroke.from_xy([(0, 0), (0, 0), (1, 0), (1, 0)]))
        assert np.isfinite(f).all()


class TestInvariances:
    def test_translation_invariance(self):
        s = Stroke.from_xy([(0, 0), (13, 5), (20, 9), (31, 17)], dt=0.02)
        f1 = features_of(s)
        f2 = features_of(s.translated(100, -250))
        np.testing.assert_allclose(f1, f2, atol=1e-9)

    def test_time_shift_invariance(self):
        s = Stroke.from_xy([(0, 0), (13, 5), (20, 9)], dt=0.02)
        shifted = Stroke.from_xy([(0, 0), (13, 5), (20, 9)], dt=0.02, t0=55.5)
        np.testing.assert_allclose(features_of(s), features_of(shifted), atol=1e-9)

    def test_rotation_changes_initial_angle_only_in_trig_features(self):
        s = Stroke.from_xy([(i * 10.0, 0) for i in range(8)], dt=0.01)
        rotated = Stroke(
            p.rotated(math.pi / 2) for p in s
        )
        f1, f2 = features_of(s), features_of(rotated)
        # Length-type features are rotation invariant.
        assert f1[IDX["total_length"]] == pytest.approx(f2[IDX["total_length"]])
        assert f1[IDX["endpoint_distance"]] == pytest.approx(
            f2[IDX["endpoint_distance"]]
        )
        # The initial direction rotates with the stroke.
        assert f2[IDX["cos_initial"]] == pytest.approx(0.0, abs=1e-9)
        assert f2[IDX["sin_initial"]] == pytest.approx(1.0)
