"""shadow_eval: promotion rules and byte-stability.

Verdicts are tested against hand-built model pairs where the better
model is known by construction: a candidate retrained on a brand-new
class must beat a live model that has never seen it, and a model
replayed against itself must always be rejected (tie).
"""

from __future__ import annotations

from repro.adapt import AdaptPipeline, report_hash, shadow_eval
from repro.hashing import canonical_json
from repro.serve import ModelRegistry

from .conftest import user_examples


def _candidate(adapt_env, tmp_path, user, examples):
    registry_root, cache_dir, _ = adapt_env
    pipeline = AdaptPipeline(
        registry_root, "gdp", cache_dir=cache_dir,
        state_dir=tmp_path / "state",
    )
    pipeline.fold(user, examples)
    result = pipeline.run(user)
    published = pipeline.publish(result)
    registry = ModelRegistry(registry_root)
    return (
        registry.load("gdp"),
        registry.load(published.name, published.version),
    )


def test_new_class_candidate_promotes(adapt_env, tmp_path):
    examples = user_examples(
        seed=55, classes=1, per_class=3, label=lambda _: "zigzag"
    )
    live, candidate = _candidate(adapt_env, tmp_path, "carol", examples)
    report = shadow_eval(live, candidate, examples)
    assert report["verdict"] == "promote"
    assert report["candidate"]["correct"] > report["live"]["correct"]
    # The live model cannot even name the class: incorrect, zero margin.
    assert all(s["live"]["margin"] == 0.0 for s in report["per_stroke"])
    # The relabeled class collides in shape with a base class, so the
    # candidate need not sweep every stroke — strictly better suffices.
    assert report["delta"]["correct"] >= 1


def test_identical_models_always_reject(adapt_env, tmp_path):
    registry_root, _, _ = adapt_env
    live = ModelRegistry(registry_root).load("gdp")
    examples = user_examples(seed=99)
    report = shadow_eval(live, live, examples)
    assert report["verdict"] == "reject"
    assert report["delta"] == {"correct": 0, "margin_sum": 0.0}


def test_regression_rejects_in_both_directions(adapt_env, tmp_path):
    examples = user_examples(
        seed=55, classes=1, per_class=3, label=lambda _: "zigzag"
    )
    live, candidate = _candidate(adapt_env, tmp_path, "carol", examples)
    # Swapped roles: the worse model as candidate must be rejected —
    # promotion is strict improvement, never symmetry.
    report = shadow_eval(candidate, live, examples)
    assert report["verdict"] == "reject"
    assert "regression" in report["reason"]


def test_empty_replay_set_rejects(adapt_env):
    registry_root, _, _ = adapt_env
    live = ModelRegistry(registry_root).load("gdp")
    report = shadow_eval(live, live, [])
    assert report["verdict"] == "reject"
    assert report["strokes"] == 0


def test_report_is_byte_stable(adapt_env, tmp_path):
    examples = user_examples(
        seed=55, classes=1, per_class=3, label=lambda _: "zigzag"
    )
    live, candidate = _candidate(adapt_env, tmp_path, "carol", examples)
    a = shadow_eval(live, candidate, examples)
    b = shadow_eval(live, candidate, examples)
    assert canonical_json(a) == canonical_json(b)
    assert report_hash(a) == report_hash(b)
    # The evidence rides in the report: one entry per stroke, each with
    # both models' views.
    assert len(a["per_stroke"]) == len(examples)
    assert all(
        set(entry) == {"label", "live", "candidate"}
        for entry in a["per_stroke"]
    )
