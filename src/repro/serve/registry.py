"""Versioned, content-addressed storage for trained recognizers.

A model's version *is* its content: the SHA-256 of the canonical JSON
serialization, truncated to twelve hex digits.  Publishing the same
trained recognizer twice is a no-op; publishing a retrained one appends
a new version and moves ``latest``.  Nothing in the layout depends on
wall-clock time, so a registry built twice from the same training data
is byte-identical.

On-disk layout, under the registry root::

    <root>/<name>/index.json         {"latest": ..., "versions": [...]}
    <root>/<name>/<version>.json     EagerRecognizer.to_dict() + metadata

Loads are served from a warm in-memory cache keyed by ``(name, version)``
so a server swapping between models never re-reads or re-parses JSON on
the hot path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..eager import EagerRecognizer
from ..fsio import atomic_write_text
from ..hashing import canonical_json as _canonical
from ..hashing import model_version

__all__ = ["ModelRegistry", "ModelVersion"]


@dataclass(frozen=True)
class ModelVersion:
    """One published version of one named model."""

    name: str
    version: str
    path: Path
    metadata: dict = field(default_factory=dict)


class ModelRegistry:
    """A directory of named, versioned recognizers."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._cache: dict[tuple[str, str], EagerRecognizer] = {}

    # -- publishing ----------------------------------------------------------

    def publish(
        self,
        name: str,
        recognizer: EagerRecognizer,
        metadata: dict | None = None,
    ) -> ModelVersion:
        """Store a recognizer; returns its (content-derived) version.

        Idempotent: re-publishing identical weights returns the existing
        version without rewriting anything.  Both the model file and the
        index are written atomically (temp + ``os.replace``, the
        :mod:`repro.fsio` discipline), so a publish racing another
        publish — or killed mid-write — can corrupt neither: readers see
        a complete old index or a complete new one, and the model file
        is fully present before the index ever points at it.
        """
        model = recognizer.to_dict()
        version = model_version(model)
        directory = self.root / name
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{version}.json"
        if not path.exists():
            atomic_write_text(
                path,
                _canonical({"model": model, "metadata": metadata or {}}),
            )
        index = self._read_index(name)
        if version not in index["versions"]:
            index["versions"].append(version)
        index["latest"] = version
        atomic_write_text(directory / "index.json", _canonical(index))
        self._cache[(name, version)] = recognizer
        return ModelVersion(
            name=name, version=version, path=path, metadata=metadata or {}
        )

    # -- loading -------------------------------------------------------------

    def load(
        self, name: str, version: str | None = None, cached: bool = True
    ) -> EagerRecognizer:
        """Load a model by name, at ``version`` or at ``latest``."""
        if version is None:
            version = self.latest_version(name)
        key = (name, version)
        if cached and key in self._cache:
            return self._cache[key]
        payload = json.loads(self.path_of(name, version).read_text())
        recognizer = EagerRecognizer.from_dict(payload["model"])
        if cached:
            self._cache[key] = recognizer
        return recognizer

    def metadata_of(self, name: str, version: str | None = None) -> dict:
        if version is None:
            version = self.latest_version(name)
        return json.loads(self.path_of(name, version).read_text())["metadata"]

    # -- enumeration ---------------------------------------------------------

    def names(self) -> list[str]:
        return sorted(
            p.name for p in self.root.iterdir() if (p / "index.json").exists()
        )

    def versions(self, name: str) -> list[str]:
        return list(self._read_index(name)["versions"])

    def latest_version(self, name: str) -> str:
        latest = self._read_index(name)["latest"]
        if latest is None:
            raise KeyError(f"no model named {name!r} in {self.root}")
        return latest

    def path_of(self, name: str, version: str) -> Path:
        path = self.root / name / f"{version}.json"
        if not path.exists():
            raise KeyError(f"no version {version!r} of model {name!r}")
        return path

    # -- internals -----------------------------------------------------------

    def _read_index(self, name: str) -> dict:
        path = self.root / name / "index.json"
        if not path.exists():
            return {"latest": None, "versions": []}
        return json.loads(path.read_text())
