"""Metrics-driven elasticity: decide when the fleet should change size.

The :class:`Autoscaler` is deliberately split in two:

* :meth:`Autoscaler.decide` is a *pure* function of one load sample and
  a clock reading — no I/O, no tasks — so every hysteresis and cooldown
  path is unit-testable with hand-built samples;
* :meth:`Autoscaler.run` is the thin async loop that feeds it the
  router's :meth:`~repro.cluster.router.Router.load_sample` and hands
  any verdict to :meth:`~repro.cluster.harness.Cluster.scale_to`.

Signals, matching what the router can answer synchronously plus what a
fleet ``stats`` merge can add:

* ``sessions_per_shard`` — live sessions over live shards;
* ``max_queue_depth`` — the deepest outbound worker queue (backlog the
  workers have not drained yet);
* ``p99_decision_seconds`` — optional; when a caller enriches samples
  with a fleet-merged latency quantile (:func:`quantile_from_buckets`
  over merged histogram buckets), a latency ceiling also triggers
  scale-out.

Flapping is suppressed twice over: a *confirm streak* (the same
direction must win ``confirm`` consecutive samples) and a *cooldown*
(after any action, decisions hold for ``cooldown`` seconds — time for
migrations to land and the signals to reflect the new topology).
"""

from __future__ import annotations

import asyncio

__all__ = ["Autoscaler", "quantile_from_buckets"]


def quantile_from_buckets(buckets, q: float = 0.99) -> float:
    """Estimate a quantile from ``[upper_bound, count]`` histogram
    buckets — the :meth:`repro.obs.MetricsRegistry.snapshot` shape,
    where the final bound is ``None`` (+inf overflow).

    Returns the upper bound of the bucket containing the ``q``-th
    observation (a conservative over-estimate, the usual Prometheus
    convention); the overflow bucket reports the last finite bound.
    With no observations at all the estimate is ``0.0``.
    """
    if not 0.0 < q <= 1.0:
        raise ValueError("q must be in (0, 1]")
    total = sum(count for _, count in buckets)
    if total == 0:
        return 0.0
    target = q * total
    cumulative = 0
    last_finite = 0.0
    for bound, count in buckets:
        cumulative += count
        if cumulative >= target:
            return last_finite if bound is None else float(bound)
        if bound is not None:
            last_finite = float(bound)
    return last_finite


class Autoscaler:
    """Watermark autoscaling with confirm-streak hysteresis + cooldown."""

    def __init__(
        self,
        *,
        min_workers: int = 1,
        max_workers: int = 8,
        high_sessions: float = 64.0,
        low_sessions: float = 16.0,
        high_queue: int = 256,
        high_p99: float | None = None,
        interval: float = 0.5,
        confirm: int = 3,
        cooldown: float = 5.0,
    ):
        if min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if max_workers < min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if low_sessions >= high_sessions:
            raise ValueError("low_sessions must be below high_sessions")
        if confirm < 1:
            raise ValueError("confirm must be >= 1")
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.high_sessions = high_sessions
        self.low_sessions = low_sessions
        self.high_queue = high_queue
        self.high_p99 = high_p99
        self.interval = interval
        self.confirm = confirm
        self.cooldown = cooldown
        self.decisions = 0  # actions emitted (for status/tests)
        self._direction = 0
        self._streak = 0
        self._last_action: float | None = None

    def decide(self, sample: dict, now: float) -> int | None:
        """One shard-count verdict, or ``None`` to hold.

        ``sample`` is a :meth:`Router.load_sample` dict (optionally
        enriched with ``p99_decision_seconds``); ``now`` is any
        monotonic clock reading, injected so tests never sleep.
        """
        if (
            self._last_action is not None
            and now - self._last_action < self.cooldown
        ):
            # Cooling down: the topology just changed, so the signals
            # still describe the old fleet.  Streaks restart after.
            self._direction = 0
            self._streak = 0
            return None
        shards = max(1, int(sample.get("shards", 1)))
        per_shard = float(sample.get("sessions_per_shard", 0.0))
        queue = int(sample.get("max_queue_depth", 0))
        p99 = sample.get("p99_decision_seconds")
        hot = (
            per_shard > self.high_sessions
            or queue > self.high_queue
            or (
                self.high_p99 is not None
                and p99 is not None
                and float(p99) > self.high_p99
            )
        )
        cold = per_shard < self.low_sessions and queue <= self.high_queue // 4
        if hot and shards < self.max_workers:
            direction = 1
        elif not hot and cold and shards > self.min_workers:
            direction = -1
        else:
            self._direction = 0
            self._streak = 0
            return None
        if direction != self._direction:
            self._direction = direction
            self._streak = 1
        else:
            self._streak += 1
        if self._streak < self.confirm:
            return None
        self._direction = 0
        self._streak = 0
        self._last_action = now
        self.decisions += 1
        return shards + direction

    async def run(self, sample_fn, scale_fn) -> None:
        """Sample → decide → act, forever (cancel to stop).

        ``sample_fn`` returns a load-sample dict (sync or async);
        ``scale_fn`` is an async ``(workers) -> None`` —
        :meth:`Cluster.scale_to` in production.
        """
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.interval)
            sample = sample_fn()
            if asyncio.iscoroutine(sample):
                sample = await sample
            target = self.decide(sample, loop.time())
            if target is not None:
                await scale_fn(target)
