"""Synthetic multi-stroke gesture classes — the marks §2 says GRANDMA
cannot do: 'X', '+', '=', '→', plus a single-stroke 'O' control."""

from __future__ import annotations

import numpy as np

from ..geometry import Point, Stroke
from ..synth import GenerationParams, GestureGenerator, GestureTemplate, arc_waypoints
from .gesture import MultiStrokeGesture

__all__ = ["MULTISTROKE_CLASS_NAMES", "MultiStrokeGenerator"]

import math

MULTISTROKE_CLASS_NAMES: tuple[str, ...] = ("X", "plus", "equals", "arrow", "O")

# Component templates per class: each entry is one pen-down stroke,
# in shared unit coordinates.
_COMPONENTS: dict[str, list[GestureTemplate]] = {
    "X": [
        GestureTemplate(name="X/0", waypoints=((0.0, 0.0), (0.8, 0.8))),
        GestureTemplate(name="X/1", waypoints=((0.8, 0.0), (0.0, 0.8))),
    ],
    "plus": [
        GestureTemplate(name="plus/0", waypoints=((0.4, 0.0), (0.4, 0.8))),
        GestureTemplate(name="plus/1", waypoints=((0.0, 0.4), (0.8, 0.4))),
    ],
    "equals": [
        GestureTemplate(name="equals/0", waypoints=((0.0, 0.2), (0.8, 0.2))),
        GestureTemplate(name="equals/1", waypoints=((0.0, 0.6), (0.8, 0.6))),
    ],
    "arrow": [  # the paper's '->': a shaft, then the head
        GestureTemplate(name="arrow/0", waypoints=((0.0, 0.4), (0.9, 0.4))),
        GestureTemplate(
            name="arrow/1",
            waypoints=((0.65, 0.15), (0.9, 0.4), (0.65, 0.65)),
            corner_indices=(1,),
        ),
    ],
    "O": [
        GestureTemplate(
            name="O/0",
            waypoints=tuple(
                arc_waypoints(0.4, 0.4, 0.4, -math.pi / 2, 2 * math.pi * 0.95, 24)
            ),
        ),
    ],
}


class MultiStrokeGenerator:
    """Draws noisy multi-stroke examples with realistic pen-up gaps."""

    def __init__(
        self,
        seed: int = 0,
        params: GenerationParams | None = None,
        pen_up_gap: float = 0.25,
    ):
        self.params = params or GenerationParams()
        self._rng = np.random.default_rng(seed)
        self.pen_up_gap = pen_up_gap
        # One sub-generator per component template, sharing noise params.
        self._generators = {
            name: [
                GestureGenerator(
                    {t.name: t},
                    params=self.params,
                    seed=int(self._rng.integers(0, 2**31)),
                )
                for t in components
            ]
            for name, components in _COMPONENTS.items()
        }

    @property
    def class_names(self) -> tuple[str, ...]:
        return MULTISTROKE_CLASS_NAMES

    def generate(self, class_name: str) -> MultiStrokeGesture:
        generators = self._generators.get(class_name)
        if generators is None:
            raise KeyError(f"unknown multistroke class {class_name!r}")
        strokes: list[Stroke] = []
        clock = 0.0
        for i, generator in enumerate(generators):
            template_name = _COMPONENTS[class_name][i].name
            stroke = generator.generate(template_name).stroke
            gap = self.pen_up_gap * float(self._rng.uniform(0.5, 1.5))
            t0 = clock if not strokes else clock + gap
            stroke = Stroke(
                Point(p.x, p.y, t0 + (p.t - stroke.start.t)) for p in stroke
            )
            strokes.append(stroke)
            clock = stroke.end.t
        return MultiStrokeGesture(strokes)

    def generate_examples(
        self, count_per_class: int
    ) -> dict[str, list[MultiStrokeGesture]]:
        return {
            name: [self.generate(name) for _ in range(count_per_class)]
            for name in MULTISTROKE_CLASS_NAMES
        }
