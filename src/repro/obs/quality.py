"""Recognition-quality telemetry: is the *recognizer* healthy?

PR 2's observer answers mechanical questions (how many decisions, how
big the batches).  :class:`QualityMonitor` answers the questions the
paper's evaluation reasons about:

* **classification margin** — how far the winning class's linear
  evaluation sits above the runner-up's.  Shrinking margins mean the
  classifier is being asked to make closer calls than it was trained
  for (the quantity the §4.6 bias-tweak procedure manipulates).
* **Mahalanobis rejection distance** — the squared distance from the
  decided feature vector to the winning class's training mean under the
  pooled covariance.  Rubine rejects gestures with ``d^2 > 0.5 F^2``;
  the monitor counts those as ``quality.outliers``.
* **feature drift** — per class, the running mean of ``d^2 / F``.  A
  *complete* in-distribution gesture has expectation ≈ 1 (``E[d^2] = F``
  under the training Gaussian); an eager decision measures a truncated
  prefix against the full-gesture mean, which inflates the level (there
  is no observable "rest of the gesture" — post-decision motion is
  manipulation, not gesture).  The score is therefore a *relative*
  signal: compare a class against its own history or against its peers
  under the same traffic mix, not against an absolute 1.0.
* **eager-trigger progress** — the fraction of the stroke consumed
  before the AUC judged it unambiguous (the paper's eagerness measure,
  figures 9–10).  Known only once the stroke *ends*, so it is recorded
  when the session commits, not when it decides.
* **ambiguous dwell** — virtual seconds from the first point to the
  decision: how long the user waited for an answer.

Every number is defined by the scalar replay of the decided gesture
prefix through :class:`~repro.features.IncrementalFeatures` — the same
arbiter the batched evaluator's exact-fallback uses — so the numbers
are bit-identical across the pool's batched and sequential modes and
independent of any attached tracer.  The serving layer no longer *pays*
for that replay, though: :meth:`QualityMonitor.decided` accepts the
decided prefix's feature ``vector`` precomputed by the caller — the
pool's batched mode hands over the raw O(1)
:meth:`~repro.serve.bank.FeatureBank.quality_state` snapshot (assembled
via :func:`~repro.features.vector_from_snapshot` only when scored);
sequential mode reads the live :class:`~repro.eager.EagerSession`
state — and both sources are proven bit-identical to the replay by
property tests.
``vector=None`` still replays — the reference path, and the
compatibility path for callers that only have points.  The monitor is
pure read-only observation: it never touches the recognizer's state and
is only ever *called*, never consulted, by the serving layer.

For fleets that cannot afford 100 % coverage, ``sample=`` keeps quality
on a deterministic fraction of sessions: membership is a keyed hash of
the session id (:func:`session_sampled`), so it is replay-stable,
platform-stable, and independent of which worker — or which incarnation
of a worker, across a SIGKILL and journal replay — scores the session.
Sampled-out decisions cost one hash and one counter increment
(``quality.sampled_out``); sampled-in trace records carry their
``sample_rate`` so ``repro analyze`` can report it and scale counts.

Like the rest of :mod:`repro.obs`, this module imports nothing from
:mod:`repro.serve`; the pool hands it plain point sequences, duck-typed
decision records, and plain feature arrays.
"""

from __future__ import annotations

from hashlib import blake2b

from ..features import (
    IncrementalFeatures,
    fold_turn_angles,
    vector_from_snapshot,
)
from ..geometry import Point

__all__ = ["QualityMonitor", "session_sampled"]

import numpy as np

# Sampling compares a 64-bit keyed hash against rate * 2^64.
_SAMPLE_SCALE = 1 << 64

_NEG_INF = float("-inf")

# Deferred-mode backstop: if nothing scrapes the metrics for this many
# decisions, flush inline so staged capture stays bounded (~300 bytes a
# decision).  Any periodic scrape — a cluster heartbeat, a dashboard —
# drains far earlier.
_MAX_STAGED = 8192


def session_sampled(key: str, rate: float, seed: int = 0) -> bool:
    """Is session ``key`` in the deterministic quality sample?

    The membership test is ``blake2b(f"{seed}:{key}")``'s first 8 bytes
    read as an integer, against ``rate * 2^64`` — a pure function of
    ``(seed, rate, key)``.  No process state, no RNG stream, no
    platform dependence: a cluster replaying a session after a SIGKILL,
    a different worker after a reshard, or an offline re-run all make
    the identical choice, which is what keeps sampled traces coherent
    fleet-wide.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    digest = blake2b(f"{seed}:{key}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") < int(rate * _SAMPLE_SCALE)

# Bucket ladders sized to what each quantity actually spans.
_MARGIN_BUCKETS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0,
)
# Squared Mahalanobis distances concentrate around F (= 13); Rubine's
# rejection threshold 0.5 F^2 sits at 84.5.
_MAHAL_BUCKETS = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)
# Ambiguous dwell in virtual seconds; the motionless timeout is 0.2 s.
_DWELL_BUCKETS = (
    0.01, 0.025, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 1.0, 2.5,
)
_EAGERNESS_BUCKETS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def _assemble(state: tuple) -> np.ndarray:
    """A :meth:`FeatureBank.quality_state` snapshot, as a feature vector.

    Replays the scalar ``atan2`` fold over the snapshot's logged
    turning products, then the scalar assembly over its deltas — both
    pure :mod:`repro.features` functions, bit-identical to the replay.
    """
    angle, abs_angle, sharp = fold_turn_angles(state[7], state[8])
    return vector_from_snapshot(
        *state[:7], angle, abs_angle, sharp, *state[9:]
    )


def _replay_vector(points) -> np.ndarray:
    """The scalar feature vector of a decided prefix.

    Accepts both point shapes the pool stores: ``(x, y, t)`` tuples
    (batched mode) and :class:`~repro.geometry.Point` (sequential mode).
    Replaying through :class:`IncrementalFeatures` makes the result the
    *reference* vector — identical bits in either execution mode.
    """
    inc = IncrementalFeatures()
    for p in points:
        if type(p) is tuple:
            p = Point(p[0], p[1], p[2])
        inc.add_point(p)
    return inc.vector


class QualityMonitor:
    """Per-decision recognition-quality metrics, trace records, drift.

    Attach through :class:`~repro.obs.PoolObserver` (``quality=``).  The
    pool calls two hooks:

    * :meth:`decided` with the decided prefix and the ``recog`` decision
      — margins, distance, and dwell are computed here;
    * :meth:`closed` when the session reaches a terminal event, with the
      stroke's total point count — eagerness needs the whole stroke.

    ``metrics`` and ``tracer`` are both optional: metrics-only is the
    always-on configuration, tracer-only is what the golden analyze
    tests use, and neither still accumulates :meth:`drift_scores`.

    ``sample`` (with ``sample_seed``) keeps a deterministic fraction of
    sessions, keyed on the session id (see :func:`session_sampled`);
    ``sample=1.0`` — the default — scores everything and stamps
    nothing, byte-compatible with pre-sampling traces.
    """

    def __init__(
        self,
        recognizer,
        metrics=None,
        tracer=None,
        *,
        sample: float = 1.0,
        sample_seed: int = 0,
    ):
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample must be within [0, 1], got {sample}")
        full = recognizer.full_classifier
        self._linear = full.linear
        self._columns = full.feature_indices  # None = all 13
        self._metric = full.metric
        self._means = full.means
        self._dim = self._metric.dim
        # Pre-bound pieces of the per-decision pipeline.  The margin
        # and distance are computed with the *same operations* (in the
        # same order, on the same operands) as LinearClassifier
        # .evaluations and MahalanobisMetric.squared_distance, minus
        # their per-call validation — identical bits, less overhead.
        self._weights = self._linear.weights
        self._constants = self._linear.constants
        self._inv = self._metric.inverse_covariance
        # Per-decision scratch and Python-side constants.  The class
        # constants are added score-by-score inside the two-largest
        # scan (a Python float add is the same IEEE operation as
        # ``np.add`` applies elementwise), and the matvec results land
        # in preallocated buffers — both shave fixed numpy dispatch
        # cost off a path that runs once per decision.
        self._constants_list = self._constants.tolist()
        self._n_classes = len(self._constants_list)
        self._score_buf = np.empty(self._n_classes)
        self._diff_buf = np.empty(self._dim)
        self._row_buf = np.empty(self._dim)
        self.sample_rate = float(sample)
        self.sample_seed = int(sample_seed)
        self._sample_all = sample >= 1.0
        self._sample_threshold = int(sample * _SAMPLE_SCALE)
        self._seed_prefix = f"{sample_seed}:".encode()
        # Rubine's rejection rule, applied to what the serving layer
        # actually classified (the decided prefix): an input further
        # than 0.5 F^2 from its winner's mean "probably looks nothing
        # like" that class and would be rejected in the paper's
        # click-and-classify mode.
        self._outlier_sq = 0.5 * self._dim * self._dim
        self.metrics = metrics
        self.tracer = tracer
        # With no tracer attached (the always-on configuration) the
        # per-decision math is *deferred*: decided() stages the feature
        # vector plus metadata — a few appends — and flush() runs the
        # margin/distance pipeline when the numbers are actually read.
        # Reads stay consistent because the registry invokes flush as a
        # pre-snapshot collector and drift_scores() flushes first; the
        # FIFO replay keeps every accumulation in decision order, so
        # the results are bit-identical to scoring eagerly.  A tracer
        # forces the eager path: trace records must interleave with the
        # pool's own records in event order (the golden traces pin
        # that).
        self._defer = tracer is None
        self._staged: list[tuple] = []
        self._staged_closed: list[tuple] = []
        # key -> staged record, completed (and emitted) at close time.
        self._pending: dict[str, dict] = {}
        # class -> [decisions, sum of d^2] for drift_scores().
        self._drift: dict[str, list] = {}
        # class -> (margin.observe, mahal_sq.observe); label -> observe.
        self._class_obs: dict[str, tuple] = {}
        self._eager_obs: dict[str, object] = {}
        self._dwell_obs: dict[str, object] = {}
        if metrics is not None:
            self._inc_decisions = metrics.counter("quality.decisions").inc
            self._inc_outliers = metrics.counter("quality.outliers").inc
            self._inc_sampled_out = metrics.counter(
                "quality.sampled_out"
            ).inc
            register = getattr(metrics, "register_collector", None)
            if register is not None:
                register(self.flush)

    # -- hooks (called by the pool) ------------------------------------------

    def decided(self, points, decision, vector=None) -> None:
        """A session decided: compute margin, distance, and dwell.

        ``vector`` is the decided prefix's feature vector — or the raw
        accumulator snapshot tuple of
        :meth:`~repro.serve.bank.FeatureBank.quality_state`, assembled
        lazily through :func:`~repro.features.vector_from_snapshot` —
        when the caller already holds it (the pool's O(1) vectorized
        sources, proven bit-identical to the replay); ``None`` replays
        the prefix through :class:`IncrementalFeatures` — the reference
        formulation, and the path for callers that only have points.
        """
        key = decision.key
        if not self._sample_all:
            digest = blake2b(
                self._seed_prefix + key.encode(), digest_size=8
            ).digest()
            if int.from_bytes(digest, "big") >= self._sample_threshold:
                if self.metrics is not None:
                    self._inc_sampled_out()
                return
        features = _replay_vector(points) if vector is None else vector
        first = points[0]
        dwell = decision.t - (first[2] if type(first) is tuple else first.t)
        name = decision.class_name
        if self._defer:
            # Capture only: the vector (or raw snapshot tuple) is
            # already fresh — every source hands over a new object — so
            # staging is a couple of appends.  Assembly, masking and
            # scoring all happen in flush(), at read time.
            self._staged.append((features, name, decision.reason, dwell))
            self._pending[key] = (name, decision.points_seen)
            if len(self._staged) >= _MAX_STAGED:
                self.flush()
            return
        margin, d_sq = self._score(features)
        self._account(name, decision.reason, margin, d_sq, dwell)
        record = {
            "class": name,
            "reason": decision.reason,
            "eager": decision.eager,
            "points": decision.points_seen,
            "margin": margin,
            "d2": d_sq,
            "drift": d_sq / self._dim,
            "outlier": bool(d_sq > self._outlier_sq),
            "dwell": dwell,
            "t": decision.t,
        }
        if not self._sample_all:
            record["sample_rate"] = self.sample_rate
        self._pending[key] = record

    def flush(self) -> None:
        """Score and account every staged decision (idempotent, FIFO).

        Invoked automatically before each metrics snapshot (the
        registry collector hook) and by :meth:`drift_scores`; callers
        holding neither can invoke it directly.  Replaying in decision
        order makes every float accumulation identical to having scored
        eagerly.
        """
        staged = self._staged
        closed = self._staged_closed
        if staged:
            self._staged = []
            score = self._score
            account = self._account
            for features, name, reason, dwell in staged:
                margin, d_sq = score(features)
                account(name, reason, margin, d_sq, dwell)
        if closed:
            self._staged_closed = []
            for name, points_seen, total_points in closed:
                eagerness = (
                    points_seen / total_points if total_points > 0 else 0.0
                )
                self._observe_eagerness(name, eagerness)

    def _score(self, features) -> tuple:
        """Margin and squared Mahalanobis distance for one decision.

        Accepts every shape :meth:`decided` does: a raw snapshot tuple
        is assembled here, and the configured feature-column mask is
        applied here, so capture stays shape-agnostic.

        One gemv per decision — matrix-vector like the scalar
        reference, never batched into a gemm (BLAS may accumulate
        those differently in the last ulp).  Constants join inside the
        two-largest scan (a Python float add is the same IEEE operation
        ``np.add`` applies), which then returns exactly what
        np.partition(scores, -2) and np.argmax did: same floats, same
        subtraction, first index wins ties.
        """
        if type(features) is tuple:
            features = _assemble(features)
        if self._columns is not None:
            features = features[self._columns]
        raw = np.matmul(self._weights, features, out=self._score_buf).tolist()
        consts = self._constants_list
        winner = 0
        if self._n_classes > 1:
            best = raw[0] + consts[0]
            second = _NEG_INF
            for i in range(1, self._n_classes):
                v = raw[i] + consts[i]
                if v > best:
                    second = best
                    best = v
                    winner = i
                elif v > second:
                    second = v
            margin = best - second
        else:
            margin = 0.0
        # MahalanobisMetric.squared_distance, op for op: subtract,
        # left-to-right double matvec, float(), clamp that preserves
        # max(value, 0.0)'s handling of -0.0.  ``out=`` only redirects
        # where each result lands; the arithmetic is unchanged.
        diff = np.subtract(features, self._means[winner], out=self._diff_buf)
        d_sq = float(np.matmul(diff, self._inv, out=self._row_buf) @ diff)
        if d_sq < 0.0:
            d_sq = 0.0
        return margin, d_sq

    def _account(self, name, reason, margin, d_sq, dwell) -> None:
        """Fold one scored decision into drift, counters, histograms."""
        cell = self._drift.get(name)
        if cell is None:
            cell = self._drift[name] = [0, 0.0]
        cell[0] += 1
        cell[1] += d_sq
        if self.metrics is not None:
            self._inc_decisions()
            if d_sq > self._outlier_sq:
                self._inc_outliers()
            pair = self._class_obs.get(name)
            if pair is None:
                pair = self._class_obs[name] = (
                    self.metrics.histogram(
                        f"quality.margin.{name}", _MARGIN_BUCKETS
                    ).observe,
                    self.metrics.histogram(
                        f"quality.mahal_sq.{name}", _MAHAL_BUCKETS
                    ).observe,
                )
            pair[0](margin)
            pair[1](d_sq)
            dwell_obs = self._dwell_obs.get(reason)
            if dwell_obs is None:
                dwell_obs = self._dwell_obs[reason] = self.metrics.histogram(
                    f"quality.dwell.{reason}", _DWELL_BUCKETS
                ).observe
            dwell_obs(dwell)

    def closed(self, key: str, total_points: int) -> None:
        """The session ended; ``total_points`` covers the whole stroke.

        ``total_points`` counts the gesture prefix *plus* any
        manipulation-phase motion after the decision — the denominator
        of the paper's eagerness measure.  Sessions that never decided
        (killed or evicted mid-collection) have nothing staged and are
        a no-op here.
        """
        record = self._pending.pop(key, None)
        if record is None:
            return
        if type(record) is tuple:  # deferred mode: (class, points_seen)
            if self.metrics is not None:
                # The eagerness divide and histogram insert also wait
                # for flush(); observes replay in close order, so the
                # histogram's float running sum is bit-identical.
                self._staged_closed.append((*record, total_points))
            return
        eagerness = (
            record["points"] / total_points if total_points > 0 else 0.0
        )
        record["total"] = total_points
        record["eagerness"] = eagerness
        if self.metrics is not None:
            self._observe_eagerness(record["class"], eagerness)
        if self.tracer is not None:
            record["rec"] = "quality"
            record["session"] = key
            self.tracer.record(record)

    def _observe_eagerness(self, name, eagerness) -> None:
        eager_obs = self._eager_obs.get(name)
        if eager_obs is None:
            eager_obs = self._eager_obs[name] = self.metrics.histogram(
                f"quality.eagerness.{name}", _EAGERNESS_BUCKETS
            ).observe
        eager_obs(eagerness)

    # -- read-outs -----------------------------------------------------------

    def drift_scores(self) -> dict:
        """Per-class drift: mean ``d^2 / F`` over the decisions seen.

        ≈ 1.0 for *complete* gestures matching the training
        distribution; eager-truncated prefixes raise the baseline (see
        the module docstring), so read this per class against its own
        history under a comparable traffic mix — a class whose score
        moves while its neighbours hold still has drifted.
        """
        self.flush()
        return {
            name: (total / count) / self._dim
            for name, (count, total) in sorted(self._drift.items())
            if count
        }

