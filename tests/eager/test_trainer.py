"""Unit tests for the eager-recognition training pipeline (paper §4.4–4.7)."""

import pytest

from repro.eager import (
    EagerTrainingConfig,
    is_complete_set,
    train_eager_recognizer,
)
from repro.recognizer import GestureClassifier
from repro.synth import GestureGenerator, note_templates, ud_templates


class TestPipeline:
    def test_report_carries_all_artifacts(self, directions_report):
        report = directions_report
        assert report.recognizer is not None
        assert report.labelled
        assert report.partition.sets
        assert report.move_threshold > 0.0
        assert report.set_counts

    def test_training_produces_2c_sets(self, directions_report):
        counts = directions_report.set_counts
        # 8 classes -> 16 sets existed at partition time.
        assert len(counts) == 16

    def test_recognizer_class_names(self, directions_report):
        assert len(directions_report.recognizer.class_names) == 8

    def test_reuses_supplied_full_classifier(self, directions_train):
        full = GestureClassifier.train(directions_train)
        report = train_eager_recognizer(
            directions_train, full_classifier=full
        )
        assert report.recognizer.full_classifier is full

    def test_empty_training_set_raises(self):
        with pytest.raises(ValueError):
            train_eager_recognizer({})


class TestTrainingSetGuarantees:
    """§4.6's safety property: after bias + tweak, no training incomplete
    subgesture is judged unambiguous."""

    def test_no_incomplete_training_subgesture_judged_unambiguous(
        self, directions_report
    ):
        auc = directions_report.recognizer.auc
        for name, subs in directions_report.partition.sets.items():
            if is_complete_set(name):
                continue
            for sub in subs:
                assert not auc.is_unambiguous(sub.features), (
                    f"incomplete subgesture of {sub.true_class} "
                    f"(len {sub.length}) judged unambiguous"
                )

    def test_some_complete_subgestures_judged_unambiguous(
        self, directions_report
    ):
        # Otherwise the recognizer would never be eager at all.
        auc = directions_report.recognizer.auc
        unambiguous = 0
        for name, subs in directions_report.partition.sets.items():
            if not is_complete_set(name):
                continue
            unambiguous += sum(
                auc.is_unambiguous(sub.features) for sub in subs
            )
        assert unambiguous > 0


class TestConfigKnobs:
    def test_disabling_move_keeps_more_complete_examples(self, directions_train):
        with_move = train_eager_recognizer(directions_train)
        without_move = train_eager_recognizer(
            directions_train, EagerTrainingConfig(move_accidental=False)
        )
        complete_with = sum(
            len(s)
            for n, s in with_move.partition.sets.items()
            if is_complete_set(n)
        )
        complete_without = sum(
            len(s)
            for n, s in without_move.partition.sets.items()
            if is_complete_set(n)
        )
        assert without_move.moved_count == 0
        assert complete_without >= complete_with

    def test_disabling_tweak_records_zero_adjustments(self, directions_train):
        report = train_eager_recognizer(
            directions_train, EagerTrainingConfig(tweak=False)
        )
        assert report.tweak_adjustments == 0

    def test_two_class_only_mode(self, directions_train):
        report = train_eager_recognizer(
            directions_train, EagerTrainingConfig(two_class_only=True)
        )
        assert set(report.recognizer.auc.linear.class_names) <= {
            "C:any",
            "I:any",
        }

    def test_unbiased_configuration(self, directions_train):
        report = train_eager_recognizer(
            directions_train,
            EagerTrainingConfig(ambiguity_bias_ratio=1.0, tweak=False),
        )
        assert report.recognizer is not None


class TestUDScenario:
    """The figures 5-7 walk-through."""

    def test_ud_training_succeeds(self, ud_generator):
        report = train_eager_recognizer(ud_generator.generate_strokes(15))
        assert report.moved_count > 0  # figure 6: accidental completes move

    def test_ud_eager_recognition_happens_after_the_corner(self, ud_generator):
        report = train_eager_recognizer(ud_generator.generate_strokes(15))
        test = GestureGenerator(
            ud_templates(), params=ud_generator.params, seed=999
        )
        for class_name in ("U", "D"):
            for _ in range(10):
                example = test.generate(class_name)
                result = report.recognizer.recognize(example.stroke)
                if result.eager:
                    # Never before the corner: the horizontal run is
                    # genuinely ambiguous between U and D.
                    assert result.points_seen >= example.oracle_points - 1


class TestNotesScenario:
    """Figure 8: nested note gestures are not amenable to eagerness."""

    def test_notes_yield_little_or_no_eagerness(self):
        generator = GestureGenerator(note_templates(), seed=131)
        try:
            report = train_eager_recognizer(generator.generate_strokes(10))
        except ValueError:
            # Acceptable outcome: no subgesture was unambiguous at all.
            return
        test = GestureGenerator(note_templates(), seed=132)
        eager_on_prefix_classes = 0
        total = 0
        # All classes except the longest are prefixes of another class.
        for class_name in ("quarter", "eighth", "sixteenth", "thirtysecond"):
            for _ in range(10):
                total += 1
                result = report.recognizer.recognize(
                    test.generate(class_name).stroke
                )
                eager_on_prefix_classes += result.eager
        # The paper: these "would never be eagerly recognized".  Noise
        # can produce stragglers; demand near-zero.
        assert eager_on_prefix_classes / total < 0.15
