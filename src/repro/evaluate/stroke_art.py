"""ASCII renderings of eager-recognition behaviour (figure 9's key).

Figure 9 draws each test gesture with three line weights: thin for the
genuinely ambiguous part, medium for points seen after classification,
and thick where "the eager recognizer failed to be eager enough" —
points between the hand-determined unambiguity point and the actual
classification point.  This module reproduces that rendering in
characters:

* ``.`` — the ambiguous part (before the oracle corner),
* ``#`` — unambiguous but not yet classified (the eagerness shortfall),
* ``o`` — seen after the eager recognizer classified,
* ``*`` — the classification point itself.
"""

from __future__ import annotations

from ..geometry import Stroke

__all__ = ["render_eager_stroke", "render_eager_examples"]


def render_eager_stroke(
    stroke: Stroke,
    points_seen: int,
    oracle_points: int | None = None,
    cols: int = 36,
    rows: int = 12,
) -> str:
    """One gesture, drawn with figure-9 line weights."""
    if len(stroke) == 0:
        return ""
    box = stroke.bounding_box()
    width = max(box.width, 1e-9)
    height = max(box.height, 1e-9)
    grid = [[" "] * cols for _ in range(rows)]
    for index, point in enumerate(stroke, start=1):
        col = int((point.x - box.min_x) / width * (cols - 1))
        row = int((point.y - box.min_y) / height * (rows - 1))
        if index == points_seen:
            ch = "*"
        elif index > points_seen:
            ch = "o"
        elif oracle_points is not None and index > oracle_points:
            ch = "#"
        else:
            ch = "."
        # The classification point wins over everything else.
        if grid[row][col] != "*":
            grid[row][col] = ch
    return "\n".join("".join(line).rstrip() for line in grid)


def render_eager_examples(
    examples: list[tuple[str, Stroke, int, int | None]],
    cols: int = 30,
    rows: int = 10,
) -> str:
    """Render several (label, stroke, points_seen, oracle) side by side."""
    blocks = []
    for label, stroke, points_seen, oracle in examples:
        art = render_eager_stroke(stroke, points_seen, oracle, cols, rows)
        lines = art.split("\n")
        lines += [""] * (rows - len(lines))
        caption = (
            f"{label} ({oracle},{points_seen}/{len(stroke)})"
            if oracle is not None
            else f"{label} ({points_seen}/{len(stroke)})"
        )
        blocks.append([caption.ljust(cols)] + [l.ljust(cols) for l in lines])
    out_lines = []
    for row_index in range(rows + 1):
        out_lines.append("  ".join(block[row_index] for block in blocks).rstrip())
    return "\n".join(out_lines)
