"""Planar geometry substrate: points, strokes, boxes, transforms.

Everything above this package — features, recognizers, GRANDMA, GDP —
speaks in terms of :class:`~repro.geometry.Point` and
:class:`~repro.geometry.Stroke`.
"""

from .bbox import BoundingBox
from .point import Point, angle_between, distance, midpoint
from .polyline import (
    find_corner_indices,
    point_segment_distance,
    polygon_contains,
    stroke_hits_point,
    stroke_self_closes,
)
from .stroke import Stroke
from .transform import Affine

__all__ = [
    "Affine",
    "BoundingBox",
    "Point",
    "Stroke",
    "angle_between",
    "distance",
    "find_corner_indices",
    "midpoint",
    "point_segment_distance",
    "polygon_contains",
    "stroke_hits_point",
    "stroke_self_closes",
]
