"""A chain-code ("zoning") baseline in the spirit of hand-coded recognizers.

Several systems the paper cites (Buxton's SSSP tools, Coleman's editor,
Minsky's screen) shipped hand-coded recognizers built on direction
sequences.  This baseline mechanizes that family: quantize the stroke
into an 8-direction chain code, summarize it as a direction histogram
plus the first and last dominant directions, and classify by the nearest
per-class mean under Euclidean distance.

It is deliberately cruder than the Rubine classifier — the benchmark
shows where the statistical method pulls ahead (classes differing in
curvature or aspect rather than direction mix).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from ..geometry import Stroke

__all__ = ["ChainCodeClassifier"]

_NUM_DIRECTIONS = 8


def _chain_code(stroke: Stroke, min_segment: float = 2.0) -> list[int]:
    """The stroke as a sequence of 8-way quantized directions."""
    codes: list[int] = []
    points = list(stroke.deduplicated())
    for a, b in zip(points, points[1:]):
        dx, dy = b.x - a.x, b.y - a.y
        if math.hypot(dx, dy) < min_segment:
            continue
        angle = math.atan2(dy, dx)
        sector = int(round(angle / (2 * math.pi / _NUM_DIRECTIONS)))
        codes.append(sector % _NUM_DIRECTIONS)
    return codes


def _features(stroke: Stroke) -> np.ndarray:
    """Histogram over directions + one-hot first and last directions."""
    codes = _chain_code(stroke)
    histogram = np.zeros(_NUM_DIRECTIONS)
    first = np.zeros(_NUM_DIRECTIONS)
    last = np.zeros(_NUM_DIRECTIONS)
    if codes:
        for code in codes:
            histogram[code] += 1.0
        histogram /= len(codes)
        first[codes[0]] = 1.0
        last[codes[-1]] = 1.0
    return np.concatenate([histogram, first, last])


class ChainCodeClassifier:
    """Nearest-mean classification over chain-code features."""

    def __init__(self, class_names: list[str], means: np.ndarray):
        if len(class_names) != means.shape[0]:
            raise ValueError("one mean per class required")
        self.class_names = class_names
        self.means = means

    @classmethod
    def train(
        cls, examples_by_class: Mapping[str, Sequence[Stroke]]
    ) -> "ChainCodeClassifier":
        names: list[str] = []
        means: list[np.ndarray] = []
        for class_name, strokes in examples_by_class.items():
            strokes = list(strokes)
            if not strokes:
                raise ValueError(f"class {class_name!r} has no examples")
            names.append(class_name)
            means.append(
                np.mean([_features(stroke) for stroke in strokes], axis=0)
            )
        return cls(names, np.vstack(means))

    def classify(self, stroke: Stroke) -> str:
        feature = _features(stroke)
        distances = np.linalg.norm(self.means - feature, axis=1)
        return self.class_names[int(np.argmin(distances))]
