"""Replaying strokes as event streams.

The evaluation harness and the GDP examples drive GRANDMA interfaces by
"performing" gestures: a stroke becomes a press, a run of moves, an
optional motionless dwell (to trigger the 200 ms timeout transition), a
drag path (the manipulation phase), and a release.  This module builds
those streams.
"""

from __future__ import annotations

from ..geometry import Point, Stroke
from .event import EventKind, MouseButton, MouseEvent

__all__ = ["stroke_events", "perform_gesture"]


def stroke_events(
    stroke: Stroke,
    button: MouseButton = MouseButton.LEFT,
    t0: float | None = None,
) -> list[MouseEvent]:
    """Press at the first point, move through the rest, release at the end.

    The release reuses the final point's position and time: physically the
    button comes up where the mouse last was.
    """
    pts = list(stroke)
    if not pts:
        raise ValueError("cannot replay an empty stroke")
    shift = 0.0 if t0 is None else t0 - pts[0].t
    events = [
        MouseEvent(EventKind.PRESS, pts[0].x, pts[0].y, pts[0].t + shift, button)
    ]
    events.extend(
        MouseEvent(EventKind.MOVE, p.x, p.y, p.t + shift, button) for p in pts[1:]
    )
    last = pts[-1]
    events.append(
        MouseEvent(EventKind.RELEASE, last.x, last.y, last.t + shift, button)
    )
    return events


def perform_gesture(
    gesture: Stroke,
    dwell: float = 0.0,
    manipulation_path: Stroke | None = None,
    button: MouseButton = MouseButton.LEFT,
    t0: float | None = None,
) -> list[MouseEvent]:
    """A full two-phase performance of a gesture.

    Args:
        gesture: the collection-phase stroke.
        dwell: seconds to hold the mouse still after the gesture.  Use a
            value over the handler's timeout (e.g. 0.25 s against the
            paper's 200 ms) to force the timeout phase transition.
        manipulation_path: optional positions visited during the
            manipulation phase, after the dwell.  Its timestamps are
            reinterpreted as offsets from the end of the dwell.
        button: mouse button for the whole interaction.
        t0: start time for the press (defaults to the stroke's own).

    Returns:
        press, moves, [dwell gap], [manipulation moves], release.
    """
    pts = list(gesture)
    if not pts:
        raise ValueError("cannot perform an empty gesture")
    shift = 0.0 if t0 is None else t0 - pts[0].t
    events = [
        MouseEvent(EventKind.PRESS, pts[0].x, pts[0].y, pts[0].t + shift, button)
    ]
    events.extend(
        MouseEvent(EventKind.MOVE, p.x, p.y, p.t + shift, button) for p in pts[1:]
    )
    cursor = Point(pts[-1].x, pts[-1].y, pts[-1].t + shift)
    clock = cursor.t + dwell
    if manipulation_path is not None and len(manipulation_path) > 0:
        base = manipulation_path[0].t
        for p in manipulation_path:
            clock_at = clock + (p.t - base)
            events.append(MouseEvent(EventKind.MOVE, p.x, p.y, clock_at, button))
            cursor = Point(p.x, p.y, clock_at)
        clock = cursor.t
    events.append(MouseEvent(EventKind.RELEASE, cursor.x, cursor.y, clock, button))
    return events
