"""The modal composer through the real serving layer.

The tentpole invariants, asserted behaviorally for every modal family:

* batched and sequential runs produce identical decision streams AND
  identical modal event streams;
* attaching an observer changes neither;
* attaching the composer itself changes no decision (the sink is
  provably passive: same decision log with and without it).
"""

from __future__ import annotations

import pytest

from repro.modal import (
    MODALITIES,
    ModalComposer,
    ModalityConfig,
    generate_pair_workload,
    modality_of,
    pair_base,
    run_modal,
)
from repro.obs import PoolObserver, Tracer
from repro.serve import generate_workload, run_load
from repro.synth import modal_templates, pinch_templates
from repro.synth.modal import swipe_templates


def _workload(templates):
    return generate_workload(
        templates, clients=8, gestures_per_client=3, seed=17
    )


@pytest.fixture(scope="module")
def families(modal_recognizer, swipes_recognizer, pinch_recognizer):
    return {
        "modal": (modal_recognizer, _workload(modal_templates())),
        "swipes": (swipes_recognizer, _workload(swipe_templates())),
        "pinch": (pinch_recognizer, generate_pair_workload(clients=8, seed=17)),
    }


@pytest.mark.parametrize("family", ["modal", "swipes", "pinch"])
def test_batched_equals_sequential_decisions_and_events(family, families):
    recognizer, workload = families[family]
    batched, bc = run_modal(recognizer, workload, batched=True)
    sequential, sc = run_modal(recognizer, workload, batched=False)
    assert batched.decision_log == sequential.decision_log
    assert bc.events == sc.events
    assert bc.events  # the family actually produced modality traffic


@pytest.mark.parametrize("family", ["modal", "swipes", "pinch"])
def test_observer_never_changes_decisions_or_events(family, families):
    recognizer, workload = families[family]
    bare, bare_composer = run_modal(recognizer, workload)
    observed, observed_composer = run_modal(
        recognizer, workload, observer=PoolObserver(tracer=Tracer())
    )
    assert bare.decision_log == observed.decision_log
    assert bare_composer.events == observed_composer.events


@pytest.mark.parametrize("family", ["modal", "swipes", "pinch"])
def test_sink_never_changes_decisions(family, families):
    recognizer, workload = families[family]
    with_sink, composer = run_modal(recognizer, workload)
    max_sessions = 2 * len(workload) + 1  # what run_modal passes
    without = run_load(
        recognizer, workload, batched=True, collect=True,
        max_sessions=max_sessions,
    )
    assert with_sink.decision_log == without.decision_log
    assert composer.events


def test_modal_family_covers_single_finger_modalities(families):
    recognizer, workload = families["modal"]
    _, composer = run_modal(recognizer, workload)
    summary = composer.summary()
    for modality in ("tap", "hold", "scroll", "swipe"):
        assert modality in summary, summary
    # Manipulations that begin must end; holds pair exactly.
    assert summary["hold"].get("begin", 0) == summary["hold"].get("end", 0)
    assert summary["scroll"].get("begin", 0) == summary["scroll"].get("end", 0)
    assert summary["scroll"].get("update", 0) > 0


def test_pair_family_covers_pinch_and_rotate(families):
    recognizer, workload = families["pinch"]
    _, composer = run_modal(recognizer, workload)
    summary = composer.summary()
    assert set(summary) >= {"pinch", "rotate"}
    kinds = {event.data.get("pair_kind") for event in composer.events}
    assert {"pinch_in", "pinch_out", "rotate"} <= kinds
    # Pair events are keyed on the base, not a finger session.
    for event in composer.events:
        assert pair_base(event.key) is None


def test_detection_latencies_are_positive_and_grouped(families):
    recognizer, workload = families["modal"]
    _, composer = run_modal(recognizer, workload)
    latencies = composer.detection_latencies()
    assert set(latencies) <= set(MODALITIES)
    for modality, values in latencies.items():
        assert values, modality
        assert all(v >= 0.0 for v in values), modality
    # Hold begins exactly at the configured duration, never earlier.
    config = ModalityConfig()
    assert min(latencies["hold"]) >= config.hold_duration


def test_events_are_deterministic_across_runs(families):
    recognizer, workload = families["modal"]
    _, first = run_modal(recognizer, workload)
    _, second = run_modal(recognizer, workload)
    assert first.events == second.events


def test_double_tap_fires_for_consecutive_client_taps(modal_recognizer):
    # Two tap strokes from one client, back to back within the gap.
    workload = generate_workload(
        modal_templates(), clients=8, gestures_per_client=3, seed=17
    )
    _, composer = run_modal(modal_recognizer, workload)
    taps = [e for e in composer.events if e.modality == "tap"]
    assert taps
    for event in taps:
        assert event.data["count"] in (1, 2)
        assert "scope" in event.data


def test_modality_of_routes_only_exact_modal_classes():
    assert modality_of("tap") == "tap"
    assert modality_of("swipe_ne") == "swipe"
    assert modality_of("rotate_a") == "rotate"
    # GDP's rotate_scale must never alias into the rotate modality.
    assert modality_of("rotate_scale") == "stroke"
    assert modality_of("line") == "stroke"


def test_composer_survives_ops_for_unknown_keys():
    composer = ModalComposer()
    # Moves/ups for keys with no down (e.g. after an evict) are ignored.
    composer.ops(0.0, [("move", "ghost", 1.0, 2.0), ("up", "ghost", 1.0, 2.0)])
    composer.decisions([], 0.0)
    assert composer.events == []
