"""The modal composer: ops + decisions in, modality events out.

:class:`ModalComposer` is a *sink*: a passive consumer of the serving
layer's two streams, the delivered op stream and the pool's decision
stream.  It never calls into the pool, holds no pool references, and
produces nothing the pool reads — which is the "observers provably
never change decisions" property stated as architecture: the pool's
output is computed before the composer ever sees it.  The compose
tests still assert it behaviorally (decision logs with and without a
composer attached are identical, batched and sequential).

:func:`run_modal` drives a workload through
:func:`repro.serve.run_load` with a composer attached and returns both
the load result and the composer, so benchmarks and tests measure
serving throughput and modality detection latency from one run.

:func:`generate_pair_workload` builds two-finger traffic from the
``pinch`` synth family: each gesture is a synchronized pair of
sessions keyed ``<base>:a`` / ``<base>:b`` — two ordinary strokes to
the pool and cluster, one manipulation to the composer.
"""

from __future__ import annotations

from ..synth import GestureGenerator, pinch_templates
from .config import ModalityConfig
from .detectors import TapTracker
from .semantics import ModalEvent, PairSemantics, StrokeSemantics

__all__ = [
    "ModalComposer",
    "generate_pair_workload",
    "pair_base",
    "run_modal",
]

_PAIR_SUFFIXES = (":a", ":b")


def pair_base(key: str) -> str | None:
    """The pair a session key belongs to, or None for single strokes.

    The convention is the ``pinch`` family's: two-finger gestures name
    their sessions ``<base>:a`` and ``<base>:b``.
    """
    for suffix in _PAIR_SUFFIXES:
        if key.endswith(suffix):
            return key[: -len(suffix)]
    return None


def _default_tap_scope(key: str) -> str:
    """The tap-chain scope of a session key: one chain per client.

    Loadgen keys are ``c{client}g{gesture}`` (and the traffic journal
    derives the user the same way), so consecutive taps of one client
    pair into double-taps while different clients never interfere.
    Keys without the pattern fall back to one chain per key.
    """
    base, sep, _ = key.rpartition("g")
    return base if sep else key


class ModalComposer:
    """Compose per-key op/decision streams into modality events.

    Implements the :func:`repro.serve.run_load` sink protocol —
    ``ops(t, tick_ops)`` and ``decisions(decided, t)`` per tick — and
    can equally be fed by hand for unit tests.  All state is keyed on
    virtual time; two identical input streams produce identical
    ``events`` lists.
    """

    def __init__(
        self,
        config: ModalityConfig | None = None,
        viewport: tuple[float, float] | None = None,
        tap_scope=None,
    ):
        self.config = config or ModalityConfig()
        self.viewport = viewport
        self.events: list[ModalEvent] = []
        self._strokes: dict[str, StrokeSemantics] = {}
        self._pairs: dict[str, PairSemantics] = {}
        self._taps: dict[str, TapTracker] = {}
        self._tap_scope = tap_scope or _default_tap_scope
        # Down time per event key (stroke keys and pair bases), kept
        # after close so detection latency can be measured post-run.
        self._down_t: dict[str, float] = {}

    # -- sink protocol -------------------------------------------------------

    def ops(self, t: float, tick_ops) -> None:
        """One tick's delivered operations (post-fault, pool order)."""
        for op in tick_ops:
            name = op[0]
            if name == "down":
                self._down(op[1], op[2], op[3], t)
            elif name == "move":
                self._move(op[1], op[2], op[3], t)
            elif name == "up":
                state = self._strokes.get(op[1])
                if state is not None:
                    state.on_up(op[2], op[3], t)
            # kill/release/pin/swap carry no kinematics; decisions (or
            # their absence) close the affected strokes.

    def decisions(self, decided, t: float) -> None:
        """One tick's pool decisions, plus the tick boundary itself."""
        for d in decided:
            state = self._strokes.get(d.key)
            if state is None:
                continue
            was_closed = state.closed
            self.events.extend(
                state.on_decision(
                    d.kind, getattr(d, "reason", None), d.class_name, d.t
                )
            )
            if state.closed and not was_closed:
                self._resolve_tap(state, d.t)
                self._close_pair(state.key, d.t)
            if d.kind in ("commit", "evict", "error"):
                self._strokes.pop(d.key, None)
        # The tick boundary confirms pending hold promotions.
        for state in self._strokes.values():
            self.events.extend(state.on_tick(t))

    # -- per-op routing ------------------------------------------------------

    def _down(self, key: str, x: float, y: float, t: float) -> None:
        state = StrokeSemantics(key, x, y, t, self.config, self.viewport)
        self._strokes[key] = state
        self._down_t[key] = t
        base = pair_base(key)
        if base is not None:
            other = self._other_finger(base, key)
            if other is not None and base not in self._pairs:
                a, b = (other, state) if other.key.endswith(":a") else (state, other)
                self._pairs[base] = PairSemantics(base, self.config, a, b)
                self._down_t[base] = t

    def _move(self, key: str, x: float, y: float, t: float) -> None:
        state = self._strokes.get(key)
        if state is None:
            return
        self.events.extend(state.on_move(x, y, t))
        base = pair_base(key)
        if base is not None:
            pair = self._pairs.get(base)
            if pair is not None:
                self.events.extend(pair.on_pair_move(t))

    def _other_finger(self, base: str, key: str) -> StrokeSemantics | None:
        for suffix in _PAIR_SUFFIXES:
            other = base + suffix
            if other != key and other in self._strokes:
                state = self._strokes[other]
                if not state.closed:
                    return state
        return None

    def _close_pair(self, key: str, t: float) -> None:
        base = pair_base(key)
        if base is None:
            return
        pair = self._pairs.get(base)
        if pair is not None:
            self.events.extend(pair.on_close(t))
            self._pairs.pop(base, None)

    def _resolve_tap(self, state: StrokeSemantics, t: float) -> None:
        if state.modality != "tap":
            return
        scope = self._tap_scope(state.key)
        tracker = self._taps.setdefault(scope, TapTracker(self.config))
        fired = tracker.stroke_end(
            state.last[0], state.last[1],
            state.down[2], t, state.hold.max_drift,
        )
        if fired is not None:
            self.events.append(
                ModalEvent(
                    key=state.key,
                    modality="tap",
                    kind="fire",
                    t=t,
                    class_name=state.class_name,
                    data={
                        "count": 2 if fired == "double_tap" else 1,
                        "scope": scope,
                    },
                )
            )

    # -- reporting -----------------------------------------------------------

    def summary(self) -> dict:
        """Event counts by modality and kind (sorted, JSON-friendly)."""
        counts: dict[str, dict[str, int]] = {}
        for event in self.events:
            cell = counts.setdefault(event.modality, {})
            cell[event.kind] = cell.get(event.kind, 0) + 1
        return {
            modality: dict(sorted(kinds.items()))
            for modality, kinds in sorted(counts.items())
        }

    def detection_latencies(self) -> dict[str, list[float]]:
        """Virtual seconds from each stroke's down to its modality's
        first event (``begin`` or ``fire``), grouped by modality.

        For pairs the clock starts when the second finger lands (the
        manipulation cannot exist earlier).
        """
        seen: set[str] = set()
        latencies: dict[str, list[float]] = {}
        for event in self.events:
            if event.kind not in ("begin", "fire") or event.key in seen:
                continue
            seen.add(event.key)
            t0 = self._down_t.get(event.key)
            if t0 is not None:
                latencies.setdefault(event.modality, []).append(event.t - t0)
        return latencies


def run_modal(
    recognizer,
    workload,
    *,
    config: ModalityConfig | None = None,
    viewport: tuple[float, float] | None = None,
    batched: bool = True,
    collect: bool = True,
    observer=None,
    timeout: float | None = None,
):
    """Drive a workload with a composer attached; (LoadResult, composer)."""
    from ..interaction import DEFAULT_TIMEOUT
    from ..serve import run_load

    composer = ModalComposer(config=config, viewport=viewport)
    result = run_load(
        recognizer,
        workload,
        batched=batched,
        collect=collect,
        observer=observer,
        sink=composer,
        timeout=DEFAULT_TIMEOUT if timeout is None else timeout,
        # Two-finger workloads run two concurrent sessions per client.
        max_sessions=2 * len(workload) + 1,
    )
    return result, composer


def generate_pair_workload(
    clients: int = 16,
    pairs_per_client: int = 2,
    seed: int = 13,
    templates=None,
) -> list[list[tuple]]:
    """Two-finger traffic: synchronized ``:a``/``:b`` session pairs.

    Gestures cycle pinch → spread → rotate per client.  A spread is the
    pinch pair traversed outward — the finger *paths* are the mirrored
    pinch classes (Rubine's features are translation-invariant), while
    the pair's growing gap makes the composer name it ``pinch_out``.
    Both fingers go down on the same tick and move in lockstep; the
    shorter finger path idles while the longer one finishes, then both
    release together.
    """
    templates = templates if templates is not None else pinch_templates()
    generator = GestureGenerator(templates, seed=seed)
    kinds = ("pinch", "spread", "rotate")
    workload: list[list[tuple]] = []
    for ci in range(clients):
        ops: list[tuple] = [("idle",)] * (ci % 5)
        for gi in range(pairs_per_client):
            kind = kinds[(ci + gi) % len(kinds)]
            if kind == "spread":
                a = list(reversed(list(generator.generate("pinch_a").stroke)))
                b = list(reversed(list(generator.generate("pinch_b").stroke)))
            else:
                a = list(generator.generate(f"{kind}_a").stroke)
                b = list(generator.generate(f"{kind}_b").stroke)
            base = f"c{ci}p{gi}"
            ka, kb = base + ":a", base + ":b"
            ops.append(("down", ka, a[0].x, a[0].y))
            ops.append(("down", kb, b[0].x, b[0].y))
            steps = max(len(a), len(b))
            for i in range(1, steps):
                pa = a[min(i, len(a) - 1)]
                pb = b[min(i, len(b) - 1)]
                ops.append(("move", ka, pa.x, pa.y))
                ops.append(("move", kb, pb.x, pb.y))
            ops.append(("up", ka, a[-1].x, a[-1].y))
            ops.append(("up", kb, b[-1].x, b[-1].y))
            ops.append(("idle",))
        workload.append(ops)
    return workload
