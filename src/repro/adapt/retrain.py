"""Per-user incremental retraining on top of the staged trainer.

:class:`AdaptPipeline` folds a user's harvested examples into the base
model's training set and produces a *candidate* recognizer, reusing the
training pipeline's stage functions and content-addressed
:class:`~repro.train.StageCache` so the result is **bit-identical** to
batch-training on the combined example set — the same claim the staged
trainer makes against the in-memory trainer, extended per user.

What makes the retrain *incremental* rather than a disguised full run:

* the **base manifest** is recovered from the base model's registry
  lineage (its manifest stage key), so the base dataset is read from
  the cache, not regenerated;
* **prefix feature vectors** — the dominant training cost, one
  incremental sweep per example enumerating every subgesture — are
  cached per example, keyed by the points' content.  The base examples'
  prefixes are computed once *ever*; every user's retrain reuses them
  and computes prefixes only for that user's handful of new examples.
  (The prefix→label step must re-run per candidate because labelling
  consults the candidate's own full classifier, but it is a thin layer
  of dot products over the cached vectors.)
* the classifier/AUC/package stages run through the standard stage
  keys, so re-running the same fold is a pure cache replay, and a
  retrain killed half-way resumes exactly like ``train --resume``.

Per-user state (the fold of harvested examples) persists under
``state_dir``, named by a hash of the user id (ids may contain ``:`` or
``/`` — they are session-key prefixes), written atomically, and keyed to
the base version so a rebased user re-folds cleanly.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..eager import EagerTrainingConfig
from ..fsio import atomic_write_text
from ..geometry import Point, Stroke
from ..hashing import canonical_json, content_hash, short_hash
from ..train import TrainJobSpec
from ..train import stages as train_stages
from ..train.cache import StageCache, write_checkpoint
from .harvest import harvest_hash

__all__ = ["AdaptPipeline", "AdaptRunResult"]


@dataclass
class AdaptRunResult:
    """Everything one per-user retrain produced."""

    user: str
    candidate_name: str
    model: dict  # EagerRecognizer.to_dict()
    model_hash: str
    lineage: dict
    stages_run: list[str] = field(default_factory=list)
    stages_cached: list[str] = field(default_factory=list)
    user_example_count: int = 0
    base_example_count: int = 0
    class_count: int = 0
    new_classes: list[str] = field(default_factory=list)
    prefixes_computed: int = 0
    prefixes_cached: int = 0
    wall_time_s: float = 0.0
    published: dict | None = None

    @property
    def version(self) -> str:
        """The registry version this candidate has (or would get)."""
        return self.model_hash[:12]


def _sanitize_user(user: str) -> str:
    """A registry-directory-safe candidate-name suffix for a user id.

    User ids are session-key prefixes and may contain ``:`` / ``/``;
    when sanitizing changes the id, a short hash of the original is
    appended so two ids that sanitize alike cannot collide.
    """
    safe = re.sub(r"[^A-Za-z0-9_.-]", "-", user) or "user"
    if safe != user:
        safe = f"{safe}-{short_hash({'user': user}, 6)}"
    return safe


class AdaptPipeline:
    """Fold harvested examples into per-user candidate models.

    Args:
        registry: a :class:`~repro.serve.ModelRegistry` or its root path;
            the base model is loaded from here and candidates publish
            back into it.
        base: the base model as ``name`` or ``name@version``.
        cache_dir: stage-cache root shared with ``repro-gestures train``
            — a warm base train makes the first adapt mostly cache hits;
            ``None`` keeps everything in memory (a full, cold retrain).
        state_dir: where per-user fold state persists; ``None`` keeps
            folds in memory for this pipeline's lifetime only.
        jobs: process fan-out for the features/classifier stages.
        metrics: optional duck-typed observer
            (``counter(name).inc(n)``).
    """

    def __init__(
        self,
        registry,
        base: str,
        *,
        cache_dir: str | Path | None = None,
        state_dir: str | Path | None = None,
        jobs: int = 1,
        metrics=None,
    ):
        if not hasattr(registry, "load"):
            from ..serve.registry import ModelRegistry

            registry = ModelRegistry(registry)
        self.registry = registry
        name, _, version = base.partition("@")
        self.base_name = name
        self.base_version = version or registry.latest_version(name)
        self.cache = StageCache(cache_dir)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.jobs = max(1, int(jobs))
        self.metrics = metrics
        self._mem_state: dict[str, dict] = {}
        metadata = registry.metadata_of(self.base_name, self.base_version)
        self._base_lineage = metadata.get("lineage") or {}

    def _count(self, name: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(n)

    # -- per-user fold state -------------------------------------------------

    def state_path(self, user: str) -> Path | None:
        if self.state_dir is None:
            return None
        return self.state_dir / f"{short_hash({'user': user})}.json"

    def load_state(self, user: str) -> dict:
        """The user's fold: harvested examples absorbed so far.

        A state folded against a different base version is discarded —
        the candidate lineage must trace to the current base, and a
        re-fold of the same harvest is cheap and deterministic.
        """
        state = None
        path = self.state_path(user)
        if path is not None and path.exists():
            import json

            state = json.loads(path.read_text())
        elif path is None:
            state = self._mem_state.get(user)
        base = {"name": self.base_name, "version": self.base_version}
        if state is None or state.get("base") != base:
            state = {"user": user, "base": base, "examples": [], "folded": []}
        return state

    def fold(self, user: str, examples: list) -> dict:
        """Absorb new harvested examples into the user's fold state.

        Idempotent: an example already folded (by content hash) is
        skipped, so re-harvesting an ever-growing journal only appends
        the genuinely new tail, in harvest order.
        """
        state = self.load_state(user)
        seen = set(state["folded"])
        for example in examples:
            h = short_hash(example)
            if h in seen:
                continue
            seen.add(h)
            state["folded"].append(h)
            state["examples"].append(example)
            self._count("adapt.examples_folded")
        path = self.state_path(user)
        if path is not None:
            atomic_write_text(path, canonical_json(state))
        else:
            self._mem_state[user] = state
        return state

    # -- the base training set -----------------------------------------------

    def _base_spec(self) -> TrainJobSpec:
        identity = self._base_lineage.get("spec")
        if not identity:
            raise ValueError(
                f"{self.base_name}@{self.base_version} has no training "
                "lineage; cannot adapt a model whose dataset is unknown"
            )
        return TrainJobSpec(
            family=identity.get("family"),
            dataset=identity.get("dataset"),
            examples=identity.get("examples") or 15,
            seed=identity.get("seed") if identity.get("seed") is not None else 7,
            config=dict(identity.get("config") or {}),
        )

    def _base_manifest(self) -> tuple[dict, str]:
        """The base model's frozen training data, cache-first.

        The manifest stage key comes from the base's lineage, so a cache
        warmed by the base train serves it without touching the original
        dataset; on a cold cache the manifest is rebuilt from the
        lineage spec (and cached for every later user).
        """
        key = (self._base_lineage.get("stages") or {}).get("manifest")
        if key:
            manifest = self.cache.get(key)
            if manifest is not None:
                return manifest, content_hash(manifest)
        spec = self._base_spec()
        if not key:
            key = train_stages.stage_key(
                "manifest", {}, train_stages.manifest_params(spec)
            )
            manifest = self.cache.get(key)
            if manifest is not None:
                return manifest, content_hash(manifest)
        manifest = self.cache.put(key, train_stages.build_manifest(spec))
        return manifest, content_hash(manifest)

    # -- the retrain ---------------------------------------------------------

    def job_key(self, user: str, state: dict) -> str:
        """Checkpoint name of one (base, user, fold) retrain."""
        return short_hash(
            {
                "adapt": 1,
                "base": [self.base_name, self.base_version],
                "user": user,
                "harvest": harvest_hash(state["examples"]),
            }
        )

    def run(self, user: str) -> AdaptRunResult:
        """Retrain the user's candidate from the current fold state.

        Deterministic and resumable: the same base version and the same
        folded examples produce the same combined manifest, the same
        stage keys, and a bit-identical candidate model hash on any
        host, at any jobs count, across any number of kills.
        """
        started = time.perf_counter()
        state = self.load_state(user)
        user_examples = state["examples"]
        if not user_examples:
            raise ValueError(f"nothing harvested for user {user!r}")
        config = EagerTrainingConfig(
            **(self._base_lineage.get("spec", {}).get("config") or {})
        )
        base_manifest, base_hash = self._base_manifest()

        result = AdaptRunResult(
            user=user,
            candidate_name=f"{self.base_name}--{_sanitize_user(user)}",
            model={},
            model_hash="",
            lineage={},
        )
        completed: dict[str, str] = {}
        job_key = self.job_key(user, state)

        def run_stage(name: str, key: str, compute):
            payload = self.cache.get(key)
            if payload is None:
                payload = self.cache.put(key, compute())
                result.stages_run.append(name)
                self._count("adapt.stages_run")
            else:
                result.stages_cached.append(name)
                self._count("adapt.stages_cached")
            completed[name] = key
            if self.cache_dir is not None:
                write_checkpoint(
                    self.cache_dir,
                    job_key,
                    {
                        "adapt": {"user": user, "base": state["base"]},
                        "stages": dict(completed),
                    },
                )
            return payload

        # 1. manifest: base examples + the user's, class-major, new
        # classes appended in first-seen order — the exact layout
        # build_manifest would freeze for the combined dataset.
        manifest_key = train_stages.stage_key(
            "manifest",
            {"base": base_hash},
            {
                "source": "repro.adapt",
                "examples": harvest_hash(user_examples),
            },
        )
        manifest = run_stage(
            "manifest",
            manifest_key,
            lambda: _combined_manifest(base_manifest, user_examples),
        )
        manifest_hash = content_hash(manifest)

        # 2–3. features and classifier: the standard stages on the
        # combined manifest, under the standard content-derived keys.
        features_key = train_stages.stage_key(
            "features", {"manifest": manifest_hash}, {}
        )
        features = run_stage(
            "features",
            features_key,
            lambda: train_stages.run_features(manifest, self.jobs),
        )
        features_hash = content_hash(features)

        classifier_key = train_stages.stage_key(
            "classifier", {"features": features_hash}, {}
        )
        classifier = run_stage(
            "classifier",
            classifier_key,
            lambda: train_stages.run_classifier(features, self.jobs),
        )
        classifier_hash = content_hash(classifier)

        # 4. subgestures: per-example prefix vectors come from the
        # adapt_prefixes cache (computed once ever per stroke); only the
        # labelling — predictions of *this* candidate's classifier over
        # those vectors — runs per retrain.  The payload is bit-identical
        # to run_subgestures' and is stored under its standard key, so
        # adapt and batch training share the cache both ways.
        subgestures_key = train_stages.stage_key(
            "subgestures",
            {"manifest": manifest_hash, "classifier": classifier_hash},
            {"min_prefix_points": config.min_prefix_points},
        )
        subgestures = run_stage(
            "subgestures",
            subgestures_key,
            lambda: self._label_manifest(
                manifest, classifier, config.min_prefix_points, result
            ),
        )
        subgestures_hash = content_hash(subgestures)

        # 5–6. AUC and package: the training pipeline's stages, verbatim.
        auc_key = train_stages.stage_key(
            "auc",
            {"subgestures": subgestures_hash, "classifier": classifier_hash},
            {
                name: getattr(config, name)
                for name in train_stages.AUC_PARAM_FIELDS
            },
        )
        auc = run_stage(
            "auc",
            auc_key,
            lambda: train_stages.run_auc(subgestures, classifier, config),
        )
        auc_hash = content_hash(auc)

        package_key = train_stages.stage_key(
            "package",
            {"classifier": classifier_hash, "auc": auc_hash},
            {"min_points": config.min_prefix_points},
        )
        package = run_stage(
            "package",
            package_key,
            lambda: train_stages.run_package(
                classifier, auc, config.min_prefix_points
            ),
        )

        result.model = package["model"]
        result.model_hash = package["model_hash"]
        result.user_example_count = len(user_examples)
        result.base_example_count = len(base_manifest["examples"])
        result.class_count = len(manifest["classes"])
        result.new_classes = [
            name
            for name in manifest["classes"]
            if name not in base_manifest["classes"]
        ]
        result.wall_time_s = time.perf_counter() - started
        result.lineage = {
            "base": {"name": self.base_name, "version": self.base_version},
            "user": user,
            "harvest": harvest_hash(user_examples),
            "examples": len(user_examples),
            "stages": dict(completed),
            "model_hash": result.model_hash,
            "wall_time_s": round(result.wall_time_s, 6),
        }
        self._count("adapt.candidates")
        return result

    def publish(self, result: AdaptRunResult):
        """Publish a candidate into the registry with its adapt lineage."""
        from ..eager import EagerRecognizer

        published = self.registry.publish(
            result.candidate_name,
            EagerRecognizer.from_dict(result.model),
            metadata={"source": "repro.adapt", "lineage": result.lineage},
        )
        result.published = {
            "name": published.name,
            "version": published.version,
            "path": str(published.path),
        }
        self._count("adapt.published")
        return published

    # -- labelling over cached prefixes --------------------------------------

    def _prefix_payload(
        self, points: list, min_points: int, result: AdaptRunResult
    ) -> dict:
        """Prefix feature vectors of one stroke, computed once ever.

        Keyed by the points' content alone — prefix enumeration does not
        depend on any classifier — so the base examples' sweeps (the
        bulk of training compute) are shared across every user and every
        retrain round.
        """
        key = short_hash(
            {
                "stage": "adapt_prefixes",
                "v": 1,
                "points": content_hash(points),
                "min_points": min_points,
            }
        )
        payload = self.cache.get(key)
        if payload is None:
            from ..eager import prefix_feature_vectors

            prefixes = prefix_feature_vectors(
                Stroke(Point(x, y, t) for x, y, t in points), min_points
            )
            payload = self.cache.put(
                key,
                {
                    "lengths": list(prefixes.lengths),
                    "vectors": [v.tolist() for v in prefixes.vectors],
                },
            )
            result.prefixes_computed += 1
            self._count("adapt.prefixes_computed")
        else:
            result.prefixes_cached += 1
            self._count("adapt.prefixes_cached")
        return payload

    def _label_manifest(
        self,
        manifest: dict,
        classifier_payload: dict,
        min_points: int,
        result: AdaptRunResult,
    ) -> dict:
        """The subgestures stage, from cached prefixes.

        Mirrors :func:`~repro.eager.label_example` exactly — same
        prediction calls, same largest-down completeness scan — over the
        cached vectors, producing the byte-identical payload
        :func:`~repro.train.stages.run_subgestures` would.
        """
        from ..recognizer import GestureClassifier

        classifier = GestureClassifier.from_dict(classifier_payload)
        examples = []
        for i, ex in enumerate(manifest["examples"]):
            payload = self._prefix_payload(ex["points"], min_points, result)
            vectors = payload["vectors"]
            predictions = [
                classifier.classify_features(np.asarray(v, dtype=float))
                for v in vectors
            ]
            complete = [False] * len(predictions)
            all_correct_above = True
            for idx in range(len(predictions) - 1, -1, -1):
                all_correct_above = (
                    all_correct_above and predictions[idx] == ex["class"]
                )
                complete[idx] = all_correct_above
            examples.append(
                {
                    "id": i,
                    "class": ex["class"],
                    "lengths": list(payload["lengths"]),
                    "vectors": vectors,
                    "predicted": predictions,
                    "complete": complete,
                }
            )
        return {"examples": examples}


def _combined_manifest(base_manifest: dict, user_examples: list) -> dict:
    """Base + user examples as one class-major manifest.

    Within a class, base examples come first (in base order) and the
    user's follow in fold order; classes the base never saw are appended
    in first-seen order.  This is the layout ``build_manifest`` freezes
    for the equivalent combined dataset, which is what makes the adapt
    candidate's hash equal the batch-trained one's.
    """
    classes = list(base_manifest["classes"])
    for example in user_examples:
        if example["class"] not in classes:
            classes.append(example["class"])
    examples = []
    for name in classes:
        examples.extend(
            ex for ex in base_manifest["examples"] if ex["class"] == name
        )
        examples.extend(
            {"class": name, "points": [list(p) for p in ex["points"]]}
            for ex in user_examples
            if ex["class"] == name
        )
    return {"classes": classes, "examples": examples}
