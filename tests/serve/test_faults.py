"""Chaos tests: the pool under seeded drop/delay/duplicate/reorder/kill.

Three layers of guarantee, each asserted under at least three distinct
fault-schedule seeds:

* **liveness** — the drive loop terminates and every session reaches a
  terminal state (commit, evict, or never-existed); nothing wedges;
* **isolation** — faulted strokes produce per-session ``error`` /
  ``evict`` decisions only; they never corrupt a neighbour;
* **equivalence** — every surviving (never-killed) session's decision
  stream matches a fault-free sequential replay of exactly the events
  the injector delivered for it, on the same virtual timeline; and the
  batched and sequential modes agree decision-for-decision under the
  identical fault schedule.

Keys whose ``down`` was rejected with ``pool full`` are excluded from
the per-key checks: delay faults can keep a finished stroke's session
alive while its client starts the next one, so momentary concurrency
may exceed the pool's capacity.  Admission is a property of the *whole*
pool's load, not of one session's event stream, so a solo replay cannot
reproduce it — every other error (e.g. ``unknown stroke`` after a
dropped down) replays identically and stays in scope.
"""

from __future__ import annotations

import pytest

from repro.obs import FaultInjector, FaultPlan
from repro.serve import (
    SessionPool,
    compare_modes,
    generate_workload,
    run_load,
)
from repro.synth import eight_direction_templates

SEEDS = [11, 23, 47]

PLAN = FaultPlan(
    drop=0.04,
    duplicate=0.04,
    delay=0.05,
    delay_ticks=5,
    reorder=0.1,
    kill=0.015,
)

DT = 0.01
TIMEOUT = 0.2


@pytest.fixture(scope="module")
def chaos_workload():
    return generate_workload(
        eight_direction_templates(),
        clients=12,
        gestures_per_client=3,
        seed=77,
    )


def _chaos_run(recognizer, workload, seed, batched=True):
    return run_load(
        recognizer,
        workload,
        batched=batched,
        timeout=TIMEOUT,
        dt=DT,
        collect=True,
        fault_plan=PLAN,
        fault_seed=seed,
    )


def _rejected(result) -> set:
    """Keys whose down was turned away at admission (pool full)."""
    return {
        d.key
        for d in result.decision_log
        if d.kind == "error" and d.reason == "pool full"
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_every_session_reaches_a_terminal_state(
    directions_recognizer, chaos_workload, seed
):
    """No deadlock, no leak: each delivered down ends in commit or evict."""
    result = _chaos_run(directions_recognizer, chaos_workload, seed)
    terminal: dict[str, str] = {}
    open_keys: set[str] = set()
    for t, (kind, key, _x, _y) in result.delivered_log:
        if kind == "down" and key not in terminal:
            open_keys.add(key)
    for d in result.decision_log:
        if d.kind in ("commit", "evict"):
            terminal[d.key] = d.kind
            open_keys.discard(d.key)
    # Every delivered down either opens a session — which the drain
    # phase inside run_load commits or evicts — or is rejected at
    # admission ("pool full") and never exists to leak.
    leaked = {
        key
        for key in open_keys
        if key not in terminal and key not in _rejected(result)
    }
    assert not leaked, f"sessions with no terminal decision: {sorted(leaked)}"


@pytest.mark.parametrize("seed", SEEDS)
def test_errors_stay_on_their_own_stroke(
    directions_recognizer, chaos_workload, seed
):
    """Faulted keys error; keys with a clean delivery never do."""
    result = _chaos_run(directions_recognizer, chaos_workload, seed)
    # Reconstruct, per key, whether its delivered stream was lifecycle-
    # clean: exactly one down first, then moves, at most one up, and the
    # key was never killed.
    per_key: dict[str, list[str]] = {}
    for _t, (kind, key, _x, _y) in result.delivered_log:
        per_key.setdefault(key, []).append(kind)
    killed = {key for _t, key in result.kill_log}
    rejected = _rejected(result)
    clean = set()
    for key, kinds in per_key.items():
        if key in killed or key in rejected:
            continue
        if kinds[0] != "down" or kinds.count("down") != 1 or kinds.count("up") > 1:
            continue
        if "up" in kinds and kinds.index("up") != len(kinds) - 1:
            continue
        clean.add(key)
    errored = {d.key for d in result.decision_log if d.kind == "error"}
    assert not errored & clean, (
        f"clean sessions saw errors: {sorted(errored & clean)}"
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_surviving_sessions_match_fault_free_replay(
    directions_recognizer, chaos_workload, seed
):
    """Per surviving key: chaos decisions == sequential replay of its
    delivered events on the same tick cadence."""
    result = _chaos_run(directions_recognizer, chaos_workload, seed)
    killed = {key for _t, key in result.kill_log}
    by_tick: dict[int, dict[str, list]] = {}
    keys = set()
    for t, op in result.delivered_log:
        tick = round(t / DT)
        by_tick.setdefault(tick, {}).setdefault(op[1], []).append(op)
        keys.add(op[1])
    survivors = sorted(keys - killed - _rejected(result))
    assert survivors, "fault schedule killed everything; tune the plan down"
    last_tick = max(by_tick)
    checked = 0
    for key in survivors:
        replay_pool = SessionPool(
            directions_recognizer, batched=False, timeout=TIMEOUT, max_sessions=4
        )
        replayed = []
        for tick in range(last_tick + 1):
            ops = by_tick.get(tick, {}).get(key)
            if ops:
                replay_pool.submit(ops, tick * DT)
            replayed.extend(replay_pool.advance_to(tick * DT))
        replayed.extend(replay_pool.advance_to(result.end_t))
        replayed.extend(replay_pool.evict_idle(0.0))
        live = [d for d in result.decision_log if d.key == key]
        assert live == replayed, (
            f"seed {seed}, key {key}: chaos run and fault-free replay "
            f"diverge\nlive:   {live}\nreplay: {replayed}"
        )
        checked += 1
    assert checked >= 5  # the plan must leave a meaningful population


@pytest.mark.parametrize("seed", SEEDS)
def test_batched_equals_sequential_under_chaos(
    directions_recognizer, chaos_workload, seed
):
    batched, sequential = compare_modes(
        directions_recognizer,
        chaos_workload,
        timeout=TIMEOUT,
        dt=DT,
        fault_plan=PLAN,
        fault_seed=seed,
    )
    assert batched.decision_log == sequential.decision_log
    assert batched.fault_summary == sequential.fault_summary
    assert batched.fault_summary["seed"] == seed


def test_fault_schedule_is_deterministic():
    """Same (plan, seed) -> the same mangling of the same stream."""
    ops = [("move", f"k{i}", float(i), 0.0) for i in range(40)]
    runs = []
    for _ in range(2):
        injector = FaultInjector(PLAN, seed=5)
        delivered = []
        kills = []
        for tick in range(10):
            d, k = injector.apply(tick, ops[tick * 4 : tick * 4 + 4])
            delivered.append(d)
            kills.append(k)
        while injector.pending:
            tick += 1
            d, k = injector.apply(tick, [])
            delivered.append(d)
            kills.append(k)
        runs.append((delivered, kills, injector.summary()))
    assert runs[0] == runs[1]


def test_kill_is_isolated_and_idempotent(directions_recognizer):
    """Killing one mid-stroke session evicts it and only it."""
    pool = SessionPool(directions_recognizer, batched=True, max_sessions=8)
    pool.down("a", 0.0, 0.0, 0.0)
    pool.down("b", 10.0, 10.0, 0.0)
    pool.move("a", 1.0, 0.0, 0.01)
    pool.move("b", 11.0, 10.0, 0.01)
    pool.kill("a", 0.02)
    pool.kill("ghost", 0.02)  # unknown key: silent no-op
    out = pool.advance_to(0.02)
    evicts = [d for d in out if d.kind == "evict"]
    assert [d.key for d in evicts] == ["a"]
    assert evicts[0].reason == "killed"
    assert evicts[0].total_points == 2
    assert "a" not in pool and "b" in pool
    # b is untouched and still recognizes normally.
    pool.kill("a", 0.03)  # double-kill: silent no-op
    pool.up("b", 11.0, 10.0, 0.03)
    out = pool.advance_to(0.03)
    kinds = [(d.key, d.kind) for d in out]
    assert ("b", "recog") in kinds and ("b", "commit") in kinds
    assert all(key == "b" for key, _ in kinds)
