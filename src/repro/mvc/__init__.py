"""GRANDMA's Model/View/event-handler architecture (paper §3)."""

from .dispatch import DispatchContext, Dispatcher
from .handler import EventHandler, EventPredicate
from .model import Model
from .view import View

__all__ = [
    "DispatchContext",
    "Dispatcher",
    "EventHandler",
    "EventPredicate",
    "Model",
    "View",
]
