"""Unit tests for the stroke-to-event players."""

import pytest

from repro.events import (
    EventKind,
    MouseButton,
    perform_gesture,
    stroke_events,
)
from repro.geometry import Stroke


def sample_stroke() -> Stroke:
    return Stroke.from_xy([(0, 0), (10, 0), (20, 0), (30, 10)], dt=0.05)


class TestStrokeEvents:
    def test_structure(self):
        events = stroke_events(sample_stroke())
        kinds = [e.kind for e in events]
        assert kinds[0] is EventKind.PRESS
        assert kinds[-1] is EventKind.RELEASE
        assert all(k is EventKind.MOVE for k in kinds[1:-1])

    def test_one_event_per_point_plus_release(self):
        stroke = sample_stroke()
        assert len(stroke_events(stroke)) == len(stroke) + 1

    def test_positions_match_stroke(self):
        stroke = sample_stroke()
        events = stroke_events(stroke)
        for event, point in zip(events[:-1], stroke):
            assert (event.x, event.y, event.t) == (point.x, point.y, point.t)

    def test_release_at_last_position(self):
        stroke = sample_stroke()
        release = stroke_events(stroke)[-1]
        assert (release.x, release.y) == (stroke.end.x, stroke.end.y)

    def test_t0_shifts_all_times(self):
        events = stroke_events(sample_stroke(), t0=10.0)
        assert events[0].t == pytest.approx(10.0)
        assert events[1].t == pytest.approx(10.05)

    def test_button_propagates(self):
        events = stroke_events(sample_stroke(), button=MouseButton.RIGHT)
        assert all(e.button is MouseButton.RIGHT for e in events)

    def test_empty_stroke_raises(self):
        with pytest.raises(ValueError):
            stroke_events(Stroke())


class TestPerformGesture:
    def test_no_dwell_no_manip_is_like_stroke_events(self):
        stroke = sample_stroke()
        assert perform_gesture(stroke) == stroke_events(stroke)

    def test_dwell_delays_the_release(self):
        stroke = sample_stroke()
        events = perform_gesture(stroke, dwell=0.5)
        last_move_t = events[-2].t
        assert events[-1].t == pytest.approx(last_move_t + 0.5)

    def test_manipulation_path_appended_as_moves(self):
        stroke = sample_stroke()
        manip = Stroke.from_xy([(40, 10), (50, 20)], dt=0.1)
        events = perform_gesture(stroke, dwell=0.3, manipulation_path=manip)
        move_positions = [(e.x, e.y) for e in events if e.is_move()]
        assert (40, 10) in move_positions
        assert (50, 20) in move_positions

    def test_release_at_final_manipulation_point(self):
        stroke = sample_stroke()
        manip = Stroke.from_xy([(40, 10), (50, 20)], dt=0.1)
        events = perform_gesture(stroke, dwell=0.3, manipulation_path=manip)
        assert (events[-1].x, events[-1].y) == (50, 20)

    def test_manipulation_times_follow_the_dwell(self):
        stroke = sample_stroke()
        manip = Stroke.from_xy([(40, 10), (50, 20)], dt=0.1)
        events = perform_gesture(stroke, dwell=0.3, manipulation_path=manip)
        gesture_end = stroke.end.t
        manip_moves = [e for e in events if e.is_move() and e.x >= 40]
        assert manip_moves[0].t == pytest.approx(gesture_end + 0.3)
        assert manip_moves[1].t == pytest.approx(gesture_end + 0.4)

    def test_times_strictly_non_decreasing(self):
        stroke = sample_stroke()
        manip = Stroke.from_xy([(40, 10), (50, 20)], dt=0.1)
        events = perform_gesture(stroke, dwell=0.25, manipulation_path=manip)
        times = [e.t for e in events]
        assert times == sorted(times)

    def test_empty_gesture_raises(self):
        with pytest.raises(ValueError):
            perform_gesture(Stroke())
