"""The experiment harness: train, test, compare eager vs full.

This reproduces the protocol of paper §5: train an eager recognizer on N
examples per class, test on a disjoint set of M examples per class, and
report (a) eager vs full recognition rates and (b) how much of each
gesture the eager recognizer consumed, against the ground-truth minimum
when available.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datasets import GestureExample, GestureSet
from ..eager import EagerRecognizer, EagerTrainingConfig, train_eager_recognizer
from .metrics import ConfusionMatrix, EagernessStats

__all__ = ["ExampleOutcome", "EvaluationResult", "evaluate_recognizer", "run_experiment"]


@dataclass(frozen=True)
class ExampleOutcome:
    """Figure 9/10 annotate every test example; this is one annotation.

    The paper's per-example caption "7,8/11" reads: 7 points needed by
    hand, 8 consumed by the eager recognizer, 11 in the gesture.  The
    flags mirror the figures' E and F markers.
    """

    class_name: str
    eager_prediction: str
    full_prediction: str
    points_seen: int
    total_points: int
    oracle_points: int | None
    eager: bool

    @property
    def eager_wrong(self) -> bool:  # the figures' "E" flag
        return self.eager_prediction != self.class_name

    @property
    def full_wrong(self) -> bool:  # the figures' "F" flag
        return self.full_prediction != self.class_name

    def caption(self) -> str:
        """The figure-9 style annotation for this example."""
        parts = []
        if self.oracle_points is not None:
            parts.append(f"{self.oracle_points},{self.points_seen}/{self.total_points}")
        else:
            parts.append(f"{self.points_seen}/{self.total_points}")
        flags = ("F" if self.full_wrong else "") + ("E" if self.eager_wrong else "")
        return " ".join(filter(None, [parts[0], flags]))


@dataclass
class EvaluationResult:
    """Everything §5 reports for one experiment."""

    eager_confusion: ConfusionMatrix
    full_confusion: ConfusionMatrix
    eagerness: EagernessStats
    outcomes: list[ExampleOutcome] = field(default_factory=list)

    @property
    def eager_accuracy(self) -> float:
        return self.eager_confusion.accuracy

    @property
    def full_accuracy(self) -> float:
        return self.full_confusion.accuracy

    def summary(self) -> str:
        lines = [
            f"full classifier accuracy:  {self.full_accuracy:6.1%}",
            f"eager recognizer accuracy: {self.eager_accuracy:6.1%}",
            f"mean fraction of points examined: {self.eagerness.mean_fraction_seen:6.1%}",
        ]
        if self.eagerness.oracle_fractions:
            lines.append(
                "oracle minimum fraction:          "
                f"{self.eagerness.mean_oracle_fraction:6.1%}"
            )
        lines.append(
            f"gestures classified before stroke end: {self.eagerness.eager_rate:6.1%}"
        )
        return "\n".join(lines)


def evaluate_recognizer(
    recognizer: EagerRecognizer, test_set: GestureSet
) -> EvaluationResult:
    """Run eager and full classification over every test example."""
    class_names = recognizer.class_names
    result = EvaluationResult(
        eager_confusion=ConfusionMatrix(class_names=list(class_names)),
        full_confusion=ConfusionMatrix(class_names=list(class_names)),
        eagerness=EagernessStats(),
    )
    for example in test_set:
        outcome = _evaluate_example(recognizer, example)
        result.outcomes.append(outcome)
        result.eager_confusion.record(example.class_name, outcome.eager_prediction)
        result.full_confusion.record(example.class_name, outcome.full_prediction)
        oracle_fraction = None
        if outcome.oracle_points is not None and outcome.total_points:
            oracle_fraction = outcome.oracle_points / outcome.total_points
        result.eagerness.record(
            fraction_seen=outcome.points_seen / outcome.total_points
            if outcome.total_points
            else 0.0,
            eager=outcome.eager,
            oracle_fraction=oracle_fraction,
        )
    return result


def _evaluate_example(
    recognizer: EagerRecognizer, example: GestureExample
) -> ExampleOutcome:
    eager_result = recognizer.recognize(example.stroke)
    full_prediction = recognizer.classify_full(example.stroke)
    return ExampleOutcome(
        class_name=example.class_name,
        eager_prediction=eager_result.class_name,
        full_prediction=full_prediction,
        points_seen=eager_result.points_seen,
        total_points=eager_result.total_points,
        oracle_points=example.oracle_points,
        eager=eager_result.eager,
    )


def run_experiment(
    dataset: GestureSet,
    train_per_class: int,
    config: EagerTrainingConfig | None = None,
) -> tuple[EvaluationResult, EagerRecognizer]:
    """Split, train, evaluate — the whole §5 protocol in one call."""
    split = dataset.split(train_per_class)
    report = train_eager_recognizer(
        split.train.strokes_by_class(), config=config
    )
    result = evaluate_recognizer(report.recognizer, split.test)
    return result, report.recognizer
