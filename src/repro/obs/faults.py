"""Seeded, deterministic fault injection for event streams.

A :class:`FaultInjector` sits between an event source and the pool (or
server) and mangles one tick's worth of operations at a time: it can
**drop** an operation, **duplicate** it, **delay** it a bounded number
of ticks, **reorder** the tick, and **kill** the session an operation
belongs to right after delivering it.  Every choice comes from one
``random.Random(seed)``, so a given ``(plan, seed)`` produces the same
fault schedule on every run — chaos tests replay exactly.

The injector never invents operations and never changes an operation's
payload; delayed operations are re-delivered on a later tick (and thus
pick up that tick's timestamp from whoever submits them), which keeps
the virtual timeline monotone.  What the injector *delivered* is the
ground truth a chaos test replays against — drive it, record the
delivered stream, and compare the system under faults to a fault-free
replay of that same stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["FaultInjector", "FaultPlan"]


@dataclass(frozen=True)
class FaultPlan:
    """Per-operation fault probabilities (all default off).

    ``drop``, ``duplicate``, ``delay`` and ``kill`` are evaluated per
    operation, in that order (drop and delay are exclusive; a delivered
    operation may be both duplicated and followed by a kill).
    ``reorder`` is evaluated once per tick and shuffles that tick's
    delivered operations.  ``delay_ticks`` bounds how far a delayed
    operation can slip.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    delay_ticks: int = 3
    reorder: float = 0.0
    kill: float = 0.0

    @classmethod
    def mixed(cls, rate: float, kill: float | None = None) -> "FaultPlan":
        """Every fault type at ``rate`` (kills at ``rate / 4`` unless given)."""
        return cls(
            drop=rate,
            duplicate=rate,
            delay=rate,
            reorder=rate,
            kill=rate / 4.0 if kill is None else kill,
        )


def _default_key(op) -> str:
    return op[1]


class FaultInjector:
    """Applies a :class:`FaultPlan` to successive ticks of operations."""

    def __init__(self, plan: FaultPlan, seed: int = 0):
        self.plan = plan
        self.seed = seed
        self._rng = random.Random(seed)
        self._delayed: dict[int, list] = {}
        self.counts = {
            "delivered": 0,
            "dropped": 0,
            "duplicated": 0,
            "delayed": 0,
            "reordered": 0,
            "killed": 0,
        }

    @property
    def pending(self) -> bool:
        """True while delayed operations await a future tick."""
        return bool(self._delayed)

    def apply(self, tick: int, ops, *, key=None) -> tuple[list, list]:
        """Mangle one tick.  Returns ``(delivered_ops, killed_keys)``.

        ``ops`` are opaque items; ``key(op)`` names the session an item
        belongs to (default: ``op[1]``, the pool's tuple layout).  Items
        whose key is ``None`` are exempt — delivered untouched, never
        killed — which is how a server shields clock ticks and stats
        requests from the chaos.  Kills take effect *after* the
        operation that drew them.
        """
        plan = self.plan
        rng = self._rng
        counts = self.counts
        key_of = _default_key if key is None else key
        pending = self._delayed.pop(tick, [])
        delivered: list = []
        kills: list = []
        for op in list(pending) + list(ops):
            session = key_of(op)
            if session is None:
                delivered.append(op)
                continue
            if plan.drop > 0.0 and rng.random() < plan.drop:
                counts["dropped"] += 1
                continue
            if plan.delay > 0.0 and rng.random() < plan.delay:
                slip = rng.randint(1, max(1, plan.delay_ticks))
                self._delayed.setdefault(tick + slip, []).append(op)
                counts["delayed"] += 1
                continue
            delivered.append(op)
            counts["delivered"] += 1
            if plan.duplicate > 0.0 and rng.random() < plan.duplicate:
                delivered.append(op)
                counts["delivered"] += 1
                counts["duplicated"] += 1
            if plan.kill > 0.0 and rng.random() < plan.kill:
                kills.append(session)
                counts["killed"] += 1
        if (
            plan.reorder > 0.0
            and len(delivered) > 1
            and rng.random() < plan.reorder
        ):
            rng.shuffle(delivered)
            counts["reordered"] += 1
        return delivered, kills

    def summary(self) -> dict:
        """Deterministic account of everything the injector did."""
        return {"seed": self.seed, **self.counts}
