"""Axis-aligned bounding boxes.

Two of Rubine's features (f3, f4 — the length and angle of the bounding-box
diagonal) are defined in terms of the box enclosing the points seen so far,
so the box supports incremental extension one point at a time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from .point import Point

__all__ = ["BoundingBox"]


@dataclass
class BoundingBox:
    """A mutable axis-aligned box, growable point by point."""

    min_x: float = math.inf
    min_y: float = math.inf
    max_x: float = -math.inf
    max_y: float = -math.inf

    @classmethod
    def of(cls, points: Iterable[Point]) -> "BoundingBox":
        """Build the bounding box of an iterable of points."""
        box = cls()
        for p in points:
            box.extend(p.x, p.y)
        return box

    @property
    def is_empty(self) -> bool:
        """True if no point has been added yet."""
        return self.min_x > self.max_x

    def extend(self, x: float, y: float) -> None:
        """Grow the box to include ``(x, y)``."""
        if x < self.min_x:
            self.min_x = x
        if x > self.max_x:
            self.max_x = x
        if y < self.min_y:
            self.min_y = y
        if y > self.max_y:
            self.max_y = y

    @property
    def width(self) -> float:
        return 0.0 if self.is_empty else self.max_x - self.min_x

    @property
    def height(self) -> float:
        return 0.0 if self.is_empty else self.max_y - self.min_y

    @property
    def diagonal(self) -> float:
        """Length of the box diagonal (Rubine's f3)."""
        return math.hypot(self.width, self.height)

    @property
    def diagonal_angle(self) -> float:
        """Angle of the box diagonal (Rubine's f4); 0 for a degenerate box."""
        if self.width == 0.0 and self.height == 0.0:
            return 0.0
        return math.atan2(self.height, self.width)

    @property
    def center(self) -> Point:
        if self.is_empty:
            return Point(0.0, 0.0)
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, x: float, y: float) -> bool:
        """True if ``(x, y)`` lies inside or on the boundary of the box."""
        return (
            not self.is_empty
            and self.min_x <= x <= self.max_x
            and self.min_y <= y <= self.max_y
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """True if this box overlaps ``other`` (shared edges count)."""
        if self.is_empty or other.is_empty:
            return False
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Smallest box containing both boxes."""
        box = BoundingBox(self.min_x, self.min_y, self.max_x, self.max_y)
        if not other.is_empty:
            box.extend(other.min_x, other.min_y)
            box.extend(other.max_x, other.max_y)
        return box

    def inflated(self, margin: float) -> "BoundingBox":
        """Return a copy grown by ``margin`` on every side (for hit-testing)."""
        if self.is_empty:
            return BoundingBox()
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )
