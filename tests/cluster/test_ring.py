"""Consistent-hash ring properties the router depends on."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.cluster import HashRing

KEYS = [f"k{c}:s{i}" for c in range(4) for i in range(500)]


def test_lookup_is_process_stable():
    # Two independently built rings agree on every key: routing is a
    # pure function of (key, shard set), never of hash seeding.
    a = HashRing(["w0", "w1", "w2"])
    b = HashRing(["w0", "w1", "w2"])
    assert [a.lookup(k) for k in KEYS] == [b.lookup(k) for k in KEYS]


def test_shard_order_does_not_matter():
    a = HashRing(["w0", "w1", "w2"])
    b = HashRing(["w2", "w0", "w1"])
    assert [a.lookup(k) for k in KEYS] == [b.lookup(k) for k in KEYS]


def test_load_is_roughly_balanced():
    ring = HashRing(["w0", "w1", "w2", "w3"])
    counts = Counter(ring.lookup(k) for k in KEYS)
    assert set(counts) == {"w0", "w1", "w2", "w3"}
    for shard, n in counts.items():
        assert n > len(KEYS) * 0.10, (shard, counts)


def test_adding_a_shard_moves_only_a_fraction():
    small = HashRing(["w0", "w1", "w2"])
    large = HashRing(["w0", "w1", "w2", "w3"])
    moved = sum(1 for k in KEYS if small.lookup(k) != large.lookup(k))
    # Ideal is 1/4; anything near a full reshuffle means the ring is
    # not consistent at all.
    assert moved < len(KEYS) * 0.5
    # ...and every moved key moved *to* the new shard.
    assert all(
        large.lookup(k) == "w3"
        for k in KEYS
        if small.lookup(k) != large.lookup(k)
    )


def test_skip_spills_to_successor_and_keeps_the_rest():
    ring = HashRing(["w0", "w1", "w2"])
    owned = [k for k in KEYS if ring.lookup(k) == "w1"]
    others = [k for k in KEYS if ring.lookup(k) != "w1"]
    for k in owned:
        assert ring.lookup(k, skip={"w1"}) in ("w0", "w2")
    # Draining w1 must not move anyone else's keys.
    assert all(ring.lookup(k, skip={"w1"}) == ring.lookup(k) for k in others)


def test_all_skipped_raises():
    ring = HashRing(["w0", "w1"])
    with pytest.raises(ValueError):
        ring.lookup("k1:s1", skip={"w0", "w1"})


def test_bad_shard_sets_rejected():
    with pytest.raises(ValueError):
        HashRing([])
    with pytest.raises(ValueError):
        HashRing(["w0", "w0"])


def test_memoized_lookup_answers_from_cache():
    ring = HashRing(["w0", "w1", "w2"])
    first = [ring.lookup(k) for k in KEYS]
    assert set(KEYS) <= set(ring._cache)
    # Poison the cache to prove repeats are served from it...
    probe = KEYS[0]
    ring._cache[probe] = "poisoned"
    assert ring.lookup(probe) == "poisoned"
    # ...then drop the poison and confirm memoized routes match a
    # fresh ring exactly.
    del ring._cache[probe]
    assert [ring.lookup(k) for k in KEYS] == first


def test_cache_invalidated_on_topology_change():
    # Regression: a stale cached route must never survive a skip-set
    # change.  Fill the cache, drain a shard, and require every key
    # owned by the drained shard to spill immediately.
    ring = HashRing(["w0", "w1", "w2"])
    owned = [k for k in KEYS if ring.lookup(k) == "w1"]
    assert owned  # the workload must actually exercise w1
    for k in owned:
        assert ring.lookup(k, skip={"w1"}) != "w1"
    # And when the drain ends, the keys return home — the spill-cache
    # is invalidated right back.
    assert [ring.lookup(k) for k in owned] == ["w1"] * len(owned)


def test_cache_never_exceeds_its_cap():
    from repro.cluster.ring import _CACHE_CAP

    ring = HashRing(["w0", "w1"])
    fresh = HashRing(["w0", "w1"])
    n = _CACHE_CAP + 512
    for i in range(n):
        assert ring.lookup(f"k:{i}") == fresh.lookup(f"k:{i}")
    assert len(ring._cache) <= _CACHE_CAP


# -- weighted vnodes and bounded rebalancing -------------------------


def test_weights_shift_load_proportionally():
    even = HashRing(["w0", "w1"])
    skewed = HashRing(["w0", "w1"], weights={"w1": 0.25})
    even_counts = Counter(even.lookup(k) for k in KEYS)
    skewed_counts = Counter(skewed.lookup(k) for k in KEYS)
    # A quarter-weight shard owns a quarter of the vnodes and must
    # attract clearly less than its even-split share.
    assert skewed.vnodes == {"w0": 64, "w1": 16}
    assert skewed_counts["w1"] < even_counts["w1"]
    assert skewed_counts["w1"] < len(KEYS) * 0.35


def test_bad_weights_rejected():
    with pytest.raises(ValueError):
        HashRing(["w0", "w1"], weights={"w1": 0.0})
    with pytest.raises(ValueError):
        HashRing(["w0", "w1"], weights={"w1": -1.0})
    with pytest.raises(ValueError):
        HashRing(["w0"], weights={"w9": 1.0})
    # A tiny positive weight still gets at least one vnode.
    assert HashRing(["w0", "w1"], weights={"w1": 1e-9}).vnodes["w1"] == 1


def test_with_and_without_shard_preserve_weights():
    ring = HashRing(["w0", "w1"], weights={"w1": 0.5})
    grown = ring.with_shard("w2", weight=2.0)
    assert grown.shards == ("w0", "w1", "w2")
    assert grown.weights == {"w0": 1.0, "w1": 0.5, "w2": 2.0}
    shrunk = grown.without_shard("w2")
    assert shrunk.shards == ring.shards
    assert shrunk.weights == ring.weights
    assert [shrunk.lookup(k) for k in KEYS] == [ring.lookup(k) for k in KEYS]
    with pytest.raises(ValueError):
        ring.without_shard("w9")


def test_plan_rebalance_is_exactly_the_moved_set():
    old = HashRing(["w0", "w1", "w2"])
    new = old.with_shard("w3")
    plan = old.plan_rebalance(new, KEYS)
    # The plan is exactly the keys whose owner changed...
    for key in KEYS:
        if key in plan:
            src, dst = plan[key]
            assert src == old.lookup(key) and dst == new.lookup(key)
            assert src != dst
        else:
            # ...and every non-planned key provably keeps its shard.
            assert old.lookup(key) == new.lookup(key)
    # Growing moves keys only *onto* the new shard, and a bounded
    # number of them (ideal is 1/4 of the keys for an even 3->4 grow).
    assert plan and all(dst == "w3" for _, dst in plan.values())
    assert len(plan) < len(KEYS) * 0.5


def test_plan_rebalance_shrink_moves_only_the_leavers_keys():
    old = HashRing(["w0", "w1", "w2", "w3"])
    new = old.without_shard("w3")
    plan = old.plan_rebalance(new, KEYS)
    owned = [k for k in KEYS if old.lookup(k) == "w3"]
    # Removing a shard moves exactly its keys — the theoretical
    # minimum — and nothing else.
    assert set(plan) == set(owned)
    assert all(src == "w3" for src, _ in plan.values())


def test_plan_rebalance_respects_skip_sets():
    old = HashRing(["w0", "w1", "w2"])
    new = old.with_shard("w3")
    # A shard draining on both sides keeps spilling on both sides: the
    # plan reflects effective routing, not raw ownership.
    plan = old.plan_rebalance(new, KEYS, skip={"w1"})
    for key, (src, dst) in plan.items():
        assert src == old.lookup(key, skip={"w1"})
        assert dst == new.lookup(key, skip={"w1"})
        assert src != "w1" and dst != "w1"
    # Dropping a shard from the ring defaults its stale skip away.
    shrunk = old.without_shard("w2")
    plan = old.plan_rebalance(shrunk, KEYS, skip={"w2"})
    assert all(dst != "w2" for _, dst in plan.values())
