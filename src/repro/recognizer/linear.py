"""Linear evaluation functions over feature vectors.

Classification in the paper is "done via linear discrimination: each class
has a linear evaluation function (including a constant term) that is
applied to the features, and the class with the maximum evaluation is
chosen" (section 4.2).  :class:`LinearClassifier` is that object: a
``(C, F)`` weight matrix plus a length-``C`` vector of constants.

Two properties the eager-recognition trainer exploits live here:

* constants are mutable, so the trainer can bias the classifier away from
  classes whose misclassification is costly (section 4.6), and
* evaluations double as (unnormalized) log-likelihoods, so a softmax over
  them estimates the probability that the winner is correct — the basis
  of rejection.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["LinearClassifier"]


class LinearClassifier:
    """Per-class linear evaluation functions ``v_c(f) = w_c . f + b_c``."""

    def __init__(
        self,
        class_names: Sequence[str],
        weights: np.ndarray,
        constants: np.ndarray,
    ):
        """
        Args:
            class_names: label for each row of ``weights``.
            weights: ``(C, F)`` array of per-class feature weights.
            constants: length-``C`` array of constant terms ``b_c``.
        """
        weights = np.asarray(weights, dtype=float)
        constants = np.asarray(constants, dtype=float)
        if weights.ndim != 2:
            raise ValueError("weights must be a (C, F) matrix")
        if constants.shape != (weights.shape[0],):
            raise ValueError("constants must have one entry per class")
        if len(class_names) != weights.shape[0]:
            raise ValueError("class_names must have one entry per class")
        if len(set(class_names)) != len(class_names):
            raise ValueError("class names must be unique")
        self.class_names = list(class_names)
        self.weights = weights
        self.constants = constants
        self._index = {name: i for i, name in enumerate(self.class_names)}

    @property
    def num_classes(self) -> int:
        return self.weights.shape[0]

    @property
    def num_features(self) -> int:
        return self.weights.shape[1]

    def class_index(self, name: str) -> int:
        """Row index of a class name."""
        return self._index[name]

    def evaluations(self, features: np.ndarray) -> np.ndarray:
        """All class evaluations ``v_c(f)`` for one feature vector."""
        features = np.asarray(features, dtype=float)
        if features.shape != (self.num_features,):
            raise ValueError(
                f"expected {self.num_features} features, got {features.shape}"
            )
        return self.weights @ features + self.constants

    def classify(self, features: np.ndarray) -> str:
        """The class with the maximum evaluation."""
        return self.class_names[int(np.argmax(self.evaluations(features)))]

    def classify_with_scores(self, features: np.ndarray) -> tuple[str, np.ndarray]:
        """Winner plus the full evaluation vector (for rejection logic)."""
        v = self.evaluations(features)
        return self.class_names[int(np.argmax(v))], v

    def probability_correct(self, features: np.ndarray) -> float:
        """Softmax estimate that the winning class is the right one.

        Rubine's rejection rule: with evaluations ``v_j`` and winner ``i``,
        the estimate is ``1 / sum_j exp(v_j - v_i)``.
        """
        v = self.evaluations(features)
        vmax = float(np.max(v))
        return float(1.0 / np.sum(np.exp(np.clip(v - vmax, -500.0, 0.0))))

    def add_to_constant(self, class_name: str, delta: float) -> None:
        """Shift one class's constant term — the paper's biasing knob."""
        self.constants[self._index[class_name]] += delta

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return {
            "class_names": self.class_names,
            "weights": self.weights.tolist(),
            "constants": self.constants.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LinearClassifier":
        return cls(
            class_names=data["class_names"],
            weights=np.array(data["weights"], dtype=float),
            constants=np.array(data["constants"], dtype=float),
        )
