"""Unit tests for the multi-path extension (paper §6)."""

import math

import numpy as np
import pytest

from repro.geometry import Point, Stroke
from repro.multipath import (
    MULTIPATH_CLASS_NAMES,
    MultiPathClassifier,
    MultiPathGenerator,
    MultiPathGesture,
    TwoFingerTracker,
    multipath_features,
    similarity_from_pairs,
)


def stroke_at(x0, y0, dx=10.0, n=5):
    return Stroke.from_xy(
        [(x0 + i * dx, y0) for i in range(n)], dt=0.01
    )


class TestMultiPathGesture:
    def test_paths_sorted_by_start(self):
        right = stroke_at(100, 0)
        left = stroke_at(0, 0)
        gesture = MultiPathGesture([right, left])
        assert gesture.paths[0].start.x == 0

    def test_path_count(self):
        assert MultiPathGesture([stroke_at(0, 0)]).path_count == 1
        assert (
            MultiPathGesture([stroke_at(0, 0), stroke_at(50, 0)]).path_count
            == 2
        )

    def test_empty_paths_dropped(self):
        gesture = MultiPathGesture([stroke_at(0, 0), Stroke()])
        assert gesture.path_count == 1

    def test_no_paths_rejected(self):
        with pytest.raises(ValueError):
            MultiPathGesture([])
        with pytest.raises(ValueError):
            MultiPathGesture([Stroke()])

    def test_duration_spans_paths(self):
        a = Stroke([Point(0, 0, 0.0), Point(1, 0, 0.5)])
        b = Stroke([Point(5, 0, 0.2), Point(6, 0, 1.5)])
        assert MultiPathGesture([a, b]).duration == pytest.approx(1.5)

    def test_bounding_box_spans_paths(self):
        gesture = MultiPathGesture([stroke_at(0, 0), stroke_at(0, 100)])
        box = gesture.bounding_box()
        assert box.height == pytest.approx(100)

    def test_prefix_by_time(self):
        gesture = MultiPathGesture([stroke_at(0, 0, n=10), stroke_at(0, 50, n=10)])
        prefix = gesture.prefix_by_time(0.045)
        assert all(len(path) == 5 for path in prefix.paths)

    def test_prefix_before_any_point_raises(self):
        gesture = MultiPathGesture(
            [Stroke([Point(0, 0, 1.0), Point(1, 0, 2.0)])]
        )
        with pytest.raises(ValueError):
            gesture.prefix_by_time(0.5)


class TestFeatures:
    def test_dimension_scales_with_paths(self):
        one = multipath_features(MultiPathGesture([stroke_at(0, 0)]))
        two = multipath_features(
            MultiPathGesture([stroke_at(0, 0), stroke_at(0, 50)])
        )
        assert len(two) == len(one) + 13

    def test_features_finite(self):
        gesture = MultiPathGesture([stroke_at(0, 0), stroke_at(0, 50)])
        assert np.isfinite(multipath_features(gesture)).all()


class TestGeneratorAndClassifier:
    def test_generator_classes(self):
        generator = MultiPathGenerator(seed=1)
        assert set(generator.class_names) == set(MULTIPATH_CLASS_NAMES)

    def test_path_counts_per_class(self):
        generator = MultiPathGenerator(seed=2)
        assert generator.generate("tap").path_count == 1
        assert generator.generate("swipe").path_count == 1
        assert generator.generate("pinch").path_count == 2
        assert generator.generate("spread").path_count == 2
        assert generator.generate("rotate").path_count == 2

    def test_classifier_end_to_end(self):
        train = MultiPathGenerator(seed=3).generate_examples(10)
        classifier = MultiPathClassifier.train(train)
        test = MultiPathGenerator(seed=4).generate_examples(10)
        hits = total = 0
        for name, gestures in test.items():
            for gesture in gestures:
                total += 1
                hits += classifier.classify(gesture) == name
        assert hits / total > 0.9

    def test_path_count_gating(self):
        train = MultiPathGenerator(seed=5).generate_examples(8)
        classifier = MultiPathClassifier.train(train)
        assert classifier.path_counts == [1, 2]
        three_fingers = MultiPathGesture(
            [stroke_at(0, 0), stroke_at(0, 50), stroke_at(0, 100)]
        )
        with pytest.raises(KeyError):
            classifier.classify(three_fingers)

    def test_one_finger_never_classified_as_two(self):
        train = MultiPathGenerator(seed=6).generate_examples(8)
        classifier = MultiPathClassifier.train(train)
        tap = MultiPathGenerator(seed=7).generate("tap")
        assert classifier.classify(tap) in ("tap", "swipe")

    def test_mixed_path_count_class_rejected(self):
        generator = MultiPathGenerator(seed=8)
        with pytest.raises(ValueError):
            MultiPathClassifier.train(
                {"bad": [generator.generate("tap"), generator.generate("pinch")]}
            )

    def test_unknown_class_rejected(self):
        with pytest.raises(KeyError):
            MultiPathGenerator(seed=9).generate("wiggle")


class TestSimilarity:
    def test_pure_translation(self):
        t = similarity_from_pairs(
            Point(0, 0), Point(10, 0), Point(5, 5), Point(15, 5)
        )
        moved = t.apply(Point(3, 3))
        assert moved.x == pytest.approx(8)
        assert moved.y == pytest.approx(8)

    def test_pure_scale(self):
        t = similarity_from_pairs(
            Point(0, 0), Point(10, 0), Point(0, 0), Point(20, 0)
        )
        assert t.apply(Point(5, 0)).x == pytest.approx(10)

    def test_pure_rotation(self):
        t = similarity_from_pairs(
            Point(0, 0), Point(10, 0), Point(0, 0), Point(0, 10)
        )
        moved = t.apply(Point(10, 0))
        assert moved.x == pytest.approx(0, abs=1e-9)
        assert moved.y == pytest.approx(10)

    def test_maps_the_defining_pairs(self):
        a0, b0 = Point(1, 2), Point(4, 6)
        a1, b1 = Point(-3, 5), Point(10, -2)
        t = similarity_from_pairs(a0, b0, a1, b1)
        for src, dst in ((a0, a1), (b0, b1)):
            moved = t.apply(src)
            assert moved.x == pytest.approx(dst.x)
            assert moved.y == pytest.approx(dst.y)

    def test_coincident_reference_rejected(self):
        with pytest.raises(ValueError):
            similarity_from_pairs(
                Point(0, 0), Point(0, 0), Point(1, 1), Point(2, 2)
            )


class TestTwoFingerTracker:
    def test_incremental_updates_compose(self):
        tracker = TwoFingerTracker(Point(0, 0), Point(10, 0))
        # Rotate the pair 90 degrees in two 45-degree steps.
        theta1 = math.pi / 4
        step1 = tracker.update(
            Point(0, 0),
            Point(10 * math.cos(theta1), 10 * math.sin(theta1)),
        )
        step2 = tracker.update(Point(0, 0), Point(0, 10))
        combined = step2 @ step1
        moved = combined.apply(Point(10, 0))
        assert moved.x == pytest.approx(0, abs=1e-9)
        assert moved.y == pytest.approx(10)

    def test_fingers_must_start_apart(self):
        with pytest.raises(ValueError):
            TwoFingerTracker(Point(5, 5), Point(5, 5))

    def test_drives_shape_transform(self):
        # The §6 drawing-program scenario: a rectangle follows two fingers.
        from repro.gdp import RectShape

        rect = RectShape(0, 0, 10, 10)
        tracker = TwoFingerTracker(Point(0, 0), Point(10, 0))
        transform = tracker.update(Point(0, 0), Point(20, 0))  # spread x2
        rect.apply_transform(transform)
        width = abs(rect.corners[1][0] - rect.corners[0][0])
        assert width == pytest.approx(20, rel=1e-6)
