"""Batched linear discrimination with an exact sequential fallback.

The hot path of the serving layer: stack the feature rows of every
in-flight stroke into an ``(n, 13)`` matrix and evaluate *all* per-class
linear evaluation functions — the full classifier's and the AUC's — with
one matrix product per tick, instead of one gemv plus Python overhead
per session per point.

Equivalence guarantee
---------------------

The batched path must emit *exactly* the decisions the per-session
sequential path (:class:`~repro.eager.EagerSession`) would.  Two things
could break bit-identity:

1. BLAS may accumulate a matrix-matrix product in a different order
   than a matrix-vector product, shifting scores by a few ulps.
2. The :class:`~repro.serve.bank.FeatureBank` computes ``arctan2`` and
   ``hypot`` through numpy's libm entry points, which may differ from
   ``math.atan2`` / ``math.hypot`` by an ulp, so its feature rows can
   drift from the scalar ones — by at most a few ulps per feature for
   the direction/bbox features, and linearly in the point count for the
   accumulated turn-angle features (f9–f11).

Both error sources are *bounded*, and the bounds are cheap to evaluate
in batch: per row, ``|f| . |w|^T + |b|`` bounds every partial sum of the
product (source 1), and a per-classifier drift coefficient times the
row's point count bounds source 2.  Any row whose winning margin falls
inside the combined bound is flagged ``risky`` and re-decided by the
caller through the exact sequential path (replaying the stroke through
:class:`~repro.features.IncrementalFeatures`); every other row's argmax
is provably unaffected, hence identical.  In practice trained-class
margins sit ten-plus orders of magnitude above the bound, so the
fallback triggers essentially never — it exists to turn "almost surely
identical" into "identical".
"""

from __future__ import annotations

import math
from time import perf_counter

import numpy as np

from ..eager import EagerRecognizer
from ..features.rubine import NUM_FEATURES

__all__ = ["BatchEvaluator"]

_EPS = float(np.finfo(float).eps)

# Score-margin slack per unit of accumulated magnitude (error source 1).
_MARGIN_SLACK = 2048.0 * _EPS

# One vectorized-vs-scalar atan2 disagreement moves a turn angle by at
# most a few ulps of pi; 4 eps pi is a generous per-point bound.
_THETA_ULP = 4.0 * _EPS * math.pi

# Feature indices, in the full 13-feature space, of the unit-magnitude
# direction cosines (hypot-then-divide: absolute error O(eps)) and of
# the accumulated turn-angle features (error linear in point count).
_DIRECTION_FEATURES = (0, 1, 5, 6)
_ANGLE_SUM_FEATURES = (8, 9)
_ANGLE_SQ_FEATURE = 10


class _CheckedLinear:
    """One classifier's batched scores plus its row-level risk bound."""

    def __init__(self, linear, feature_indices):
        self.linear = linear
        self.columns = (
            None if feature_indices is None else list(feature_indices)
        )
        self.weights_t = np.ascontiguousarray(linear.weights.T)
        self.constants = linear.constants
        self.abs_weights_t = np.abs(self.weights_t)
        self.abs_constants = np.abs(self.constants)

        # Map full-space feature indices into this classifier's columns
        # (a masked classifier may not see all of them).
        cols = self.columns if self.columns is not None else list(
            range(NUM_FEATURES)
        )
        position = {orig: i for i, orig in enumerate(cols)}
        absw = np.abs(linear.weights)

        def weight_of(orig_feature: int) -> np.ndarray:
            i = position.get(orig_feature)
            return absw[:, i] if i is not None else 0.0

        # Drift bound (error source 2), split into a static part (the
        # direction cosines' O(eps) absolute error) and a per-point part
        # (the accumulated angle features).  |theta| <= pi bounds the
        # derivative of theta^2.
        static = sum(weight_of(i) for i in _DIRECTION_FEATURES) * 4.0 * _EPS
        per_point = (
            sum(weight_of(i) for i in _ANGLE_SUM_FEATURES)
            + weight_of(_ANGLE_SQ_FEATURE) * 2.0 * math.pi
        ) * _THETA_ULP
        self.static_drift = float(np.max(static)) if linear.num_classes else 0.0
        self.per_point_drift = (
            float(np.max(per_point)) if linear.num_classes else 0.0
        )

    def decide(
        self, features: np.ndarray, counts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Winning class indices plus a per-row ``risky`` flag.

        ``features`` is always in the full 13-feature space; the
        classifier's own column mask is applied here, exactly as
        ``GestureClassifier.classify_features`` does per vector.
        """
        if self.columns is not None:
            features = features[:, self.columns]
        scores = features @ self.weights_t + self.constants
        winners = np.argmax(scores, axis=1)
        if scores.shape[1] == 1:
            return winners, np.zeros(len(features), dtype=bool)
        top2 = np.partition(scores, -2, axis=1)[:, -2:]
        margin = top2[:, 1] - top2[:, 0]
        magnitude = np.abs(features) @ self.abs_weights_t + self.abs_constants
        tolerance = (
            _MARGIN_SLACK * features.shape[1] * np.max(magnitude, axis=1)
            + self.static_drift
            + self.per_point_drift * counts
        )
        return winners, margin <= tolerance


class BatchEvaluator:
    """Batched AUC + full-classifier decisions for one recognizer."""

    def __init__(self, recognizer: EagerRecognizer):
        self.recognizer = recognizer
        # Optional repro.obs.PerfProfiler, attached by the pool when its
        # observer carries one; None keeps the hot path clock-free.
        self.profiler = None
        self._auc = _CheckedLinear(recognizer.auc.linear, None)
        full = recognizer.full_classifier
        self._full = _CheckedLinear(full.linear, full.feature_indices)
        self._complete = recognizer.auc._complete_row_mask
        self._full_names = full.class_names

        # For the per-round hot path, both classifiers share one matrix
        # product: the full classifier's (possibly column-masked) weights
        # are zero-embedded into the 13-feature space and stacked next to
        # the AUC's.  Multiplying a feature by an exactly-zero weight and
        # adding it to a partial sum is an exact no-op, so the embedded
        # scores equal the masked ones bit for bit, and the same margin
        # bound applies (with the conservative 13-column slack factor).
        full_w = full.linear.weights
        if full.feature_indices is None:
            embedded = full_w
        else:
            embedded = np.zeros((full_w.shape[0], NUM_FEATURES))
            embedded[:, list(full.feature_indices)] = full_w
        self._n_auc = recognizer.auc.linear.num_classes
        self._comb_wt = np.ascontiguousarray(
            np.concatenate([recognizer.auc.linear.weights, embedded]).T
        )
        self._comb_const = np.concatenate(
            [recognizer.auc.linear.constants, full.linear.constants]
        )
        self._comb_abs_wt = np.abs(self._comb_wt)
        self._comb_abs_const = np.abs(self._comb_const)

    @property
    def full_names(self) -> list:
        return self._full_names

    def combined_decisions(
        self,
        features: np.ndarray,
        counts: np.ndarray,
        guard_risk: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """AUC and full-classifier verdicts from one matrix product.

        Returns ``(unambiguous, auc_risky, full_winners, full_risky)``,
        all per row.  Semantics per block match :meth:`auc_decisions` /
        :meth:`full_decisions`; only the evaluation is fused.
        """
        prof = self.profiler
        t_start = perf_counter() if prof is not None else 0.0
        scores = features @ self._comb_wt + self._comb_const
        # Cheap row bound on any partial sum: ||f||_1 max|w| + max|b|
        # — looser than the per-class |f|.|w|^T bound the unfused
        # methods use, but a second matrix product dearer; real margins
        # sit ten-plus orders of magnitude above either bound.
        row_l1 = np.abs(features).sum(axis=1)
        base = _MARGIN_SLACK * NUM_FEATURES
        n_auc = self._n_auc
        results = []
        for lo, hi, checked in (
            (0, n_auc, self._auc),
            (n_auc, scores.shape[1], self._full),
        ):
            block = scores[:, lo:hi]
            winners = np.argmax(block, axis=1)
            if hi - lo == 1:
                risky = guard_risk.copy()
            else:
                top2 = np.partition(block, -2, axis=1)[:, -2:]
                margin = top2[:, 1] - top2[:, 0]
                magnitude = (
                    row_l1 * np.max(self._comb_abs_wt[:, lo:hi])
                    + np.max(self._comb_abs_const[lo:hi])
                )
                tolerance = (
                    base * magnitude
                    + checked.static_drift
                    + checked.per_point_drift * counts
                )
                risky = (margin <= tolerance) | guard_risk
            results.append((winners, risky))
        (auc_winners, auc_risky), (full_winners, full_risky) = results
        if prof is not None:
            prof.add("fused_eval", perf_counter() - t_start, len(features))
        return self._complete[auc_winners], auc_risky, full_winners, full_risky

    def auc_decisions(
        self,
        features: np.ndarray,
        counts: np.ndarray,
        guard_risk: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """The paper's D per row: ``(unambiguous, risky)`` boolean arrays.

        Where ``risky`` is False, ``unambiguous`` is guaranteed to equal
        what ``AmbiguityClassifier.is_unambiguous`` would return for the
        scalar path's feature vector; risky rows must be re-decided
        sequentially by the caller.
        """
        prof = self.profiler
        t_start = perf_counter() if prof is not None else 0.0
        winners, risky = self._auc.decide(features, counts)
        out = self._complete[winners], risky | guard_risk
        if prof is not None:
            prof.add("auc_eval", perf_counter() - t_start, len(features))
        return out

    def full_decisions(
        self,
        features: np.ndarray,
        counts: np.ndarray,
        guard_risk: np.ndarray,
    ) -> tuple[list[str], np.ndarray]:
        """Full-classifier verdict per row: ``(class_names, risky)``."""
        prof = self.profiler
        t_start = perf_counter() if prof is not None else 0.0
        winners, risky = self._full.decide(features, counts)
        names = [self._full_names[i] for i in winners]
        if prof is not None:
            prof.add("full_eval", perf_counter() - t_start, len(features))
        return names, risky | guard_risk
