"""Counters and streaming histograms with a deterministic snapshot.

The registry is deliberately tiny: a metric is a name and a mutable
cell, observation is one attribute bump (no locks — the serving layer
is single-pump by design), and :meth:`MetricsRegistry.snapshot` renders
everything into plain sorted dicts ready for ``json.dumps``.

Invariants the property tests pin down:

* a histogram's ``count`` equals the number of ``observe`` calls, and
  its bucket counts sum to ``count`` (the last bucket is an implicit
  ``+inf`` overflow);
* counters and histogram counts are monotone: a later snapshot never
  shows a smaller value than an earlier one.
"""

from __future__ import annotations

import math
from bisect import bisect_left

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
]

# A decade ladder wide enough for batch sizes (1..4096) and
# microsecond-scale latencies alike; callers with tighter needs pass
# their own bounds.
DEFAULT_BUCKETS = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0,
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


class Histogram:
    """A streaming histogram over fixed, sorted bucket bounds.

    Each bound is an inclusive upper edge (``x <= bound``); values above
    the last bound land in an implicit ``+inf`` overflow bucket.  Count,
    sum, min and max are tracked exactly; no samples are retained.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "vmin", "vmax")

    def __init__(self, name: str, bounds=DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be non-empty and increasing")
        self.name = name
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +inf overflow
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        # Leftmost bound with value <= bound: bisect_left's insertion
        # point is exactly that index (len(bounds) = the +inf overflow),
        # and it runs in C — this is the observer's hottest call.
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    def merge(self, snapshot: dict) -> None:
        """Fold one snapshotted histogram (a ``snapshot()`` dict) into this one.

        Bucket counts add, so merging the per-worker histograms of a
        sharded run yields exactly the histogram a single process would
        have recorded.  The snapshot's bucket bounds must match this
        histogram's (the merge is meaningless otherwise).
        """
        buckets = snapshot.get("buckets")
        if not buckets or buckets[-1][0] is not None:
            raise ValueError(
                f"histogram {self.name!r}: malformed snapshot buckets"
            )
        bounds = tuple(float(edge) for edge, _ in buckets[:-1])
        if bounds != self.bounds:
            raise ValueError(
                f"histogram {self.name!r}: bucket bounds differ "
                f"({list(bounds)} vs {list(self.bounds)})"
            )
        for i, (_, n) in enumerate(buckets):
            self.bucket_counts[i] += n
        self.count += snapshot["count"]
        self.total += snapshot["sum"]
        if snapshot["min"] is not None and snapshot["min"] < self.vmin:
            self.vmin = snapshot["min"]
        if snapshot["max"] is not None and snapshot["max"] > self.vmax:
            self.vmax = snapshot["max"]


class MetricsRegistry:
    """Named counters and histograms, created on first use.

    Instruments that aggregate lazily (e.g. the quality monitor's
    scrape-time pipeline) register a *collector* — a zero-argument
    callable invoked at the top of every :meth:`snapshot`, before any
    metric is read.  Collectors fold pending observations in, so a
    snapshot is always consistent no matter when it is taken; the
    pattern is Prometheus's collect hook, kept synchronous because the
    serving layer is single-pump.
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._collectors: list = []

    def register_collector(self, collect) -> None:
        """Run ``collect()`` before every snapshot (idempotent add)."""
        if collect not in self._collectors:
            self._collectors.append(collect)

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str, bounds=DEFAULT_BUCKETS) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, bounds)
        return histogram

    def snapshot(self) -> dict:
        """Everything, as plain sorted dicts (stable across identical runs).

        Histogram buckets are ``[upper_bound, count]`` pairs; the final
        pair's bound is ``null`` (the ``+inf`` overflow).  ``min`` and
        ``max`` are ``null`` while a histogram is empty.
        """
        for collect in self._collectors:
            collect()
        counters = {
            name: c.value for name, c in sorted(self._counters.items())
        }
        histograms = {}
        for name, h in sorted(self._histograms.items()):
            edges = list(h.bounds) + [None]
            histograms[name] = {
                "count": h.count,
                "sum": h.total,
                "min": h.vmin if h.count else None,
                "max": h.vmax if h.count else None,
                "buckets": [
                    [edge, n] for edge, n in zip(edges, h.bucket_counts)
                ],
            }
        return {"counters": counters, "histograms": histograms}

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` dict into this registry.

        Counters sum and histogram buckets add, so merging every
        worker's snapshot into one registry reproduces exactly the
        registry a single shared process would have built — the
        fleet-wide ``stats`` aggregation of the cluster router, and the
        multi-trace path of ``repro analyze``.  Metrics absent here are
        created; metrics present in both must agree on shape (a
        histogram's bucket bounds), else ``ValueError``.
        """
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).inc(int(value))
        for name, h in (snapshot.get("histograms") or {}).items():
            buckets = h.get("buckets") or []
            if not buckets or buckets[-1][0] is not None:
                raise ValueError(
                    f"histogram {name!r}: malformed snapshot buckets"
                )
            bounds = tuple(float(edge) for edge, _ in buckets[:-1])
            self.histogram(name, bounds).merge(h)


def merge_snapshots(snapshots) -> dict:
    """Merge an iterable of snapshot dicts into one snapshot.

    Commutative on counts (ordering only matters if two snapshots
    disagree on a histogram's bounds, which raises either way), with
    deterministic, sorted key order in the result — merging the same
    snapshots always yields the same bytes.  ``None`` entries are
    skipped, so callers can pass worker replies straight in even when
    some workers run unobserved.
    """
    registry = MetricsRegistry()
    for snapshot in snapshots:
        if snapshot is not None:
            registry.merge(snapshot)
    return registry.snapshot()
