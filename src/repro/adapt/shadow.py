"""Shadow evaluation: replay a user's strokes through live vs candidate.

A candidate model earns promotion by *evidence*, never optimism: the
user's recent journaled strokes — with their harvested labels — are
replayed offline through both the live model and the candidate, and the
candidate is promoted only if it is strictly better:

* more strokes classified correctly, or
* the same number correct *and* a strictly larger summed margin toward
  the true labels (the quantity Rubine's §4.6 bias tweak optimizes).

A tie, a regression, or an empty replay set all reject — hot-swapping a
model that merely matches the live one buys nothing and risks churn.

The report is a pure function of ``(live model, candidate model,
labelled strokes)`` built from the same feature pipeline the trainer
uses, so re-running the evaluation anywhere reproduces it byte-for-byte
(:func:`report_hash` over :func:`~repro.hashing.canonical_json`); the
promotion audit trail can therefore pin the exact bytes a verdict was
issued on.
"""

from __future__ import annotations

import numpy as np

from ..features import features_of
from ..geometry import Point, Stroke
from ..hashing import content_hash

__all__ = ["shadow_eval", "report_hash"]


def report_hash(report: dict) -> str:
    """Content hash of a shadow-eval report (the promotion audit id)."""
    return content_hash(report)


def _model_view(recognizer, stroke: Stroke, label: str) -> dict:
    """One model's take on one labelled stroke.

    ``margin`` is toward the *true* label — its linear evaluation minus
    the best other class's — so it is positive exactly when the model
    ranks the truth first, and summing it rewards confidently-right over
    barely-right.  A label the model has no class for scores incorrect
    with zero margin (it cannot possibly rank it first).
    """
    result = recognizer.recognize(stroke)
    full = recognizer.full_classifier
    if label not in full.class_names:
        return {
            "class": result.class_name,
            "correct": False,
            "eager": result.eager,
            "points_seen": result.points_seen,
            "margin": 0.0,
        }
    features = features_of(stroke)
    if full.feature_indices is not None:
        features = features[full.feature_indices]
    scores = full.linear.evaluations(features)
    idx = full.class_names.index(label)
    others = np.delete(scores, idx)
    margin = float(scores[idx] - others.max()) if len(others) else 0.0
    return {
        "class": result.class_name,
        "correct": result.class_name == label,
        "eager": result.eager,
        "points_seen": result.points_seen,
        "margin": margin,
    }


def _totals(views: list[dict]) -> dict:
    correct = sum(1 for v in views if v["correct"])
    return {
        "correct": correct,
        "accuracy": correct / len(views) if views else 0.0,
        "margin_sum": float(sum(v["margin"] for v in views)),
        "eager": sum(1 for v in views if v["eager"]),
    }


def shadow_eval(live, candidate, labelled_strokes: list) -> dict:
    """Replay labelled strokes through both models; return the verdict.

    ``labelled_strokes`` is a list of ``{"class", "points"}`` dicts —
    harvested examples qualify directly.  Returns a report dict with a
    ``verdict`` of ``"promote"`` or ``"reject"`` plus the per-model and
    per-stroke evidence; serialize with
    :func:`~repro.hashing.canonical_json` for the byte-stable form.
    """
    per_stroke = []
    live_views = []
    cand_views = []
    for example in labelled_strokes:
        stroke = Stroke(Point(x, y, t) for x, y, t in example["points"])
        lv = _model_view(live, stroke, example["class"])
        cv = _model_view(candidate, stroke, example["class"])
        live_views.append(lv)
        cand_views.append(cv)
        per_stroke.append(
            {"label": example["class"], "live": lv, "candidate": cv}
        )
    live_totals = _totals(live_views)
    cand_totals = _totals(cand_views)
    delta = {
        "correct": cand_totals["correct"] - live_totals["correct"],
        "margin_sum": cand_totals["margin_sum"] - live_totals["margin_sum"],
    }
    if not per_stroke:
        verdict, reason = "reject", "no strokes to replay"
    elif delta["correct"] > 0:
        verdict = "promote"
        reason = f"+{delta['correct']} correct"
    elif delta["correct"] < 0:
        verdict, reason = "reject", f"{delta['correct']} correct (regression)"
    elif delta["margin_sum"] > 0:
        verdict = "promote"
        reason = f"equal correct, margin +{delta['margin_sum']!r}"
    else:
        verdict, reason = "reject", "no improvement (tie or worse margin)"
    return {
        "strokes": len(per_stroke),
        "live": live_totals,
        "candidate": cand_totals,
        "delta": delta,
        "verdict": verdict,
        "reason": reason,
        "per_stroke": per_stroke,
    }
