"""Observability for the serving stack: tracing, metrics, fault injection.

Three independent pieces, all injected into :mod:`repro.serve` rather
than imported by it — the recognizer hot path contains no observability
code beyond ``if observer is not None`` guards, so with observability
off it stays exactly as fast (and as allocation-free) as before:

* :class:`MetricsRegistry` — named counters and streaming histograms
  with a deterministic :meth:`~MetricsRegistry.snapshot`;
* :class:`Tracer` — per-session spans (collect / classify / timeout /
  manipulate) and events, virtual-clock timestamped, emitted as
  canonical NDJSON so traces diff byte-for-byte;
* :class:`PoolObserver` — the adapter the pool and server call into,
  binding a tracer and a metrics registry to the hook points;
* :class:`FaultInjector` — a seeded, deterministic event mangler
  (drop / duplicate / delay / reorder / kill) for chaos testing;
* :class:`QualityMonitor` — recognition-quality telemetry (margins,
  Mahalanobis rejection distances, eagerness, dwell, feature drift)
  computed from decided gesture prefixes;
* :class:`PerfProfiler` — opt-in wall-clock section timers around the
  serving hot path, reported through ``stats`` and ``BENCH_*.json``;
* :mod:`repro.obs.analyze` — offline trace analytics behind the
  ``repro-gestures analyze`` subcommand.

See ``docs/OBSERVABILITY.md`` for the trace record schema, the metric
name catalogue, and the fault-injection knobs.
"""

from .faults import FaultInjector, FaultPlan
from .metrics import Counter, Histogram, MetricsRegistry, merge_snapshots
from .observer import PoolObserver
from .profile import PerfProfiler
from .quality import QualityMonitor, session_sampled
from .trace import Tracer, encode_record

__all__ = [
    "Counter",
    "FaultInjector",
    "FaultPlan",
    "Histogram",
    "MetricsRegistry",
    "PerfProfiler",
    "PoolObserver",
    "QualityMonitor",
    "Tracer",
    "encode_record",
    "merge_snapshots",
    "session_sampled",
]
