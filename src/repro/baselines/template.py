"""A template-matching baseline recognizer.

The paper surveys alternatives to statistical recognition — "many gesture
researchers choose to hand-code [the classifier] for their particular
application" — and later work standardized on resample-and-match template
recognizers (the $1 family descends directly from this setting).  This
baseline is that approach: resample to a fixed number of points,
translate to the centroid, scale to a unit box, and classify by the
nearest stored template under mean point-to-point distance.

It exists for the comparison benchmark: same training data, same test
data, different technology.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..geometry import Point, Stroke

__all__ = ["TemplateMatcher"]


class TemplateMatcher:
    """Nearest-template classification over normalized strokes."""

    def __init__(self, resample_points: int = 32, rotation_invariant: bool = False):
        if resample_points < 2:
            raise ValueError("need at least two resample points")
        self.resample_points = resample_points
        self.rotation_invariant = rotation_invariant
        self._templates: list[tuple[str, list[Point]]] = []

    @classmethod
    def train(
        cls,
        examples_by_class: Mapping[str, Sequence[Stroke]],
        resample_points: int = 32,
        rotation_invariant: bool = False,
    ) -> "TemplateMatcher":
        """Store every training example as a template."""
        matcher = cls(resample_points, rotation_invariant)
        for class_name, strokes in examples_by_class.items():
            for stroke in strokes:
                matcher.add_template(class_name, stroke)
        if not matcher._templates:
            raise ValueError("no training examples given")
        return matcher

    def add_template(self, class_name: str, stroke: Stroke) -> None:
        self._templates.append((class_name, self._normalize(stroke)))

    @property
    def template_count(self) -> int:
        return len(self._templates)

    def classify(self, stroke: Stroke) -> str:
        """Class of the nearest template."""
        if not self._templates:
            raise ValueError("classifier has no templates")
        candidate = self._normalize(stroke)
        best_class, best_score = self._templates[0][0], math.inf
        for class_name, template in self._templates:
            score = self._distance(candidate, template)
            if score < best_score:
                best_class, best_score = class_name, score
        return best_class

    # -- normalization pipeline -------------------------------------------------

    def _normalize(self, stroke: Stroke) -> list[Point]:
        resampled = stroke.resampled(self.resample_points)
        points = list(resampled)
        if self.rotation_invariant:
            points = self._rotate_to_zero(points)
        points = self._scale_to_unit(points)
        return self._translate_to_origin(points)

    @staticmethod
    def _rotate_to_zero(points: list[Point]) -> list[Point]:
        """Rotate so the centroid-to-first-point angle is zero."""
        cx = sum(p.x for p in points) / len(points)
        cy = sum(p.y for p in points) / len(points)
        theta = math.atan2(points[0].y - cy, points[0].x - cx)
        return [p.rotated(-theta, cx, cy) for p in points]

    @staticmethod
    def _scale_to_unit(points: list[Point]) -> list[Point]:
        min_x = min(p.x for p in points)
        max_x = max(p.x for p in points)
        min_y = min(p.y for p in points)
        max_y = max(p.y for p in points)
        width = max(max_x - min_x, 1e-9)
        height = max(max_y - min_y, 1e-9)
        return [
            Point((p.x - min_x) / width, (p.y - min_y) / height, p.t)
            for p in points
        ]

    @staticmethod
    def _translate_to_origin(points: list[Point]) -> list[Point]:
        cx = sum(p.x for p in points) / len(points)
        cy = sum(p.y for p in points) / len(points)
        return [Point(p.x - cx, p.y - cy, p.t) for p in points]

    @staticmethod
    def _distance(a: list[Point], b: list[Point]) -> float:
        return sum(p.distance_to(q) for p, q in zip(a, b)) / len(a)
