"""Property-based tests on the feature extractors.

The invariants here are what the recognizer's correctness rests on:
batch/incremental agreement on every prefix, translation and time-shift
invariance, and numeric sanity on arbitrary inputs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import IncrementalFeatures, NUM_FEATURES, features_of
from repro.geometry import Point, Stroke

coordinates = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)


@st.composite
def strokes(draw, min_points=1, max_points=40):
    """Strokes with arbitrary positions but realistic timestamps.

    Positions are adversarial floats; timestamps sit on a millisecond
    grid (what real input devices deliver), with occasional zero gaps.
    Sub-microsecond gaps are excluded by construction: they sit exactly
    on the extractor's documented simultaneity threshold, where a time
    shift can flip a sample across the threshold — a discretization
    artifact, not an algorithm property.
    """
    n = draw(st.integers(min_value=min_points, max_value=max_points))
    xs = draw(st.lists(coordinates, min_size=n, max_size=n))
    ys = draw(st.lists(coordinates, min_size=n, max_size=n))
    gaps_ms = draw(
        st.lists(
            st.integers(min_value=0, max_value=500), min_size=n, max_size=n
        )
    )
    t = 0.0
    points = []
    for x, y, gap_ms in zip(xs, ys, gaps_ms):
        t += gap_ms / 1000.0
        points.append(Point(x, y, t))
    return Stroke(points)


def assert_features_equivalent(a, b, rtol=1e-6, atol=1e-6):
    """Feature equality up to the inherent +-pi ambiguity of f9.

    A path segment that exactly reverses direction turns by exactly pi;
    the sign of that turn is decided by the sign of a zero cross product,
    which float rounding can flip under translation.  The signed total
    angle (f9) is therefore compared modulo 2*pi; every other feature is
    compared directly.
    """
    import math

    mask = np.ones(NUM_FEATURES, dtype=bool)
    mask[8] = False
    np.testing.assert_allclose(a[mask], b[mask], rtol=rtol, atol=atol)
    diff = abs(a[8] - b[8]) % (2 * math.pi)
    assert min(diff, 2 * math.pi - diff) < 1e-4


class TestNumericSanity:
    @given(strokes())
    @settings(max_examples=150, deadline=None)
    def test_features_always_finite(self, stroke):
        f = features_of(stroke)
        assert f.shape == (NUM_FEATURES,)
        assert np.isfinite(f).all()

    @given(strokes())
    @settings(max_examples=100, deadline=None)
    def test_nonnegative_features(self, stroke):
        f = features_of(stroke)
        # Lengths, absolute angle, sharpness, speeds, durations are >= 0.
        for idx in (2, 4, 7, 9, 10, 11, 12):
            assert f[idx] >= 0.0

    @given(strokes())
    @settings(max_examples=100, deadline=None)
    def test_trig_features_bounded(self, stroke):
        f = features_of(stroke)
        for idx in (0, 1, 5, 6):
            assert -1.0 - 1e-9 <= f[idx] <= 1.0 + 1e-9

    @given(strokes(min_points=2))
    @settings(max_examples=100, deadline=None)
    def test_endpoint_distance_at_most_path_length(self, stroke):
        f = features_of(stroke)
        assert f[4] <= f[7] + 1e-6


class TestIncrementalEquivalence:
    @given(strokes(min_points=1, max_points=30))
    @settings(max_examples=150, deadline=None)
    def test_incremental_matches_batch_on_every_prefix(self, stroke):
        inc = IncrementalFeatures()
        for i, p in enumerate(stroke, start=1):
            inc.add_point(p)
            batch = features_of(stroke.subgesture(i))
            np.testing.assert_allclose(
                inc.vector, batch, rtol=1e-9, atol=1e-9
            )


class TestInvariances:
    # Quarter-pixel grid: positions and offsets are exactly representable
    # in binary floating point, so translating never perturbs coordinate
    # differences.  (With fully adversarial floats, rounding can push a
    # segment across the extractor's documented 3-px turn-angle noise
    # floor — a discretization artifact, not a property of the features.)
    grid_coordinates = st.integers(min_value=-40_000, max_value=40_000).map(
        lambda q: q / 4.0
    )

    @given(
        strokes(min_points=2),
        grid_coordinates,
        grid_coordinates,
        st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_translation_invariance(self, stroke, dx, dy, data):
        snapped = Stroke(
            Point(round(p.x * 4) / 4.0, round(p.y * 4) / 4.0, p.t)
            for p in stroke
        )
        a = features_of(snapped)
        b = features_of(snapped.translated(dx, dy))
        assert_features_equivalent(a, b, rtol=1e-5, atol=1e-5)

    @given(strokes(min_points=2), st.floats(min_value=0.0, max_value=1e4))
    @settings(max_examples=100, deadline=None)
    def test_time_shift_invariance(self, stroke, shift):
        shifted = Stroke(Point(p.x, p.y, p.t + shift) for p in stroke)
        assert_features_equivalent(
            features_of(stroke), features_of(shifted), rtol=1e-5, atol=1e-5
        )
