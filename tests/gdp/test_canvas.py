"""Unit tests for the GDP canvas model."""

import pytest

from repro.gdp import Canvas, GroupShape, LineShape
from repro.geometry import Stroke


@pytest.fixture
def canvas():
    return Canvas(width=400, height=300)


class TestCreation:
    def test_create_shapes(self, canvas):
        rect = canvas.create_rect(0, 0, 10, 10)
        line = canvas.create_line(20, 20, 30, 30)
        ellipse = canvas.create_ellipse(50, 50, 5, 5)
        text = canvas.create_text(70, 70, "hi")
        assert list(canvas) == [rect, line, ellipse, text]

    def test_later_shapes_are_on_top(self, canvas):
        below = canvas.create_rect(0, 0, 50, 50)
        above = canvas.create_rect(0, 0, 50, 50)
        assert canvas.top_shape_at(0, 0) is above

    def test_creation_notifies(self, canvas):
        seen = []
        canvas.add_observer(seen.append)
        canvas.create_line(0, 0, 1, 1)
        assert seen == [canvas]


class TestDeletion:
    def test_delete(self, canvas):
        shape = canvas.create_line(0, 0, 1, 1)
        assert canvas.delete(shape)
        assert shape not in canvas
        assert not canvas.delete(shape)

    def test_delete_clears_from_selection(self, canvas):
        shape = canvas.create_line(0, 0, 1, 1)
        canvas.select(shape)
        canvas.delete(shape)
        assert shape not in canvas.selection

    def test_clear(self, canvas):
        canvas.create_line(0, 0, 1, 1)
        canvas.create_rect(0, 0, 1, 1)
        canvas.clear()
        assert len(canvas) == 0


class TestQueries:
    def test_top_shape_at_miss(self, canvas):
        canvas.create_rect(0, 0, 10, 10)
        assert canvas.top_shape_at(200, 200) is None

    def test_shapes_enclosed_by(self, canvas):
        inside = canvas.create_rect(40, 40, 60, 60)
        outside = canvas.create_rect(300, 200, 320, 220)
        loop = Stroke.from_xy(
            [(0, 0), (100, 0), (100, 100), (0, 100)]
        )
        enclosed = canvas.shapes_enclosed_by(loop)
        assert inside in enclosed
        assert outside not in enclosed

    def test_enclosure_uses_reference_point(self, canvas):
        # A shape straddling the loop counts iff its center is inside.
        straddling = canvas.create_rect(90, 40, 150, 60)  # center x=120
        loop = Stroke.from_xy([(0, 0), (100, 0), (100, 100), (0, 100)])
        assert straddling not in canvas.shapes_enclosed_by(loop)


class TestGrouping:
    def test_group_replaces_members(self, canvas):
        a = canvas.create_line(0, 0, 1, 1)
        b = canvas.create_rect(5, 5, 6, 6)
        c = canvas.create_text(50, 50)
        group = canvas.group([a, b])
        assert isinstance(group, GroupShape)
        assert a not in canvas and b not in canvas
        assert group in canvas and c in canvas
        assert set(group.members) == {a, b}

    def test_group_ignores_foreign_shapes(self, canvas):
        foreign = LineShape(0, 0, 1, 1)  # never added to the canvas
        group = canvas.group([foreign])
        assert group.members == []

    def test_add_to_group_moves_top_level_shape(self, canvas):
        a = canvas.create_line(0, 0, 1, 1)
        group = canvas.group([a])
        b = canvas.create_rect(5, 5, 6, 6)
        assert canvas.add_to_group(group, b)
        assert b not in canvas
        assert b in group.members

    def test_add_to_group_rejects_group_itself(self, canvas):
        a = canvas.create_line(0, 0, 1, 1)
        group = canvas.group([a])
        assert not canvas.add_to_group(group, group)

    def test_ungroup_restores_members(self, canvas):
        a = canvas.create_line(0, 0, 1, 1)
        b = canvas.create_rect(5, 5, 6, 6)
        group = canvas.group([a, b])
        restored = canvas.ungroup(group)
        assert set(restored) == {a, b}
        assert group not in canvas
        assert a in canvas and b in canvas

    def test_ungroup_foreign_group_is_noop(self, canvas):
        assert canvas.ungroup(GroupShape()) == []

    def test_grouped_shape_found_by_hit(self, canvas):
        a = canvas.create_rect(0, 0, 20, 20)
        group = canvas.group([a])
        assert canvas.top_shape_at(10, 0) is group


class TestSelection:
    def test_select_replaces(self, canvas):
        a = canvas.create_line(0, 0, 1, 1)
        b = canvas.create_line(2, 2, 3, 3)
        canvas.select(a)
        canvas.select(b)
        assert canvas.selection == {b}

    def test_select_extend(self, canvas):
        a = canvas.create_line(0, 0, 1, 1)
        b = canvas.create_line(2, 2, 3, 3)
        canvas.select(a)
        canvas.select(b, extend=True)
        assert canvas.selection == {a, b}

    def test_select_foreign_shape_ignored(self, canvas):
        foreign = LineShape(0, 0, 1, 1)
        canvas.select(foreign)
        assert canvas.selection == set()

    def test_clear_selection(self, canvas):
        a = canvas.create_line(0, 0, 1, 1)
        canvas.select(a)
        canvas.clear_selection()
        assert canvas.selection == set()
