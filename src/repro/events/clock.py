"""A virtual clock.

All interactive behaviour in the reproduction — most importantly the
200 ms motionless timeout — is driven by simulated time, so tests and
benchmarks are deterministic and run as fast as the CPU allows, never in
real time.
"""

from __future__ import annotations

__all__ = ["InstrumentedClock", "VirtualClock"]


class VirtualClock:
    """Monotonic simulated time in seconds."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds; returns the new time."""
        if dt < 0.0:
            raise ValueError("the clock cannot run backwards")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move time forward to ``t`` (no-op if ``t`` is in the past)."""
        if t > self._now:
            self._now = t
        return self._now


class InstrumentedClock(VirtualClock):
    """A :class:`VirtualClock` that counts how often it is consulted.

    Time-driven components are expected to read the clock *once* per
    tick and judge everything in that tick against the single value
    (re-reads can observe a shared clock mid-advance and tear a tick's
    notion of "now").  This subclass makes the discipline testable:
    ``reads`` counts ``now`` property accesses, ``advances`` counts
    ``advance``/``advance_to`` calls — an advance's return value is
    deliberately *not* counted as a read.
    """

    def __init__(self, start: float = 0.0):
        super().__init__(start)
        self.reads = 0
        self.advances = 0

    @property
    def now(self) -> float:
        self.reads += 1
        return self._now

    def advance(self, dt: float) -> float:
        self.advances += 1
        return super().advance(dt)

    def advance_to(self, t: float) -> float:
        self.advances += 1
        return super().advance_to(t)
