"""The serving layer: many concurrent eager recognitions, batched.

The reproduction proper (``repro.eager``, ``repro.interaction``) is
single-user by construction — one mouse, one interaction at a time,
advanced point by point.  This package turns the same recognizer into a
multi-tenant streaming service:

* :class:`FeatureBank` — Rubine's incremental features for thousands of
  in-flight strokes at once, held in flat numpy arrays;
* :class:`BatchEvaluator` — all per-class linear discriminants (full
  classifier and AUC) evaluated with one matrix product per tick, with
  a sequential fallback that makes batched decisions provably identical
  to the per-session path;
* :class:`SessionPool` — lifecycle, the paper's 200 ms motionless
  timeout (virtual-clock driven), and decision emission;
* :class:`ModelRegistry` — versioned, content-addressed storage of
  trained recognizers;
* :class:`GestureServer` — an asyncio front end speaking
  newline-delimited JSON over TCP, plus the same API in-process;
* :mod:`repro.serve.loadgen` — the load harness behind
  ``benchmarks/bench_serve_throughput.py`` and ``repro-gestures loadgen``.
"""

from .bank import FeatureBank
from .batch import BatchEvaluator
from .framing import (
    DEFAULT_MAX_FRAME,
    FRAME_MAGIC,
    FrameReader,
    encode_frame,
    encode_frames,
    encode_hello,
    encode_hello_ack,
    negotiate,
)
from .lines import LineReader
from .loadgen import (
    LoadResult,
    compare_modes,
    family_templates,
    generate_workload,
    run_load,
)
from .pool import DEFAULT_IDLE_TIMEOUT, Decision, SessionPool
from .protocol import (
    ProtocolError,
    Request,
    decode_payload,
    decode_request,
    encode_decision,
    encode_error,
    encode_stats,
    encode_swap,
)
from .registry import ModelRegistry, ModelVersion
from .server import Channel, DEFAULT_MAX_LINE, GestureServer

__all__ = [
    "DEFAULT_IDLE_TIMEOUT",
    "DEFAULT_MAX_FRAME",
    "DEFAULT_MAX_LINE",
    "FRAME_MAGIC",
    "BatchEvaluator",
    "Channel",
    "Decision",
    "FeatureBank",
    "FrameReader",
    "GestureServer",
    "LineReader",
    "LoadResult",
    "ModelRegistry",
    "ModelVersion",
    "ProtocolError",
    "Request",
    "SessionPool",
    "compare_modes",
    "decode_payload",
    "decode_request",
    "encode_decision",
    "encode_error",
    "encode_frame",
    "encode_frames",
    "encode_hello",
    "encode_hello_ack",
    "encode_stats",
    "encode_swap",
    "family_templates",
    "generate_workload",
    "negotiate",
    "run_load",
]
