"""Property-based tests on GDP canvas invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gdp import Canvas, GroupShape


@st.composite
def canvas_operations(draw):
    """A random sequence of structural canvas operations."""
    ops = []
    n = draw(st.integers(min_value=1, max_value=25))
    for _ in range(n):
        ops.append(
            draw(
                st.sampled_from(
                    ["create_rect", "create_line", "create_ellipse",
                     "create_text", "delete", "group", "ungroup", "select"]
                )
            )
        )
    return ops


def apply_operations(canvas: Canvas, ops, rng_ints):
    created = []
    for op in ops:
        if op == "create_rect":
            created.append(canvas.create_rect(0, 0, 10, 10))
        elif op == "create_line":
            created.append(canvas.create_line(0, 0, 10, 10))
        elif op == "create_ellipse":
            created.append(canvas.create_ellipse(5, 5, 3, 3))
        elif op == "create_text":
            created.append(canvas.create_text(0, 0))
        elif op == "delete" and len(canvas):
            canvas.delete(canvas.shapes[next(rng_ints) % len(canvas)])
        elif op == "group" and len(canvas) >= 2:
            members = list(canvas.shapes[:2])
            canvas.group(members)
        elif op == "ungroup":
            groups = [s for s in canvas if isinstance(s, GroupShape)]
            if groups:
                canvas.ungroup(groups[0])
        elif op == "select" and len(canvas):
            canvas.select(canvas.shapes[next(rng_ints) % len(canvas)])


class TestCanvasInvariants:
    @given(canvas_operations(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=100, deadline=None)
    def test_selection_is_subset_of_shapes(self, ops, seed):
        canvas = Canvas()
        counter = iter(range(seed % 1000, seed % 1000 + 10_000))
        apply_operations(canvas, ops, counter)
        assert canvas.selection <= set(canvas.shapes)

    @given(canvas_operations(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=100, deadline=None)
    def test_shape_ids_unique_at_top_level(self, ops, seed):
        canvas = Canvas()
        counter = iter(range(seed % 1000, seed % 1000 + 10_000))
        apply_operations(canvas, ops, counter)
        ids = [shape.id for shape in canvas]
        assert len(ids) == len(set(ids))

    @given(canvas_operations(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_views_mirror_canvas(self, ops, seed):
        from repro.gdp.views import CanvasView

        canvas = Canvas()
        view = CanvasView(canvas)
        counter = iter(range(seed % 1000, seed % 1000 + 10_000))
        apply_operations(canvas, ops, counter)
        # One shape view per top-level shape, no strays.
        assert {c.shape.id for c in view.children} == {
            shape.id for shape in canvas
        }

    @given(st.integers(min_value=2, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_group_ungroup_round_trip(self, count):
        canvas = Canvas()
        shapes = [canvas.create_rect(i * 20, 0, i * 20 + 10, 10) for i in range(count)]
        group = canvas.group(shapes)
        restored = canvas.ungroup(group)
        assert set(restored) == set(shapes)
        assert set(canvas.shapes) == set(shapes)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-100, max_value=100, allow_nan=False),
                st.floats(min_value=-100, max_value=100, allow_nan=False),
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_moves_compose(self, deltas):
        canvas = Canvas()
        rect = canvas.create_rect(0, 0, 10, 10)
        for dx, dy in deltas:
            rect.move_by(dx, dy)
        total_dx = sum(dx for dx, _ in deltas)
        total_dy = sum(dy for _, dy in deltas)
        assert rect.corners[0][0] == pytest_approx(total_dx)
        assert rect.corners[0][1] == pytest_approx(total_dy)


def pytest_approx(value, tol=1e-6):
    import pytest

    return pytest.approx(value, abs=tol)
