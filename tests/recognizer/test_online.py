"""Tests for incremental (interactive) training."""

import numpy as np
import pytest

from repro.recognizer import GestureClassifier, OnlineTrainer
from repro.synth import GestureGenerator, eight_direction_templates, ud_templates


class TestAccumulation:
    def test_class_bookkeeping(self, directions_train):
        trainer = OnlineTrainer()
        for name, strokes in directions_train.items():
            for stroke in strokes:
                trainer.add_example(name, stroke)
        assert set(trainer.class_names) == set(directions_train)
        assert trainer.example_count("ur") == len(directions_train["ur"])
        assert trainer.total_examples == sum(
            len(v) for v in directions_train.values()
        )

    def test_remove_class(self, directions_train):
        trainer = OnlineTrainer()
        trainer.add_example("ur", directions_train["ur"][0])
        assert trainer.remove_class("ur")
        assert not trainer.remove_class("ur")
        assert trainer.example_count("ur") == 0

    def test_wrong_dimension_rejected(self):
        trainer = OnlineTrainer()
        with pytest.raises(ValueError):
            trainer.add_feature_vector("x", np.zeros(4))

    def test_build_requires_two_classes(self, directions_train):
        trainer = OnlineTrainer()
        trainer.add_example("ur", directions_train["ur"][0])
        with pytest.raises(ValueError):
            trainer.build()


class TestEquivalenceWithBatch:
    def test_online_equals_batch_training(self, directions_train):
        """Sufficient statistics are lossless: same data, same classifier."""
        trainer = OnlineTrainer()
        for name, strokes in directions_train.items():
            for stroke in strokes:
                trainer.add_example(name, stroke)
        online = trainer.build()
        batch = GestureClassifier.train(directions_train)
        # Same class set, same decisions on fresh data.
        assert set(online.class_names) == set(batch.class_names)
        probe_gen = GestureGenerator(eight_direction_templates(), seed=4321)
        for name, strokes in probe_gen.generate_strokes(3).items():
            for stroke in strokes:
                assert online.classify(stroke) == batch.classify(stroke)

    def test_online_weights_match_batch(self, directions_train):
        trainer = OnlineTrainer()
        for name, strokes in directions_train.items():
            for stroke in strokes:
                trainer.add_example(name, stroke)
        online = trainer.build()
        batch = GestureClassifier.train(directions_train)
        batch_order = [
            batch.linear.class_index(name) for name in online.class_names
        ]
        np.testing.assert_allclose(
            online.linear.weights,
            batch.linear.weights[batch_order],
            rtol=1e-6,
            atol=1e-8,
        )


class TestRuntimeClassAddition:
    """The GRANDMA story: add a gesture class to a live application."""

    def test_new_class_recognized_after_retrain(self):
        generator = GestureGenerator(ud_templates(), seed=21)
        trainer = OnlineTrainer()
        for name, strokes in generator.generate_strokes(10).items():
            for stroke in strokes:
                trainer.add_example(name, stroke)
        classifier = trainer.build()
        assert set(classifier.class_names) == {"U", "D"}

        # The designer now draws examples of a brand-new class: a plain
        # rightward flick.
        from repro.synth import GestureTemplate

        flick = GestureTemplate(
            name="flick", waypoints=((0.0, 0.0), (0.8, 0.0))
        )
        flick_gen = GestureGenerator({"flick": flick}, seed=22)
        for stroke in flick_gen.generate_strokes(10)["flick"]:
            trainer.add_example("flick", stroke)
        retrained = trainer.build()
        assert set(retrained.class_names) == {"U", "D", "flick"}

        probe = GestureGenerator({"flick": flick}, seed=23)
        hits = sum(
            retrained.classify(s) == "flick"
            for s in probe.generate_strokes(10)["flick"]
        )
        assert hits >= 8
        # The old classes still work.
        ud_probe = GestureGenerator(ud_templates(), seed=24)
        for name, strokes in ud_probe.generate_strokes(5).items():
            correct = sum(retrained.classify(s) == name for s in strokes)
            assert correct >= 4

    def test_live_handler_swap(self, directions_train):
        """Swapping a gesture handler's recognizer mid-session."""
        from repro.interaction import GestureHandler

        trainer = OnlineTrainer()
        for name, strokes in directions_train.items():
            for stroke in strokes:
                trainer.add_example(name, stroke)
        handler = GestureHandler(recognizer=trainer.build(), use_eager=False)
        assert "ur" in handler.recognizer.class_names
        # More training data arrives; rebuild and swap in place.
        handler.recognizer = trainer.build()
        assert handler.phase.name == "IDLE"
