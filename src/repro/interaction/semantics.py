"""Gesture semantics: the recog / manip / done triple.

"The gesture semantics consist of three expressions: recog, evaluated
when the gesture is recognized (i.e. at the phase transition), manip,
evaluated for each mouse point that arrives during the manipulation
phase, and done, evaluated when the interaction ends." (§3.2)

GRANDMA evaluated Objective-C message expressions with lazily bound
gestural attributes (``<startX>``, ``<currentX>``, ...).  Here the three
expressions are Python callables receiving a :class:`GestureContext`
exposing the same attributes; the value returned by ``recog`` is stored
in :attr:`GestureContext.recog` for the later expressions — exactly how
GDP's rectangle semantics pass the created rectangle from ``recog`` to
``manip``.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field
from typing import Any, Callable

from ..geometry import Point, Stroke

if typing.TYPE_CHECKING:
    from ..mvc import DispatchContext, View

__all__ = ["GestureContext", "GestureSemantics"]


@dataclass
class GestureContext:
    """Everything a semantics expression can see.

    The names mirror the paper's attribute vocabulary: ``view`` is "the
    object at which the gesture is directed", ``start_x``/``start_y``
    are ``<startX>``/``<startY>``, ``current_x``/``current_y`` are
    ``<currentX>``/``<currentY>`` (the mouse position at recognition
    time, updated through the manipulation phase), and ``recog`` holds
    the value produced by the recog expression.
    """

    view: "View"
    dispatch: "DispatchContext"
    gesture: Stroke  # the collected gesture, frozen at recognition
    class_name: str | None = None
    current: Point | None = None  # latest mouse point
    recog: Any = None  # recog expression's result
    eagerly_recognized: bool = False
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def start_x(self) -> float:
        """``<startX>`` — x of the gesture's first point."""
        return self.gesture.start.x

    @property
    def start_y(self) -> float:
        """``<startY>`` — y of the gesture's first point."""
        return self.gesture.start.y

    @property
    def current_x(self) -> float:
        """``<currentX>`` — x of the most recent mouse point."""
        point = self.current if self.current is not None else self.gesture.end
        return point.x

    @property
    def current_y(self) -> float:
        """``<currentY>`` — y of the most recent mouse point."""
        point = self.current if self.current is not None else self.gesture.end
        return point.y

    @property
    def enclosed_stroke(self) -> Stroke:
        """The gesture as a closed region (for circling gestures)."""
        return self.gesture

    @property
    def initial_angle(self) -> float:
        """Direction of the gesture's first segment, in radians.

        The §2 "modified version" of GDP maps this to the rectangle's
        orientation ("the initial angle of the rectangle gesture
        determines the orientation of the rectangle").  Smoothed over
        the first three points like the f1/f2 features.
        """
        import math

        points = list(self.gesture)
        if len(points) < 2:
            return 0.0
        anchor = points[min(2, len(points) - 1)]
        return math.atan2(anchor.y - points[0].y, anchor.x - points[0].x)

    @property
    def gesture_length(self) -> float:
        """Arc length of the collected gesture.

        The modified GDP maps this to line thickness ("the length of
        the line gesture determines the thickness of the line").
        """
        return self.gesture.path_length()


Expression = Callable[[GestureContext], Any]


@dataclass
class GestureSemantics:
    """The recog/manip/done triple for one gesture class.

    Any expression may be None (the paper's ``done = nil``).
    """

    recog: Expression | None = None
    manip: Expression | None = None
    done: Expression | None = None

    def on_recognized(self, context: GestureContext) -> None:
        """Evaluate recog at the phase transition; stash its result."""
        if self.recog is not None:
            context.recog = self.recog(context)

    def on_manipulate(self, context: GestureContext) -> None:
        """Evaluate manip for one manipulation-phase mouse point."""
        if self.manip is not None:
            self.manip(context)

    def on_done(self, context: GestureContext) -> None:
        """Evaluate done when the interaction ends."""
        if self.done is not None:
            self.done(context)
