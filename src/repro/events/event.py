"""Input events.

GRANDMA ran against X10 mouse events on a MicroVAX; the reproduction
defines its own event vocabulary and synthesizes streams of them.  An
event handler's *predicate* (paper §3.1) typically dispatches on the
event kind and mouse button, so both are first-class fields.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..geometry import Point

__all__ = ["EventKind", "MouseButton", "MouseEvent", "TimerEvent"]


class EventKind(enum.Enum):
    """The mouse event types GRANDMA handlers discriminate on."""

    PRESS = "press"
    MOVE = "move"
    RELEASE = "release"


class MouseButton(enum.IntEnum):
    """Mouse buttons; the paper suggests dedicating buttons to styles
    ("use one mouse button for gesturing and another for direct
    manipulation")."""

    LEFT = 1
    MIDDLE = 2
    RIGHT = 3


@dataclass(frozen=True)
class MouseEvent:
    """A mouse event at screen position ``(x, y)`` at time ``t`` seconds."""

    kind: EventKind
    x: float
    y: float
    t: float
    button: MouseButton = MouseButton.LEFT

    @property
    def point(self) -> Point:
        """The event's position-with-time, as feature extraction wants it."""
        return Point(self.x, self.y, self.t)

    def is_press(self) -> bool:
        return self.kind is EventKind.PRESS

    def is_move(self) -> bool:
        return self.kind is EventKind.MOVE

    def is_release(self) -> bool:
        return self.kind is EventKind.RELEASE


@dataclass(frozen=True)
class TimerEvent:
    """A scheduled wakeup; carries the token it was scheduled under.

    The gesture handler uses one of these for the paper's 200 ms
    motionless timeout: it schedules a timer on every mouse move and
    treats the timer firing (without an intervening move) as the
    collection-to-manipulation phase transition.
    """

    token: int
    t: float
