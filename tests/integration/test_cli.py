"""Integration tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.datasets import GestureSet
from repro.synth import GestureGenerator, ud_templates


class TestTrain:
    def test_train_writes_recognizer(self, tmp_path, capsys):
        out = tmp_path / "rec.json"
        code = main(
            [
                "train",
                "--family",
                "ud",
                "--examples",
                "8",
                "--seed",
                "3",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert "full_classifier" in data and "auc" in data
        assert "trained on 16 examples" in capsys.readouterr().out

    def test_train_from_dataset_file(self, tmp_path, capsys):
        dataset = GestureSet.from_generator(
            "ud", GestureGenerator(ud_templates(), seed=4), 8
        )
        dataset_path = tmp_path / "set.json"
        dataset.save(dataset_path)
        out = tmp_path / "rec.json"
        code = main(
            ["train", "--dataset", str(dataset_path), "--output", str(out)]
        )
        assert code == 0
        assert out.exists()

    def test_unknown_family_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["train", "--family", "nope", "--output", str(tmp_path / "x")])


class TestClassify:
    def test_classify_reports_accuracy(self, tmp_path, capsys):
        rec_path = tmp_path / "rec.json"
        main(
            [
                "train",
                "--family",
                "ud",
                "--examples",
                "10",
                "--seed",
                "5",
                "--output",
                str(rec_path),
            ]
        )
        capsys.readouterr()
        dataset = GestureSet.from_generator(
            "ud-test", GestureGenerator(ud_templates(), seed=99), 5
        )
        dataset_path = tmp_path / "test.json"
        dataset.save(dataset_path)
        code = main(["classify", str(rec_path), str(dataset_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "/10 correct" in out


class TestEvaluate:
    def test_evaluate_prints_summary(self, capsys):
        code = main(
            [
                "evaluate",
                "--family",
                "ud",
                "--train",
                "8",
                "--test",
                "5",
                "--seed",
                "6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "full classifier accuracy" in out
        assert "eager recognizer accuracy" in out

    def test_evaluate_with_grid(self, capsys):
        code = main(
            [
                "evaluate",
                "--family",
                "ud",
                "--train",
                "8",
                "--test",
                "3",
                "--seed",
                "6",
                "--grid",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "U:" in out and "D:" in out


class TestDemo:
    def test_demo_renders_canvas(self, capsys):
        code = main(["demo", "--seed", "42"])
        assert code == 0
        out = capsys.readouterr().out
        assert "shapes on the canvas" in out
        assert "+---" in out  # the rendered border
