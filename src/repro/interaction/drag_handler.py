"""Direct-manipulation handlers: drag and click.

"The drag handler handles drag interactions, enabling entire objects (or
parts of objects) to be dragged by the mouse." (§3.1)

These are the handlers that coexist with gesture handlers in the same
GRANDMA interface — GDP's control points respond to drag while the
window responds to gesture, and a view may carry both (distinguished by
handler predicates, e.g. different mouse buttons).
"""

from __future__ import annotations

from typing import Callable, Protocol

from ..events import MouseEvent
from ..mvc import DispatchContext, EventHandler, EventPredicate, View

__all__ = ["Draggable", "DragHandler", "ClickHandler"]


class Draggable(Protocol):
    """What a model must support for the stock drag handler."""

    def move_by(self, dx: float, dy: float) -> None:  # pragma: no cover
        ...


class DragHandler(EventHandler):
    """Drags the model under the cursor by the mouse's motion.

    By default the dragged object is the pressed view's model (which must
    be :class:`Draggable`); pass ``target_of`` to redirect — e.g. GDP's
    control-point views drag a *corner* of their shape rather than the
    shape itself.
    """

    def __init__(
        self,
        predicate: EventPredicate | None = None,
        target_of: Callable[[View], Draggable | None] | None = None,
    ):
        super().__init__(predicate)
        self._target_of = target_of or (lambda view: view.model)
        self._target: Draggable | None = None
        self._last: tuple[float, float] | None = None

    def begin(
        self, event: MouseEvent, view: View, context: DispatchContext
    ) -> bool:
        target = self._target_of(view)
        if target is None:
            return False
        self._target = target
        self._last = (event.x, event.y)
        return True

    def update(self, event: MouseEvent, context: DispatchContext) -> None:
        if self._target is None or self._last is None:
            return
        dx, dy = event.x - self._last[0], event.y - self._last[1]
        if dx or dy:
            self._target.move_by(dx, dy)
        self._last = (event.x, event.y)

    def end(self, event: MouseEvent, context: DispatchContext) -> None:
        self.update(event, context)
        self._target = None
        self._last = None


class ClickHandler(EventHandler):
    """Fires a callback on press-release with little intervening motion."""

    def __init__(
        self,
        on_click: Callable[[View, MouseEvent], None],
        predicate: EventPredicate | None = None,
        slop: float = 4.0,
    ):
        super().__init__(predicate)
        self.on_click = on_click
        self.slop = slop
        self._view: View | None = None
        self._origin: tuple[float, float] | None = None
        self._moved_too_far = False

    def begin(
        self, event: MouseEvent, view: View, context: DispatchContext
    ) -> bool:
        self._view = view
        self._origin = (event.x, event.y)
        self._moved_too_far = False
        return True

    def update(self, event: MouseEvent, context: DispatchContext) -> None:
        if self._origin is None:
            return
        dx, dy = event.x - self._origin[0], event.y - self._origin[1]
        if dx * dx + dy * dy > self.slop * self.slop:
            self._moved_too_far = True

    def end(self, event: MouseEvent, context: DispatchContext) -> None:
        view, moved = self._view, self._moved_too_far
        self._view = None
        self._origin = None
        if view is not None and not moved:
            self.on_click(view, event)
