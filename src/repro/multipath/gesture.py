"""Multi-path gestures — strokes made with several fingers at once.

"The two-phase interaction technique is also applicable to multi-path
gestures.  Using the Sensor Frame as an input device, I have implemented
a drawing program based on multiple finger gestures." (§6)

The Sensor Frame is hardware we cannot have; a multi-path gesture here
is simply a tuple of simultaneous :class:`~repro.geometry.Stroke`
objects, produced synthetically.  Paths are kept in canonical order
(leftmost starting point first) so feature concatenation is stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..geometry import BoundingBox, Stroke

__all__ = ["MultiPathGesture"]


@dataclass(frozen=True)
class MultiPathGesture:
    """One or more simultaneous strokes."""

    paths: tuple[Stroke, ...]

    def __init__(self, paths: Iterable[Stroke]):
        ordered = sorted(
            (p for p in paths if len(p) > 0),
            key=lambda s: (s.start.x, s.start.y),
        )
        if not ordered:
            raise ValueError("a multi-path gesture needs at least one path")
        object.__setattr__(self, "paths", tuple(ordered))

    @property
    def path_count(self) -> int:
        return len(self.paths)

    def __iter__(self) -> Iterator[Stroke]:
        return iter(self.paths)

    @property
    def duration(self) -> float:
        """Elapsed time across all paths."""
        start = min(p.start.t for p in self.paths)
        end = max(p.end.t for p in self.paths)
        return end - start

    def bounding_box(self) -> BoundingBox:
        box = BoundingBox()
        for path in self.paths:
            for point in path:
                box.extend(point.x, point.y)
        return box

    def prefix_by_time(self, t: float) -> "MultiPathGesture":
        """All points (across paths) with timestamp <= ``t``.

        The multi-path analogue of a subgesture: what the recognizer has
        seen ``t`` seconds into the interaction.  Paths with no points
        yet are dropped.
        """
        clipped = [
            Stroke([q for q in path if q.t <= t]) for path in self.paths
        ]
        clipped = [path for path in clipped if len(path) > 0]
        if not clipped:
            raise ValueError(f"no path has begun by t={t}")
        return MultiPathGesture(clipped)
