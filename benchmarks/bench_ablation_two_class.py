"""Ablation — the 2C-class decomposition vs a naive two-class AUC (§4.4).

"A linear discriminator will not be adequate to discriminate between two
classes ambiguous and unambiguous subgestures.  What must be done is to
turn this two-class problem into a multi-class problem."

The paper's argument: the unambiguous subgestures of different gesture
classes look nothing alike, so lumping them into one Gaussian class
violates the model.  Expected shape: the naive two-class AUC either
loses accuracy, loses eagerness, or both, relative to the 2C split.
"""

import pytest
from conftest import TEST_PARAMS, TEST_PER_CLASS, TRAIN_PER_CLASS, write_report

from repro.datasets import GestureSet
from repro.eager import EagerTrainingConfig, train_eager_recognizer
from repro.evaluate import evaluate_recognizer
from repro.synth import GestureGenerator, eight_direction_templates


@pytest.fixture(scope="module")
def workload():
    train = GestureGenerator(
        eight_direction_templates(), seed=131
    ).generate_strokes(TRAIN_PER_CLASS)
    test = GestureSet.from_generator(
        "test",
        GestureGenerator(
            eight_direction_templates(), params=TEST_PARAMS, seed=132
        ),
        TEST_PER_CLASS,
    )
    return train, test


def score(result):
    """A single figure of merit: accuracy, breaking ties by eagerness.

    (1 - fraction seen) rewards eagerness; errors are penalized 5x,
    mirroring the paper's asymmetric costs.
    """
    return result.eager_accuracy * 5 + (1 - result.eagerness.mean_fraction_seen)


def test_two_class_vs_2c(workload):
    train, test = workload
    results = {}
    for label, config in [
        ("2C classes (paper)", EagerTrainingConfig()),
        ("naive two-class", EagerTrainingConfig(two_class_only=True)),
    ]:
        report = train_eager_recognizer(train, config=config)
        results[label] = evaluate_recognizer(report.recognizer, test)

    paper = results["2C classes (paper)"]
    naive = results["naive two-class"]
    write_report(
        "ablation_two_class",
        "Ablation: 2C-way AUC vs naive ambiguous/unambiguous (§4.4)\n\n"
        f"{'2C classes (paper)':<22} eager acc {paper.eager_accuracy:6.1%}  "
        f"seen {paper.eagerness.mean_fraction_seen:6.1%}\n"
        f"{'naive two-class':<22} eager acc {naive.eager_accuracy:6.1%}  "
        f"seen {naive.eagerness.mean_fraction_seen:6.1%}\n\n"
        "expected: the multimodal 'unambiguous' class breaks the Gaussian\n"
        "model, so the naive AUC is dominated on accuracy x eagerness.",
    )
    assert score(paper) >= score(naive) - 1e-9


def test_two_class_training_time(workload, benchmark):
    train, _ = workload
    benchmark(
        lambda: train_eager_recognizer(
            train, config=EagerTrainingConfig(two_class_only=True)
        )
    )
