"""Modality-layer throughput and detection latency.

The modality layer is a passive sink over the serving layer's two
streams, so its costs and its latencies are measured from the same run:

* **throughput** — points/sec through a pool *with the composer
  attached*, per modal family, batched mode, best of several repeats
  (sink work runs outside ``run_load``'s timed window, so the number is
  directly comparable to ``BENCH_serve.json``);
* **detection latency** — virtual milliseconds from a stroke's down to
  its modality's first ``begin``/``fire`` event, p50/p99 per modality.
  Virtual time, not wall time: the latency is a property of the
  semantics (a hold *cannot* confirm before ``hold_duration``; a swipe
  fires as soon as the velocity window and the recognizer agree), so
  it is deterministic and diffable across PRs.

Identity is asserted before anything is timed: batched and sequential
runs must produce the same decision stream and the same modal event
stream for every family, or the numbers are meaningless.

Publishes ``BENCH_modal.json`` (schema pinned by
``tests/cluster/test_bench_schema.py``).
"""

from __future__ import annotations

import gc

import numpy as np
from conftest import write_bench_json, write_report

from repro.eager import train_eager_recognizer
from repro.modal import generate_pair_workload, run_modal
from repro.serve import generate_workload
from repro.synth import GestureGenerator, modal_templates, pinch_templates
from repro.synth.modal import swipe_templates

CLIENTS = 64
GESTURES_PER_CLIENT = 4
REPEATS = 3
SEED = 29
FAMILIES = ("modal", "swipes", "pinch")

_TEMPLATES = {
    "modal": modal_templates,
    "swipes": swipe_templates,
    "pinch": pinch_templates,
}


def _recognizer(family: str):
    generator = GestureGenerator(_TEMPLATES[family](), seed=3)
    return train_eager_recognizer(generator.generate_strokes(12)).recognizer


def _workload(family: str):
    if family == "pinch":
        return generate_pair_workload(
            clients=CLIENTS, pairs_per_client=GESTURES_PER_CLIENT, seed=SEED
        )
    return generate_workload(
        _TEMPLATES[family](),
        clients=CLIENTS,
        gestures_per_client=GESTURES_PER_CLIENT,
        seed=SEED,
    )


def _best_run(recognizer, workload, repeats: int):
    best = None
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            result, composer = run_modal(recognizer, workload, batched=True)
        finally:
            gc.enable()
        if best is None or result.points_per_sec > best[0].points_per_sec:
            best = (result, composer)
    return best


def _latency_stats(composer) -> dict:
    stats = {}
    for modality, values in sorted(composer.detection_latencies().items()):
        arr = np.asarray(values) * 1e3  # virtual ms
        stats[modality] = {
            "n": len(values),
            "p50_ms": round(float(np.percentile(arr, 50)), 3),
            "p99_ms": round(float(np.percentile(arr, 99)), 3),
        }
    return stats


def test_modal_throughput_and_latency():
    lines = [
        "Modality-layer throughput (composer attached) and detection "
        f"latency, {CLIENTS} clients x {GESTURES_PER_CLIENT} gestures, "
        f"best of {REPEATS}",
    ]
    results: dict = {"identical": True, "families": {}}
    for family in FAMILIES:
        recognizer = _recognizer(family)
        workload = _workload(family)
        # Identity gate: numbers for streams that differ are noise.
        batched, bc = run_modal(recognizer, workload, batched=True)
        sequential, sc = run_modal(recognizer, workload, batched=False)
        assert batched.decision_log == sequential.decision_log, family
        assert bc.events == sc.events, family
        assert bc.events, f"{family}: no modal events produced"
        assert batched.errors == 0, family

        run_modal(recognizer, workload)  # warm numpy + allocator
        best, composer = _best_run(recognizer, workload, REPEATS)
        latencies = _latency_stats(composer)
        results["families"][family] = {
            "points_per_sec": round(best.points_per_sec, 1),
            "points": best.points,
            "decisions": best.decisions,
            "events": len(composer.events),
            "detection_latency_ms": latencies,
        }
        lines.append(f"\n[{family}] {best.summary()}")
        for modality, stat in latencies.items():
            lines.append(
                f"  {modality:>7}: detect p50 {stat['p50_ms']:.1f}ms "
                f"p99 {stat['p99_ms']:.1f}ms (n={stat['n']})"
            )
        lines.append("  decision and modal event streams identical across modes")

    write_report("modal", "\n".join(lines))
    write_bench_json(
        "modal",
        params={
            "clients": CLIENTS,
            "gestures_per_client": GESTURES_PER_CLIENT,
            "repeats": REPEATS,
            "seed": SEED,
            "families": list(FAMILIES),
        },
        results=results,
    )
