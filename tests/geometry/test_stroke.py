"""Unit tests for repro.geometry.stroke — including the subgesture algebra."""

import math

import pytest

from repro.geometry import Affine, Point, Stroke


def square_stroke() -> Stroke:
    return Stroke.from_xy([(0, 0), (10, 0), (10, 10), (0, 10)], dt=0.1)


class TestConstruction:
    def test_from_points(self):
        s = Stroke([Point(0, 0, 0), Point(1, 1, 1)])
        assert len(s) == 2

    def test_from_xy_assigns_times(self):
        s = Stroke.from_xy([(0, 0), (1, 0), (2, 0)], dt=0.5, t0=1.0)
        assert [p.t for p in s] == [1.0, 1.5, 2.0]

    def test_empty_stroke(self):
        assert len(Stroke()) == 0

    def test_equality_and_hash(self):
        a = Stroke.from_xy([(0, 0), (1, 1)])
        b = Stroke.from_xy([(0, 0), (1, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_indexing_returns_point(self):
        s = square_stroke()
        assert isinstance(s[0], Point)
        assert s[0] == Point(0, 0, 0)

    def test_slicing_returns_stroke(self):
        s = square_stroke()[1:3]
        assert isinstance(s, Stroke)
        assert len(s) == 2


class TestSubgestureAlgebra:
    """The paper's g[i] definition (§4.1, figure 4)."""

    def test_subgesture_is_prefix(self):
        g = square_stroke()
        sub = g.subgesture(2)
        assert list(sub) == list(g)[:2]

    def test_subgesture_size_equals_i(self):
        # |g[i]| = i
        g = square_stroke()
        for i in range(len(g) + 1):
            assert len(g.subgesture(i)) == i

    def test_subgesture_points_match(self):
        # g[i]_p = g_p
        g = square_stroke()
        sub = g.subgesture(3)
        for p in range(3):
            assert sub[p] == g[p]

    def test_subgesture_beyond_length_is_undefined(self):
        g = square_stroke()
        with pytest.raises(ValueError):
            g.subgesture(len(g) + 1)

    def test_negative_subgesture_is_undefined(self):
        with pytest.raises(ValueError):
            square_stroke().subgesture(-1)

    def test_full_subgesture_equals_gesture(self):
        g = square_stroke()
        assert g.subgesture(len(g)) == g

    def test_subgestures_iterator_covers_all_prefixes(self):
        g = square_stroke()
        subs = list(g.subgestures())
        assert len(subs) == len(g)
        assert subs[0] == g.subgesture(1)
        assert subs[-1] == g

    def test_subgestures_start_parameter(self):
        g = square_stroke()
        subs = list(g.subgestures(start=3))
        assert len(subs) == len(g) - 2
        assert len(subs[0]) == 3

    def test_is_prefix_of(self):
        g = square_stroke()
        assert g.subgesture(2).is_prefix_of(g)
        assert g.is_prefix_of(g)
        assert not g.is_prefix_of(g.subgesture(2))

    def test_different_stroke_is_not_prefix(self):
        assert not Stroke.from_xy([(5, 5), (6, 6)]).is_prefix_of(square_stroke())


class TestDerivedQuantities:
    def test_start_end(self):
        g = square_stroke()
        assert g.start == Point(0, 0, 0.0)
        assert (g.end.x, g.end.y) == (0, 10)

    def test_duration(self):
        assert square_stroke().duration == pytest.approx(0.3)

    def test_duration_of_single_point_is_zero(self):
        assert Stroke([Point(1, 1, 5.0)]).duration == 0.0

    def test_path_length_of_square_sides(self):
        assert square_stroke().path_length() == pytest.approx(30.0)

    def test_path_length_empty(self):
        assert Stroke().path_length() == 0.0

    def test_bounding_box(self):
        box = square_stroke().bounding_box()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, 0, 10, 10)

    def test_centroid(self):
        c = Stroke.from_xy([(0, 0), (2, 0), (2, 2), (0, 2)]).centroid()
        assert (c.x, c.y) == (1.0, 1.0)

    def test_centroid_of_empty_raises(self):
        with pytest.raises(ValueError):
            Stroke().centroid()


class TestRewrites:
    def test_translated(self):
        s = square_stroke().translated(5, -5)
        assert s.start == Point(5, -5, 0.0)

    def test_transformed(self):
        s = Stroke.from_xy([(1, 0)]).transformed(Affine.rotation(math.pi))
        assert s[0].x == pytest.approx(-1.0)

    def test_retimed(self):
        s = square_stroke().retimed(dt=1.0, t0=10.0)
        assert [p.t for p in s] == [10.0, 11.0, 12.0, 13.0]

    def test_deduplicated(self):
        s = Stroke.from_xy([(0, 0), (0, 0), (1, 1), (1, 1), (1, 1), (2, 2)])
        assert len(s.deduplicated()) == 3

    def test_deduplicated_keeps_order(self):
        s = Stroke.from_xy([(0, 0), (1, 1), (0, 0)]).deduplicated()
        assert [(p.x, p.y) for p in s] == [(0, 0), (1, 1), (0, 0)]


class TestResample:
    def test_resample_count(self):
        s = square_stroke().resampled(16)
        assert len(s) == 16

    def test_resample_preserves_endpoints(self):
        s = square_stroke().resampled(8)
        assert (s.start.x, s.start.y) == (0, 0)
        assert (s.end.x, s.end.y) == (0, 10)

    def test_resample_is_equally_spaced(self):
        line = Stroke.from_xy([(0, 0), (100, 0)])
        s = line.resampled(11)
        xs = [p.x for p in s]
        for a, b in zip(xs, xs[1:]):
            assert b - a == pytest.approx(10.0, abs=1e-6)

    def test_resample_single_point_stroke(self):
        s = Stroke([Point(3, 3, 0)]).resampled(5)
        assert len(s) == 5
        assert all((p.x, p.y) == (3, 3) for p in s)

    def test_resample_to_zero_raises(self):
        with pytest.raises(ValueError):
            square_stroke().resampled(0)

    def test_resample_empty_raises(self):
        with pytest.raises(ValueError):
            Stroke().resampled(4)


class TestTurnAngles:
    def test_straight_line_has_zero_turns(self):
        s = Stroke.from_xy([(0, 0), (1, 0), (2, 0), (3, 0)])
        assert all(abs(a) < 1e-12 for a in s.turn_angles())

    def test_right_angle_turn(self):
        s = Stroke.from_xy([(0, 0), (10, 0), (10, 10)])
        angles = s.turn_angles()
        assert len(angles) == 1
        assert abs(angles[0]) == pytest.approx(math.pi / 2)

    def test_turn_sign_is_consistent(self):
        left = Stroke.from_xy([(0, 0), (10, 0), (10, -10)]).turn_angles()[0]
        right = Stroke.from_xy([(0, 0), (10, 0), (10, 10)]).turn_angles()[0]
        assert left == pytest.approx(-right)

    def test_zero_length_segment_contributes_zero(self):
        s = Stroke.from_xy([(0, 0), (10, 0), (10, 0), (20, 0)])
        assert all(a == 0.0 for a in s.turn_angles())

    def test_too_short_stroke_has_no_angles(self):
        assert Stroke.from_xy([(0, 0), (1, 1)]).turn_angles() == []
