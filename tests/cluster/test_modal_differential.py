"""Differential fuzzing over the modal families: cluster vs single pool.

The tentpole's serving claim is that modalities ride the protocol
*unchanged*: a cluster serving tap/hold/scroll/swipe traffic — and
two-finger ``:a``/``:b`` pair sessions — replies byte-identically to a
scripted single ``SessionPool``, chaos included.  The event weaving is
the same machinery as ``test_differential``; only the traffic (and the
trained model) is modal.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import workload_ticks
from repro.eager import train_eager_recognizer
from repro.modal import generate_pair_workload
from repro.serve import generate_workload
from repro.synth import GestureGenerator, modal_templates, pinch_templates
from repro.synth.modal import swipe_templates

from .inproc import InProcessCluster, drive_script, reference_script
from .test_cluster import DT, assert_byte_identical, end_time
from .test_differential import BAD_LINES, build_script

_TEMPLATES = {
    "modal": modal_templates,
    "swipes": swipe_templates,
    "pinch": pinch_templates,
}


@pytest.fixture(scope="session")
def modal_cluster_recognizers():
    return {
        family: train_eager_recognizer(
            GestureGenerator(factory(), seed=601).generate_strokes(10)
        ).recognizer
        for family, factory in _TEMPLATES.items()
    }


def _modal_workload(family: str, clients: int, gestures: int, seed: int):
    if family == "pinch":
        return generate_pair_workload(
            clients=clients, pairs_per_client=gestures, seed=seed
        )
    return generate_workload(
        _TEMPLATES[family](),
        clients=clients,
        gestures_per_client=gestures,
        seed=seed,
    )


@st.composite
def modal_cases(draw):
    workers = draw(st.integers(min_value=2, max_value=3))
    crash = draw(
        st.one_of(
            st.none(),
            st.tuples(
                st.floats(min_value=0.1, max_value=0.9),
                st.integers(min_value=0, max_value=workers - 1),
            ),
        )
    )
    drain = draw(
        st.one_of(
            st.none(),
            st.tuples(
                st.floats(min_value=0.2, max_value=0.8),
                st.integers(min_value=0, max_value=workers - 1),
            ),
        )
    )
    if crash is not None and drain is not None and crash[1] == drain[1]:
        drain = None
    return {
        "family": draw(st.sampled_from(sorted(_TEMPLATES))),
        "workers": workers,
        "clients": draw(st.integers(min_value=2, max_value=3)),
        "gestures": draw(st.integers(min_value=1, max_value=2)),
        "seed": draw(st.integers(min_value=0, max_value=2**16)),
        "framing": draw(st.sampled_from(["lp1", "ndjson"])),
        "mixed": draw(st.booleans()),
        "crash": crash,
        "drain": drain,
        "join": None,
        "scale": None,
        "swap": None,
        "rawop_at": None,
        "bads": draw(
            st.lists(
                st.tuples(
                    st.floats(min_value=0.0, max_value=1.0),
                    st.sampled_from(BAD_LINES),
                ),
                max_size=2,
            )
        ),
        "sweeps": draw(
            st.lists(
                st.tuples(
                    st.floats(min_value=0.1, max_value=0.9),
                    st.sampled_from([1e9, 0.5, 0.05]),
                ),
                max_size=2,
            )
        ),
        "churn": draw(
            st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=1)
        ),
    }


def _run_modal_case(case, recognizers) -> None:
    recognizer = recognizers[case["family"]]
    workload = _modal_workload(
        case["family"], case["clients"], case["gestures"], case["seed"]
    )
    ticks = workload_ticks(workload, dt=DT)
    end_t = end_time(ticks)
    script = build_script(case, ticks, end_t)
    expected = reference_script(recognizer, script)
    no_lp1 = ("w0",) if case["mixed"] and case["framing"] == "lp1" else ()

    async def run():
        async with InProcessCluster(
            recognizer,
            case["workers"],
            framing=case["framing"],
            no_lp1_shards=no_lp1,
        ) as cluster:
            return await drive_script(cluster, script)

    replies = asyncio.run(run())
    assert_byte_identical(replies, expected)


@given(case=modal_cases())
def test_differential_modal_cluster_vs_pool(case, modal_cluster_recognizers):
    _run_modal_case(case, modal_cluster_recognizers)


@pytest.mark.parametrize("family", sorted(_TEMPLATES))
def test_modal_differential_pilots(family, modal_cluster_recognizers):
    """One fixed chaotic case per family that always runs: a crash, a
    drain, malformed lines, churn, and a mid-run sweep over modal (and,
    for pinch, paired two-finger) traffic.  Debuggable sans hypothesis."""
    case = {
        "family": family,
        "workers": 3,
        "clients": 3,
        "gestures": 2,
        "seed": 37,
        "framing": "lp1",
        "mixed": True,
        "crash": (0.35, 1),
        "drain": (0.6, 2),
        "join": None,
        "scale": None,
        "swap": None,
        "rawop_at": None,
        "bads": [(0.15, BAD_LINES[0]), (0.7, BAD_LINES[4])],
        "sweeps": [(0.5, 1e9)],
        "churn": [0.4],
    }
    _run_modal_case(case, modal_cluster_recognizers)
