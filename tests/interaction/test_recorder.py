"""Tests for the stroke recorder (the training-interface input path)."""

import pytest

from repro.events import EventKind, EventQueue, MouseEvent, stroke_events
from repro.geometry import BoundingBox, Stroke
from repro.interaction import StrokeRecorder
from repro.mvc import Dispatcher, View
from repro.recognizer import OnlineTrainer
from repro.synth import GestureGenerator, ud_templates


class PadView(View):
    def bounds(self):
        return BoundingBox(0, 0, 1000, 1000)


def make_pad(recorder):
    view = PadView()
    view.add_handler(recorder)
    return Dispatcher(view, EventQueue())


class TestRecording:
    def test_one_interaction_one_stroke(self):
        recorder = StrokeRecorder()
        dispatcher = make_pad(recorder)
        stroke = Stroke.from_xy([(10, 10), (20, 20), (30, 10)], dt=0.01)
        for event in stroke_events(stroke):
            dispatcher.dispatch(event)
        assert len(recorder.strokes) == 1
        # The release event repeats the last position, so the recorded
        # stroke has one extra point at the end.
        assert recorder.strokes[0].subgesture(len(stroke)) == stroke

    def test_on_stroke_callback(self):
        collected = []
        recorder = StrokeRecorder(on_stroke=collected.append)
        dispatcher = make_pad(recorder)
        stroke = Stroke.from_xy([(10, 10), (40, 40)], dt=0.01)
        for event in stroke_events(stroke):
            dispatcher.dispatch(event)
        assert len(collected) == 1

    def test_stray_click_is_not_an_example(self):
        recorder = StrokeRecorder(min_points=3)
        dispatcher = make_pad(recorder)
        dispatcher.dispatch(MouseEvent(EventKind.PRESS, 5, 5, 0.0))
        dispatcher.dispatch(MouseEvent(EventKind.RELEASE, 5, 5, 0.1))
        assert recorder.strokes == []

    def test_multiple_examples_accumulate(self):
        recorder = StrokeRecorder()
        dispatcher = make_pad(recorder)
        for i in range(5):
            stroke = Stroke.from_xy(
                [(10, 10 + i), (50, 10 + i), (90, 40 + i)], dt=0.01
            ).retimed(0.01, t0=float(i))
            for event in stroke_events(stroke):
                dispatcher.dispatch(event)
        assert len(recorder.strokes) == 5

    def test_clear(self):
        recorder = StrokeRecorder()
        dispatcher = make_pad(recorder)
        stroke = Stroke.from_xy([(10, 10), (50, 50)], dt=0.01)
        for event in stroke_events(stroke):
            dispatcher.dispatch(event)
        recorder.clear()
        assert recorder.strokes == []

    def test_recording_flag(self):
        recorder = StrokeRecorder()
        dispatcher = make_pad(recorder)
        assert not recorder.recording
        dispatcher.dispatch(MouseEvent(EventKind.PRESS, 5, 5, 0.0))
        assert recorder.recording
        dispatcher.dispatch(MouseEvent(EventKind.RELEASE, 6, 6, 0.1))
        assert not recorder.recording


class TestTrainingLoop:
    def test_record_then_train_then_recognize(self):
        """GRANDMA's full interactive loop: draw examples, train, use."""
        generator = GestureGenerator(ud_templates(), seed=31)
        trainer = OnlineTrainer()
        current_class = {"name": None}
        recorder = StrokeRecorder(
            on_stroke=lambda s: trainer.add_example(current_class["name"], s)
        )
        dispatcher = make_pad(recorder)
        # The designer draws ten examples of each class.
        for class_name in ("U", "D"):
            current_class["name"] = class_name
            for i, stroke in enumerate(
                generator.generate_strokes(10)[class_name]
            ):
                centered = stroke.translated(300, 300)
                for event in stroke_events(centered, t0=100.0 * i + 1):
                    dispatcher.dispatch(event)
        classifier = trainer.build()
        probe = GestureGenerator(ud_templates(), seed=32)
        hits = total = 0
        for name, strokes in probe.generate_strokes(10).items():
            for stroke in strokes:
                total += 1
                hits += classifier.classify(stroke) == name
        assert hits / total > 0.9
