"""Unit tests for evaluation metrics."""

import pytest

from repro.evaluate import ConfusionMatrix, EagernessStats


class TestConfusionMatrix:
    def make(self) -> ConfusionMatrix:
        cm = ConfusionMatrix(class_names=["a", "b"])
        for _ in range(8):
            cm.record("a", "a")
        for _ in range(2):
            cm.record("a", "b")
        for _ in range(10):
            cm.record("b", "b")
        return cm

    def test_totals(self):
        cm = self.make()
        assert cm.total == 20
        assert cm.correct == 18

    def test_accuracy(self):
        assert self.make().accuracy == pytest.approx(0.9)

    def test_empty_matrix_accuracy_zero(self):
        assert ConfusionMatrix(class_names=[]).accuracy == 0.0

    def test_per_class_accuracy(self):
        per_class = self.make().per_class_accuracy()
        assert per_class["a"] == pytest.approx(0.8)
        assert per_class["b"] == pytest.approx(1.0)

    def test_per_class_skips_absent_classes(self):
        cm = ConfusionMatrix(class_names=["a", "b"])
        cm.record("a", "a")
        assert "b" not in cm.per_class_accuracy()

    def test_errors_sorted_heaviest_first(self):
        cm = ConfusionMatrix(class_names=["a", "b", "c"])
        cm.record("a", "b")
        for _ in range(3):
            cm.record("b", "c")
        errors = cm.errors()
        assert errors[0] == ("b", "c", 3)
        assert errors[1] == ("a", "b", 1)

    def test_to_table_contains_counts(self):
        table = self.make().to_table()
        assert "8" in table
        assert "10" in table
        assert "a" in table and "b" in table


class TestEagernessStats:
    def test_mean_fraction(self):
        stats = EagernessStats()
        stats.record(0.5, eager=True)
        stats.record(1.0, eager=False)
        assert stats.mean_fraction_seen == pytest.approx(0.75)

    def test_eager_rate(self):
        stats = EagernessStats()
        stats.record(0.5, eager=True)
        stats.record(0.6, eager=True)
        stats.record(1.0, eager=False)
        assert stats.eager_rate == pytest.approx(2 / 3)

    def test_oracle_fraction_optional(self):
        stats = EagernessStats()
        stats.record(0.5, eager=True)
        stats.record(0.7, eager=True, oracle_fraction=0.4)
        assert stats.mean_oracle_fraction == pytest.approx(0.4)
        assert len(stats.oracle_fractions) == 1

    def test_empty_stats(self):
        stats = EagernessStats()
        assert stats.mean_fraction_seen == 0.0
        assert stats.mean_oracle_fraction == 0.0
        assert stats.eager_rate == 0.0
