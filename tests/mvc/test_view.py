"""Unit tests for views: handler lists, inheritance, the view tree, picking."""

from repro.geometry import BoundingBox
from repro.mvc import EventHandler, Model, View


class BoxView(View):
    """A view with explicit rectangular bounds for picking tests."""

    def __init__(self, x1, y1, x2, y2, model=None):
        super().__init__(model)
        self._box = BoundingBox(x1, y1, x2, y2)

    def bounds(self):
        return self._box


class SubBoxView(BoxView):
    pass


class DummyHandler(EventHandler):
    def begin(self, event, view, context):
        return True


class TestHandlerRegistration:
    def teardown_method(self):
        BoxView.clear_class_handlers()
        SubBoxView.clear_class_handlers()
        View.clear_class_handlers()

    def test_instance_handlers(self):
        view = BoxView(0, 0, 10, 10)
        handler = DummyHandler()
        view.add_handler(handler)
        assert handler in list(view.handlers())

    def test_remove_instance_handler(self):
        view = BoxView(0, 0, 10, 10)
        handler = DummyHandler()
        view.add_handler(handler)
        assert view.remove_handler(handler)
        assert handler not in list(view.handlers())
        assert not view.remove_handler(handler)

    def test_class_handlers_shared_by_instances(self):
        handler = DummyHandler()
        BoxView.add_class_handler(handler)
        a, b = BoxView(0, 0, 1, 1), BoxView(2, 2, 3, 3)
        assert handler in list(a.handlers())
        assert handler in list(b.handlers())

    def test_class_handlers_inherited_by_subclasses(self):
        # "Event handlers may be associated with view classes as well,
        # and are inherited." (§3)
        handler = DummyHandler()
        BoxView.add_class_handler(handler)
        sub = SubBoxView(0, 0, 1, 1)
        assert handler in list(sub.handlers())

    def test_subclass_handlers_do_not_leak_to_base(self):
        handler = DummyHandler()
        SubBoxView.add_class_handler(handler)
        base = BoxView(0, 0, 1, 1)
        assert handler not in list(base.handlers())

    def test_handler_query_order(self):
        # Instance first, then own class, then bases.
        instance_h = DummyHandler()
        own_h = DummyHandler()
        base_h = DummyHandler()
        BoxView.add_class_handler(base_h)
        SubBoxView.add_class_handler(own_h)
        view = SubBoxView(0, 0, 1, 1)
        view.add_handler(instance_h)
        handlers = list(view.handlers())
        assert handlers.index(instance_h) < handlers.index(own_h)
        assert handlers.index(own_h) < handlers.index(base_h)

    def test_remove_class_handler(self):
        handler = DummyHandler()
        BoxView.add_class_handler(handler)
        assert BoxView.remove_class_handler(handler)
        assert handler not in list(BoxView(0, 0, 1, 1).handlers())

    def test_remove_inherited_handler_from_subclass_fails(self):
        handler = DummyHandler()
        BoxView.add_class_handler(handler)
        assert not SubBoxView.remove_class_handler(handler)


class TestViewTree:
    def test_add_child_sets_parent(self):
        parent = BoxView(0, 0, 100, 100)
        child = BoxView(10, 10, 20, 20)
        parent.add_child(child)
        assert child.parent is parent
        assert child in parent.children

    def test_reparenting(self):
        a = BoxView(0, 0, 100, 100)
        b = BoxView(0, 0, 100, 100)
        child = BoxView(1, 1, 2, 2)
        a.add_child(child)
        b.add_child(child)
        assert child.parent is b
        assert child not in a.children

    def test_remove_child(self):
        parent = BoxView(0, 0, 100, 100)
        child = BoxView(10, 10, 20, 20)
        parent.add_child(child)
        parent.remove_child(child)
        assert child.parent is None
        assert child not in parent.children

    def test_descendants(self):
        root = BoxView(0, 0, 100, 100)
        child = BoxView(0, 0, 50, 50)
        grandchild = BoxView(0, 0, 10, 10)
        root.add_child(child)
        child.add_child(grandchild)
        assert list(root.descendants()) == [child, grandchild]

    def test_bring_to_front(self):
        root = BoxView(0, 0, 100, 100)
        a, b = BoxView(0, 0, 1, 1), BoxView(0, 0, 1, 1)
        root.add_child(a)
        root.add_child(b)
        root.bring_to_front(a)
        assert root.children == (b, a)


class TestPicking:
    def test_hit_in_bounds(self):
        view = BoxView(0, 0, 10, 10)
        assert view.pick(5, 5) is view

    def test_miss_outside_bounds(self):
        assert BoxView(0, 0, 10, 10).pick(20, 20) is None

    def test_child_wins_over_parent(self):
        parent = BoxView(0, 0, 100, 100)
        child = BoxView(10, 10, 20, 20)
        parent.add_child(child)
        assert parent.pick(15, 15) is child
        assert parent.pick(50, 50) is parent

    def test_topmost_of_overlapping_children(self):
        parent = BoxView(0, 0, 100, 100)
        below = BoxView(0, 0, 50, 50)
        above = BoxView(0, 0, 50, 50)
        parent.add_child(below)
        parent.add_child(above)  # added later = on top
        assert parent.pick(25, 25) is above

    def test_invisible_view_not_picked(self):
        view = BoxView(0, 0, 10, 10)
        view.visible = False
        assert view.pick(5, 5) is None

    def test_invisible_subtree_skipped(self):
        parent = BoxView(0, 0, 100, 100)
        child = BoxView(10, 10, 20, 20)
        parent.add_child(child)
        child.visible = False
        assert parent.pick(15, 15) is parent


class TestModelCoupling:
    def test_view_observes_model(self):
        changes = []

        class RecordingView(View):
            def model_changed(self, model):
                changes.append(model)

        model = Model()
        RecordingView(model)
        model.changed()
        assert changes == [model]

    def test_observer_removal(self):
        model = Model()
        seen = []
        model.add_observer(seen.append)
        model.remove_observer(seen.append)
        model.changed()
        assert seen == []

    def test_remove_unknown_observer_is_harmless(self):
        Model().remove_observer(lambda m: None)
