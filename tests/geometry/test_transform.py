"""Unit tests for repro.geometry.transform."""

import math

import pytest

from repro.geometry import Affine, Point


class TestConstructors:
    def test_identity_maps_points_to_themselves(self):
        p = Point(3.0, -2.0, 1.0)
        assert Affine.identity().apply(p) == p

    def test_translation(self):
        p = Affine.translation(2.0, 3.0).apply(Point(1.0, 1.0))
        assert p == Point(3.0, 4.0)

    def test_scaling_uniform(self):
        p = Affine.scaling(2.0).apply(Point(1.0, 2.0))
        assert p == Point(2.0, 4.0)

    def test_scaling_anisotropic(self):
        p = Affine.scaling(2.0, 0.5).apply(Point(4.0, 4.0))
        assert p == Point(8.0, 2.0)

    def test_rotation_quarter_turn(self):
        p = Affine.rotation(math.pi / 2).apply(Point(1.0, 0.0))
        assert p.x == pytest.approx(0.0, abs=1e-12)
        assert p.y == pytest.approx(1.0)

    def test_about_fixes_the_center(self):
        center = Point(5.0, 5.0)
        t = Affine.about(center, Affine.rotation(1.234) @ Affine.scaling(3.0))
        moved = t.apply(center)
        assert moved.x == pytest.approx(5.0)
        assert moved.y == pytest.approx(5.0)

    def test_apply_preserves_time(self):
        assert Affine.translation(1, 1).apply(Point(0, 0, 42.0)).t == 42.0


class TestComposition:
    def test_matmul_order(self):
        # (self @ other)(p) == self(other(p))
        t = Affine.translation(1.0, 0.0)
        s = Affine.scaling(2.0)
        p = Point(1.0, 1.0)
        assert (t @ s).apply(p) == t.apply(s.apply(p))
        assert (s @ t).apply(p) == s.apply(t.apply(p))

    def test_translation_composition_commutes(self):
        a = Affine.translation(1, 2)
        b = Affine.translation(3, 4)
        p = Point(0, 0)
        assert (a @ b).apply(p) == (b @ a).apply(p)

    def test_rotation_composition_adds_angles(self):
        r1 = Affine.rotation(0.3)
        r2 = Affine.rotation(0.4)
        combined = r1 @ r2
        expected = Affine.rotation(0.7)
        p = Point(2.0, 1.0)
        got, want = combined.apply(p), expected.apply(p)
        assert got.x == pytest.approx(want.x)
        assert got.y == pytest.approx(want.y)


class TestInverse:
    def test_inverse_of_translation(self):
        t = Affine.translation(5.0, -3.0)
        p = Point(1.0, 1.0)
        back = t.inverse().apply(t.apply(p))
        assert back.x == pytest.approx(1.0)
        assert back.y == pytest.approx(1.0)

    def test_inverse_of_rotate_scale(self):
        t = Affine.rotation(0.8) @ Affine.scaling(2.5)
        p = Point(3.0, 4.0)
        back = t.inverse().apply(t.apply(p))
        assert back.x == pytest.approx(3.0)
        assert back.y == pytest.approx(4.0)

    def test_singular_transform_raises(self):
        with pytest.raises(ZeroDivisionError):
            Affine.scaling(0.0).inverse()

    def test_determinant(self):
        assert Affine.scaling(2.0, 3.0).determinant == pytest.approx(6.0)
        assert Affine.rotation(1.0).determinant == pytest.approx(1.0)


class TestApplyXY:
    def test_apply_xy_matches_apply(self):
        t = Affine.rotation(0.5) @ Affine.translation(2.0, 1.0)
        p = Point(1.5, -0.5)
        x, y = t.apply_xy(p.x, p.y)
        q = t.apply(p)
        assert (x, y) == (q.x, q.y)
