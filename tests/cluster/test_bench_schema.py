"""Regression harness for the published cluster bench artifact.

``BENCH_cluster.json`` is committed at the repo root so a PR that
regresses the data plane shows up as a *diff* in reviewed numbers, not
as silence.  That only works while the artifact keeps its shape: these
tests pin the schema — the profiled router/worker/transport breakdown,
the per-op stage costs, the CPU count that gates the parallel-speedup
assertion — and pin the bench *source* to the invariants it must keep
asserting (byte-identity, the 1-worker floor), so neither can be
dropped quietly while the JSON continues to look plausible.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
BENCH_SOURCE = REPO_ROOT / "benchmarks" / "bench_cluster.py"

TOP_LEVEL_KEYS = {"bench", "commit", "params", "results"}
BREAKDOWN_KEYS = {
    "total_s",
    "router_s",
    "worker_s",
    "transport_s",
    "router_us_per_op",
    "worker_us_per_op",
    "transport_us_per_op",
}


def _load(name: str) -> dict:
    path = REPO_ROOT / f"BENCH_{name}.json"
    assert path.is_file(), f"{path.name} must be committed at the repo root"
    return json.loads(path.read_text())


@pytest.fixture(scope="module")
def cluster_bench() -> dict:
    return _load("cluster")


def test_every_bench_artifact_has_the_common_envelope():
    artifacts = sorted(REPO_ROOT.glob("BENCH_*.json"))
    assert artifacts, "no BENCH_*.json artifacts at the repo root"
    for path in artifacts:
        doc = json.loads(path.read_text())
        assert TOP_LEVEL_KEYS <= set(doc), (
            f"{path.name} missing {TOP_LEVEL_KEYS - set(doc)}"
        )
        assert path.name == f"BENCH_{doc['bench']}.json"
        assert isinstance(doc["params"], dict) and doc["params"]
        assert isinstance(doc["results"], dict) and doc["results"]


def test_cluster_params_pin_the_workload_and_the_host(cluster_bench):
    params = cluster_bench["params"]
    for key in (
        "clients",
        "gestures_per_client",
        "examples_per_class",
        "seed",
        "ops",
        "worker_counts",
        "cpus",
    ):
        assert key in params, f"params lost {key!r}"
    # The >=2x@4-workers assertion is gated on cpus >= 4; the recorded
    # count is what makes a skipped gate auditable after the fact.
    assert isinstance(params["cpus"], int) and params["cpus"] >= 1
    assert params["ops"] > 0
    assert 4 in params["worker_counts"]


def _check_breakdown(b: dict, ops: int, where: str) -> None:
    assert BREAKDOWN_KEYS <= set(b), f"{where} missing {BREAKDOWN_KEYS - set(b)}"
    for key in BREAKDOWN_KEYS:
        assert b[key] >= 0, f"{where}[{key}] negative"
    # Transport is defined as the non-negative remainder of the wall
    # time.  It clamps to zero when the summed busy times exceed the
    # wall — on a host with fewer cores than processes, concurrent
    # stages overlap-count — so the invariant is the definition itself,
    # not an exact three-way partition.
    expect_transport = max(0.0, b["total_s"] - b["router_s"] - b["worker_s"])
    assert math.isclose(
        b["transport_s"], expect_transport, rel_tol=0.01, abs_tol=0.002
    ), f"{where}: transport_s is not the clamped wall-time remainder"
    for stage in ("router", "worker", "transport"):
        expect = b[f"{stage}_s"] * 1e6 / ops
        assert math.isclose(
            b[f"{stage}_us_per_op"], expect, rel_tol=0.05, abs_tol=0.05
        ), f"{where}: {stage}_us_per_op inconsistent with {stage}_s"


def test_cluster_results_carry_the_profiled_breakdown(cluster_bench):
    params, results = cluster_bench["params"], cluster_bench["results"]
    ops = params["ops"]
    _check_breakdown(results["baseline_breakdown"], ops, "baseline_breakdown")
    # The baseline has no router stage by construction.
    assert results["baseline_breakdown"]["router_s"] == 0.0
    counts = {str(n) for n in params["worker_counts"]}
    assert set(results["cluster_breakdown"]) == counts
    assert set(results["cluster_ops_per_sec"]) == counts
    for n, b in results["cluster_breakdown"].items():
        _check_breakdown(b, ops, f"cluster_breakdown[{n}]")
        assert b["router_s"] > 0, f"{n}-worker run measured no router time"


def test_cluster_results_publish_the_asserted_invariants(cluster_bench):
    results = cluster_bench["results"]
    assert results["byte_identical"] is True
    assert results["speedup_1_worker"] > 0
    assert results["speedup_4_workers"] > 0
    assert results["crash_recovery_s"] > 0
    # The committed artifact must itself satisfy the floor the bench
    # asserts at run time — a regressed number cannot be checked in.
    assert results["speedup_1_worker"] >= 0.85


@pytest.fixture(scope="module")
def obs_bench() -> dict:
    return _load("obs")


def test_obs_params_pin_the_workload_and_the_bounds(obs_bench):
    params = obs_bench["params"]
    for key in (
        "clients",
        "gestures_per_client",
        "family",
        "seed",
        "repeats",
        "max_metrics_overhead",
        "max_quality_overhead",
    ):
        assert key in params, f"params lost {key!r}"
    assert params["clients"] >= 256  # the tentpole's stated scale
    assert 1.0 < params["max_quality_overhead"] <= 1.15


def test_obs_results_respect_the_asserted_envelope(obs_bench):
    """The committed artifact satisfies its own run-time assertions.

    A regressed quality or metrics ratio cannot be checked in: the
    recorded overhead must sit inside the bound the bench enforces, and
    the ratios must be consistent with the recorded points/sec.
    """
    params, results = obs_bench["params"], obs_bench["results"]
    ratios = results["overhead_ratio"]
    pps = results["points_per_sec"]
    for config in ("metrics", "quality", "tracer"):
        assert config in ratios and config in pps
        assert pps[config] > 0
        assert math.isclose(
            ratios[config], pps["bare"] / pps[config], rel_tol=0.001
        ), f"{config} ratio inconsistent with its points/sec"
    assert ratios["metrics"] <= params["max_metrics_overhead"]
    assert ratios["quality"] <= params["max_quality_overhead"]


def test_obs_bench_source_keeps_the_quality_bound_wired():
    """The always-on quality bound must stay asserted at run time."""
    source = (REPO_ROOT / "benchmarks" / "bench_obs_overhead.py").read_text()
    assert "MAX_QUALITY_OVERHEAD" in source
    assert 'ratios["quality"] <= MAX_QUALITY_OVERHEAD' in source
    assert 'ratios["metrics"] <= MAX_METRICS_OVERHEAD' in source


@pytest.fixture(scope="module")
def elastic_bench() -> dict:
    return _load("elastic")


def test_elastic_params_pin_the_scale_and_the_bounds(elastic_bench):
    params = elastic_bench["params"]
    for key in (
        "sessions",
        "workers_before",
        "workers_after",
        "ring_replicas",
        "seed",
        "move_ratio_bound",
        "p99_bound_s",
    ):
        assert key in params, f"params lost {key!r}"
    assert params["sessions"] >= 256  # the tentpole's stated scale
    assert params["workers_before"] < params["workers_after"]
    assert 1.0 <= params["move_ratio_bound"] <= 1.25


def test_elastic_results_respect_the_asserted_envelope(elastic_bench):
    """The committed artifact satisfies its own run-time assertions.

    A regressed resharding economy or migration latency cannot be
    checked in: the recorded movement must stay within the bound the
    bench enforces, every mid-stroke session must have survived, and
    the derived ratio must be consistent with the recorded counts.
    """
    params, results = elastic_bench["params"], elastic_bench["results"]
    assert results["byte_identical"] is True
    assert results["dropped_strokes"] == 0
    assert results["keys_moved"] > 0
    assert results["migrations"] > 0
    assert results["min_moves"] > 0
    assert math.isclose(
        results["move_ratio"],
        results["keys_moved"] / results["min_moves"],
        rel_tol=0.01,
    ), "move_ratio inconsistent with keys_moved / min_moves"
    assert results["move_ratio"] <= params["move_ratio_bound"]
    assert 0 < results["migration_p99_s"] <= params["p99_bound_s"]
    assert results["scale_out_s"] > 0


def test_elastic_bench_source_keeps_the_invariants_wired():
    """Byte-identity, the movement bound, the p99 bound, and the
    zero-drop assertion must stay asserted at run time."""
    source = (REPO_ROOT / "benchmarks" / "bench_elastic.py").read_text()
    assert "assert replies == reference" in source
    assert "move_ratio <= MOVE_RATIO_BOUND" in source
    assert "p99_s <= P99_BOUND_S" in source
    assert "assert dropped == 0" in source
    assert 'stats["cluster"]["sessions"] == 0' in source


def test_bench_source_keeps_the_invariants_wired():
    """The bench must keep asserting what the artifact claims.

    Textual pins, deliberately loose: they break only if someone
    removes the byte-identity comparison, the 0.85x floor, or the
    cpus>=4 gate from ``bench_cluster.py`` without updating this
    harness — which is exactly the conversation that change needs.
    """
    source = BENCH_SOURCE.read_text()
    assert "assert replies == reference" in source
    assert "speedup_1 >= 0.85" in source
    assert "cpus < 4" in source
    assert "byte_identical" in source


@pytest.fixture(scope="module")
def modal_bench() -> dict:
    return _load("modal")


def test_modal_params_pin_the_workload(modal_bench):
    params = modal_bench["params"]
    for key in ("clients", "gestures_per_client", "repeats", "seed", "families"):
        assert key in params, f"params lost {key!r}"
    # All three modal families must stay measured — dropping one would
    # silently un-benchmark a modality.
    assert set(params["families"]) == {"modal", "swipes", "pinch"}


def test_modal_results_carry_per_family_throughput_and_latency(modal_bench):
    params, results = modal_bench["params"], modal_bench["results"]
    assert results["identical"] is True
    assert set(results["families"]) == set(params["families"])
    for family, cell in results["families"].items():
        where = f"families[{family}]"
        assert cell["points_per_sec"] > 0, where
        assert cell["points"] > 0 and cell["decisions"] > 0, where
        assert cell["events"] > 0, where
        latencies = cell["detection_latency_ms"]
        assert latencies, f"{where}: no detection latencies"
        for modality, stat in latencies.items():
            assert stat["n"] > 0, f"{where}[{modality}]"
            assert 0.0 <= stat["p50_ms"] <= stat["p99_ms"], f"{where}[{modality}]"


def test_modal_results_respect_the_semantics_floors(modal_bench):
    # Detection latency is virtual-time, hence deterministic: a hold
    # cannot confirm before the configured hold_duration (350 ms), and
    # a committed artifact claiming otherwise is lying about the
    # semantics, not just slow.
    families = modal_bench["results"]["families"]
    hold = families["modal"]["detection_latency_ms"].get("hold")
    assert hold is not None, "the modal family stopped producing holds"
    assert hold["p50_ms"] >= 350.0
    # Two-finger manipulations must appear in the pinch family.
    assert {"pinch", "rotate"} <= set(
        families["pinch"]["detection_latency_ms"]
    )


def test_modal_bench_source_keeps_the_identity_gate():
    source = (REPO_ROOT / "benchmarks" / "bench_modal.py").read_text()
    # The throughput numbers are only meaningful while the bench keeps
    # proving both streams identical across execution modes.
    assert "batched.decision_log == sequential.decision_log" in source
    assert "bc.events == sc.events" in source
