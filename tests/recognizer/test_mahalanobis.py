"""Unit tests for the Mahalanobis metric."""

import numpy as np
import pytest

from repro.recognizer import MahalanobisMetric


class TestBasics:
    def test_identity_covariance_is_euclidean(self):
        metric = MahalanobisMetric(np.eye(2))
        assert metric.squared_distance(
            np.array([0.0, 0.0]), np.array([3.0, 4.0])
        ) == pytest.approx(25.0)

    def test_distance_is_sqrt_of_squared(self):
        metric = MahalanobisMetric(np.eye(2))
        assert metric.distance(
            np.array([0.0, 0.0]), np.array([3.0, 4.0])
        ) == pytest.approx(5.0)

    def test_zero_distance_to_self(self):
        metric = MahalanobisMetric(np.eye(3))
        v = np.array([1.0, 2.0, 3.0])
        assert metric.squared_distance(v, v) == 0.0

    def test_symmetry(self):
        inv = np.array([[2.0, 0.5], [0.5, 1.0]])
        metric = MahalanobisMetric(inv)
        a, b = np.array([1.0, 0.0]), np.array([0.0, 2.0])
        assert metric.squared_distance(a, b) == pytest.approx(
            metric.squared_distance(b, a)
        )

    def test_scaling_by_precision(self):
        # Higher precision (lower variance) in a dimension stretches it.
        metric = MahalanobisMetric(np.diag([100.0, 1.0]))
        along_precise = metric.squared_distance(
            np.zeros(2), np.array([1.0, 0.0])
        )
        along_loose = metric.squared_distance(
            np.zeros(2), np.array([0.0, 1.0])
        )
        assert along_precise == pytest.approx(100.0)
        assert along_loose == pytest.approx(1.0)

    def test_asymmetric_matrix_is_symmetrized(self):
        lopsided = np.array([[1.0, 0.3], [0.1, 1.0]])
        metric = MahalanobisMetric(lopsided)
        np.testing.assert_allclose(
            metric.inverse_covariance, metric.inverse_covariance.T
        )

    def test_round_off_clamped_at_zero(self):
        metric = MahalanobisMetric(np.eye(2) * 1e-30)
        v = np.array([1e-8, 1e-8])
        assert metric.squared_distance(v, v) >= 0.0


class TestValidation:
    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            MahalanobisMetric(np.zeros((2, 3)))

    def test_dim_mismatch_rejected(self):
        metric = MahalanobisMetric(np.eye(2))
        with pytest.raises(ValueError):
            metric.squared_distance(np.zeros(3), np.zeros(3))


class TestNearest:
    def test_nearest_picks_closest_mean(self):
        metric = MahalanobisMetric(np.eye(2))
        means = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        index, squared = metric.nearest(np.array([9.0, 1.0]), means)
        assert index == 1
        assert squared == pytest.approx(2.0)

    def test_nearest_respects_the_metric(self):
        # Under this precision, y-displacement is 100x costlier.
        metric = MahalanobisMetric(np.diag([1.0, 100.0]))
        means = np.array([[3.0, 0.0], [0.0, 1.0]])
        index, _ = metric.nearest(np.zeros(2), means)
        assert index == 0

    def test_nearest_with_no_means_raises(self):
        metric = MahalanobisMetric(np.eye(2))
        with pytest.raises(ValueError):
            metric.nearest(np.zeros(2), np.zeros((0, 2)))

    def test_nearest_wrong_dim_raises(self):
        metric = MahalanobisMetric(np.eye(2))
        with pytest.raises(ValueError):
            metric.nearest(np.zeros(2), np.zeros((3, 5)))


class TestSerialization:
    def test_round_trip(self):
        metric = MahalanobisMetric(np.array([[2.0, 0.1], [0.1, 3.0]]))
        clone = MahalanobisMetric.from_dict(metric.to_dict())
        np.testing.assert_allclose(
            clone.inverse_covariance, metric.inverse_covariance
        )
