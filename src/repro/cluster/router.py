"""The cluster front door: one address, N workers, zero new semantics.

The router speaks the exact :mod:`repro.serve.protocol` NDJSON dialect
on its client side and is itself a plain client on its worker side, so
neither end can tell the cluster apart from a single
:class:`~repro.serve.GestureServer` — which is the point: routed
decisions are *byte-identical* to a single-pool run.

Mechanics:

* every session key (``client:stroke``) is consistent-hashed onto a
  shard (:class:`~repro.cluster.ring.HashRing`) and stays there —
  sticky routing, so one session's ops never interleave across workers;
* ``tick``/``sweep`` are broadcast to every live worker: all shards
  share one virtual timeline, exactly as all sessions of a single pool
  share one clock.  Sweeps are additionally journaled per shard (a
  worker can die before processing one) and pruned once no live
  journal entry precedes them;
* every routed op is journaled per session with lazy clock markers
  (:mod:`repro.cluster.journal`); when the supervisor restarts a
  crashed worker, the router replays the journals of that shard's live
  sessions in original global order, suppresses the replies it had
  already forwarded (by count — replay is deterministic, so the prefix
  is bit-equal), and forwards the rest.  Clients see a complete,
  duplicate-free, byte-identical decision stream across a crash;
* ``stats`` fans out to every live worker and the per-worker metric
  snapshots are merged (:func:`repro.obs.merge_snapshots`) together
  with the router's own ``cluster.*`` registry into one fleet-wide
  reply;
* ``swap`` is resolved against the router's registry — the version is
  *pinned* at routing time, so a replay after the registry's latest
  moved applies the same model — then broadcast to every worker (a
  user's sessions can land on any shard) with the user rewritten to
  ``client:user``, mirroring stroke namespacing.  Swaps are journaled
  per shard in full (never pruned — they are rare and bind *future*
  sessions, so no live-session floor applies) and re-applied on crash
  replay; re-application is idempotent because the line carries the
  pinned version.  The router synthesizes exactly one ack itself and
  drops the N worker acks, keeping the client's stream identical to a
  single server's.

The router accepts two admin ops beyond the serve protocol:
``{"op": "cluster"}`` returns shard states, and
``{"op": "drain", "shard": ...}`` starts a graceful drain (new sessions
spill to the ring successor; the shard retires once its last live
session ends).

Known limit: a record whose very first ``down`` was answered with a
``pool full`` error is dropped on that reply, but an error reply lost
to a crash *and* never re-derivable (the key never had a live session)
is at-most-once.  Session decisions — the recognition stream — are
exactly-once.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from contextlib import suppress

from ..serve import DEFAULT_MAX_LINE, LineReader
from ..serve.protocol import (
    ProtocolError,
    decode_request,
    encode_error,
    encode_stats,
    encode_swap,
)
from .journal import SessionRecord, replay_lines
from .ring import HashRing

__all__ = ["Router"]

_NEG_INF = float("-inf")

# Error reasons that prove the worker holds no session for the key, so
# the router's record (and journal) can be dropped with it.
_GONE_REASONS = ("unknown stroke", "pool full")


class _WorkerLink:
    """The router's connection (and outbound queue) to one worker."""

    __slots__ = (
        "shard",
        "state",
        "ups",
        "queue",
        "writer",
        "reader_task",
        "writer_task",
        "pending_stats",
        "extras",
        "swaps",
    )

    def __init__(self, shard: str):
        self.shard = shard
        self.state = "down"
        self.ups = 0
        self.queue: asyncio.Queue | None = None
        self.writer = None
        self.reader_task: asyncio.Task | None = None
        self.writer_task: asyncio.Task | None = None
        self.pending_stats: deque = deque()
        self.extras: list[tuple[int, str]] = []  # shard-global journal
        # Swap journal, kept separate from `extras`: sweeps are pruned
        # against the shard's oldest *live* session (and cleared when
        # none), but a swap binds sessions that do not exist yet, so it
        # must survive arbitrary idle gaps and replay on every restart.
        self.swaps: list[tuple[int, str]] = []


class _Client:
    """One accepted client connection."""

    __slots__ = ("id", "outbox", "closed")

    def __init__(self, cid: str, queue_size: int):
        self.id = cid
        self.outbox: asyncio.Queue = asyncio.Queue(maxsize=queue_size)
        self.closed = False

    def push(self, line: str) -> bool:
        try:
            self.outbox.put_nowait(line)
            return True
        except asyncio.QueueFull:
            return False


class Router:
    """Route the serve protocol across a shard fleet."""

    def __init__(
        self,
        shards,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_size: int = 1024,
        max_line: int = DEFAULT_MAX_LINE,
        stats_timeout: float = 10.0,
        metrics=None,
        registry=None,
    ):
        self.ring = HashRing(shards)
        # Model source for `swap` requests: a ModelRegistry, a registry
        # root path, or None (swaps rejected with an error reply).
        if registry is not None and not hasattr(registry, "load"):
            from ..serve.registry import ModelRegistry

            registry = ModelRegistry(registry)
        self.registry = registry
        self.host = host
        self.port = port
        self.queue_size = queue_size
        self.max_line = max_line
        self.stats_timeout = stats_timeout
        # Duck-typed: anything with .counter(name).inc(n) and .snapshot().
        self.metrics = metrics
        self.links = {shard: _WorkerLink(shard) for shard in self.ring.shards}
        self.sessions: dict[str, SessionRecord] = {}
        self.draining: set[str] = set()
        self.retired: set[str] = set()
        self.drain_hook = None  # async (shard) -> None; wired by the harness
        self.supervisor_status = None  # () -> dict; wired by the harness
        self._clients: dict[str, _Client] = {}
        self._next_client = 0
        self._seq = 0
        # The *broadcast* clock: the highest t the router has actually
        # broadcast to workers as a tick/sweep barrier.  Workers advance
        # their pool clocks only at barriers, so this — and only this —
        # is where every live worker's clock stands; journal markers and
        # the replay's trailing tick are taken from it.  Op timestamps
        # never move it: an op's own t reaches the worker on the op line
        # itself and is folded in at the next barrier, which replay
        # reproduces from the journaled op lines.
        self._clock = _NEG_INF
        self._server: asyncio.AbstractServer | None = None
        self._client_tasks: set[asyncio.Task] = set()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )

    @property
    def address(self) -> tuple[str, int]:
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._client_tasks):
            task.cancel()
        for task in list(self._client_tasks):
            with suppress(asyncio.CancelledError):
                await task
        for shard in self.links:
            self._mark_down(shard)

    # -- metrics -------------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(n)

    # -- worker side ---------------------------------------------------------

    async def worker_up(self, shard: str, host: str, port: int) -> None:
        """Connect a (re)started worker and replay its shard's journals.

        Everything between opening the connection and marking the link
        up is synchronous, so ops that arrive during the connect are
        journaled and land in the replay, never double-sent.
        """
        reader, writer = await asyncio.open_connection(host, port)
        link = self.links[shard]
        records = [r for r in self.sessions.values() if r.shard == shard]
        final_t = None if self._clock == _NEG_INF else self._clock
        lines = replay_lines(records, link.extras + link.swaps, final_t=final_t)
        for record in records:
            record.skip = record.delivered
        # link.extras is kept: this worker too can die before processing
        # a replayed sweep.  Stale entries are pruned as sweeps are
        # journaled (see _journal_sweep).
        link.queue = asyncio.Queue()  # stale pre-crash queue is discarded
        for line in lines:
            link.queue.put_nowait(line)
        link.writer = writer
        link.state = "up"
        link.ups += 1
        if link.ups > 1:
            self._count("cluster.worker_restarts")
            if lines:
                self._count("cluster.replays")
                self._count("cluster.replayed_lines", len(lines))
        loop = asyncio.get_running_loop()
        link.writer_task = loop.create_task(self._worker_writer(link, writer))
        link.reader_task = loop.create_task(self._worker_reader(link, reader))

    async def worker_down(self, shard: str) -> None:
        self._mark_down(shard)

    def _mark_down(self, shard: str) -> None:
        link = self.links[shard]
        if link.state != "up":
            return
        link.state = "down"
        current = asyncio.current_task()
        for task in (link.reader_task, link.writer_task):
            if task is not None and task is not current:
                task.cancel()
        link.reader_task = link.writer_task = None
        if link.writer is not None:
            link.writer.close()
            link.writer = None
        while link.pending_stats:  # unblock any stats fan-out in flight
            fut = link.pending_stats.popleft()
            if not fut.done():
                fut.set_result(None)

    async def _worker_writer(self, link: _WorkerLink, writer) -> None:
        queue = link.queue
        with suppress(ConnectionError, asyncio.CancelledError):
            while True:
                line = await queue.get()
                writer.write(line.encode() + b"\n")
                await writer.drain()

    async def _worker_reader(self, link: _WorkerLink, reader) -> None:
        lines = LineReader(reader, self.max_line)
        try:
            while True:
                kind, raw = await lines.next()
                if kind == "eof":
                    break
                if kind == "overflow":
                    continue
                raw = raw.strip()
                if not raw:
                    continue
                self._on_worker_line(link, raw.decode())
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if link.state == "up":
                self._mark_down(link.shard)

    def _on_worker_line(self, link: _WorkerLink, raw: str) -> None:
        obj = json.loads(raw)
        kind = obj.get("kind")
        if kind == "swap":
            # Every worker acks a broadcast swap; the router already
            # synthesized the single client-facing ack at routing time.
            self._count("cluster.swap_acks_dropped")
            return
        if kind == "stats":
            if link.pending_stats:
                fut = link.pending_stats.popleft()
                if not fut.done():
                    fut.set_result(obj)
            return
        key = obj.get("stroke", "")
        record = self.sessions.get(key)
        terminal = kind in ("commit", "evict") or (
            kind == "error" and obj.get("reason") in _GONE_REASONS
        )
        if record is not None and record.skip > 0:
            # A replayed reply the client already has: bit-equal to the
            # one forwarded before the crash, so drop it by count.
            record.skip -= 1
            self._count("cluster.replies_suppressed")
            if terminal:
                self.sessions.pop(key, None)
            return
        client_id, _, stroke = key.partition(":")
        obj["stroke"] = stroke  # un-namespace; dumps() restores the bytes
        line = json.dumps(obj)
        if record is not None:
            record.delivered += 1
            client_id = record.client
            if terminal:
                self.sessions.pop(key, None)
        client = self._clients.get(client_id)
        if client is not None and not client.closed:
            if not client.push(line):
                self._close_client(client)
        self._count("cluster.replies_forwarded")

    # -- client side ---------------------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        self._next_client += 1
        client = _Client(f"k{self._next_client}", self.queue_size)
        self._clients[client.id] = client
        task = asyncio.current_task()
        self._client_tasks.add(task)
        drain_task = asyncio.get_running_loop().create_task(
            self._client_writer(client, writer)
        )
        lines = LineReader(reader, self.max_line)
        try:
            while not client.closed:
                kind, line = await lines.next()
                if kind == "eof":
                    break
                if kind == "overflow":
                    if not client.push(
                        encode_error(f"line exceeds {self.max_line} bytes")
                    ):
                        break
                    continue
                line = line.strip()
                if not line:
                    continue
                await self._route_line(client, line.decode())
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._close_client(client)
            with suppress(asyncio.CancelledError):
                await drain_task
            writer.close()
            with suppress(ConnectionError):
                await writer.wait_closed()
            self._client_tasks.discard(task)

    async def _client_writer(self, client: _Client, writer) -> None:
        with suppress(ConnectionError):
            while True:
                line = await client.outbox.get()
                if line is None:
                    break
                writer.write(line.encode() + b"\n")
                await writer.drain()

    def _close_client(self, client: _Client) -> None:
        if client.closed:
            return
        client.closed = True
        self._clients.pop(client.id, None)
        if client.outbox.full():
            with suppress(asyncio.QueueEmpty):
                client.outbox.get_nowait()
        with suppress(asyncio.QueueFull):
            client.outbox.put_nowait(None)

    async def _route_line(self, client: _Client, line: str) -> None:
        try:
            payload = json.loads(line)
        except ValueError:
            payload = None
        if isinstance(payload, dict) and payload.get("op") in ("cluster", "drain"):
            await self._admin(client, payload)
            return
        try:
            request = decode_request(line)
        except ProtocolError as exc:
            client.push(encode_error(str(exc)))
            return
        op = request.op
        if op == "stats":
            await self._fleet_stats(client)
            return
        if op == "swap":
            self._route_swap(client, request)
            return
        if op == "tick":
            if request.t > self._clock:
                self._clock = request.t
            self._broadcast(line)
            self._count("cluster.ticks_broadcast")
            return
        if op == "sweep":
            if request.t > self._clock:
                self._clock = request.t
            self._broadcast(line)
            # A worker can die with the sweep queued or sent but not yet
            # processed — death detection is asynchronous, so "up at
            # routing time" proves nothing — and a lost sweep would mean
            # the replayed worker never runs the eviction every live
            # worker ran.  So the sweep is journaled (with its clock
            # marker) for *every* shard that could still be replayed.
            for link in self.links.values():
                if link.shard not in self.retired:
                    self._journal_sweep(link, line)
            return
        # down / move / up: sticky-route, journal, forward.  The journal
        # marker carries the broadcast clock — the barriers the worker
        # received before this op; the op's own t is carried by the op
        # line itself, live and in replay alike.
        key = f"{client.id}:{request.stroke}"
        record = self.sessions.get(key)
        if record is None:
            shard = self.ring.lookup(key, skip=self.draining | self.retired)
            record = SessionRecord(key, client.id, shard)
            self.sessions[key] = record
        payload["stroke"] = key
        forwarded = json.dumps(payload)
        self._seq = record.journal(
            self._seq, forwarded, clock=self._clock, t=request.t
        )
        link = self.links[record.shard]
        if link.state == "up":
            link.queue.put_nowait(forwarded)
        self._count("cluster.ops_routed")

    def _broadcast(self, line: str) -> None:
        for link in self.links.values():
            if link.state == "up":
                link.queue.put_nowait(line)

    def _route_swap(self, client: _Client, request) -> None:
        """Resolve, pin, broadcast, and journal one swap request.

        The user is rewritten to ``client:user`` so it prefixes the
        worker-side session keys exactly as stroke namespacing composes
        them (the worker's pool keys are ``chan/client:stroke``).  The
        version is resolved here — against the router's registry, once
        — and the *pinned* ``name@version`` is what workers receive and
        what the journal replays, so a crash replay after a later
        publish re-applies the same bits.
        """
        if self.registry is None:
            client.push(
                encode_error("swap unsupported: no registry", t=request.t)
            )
            return
        name, _, version = request.model.partition("@")
        try:
            if version:
                self.registry.path_of(name, version)
            else:
                version = self.registry.latest_version(name)
        except (KeyError, OSError) as exc:
            client.push(encode_error(f"swap failed: {exc}", t=request.t))
            return
        pinned = f"{name}@{version}"
        line = json.dumps(
            {
                "op": "swap",
                "user": f"{client.id}:{request.user}",
                "model": pinned,
                "t": request.t,
            }
        )
        self._broadcast(line)
        for link in self.links.values():
            if link.shard not in self.retired:
                link.swaps.append((self._seq, line))
                self._seq += 1
        client.push(encode_swap(request.user, pinned, request.t))
        self._count("cluster.swaps_routed")

    def _journal_sweep(self, link: _WorkerLink, line: str) -> None:
        """Journal one sweep (with clock marker) into a shard's extras.

        Old entries are pruned first: a sweep whose sequence number
        precedes every live journal entry of the shard would replay
        against sessions that no longer exist (evicted or committed
        sessions' journals were dropped on their terminal replies), so
        it can no longer change anything.  That bounds extras growth to
        the sweeps broadcast since the shard's oldest live session
        opened; with no live sessions at all, nothing is journaled.
        """
        floor: int | None = None
        for record in self.sessions.values():
            if record.shard == link.shard and record.entries:
                first = record.entries[0][0]
                if floor is None or first < floor:
                    floor = first
        if floor is None:
            link.extras = []
            return
        link.extras = [e for e in link.extras if e[0] >= floor]
        if self._clock != _NEG_INF:
            link.extras.append(
                (self._seq, json.dumps({"op": "tick", "t": self._clock}))
            )
            self._seq += 1
        link.extras.append((self._seq, line))
        self._seq += 1

    def force_sweep(self, shard: str, max_idle: float = 0.0) -> None:
        """Send a targeted ``sweep`` to one shard — the drain-deadline
        hammer.  Journaled exactly like a broadcast sweep, so a crash
        between send and processing still replays the eviction."""
        link = self.links[shard]
        line = json.dumps({"op": "sweep", "max_idle": max_idle})
        if link.state == "up":
            link.queue.put_nowait(line)
        if shard not in self.retired:
            self._journal_sweep(link, line)

    # -- stats and admin -----------------------------------------------------

    async def _fleet_stats(self, client: _Client) -> None:
        loop = asyncio.get_running_loop()
        futures = []
        for link in self.links.values():
            if link.state == "up":
                fut = loop.create_future()
                link.pending_stats.append(fut)
                link.queue.put_nowait('{"op": "stats"}')
                futures.append(fut)
        replies: list = []
        if futures:
            try:
                replies = await asyncio.wait_for(
                    asyncio.gather(*futures), timeout=self.stats_timeout
                )
            except asyncio.TimeoutError:
                replies = [f.result() for f in futures if f.done() and not f.cancelled()]
        stats = [r for r in replies if isinstance(r, dict)]
        snapshots = [s.get("metrics") for s in stats]
        if self.metrics is not None:
            snapshots.append(self.metrics.snapshot())
        snapshots = [s for s in snapshots if s is not None]
        if snapshots:
            from ..obs import merge_snapshots

            merged = merge_snapshots(snapshots)
        else:
            merged = None
        line = encode_stats(
            merged,
            t=self._clock if self._clock != _NEG_INF else 0.0,
            sessions=sum(s.get("sessions", 0) for s in stats),
            channels=len(self._clients),
        )
        payload = json.loads(line)
        payload["cluster"] = self.status()
        if not client.closed and not client.push(json.dumps(payload)):
            self._close_client(client)

    def status(self) -> dict:
        shards = {}
        supervisor = self.supervisor_status() if self.supervisor_status else {}
        for shard in self.ring.shards:
            link = self.links[shard]
            info = {
                "state": link.state,
                "ups": link.ups,
                "sessions": sum(
                    1 for r in self.sessions.values() if r.shard == shard
                ),
                "draining": shard in self.draining,
                "retired": shard in self.retired,
            }
            info.update(supervisor.get(shard, {}))
            shards[shard] = info
        return {"shards": shards, "sessions": len(self.sessions)}

    async def _admin(self, client: _Client, payload: dict) -> None:
        if payload["op"] == "cluster":
            reply = {"kind": "cluster"}
            reply.update(self.status())
            client.push(json.dumps(reply))
            return
        shard = payload.get("shard")
        if shard not in self.ring.shards:
            client.push(encode_error(f"unknown shard: {shard!r}"))
            return
        if shard in self.draining or shard in self.retired:
            client.push(encode_error(f"shard already draining: {shard}"))
            return
        if self.drain_hook is None:
            client.push(encode_error("drain unavailable: no supervisor"))
            return
        live = {s for s in self.ring.shards if s not in self.draining | self.retired}
        if len(live) <= 1:
            client.push(encode_error("cannot drain the last live shard"))
            return
        asyncio.get_running_loop().create_task(self.drain_hook(shard))
        client.push(json.dumps({"kind": "drain", "shard": shard, "status": "started"}))
