"""Unit tests for the linear evaluation functions."""

import numpy as np
import pytest

from repro.recognizer import LinearClassifier


@pytest.fixture
def two_class() -> LinearClassifier:
    # Class "a" prefers feature 0, class "b" prefers feature 1.
    return LinearClassifier(
        class_names=["a", "b"],
        weights=np.array([[1.0, 0.0], [0.0, 1.0]]),
        constants=np.array([0.0, 0.0]),
    )


class TestConstruction:
    def test_dimensions(self, two_class):
        assert two_class.num_classes == 2
        assert two_class.num_features == 2

    def test_rejects_mismatched_constants(self):
        with pytest.raises(ValueError):
            LinearClassifier(["a"], np.eye(2), np.zeros(2))

    def test_rejects_mismatched_names(self):
        with pytest.raises(ValueError):
            LinearClassifier(["a"], np.eye(2), np.zeros(2))

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            LinearClassifier(["a", "a"], np.eye(2), np.zeros(2))

    def test_rejects_1d_weights(self):
        with pytest.raises(ValueError):
            LinearClassifier(["a"], np.ones(3), np.zeros(1))

    def test_class_index(self, two_class):
        assert two_class.class_index("a") == 0
        assert two_class.class_index("b") == 1


class TestEvaluation:
    def test_evaluations(self, two_class):
        v = two_class.evaluations(np.array([2.0, 5.0]))
        np.testing.assert_allclose(v, [2.0, 5.0])

    def test_constant_term_added(self):
        clf = LinearClassifier(
            ["a"], np.array([[1.0]]), np.array([10.0])
        )
        assert clf.evaluations(np.array([5.0]))[0] == pytest.approx(15.0)

    def test_wrong_feature_count_raises(self, two_class):
        with pytest.raises(ValueError):
            two_class.evaluations(np.zeros(3))

    def test_classify_argmax(self, two_class):
        assert two_class.classify(np.array([3.0, 1.0])) == "a"
        assert two_class.classify(np.array([1.0, 3.0])) == "b"

    def test_classify_with_scores(self, two_class):
        winner, scores = two_class.classify_with_scores(np.array([0.0, 1.0]))
        assert winner == "b"
        assert scores.shape == (2,)


class TestProbability:
    def test_confident_when_gap_is_large(self, two_class):
        p = two_class.probability_correct(np.array([100.0, 0.0]))
        assert p == pytest.approx(1.0)

    def test_half_when_tied(self, two_class):
        p = two_class.probability_correct(np.array([1.0, 1.0]))
        assert p == pytest.approx(0.5)

    def test_no_overflow_on_huge_scores(self, two_class):
        p = two_class.probability_correct(np.array([1e6, -1e6]))
        assert 0.0 < p <= 1.0


class TestBiasing:
    def test_add_to_constant_changes_outcome(self, two_class):
        f = np.array([1.0, 1.0 - 1e-9])
        assert two_class.classify(f) == "a"
        two_class.add_to_constant("b", 1.0)
        assert two_class.classify(f) == "b"

    def test_add_to_constant_unknown_class(self, two_class):
        with pytest.raises(KeyError):
            two_class.add_to_constant("zzz", 1.0)


class TestSerialization:
    def test_round_trip(self, two_class):
        two_class.add_to_constant("a", 0.25)
        clone = LinearClassifier.from_dict(two_class.to_dict())
        assert clone.class_names == two_class.class_names
        np.testing.assert_array_equal(clone.weights, two_class.weights)
        np.testing.assert_array_equal(clone.constants, two_class.constants)

    def test_round_trip_preserves_decisions(self, two_class):
        clone = LinearClassifier.from_dict(two_class.to_dict())
        for f in (np.array([1.0, 2.0]), np.array([-3.0, 1.0])):
            assert clone.classify(f) == two_class.classify(f)

    def test_dict_is_json_serializable(self, two_class):
        import json

        json.dumps(two_class.to_dict())
