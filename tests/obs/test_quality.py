"""Property tests for the recognition-quality telemetry.

The :class:`~repro.obs.QualityMonitor` claims its numbers are *mode
independent* — computed by replaying the decided prefix through the
scalar feature path, so the batched and sequential pools report
bit-identical margins, distances, eagerness and drift — and *inert*:
attaching it (or a tracer next to it, or a profiler) never changes a
decision.  Hypothesis drives randomized workloads at both claims, plus
the bookkeeping invariants (records complete only at close, outliers
follow Rubine's 0.5 F^2 rule, masked classifiers measured in their own
feature space).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    MetricsRegistry,
    PerfProfiler,
    PoolObserver,
    QualityMonitor,
    Tracer,
)
from repro.serve import SessionPool, generate_workload, run_load
from repro.synth import GestureGenerator, eight_direction_templates

workload_params = st.tuples(
    st.integers(min_value=1, max_value=8),   # clients
    st.integers(min_value=1, max_value=3),   # gestures per client
    st.integers(min_value=0, max_value=2**16),  # seed
)


def _quality_run(recognizer, workload, *, batched, tracer=None, metrics=None):
    if metrics is None:
        metrics = MetricsRegistry()
    quality = QualityMonitor(recognizer, metrics=metrics, tracer=tracer)
    observer = PoolObserver(metrics=metrics, tracer=tracer, quality=quality)
    result = run_load(
        recognizer, workload, batched=batched, collect=True, observer=observer
    )
    return result, quality, metrics


def _quality_view(quality, metrics):
    """Everything the monitor reports, in comparable plain-data form."""
    snap = metrics.snapshot()
    return {
        "counters": {
            k: v
            for k, v in snap["counters"].items()
            if k.startswith("quality.")
        },
        "histograms": {
            k: v
            for k, v in snap["histograms"].items()
            if k.startswith("quality.")
        },
        "drift": quality.drift_scores(),
    }


@settings(deadline=None, max_examples=8)
@given(params=workload_params)
def test_quality_metrics_identical_across_modes(
    directions_recognizer, params
):
    """Batched and sequential runs report bit-identical quality data."""
    clients, gestures, seed = params
    workload = generate_workload(
        eight_direction_templates(),
        clients=clients,
        gestures_per_client=gestures,
        seed=seed,
    )
    views = {}
    traces = {}
    for batched in (True, False):
        tracer = Tracer()
        _, quality, metrics = _quality_run(
            directions_recognizer, workload, batched=batched, tracer=tracer
        )
        views[batched] = _quality_view(quality, metrics)
        traces[batched] = [
            line for line in tracer.lines() if '"quality"' in line
        ]
    assert views[True] == views[False]
    assert traces[True] == traces[False]
    assert traces[True], "workload produced no quality records"


@settings(deadline=None, max_examples=8)
@given(params=workload_params)
def test_quality_metrics_invariant_under_attached_tracer(
    directions_recognizer, params
):
    """A tracer beside the monitor changes nothing in the metrics."""
    clients, gestures, seed = params
    workload = generate_workload(
        eight_direction_templates(),
        clients=clients,
        gestures_per_client=gestures,
        seed=seed,
    )
    _, q_bare, m_bare = _quality_run(
        directions_recognizer, workload, batched=True, tracer=None
    )
    _, q_traced, m_traced = _quality_run(
        directions_recognizer, workload, batched=True, tracer=Tracer()
    )
    assert _quality_view(q_bare, m_bare) == _quality_view(q_traced, m_traced)


@pytest.mark.parametrize("batched", [True, False])
def test_quality_and_profiler_never_change_decisions(
    directions_recognizer, batched
):
    """The full insight stack attached vs bare: identical decisions."""
    workload = generate_workload(
        eight_direction_templates(), clients=6, gestures_per_client=2, seed=55
    )
    plain = run_load(
        directions_recognizer, workload, batched=batched, collect=True
    )
    metrics = MetricsRegistry()
    observer = PoolObserver(
        metrics=metrics,
        tracer=Tracer(),
        quality=QualityMonitor(directions_recognizer, metrics=metrics),
        profiler=PerfProfiler(),
    )
    observed = run_load(
        directions_recognizer,
        workload,
        batched=batched,
        collect=True,
        observer=observer,
    )
    assert observed.decision_log == plain.decision_log
    counters = observed.metrics["counters"]
    assert counters["quality.decisions"] == 12
    if batched:
        assert observed.profile  # the profiler really ran
        assert "feature_update" in observed.profile


def test_quality_records_complete_only_at_close(directions_recognizer):
    """Eagerness needs the whole stroke: records surface on commit."""
    tracer = Tracer()
    metrics = MetricsRegistry()
    quality = QualityMonitor(
        directions_recognizer, metrics=metrics, tracer=tracer
    )
    pool = SessionPool(
        directions_recognizer,
        batched=True,
        observer=PoolObserver(metrics=metrics, tracer=tracer, quality=quality),
    )
    generator = GestureGenerator(eight_direction_templates(), seed=9)
    stroke = list(generator.generate("ur").stroke)
    pool.down("k", stroke[0].x, stroke[0].y, stroke[0].t)
    for p in stroke[1:]:
        pool.move("k", p.x, p.y, p.t)
    decisions = pool.advance_to(stroke[-1].t)
    recogs = [d for d in decisions if d.kind == "recog"]
    assert len(recogs) == 1 and recogs[0].eager
    # Decided but not committed: metrics updated, no trace record yet.
    assert metrics.snapshot()["counters"]["quality.decisions"] == 1
    assert not [r for r in tracer.records if r.get("rec") == "quality"]
    # Manipulation-phase moves extend the stroke, then the up commits.
    t = stroke[-1].t
    for i in range(3):
        t += 0.01
        pool.move("k", stroke[-1].x + i, stroke[-1].y, t)
    pool.up("k", stroke[-1].x, stroke[-1].y, t)
    pool.flush()
    records = [r for r in tracer.records if r.get("rec") == "quality"]
    assert len(records) == 1
    record = records[0]
    # Denominator counts every sample in the physical stroke: the
    # decided prefix, the stroke's own post-decision tail, and the 3
    # manipulation-phase drags.
    assert record["total"] == len(stroke) + 3
    assert record["eagerness"] == recogs[0].points_seen / record["total"]
    assert record["points"] == recogs[0].points_seen
    assert 0.0 < record["eagerness"] < 1.0
    # The record round-trips through canonical NDJSON encoding.
    assert json.loads(json.dumps(record, sort_keys=True)) == record


def test_outliers_follow_rubines_rejection_rule(directions_recognizer):
    """A garbage stroke lands past 0.5 F^2; training-like input stays in."""
    metrics = MetricsRegistry()
    quality = QualityMonitor(directions_recognizer, metrics=metrics)
    pool = SessionPool(
        directions_recognizer,
        batched=False,
        observer=PoolObserver(metrics=metrics, quality=quality),
    )
    # A tight zigzag scribble: nothing like any straight-line class.
    t = 0.0
    pool.down("junk", 0.0, 0.0, t)
    for i in range(1, 40):
        t = i * 0.01
        pool.move("junk", 30.0 * (i % 2), 7.0 * i, t)
    pool.up("junk", 0.0, 0.0, t)
    pool.flush()
    counters = metrics.snapshot()["counters"]
    assert counters["quality.decisions"] == 1
    assert counters["quality.outliers"] == 1


def test_masked_recognizer_measured_in_its_own_space(masked_recognizer):
    """Feature-masked classifiers get margins/distances in masked space."""
    workload = generate_workload(
        eight_direction_templates(), clients=4, gestures_per_client=2, seed=21
    )
    tracer = Tracer()
    _, quality, metrics = _quality_run(
        masked_recognizer, workload, batched=True, tracer=tracer
    )
    records = [r for r in tracer.records if r.get("rec") == "quality"]
    assert records
    dim = masked_recognizer.full_classifier.metric.dim
    assert dim == 10  # the mask dropped three features
    for r in records:
        assert r["margin"] >= 0.0
        assert r["d2"] >= 0.0
        assert r["drift"] == r["d2"] / dim
        assert r["outlier"] == (r["d2"] > 0.5 * dim * dim)
    # And the batched/sequential equivalence holds under the mask too.
    tracer_seq = Tracer()
    _, quality_seq, metrics_seq = _quality_run(
        masked_recognizer, workload, batched=False, tracer=tracer_seq
    )
    assert _quality_view(quality, metrics) == _quality_view(
        quality_seq, metrics_seq
    )


def test_drift_scores_cover_only_seen_classes(directions_recognizer):
    quality = QualityMonitor(directions_recognizer)
    assert quality.drift_scores() == {}
    workload = generate_workload(
        eight_direction_templates(), clients=2, gestures_per_client=1, seed=3
    )
    _, quality, _ = _quality_run(
        directions_recognizer, workload, batched=True
    )
    drift = quality.drift_scores()
    assert drift
    assert set(drift) <= set(directions_recognizer.class_names)
    assert all(v > 0.0 for v in drift.values())
    assert list(drift) == sorted(drift)
