"""Unit tests for the tailed gesture generator."""

import pytest

from repro.textedit import TailedGestureGenerator, editing_templates
from repro.textedit.gestures import extended_editing_templates


@pytest.fixture
def generator():
    return TailedGestureGenerator(editing_templates(), seed=11)


class TestTemplates:
    def test_editing_classes(self):
        assert set(editing_templates()) == {
            "move-text",
            "delete-text",
            "insert-text",
        }

    def test_extended_adds_stem_classes(self):
        extended = extended_editing_templates()
        assert "paragraph-mark" in extended
        assert "footnote-mark" in extended
        assert set(editing_templates()) <= set(extended)

    def test_stem_classes_share_circle_prefix(self):
        extended = extended_editing_templates()
        move = extended["move-text"].waypoints
        pilcrow = extended["paragraph-mark"].waypoints
        assert pilcrow[: len(move)] == move


class TestTailGeneration:
    def test_move_gets_a_tail(self, generator):
        example = generator.generate("move-text")
        assert example.corner_sample_indices  # prefix boundary recorded
        prefix_end = example.corner_sample_indices[0]
        assert prefix_end < len(example.stroke) - 1  # points after it

    def test_untailed_classes_pass_through(self, generator):
        example = generator.generate("insert-text")
        # Insert keeps whatever ground truth the base generator gave.
        assert example.class_name == "insert-text"

    def test_tail_lengths_vary(self, generator):
        lengths = []
        for _ in range(15):
            example = generator.generate("move-text")
            prefix_end = example.corner_sample_indices[0]
            prefix = example.stroke.subgesture(prefix_end + 1)
            tail_length = example.stroke.path_length() - prefix.path_length()
            lengths.append(tail_length)
        assert max(lengths) > 2 * min(lengths)  # "vary greatly"

    def test_tail_directions_vary(self, generator):
        import math

        angles = []
        for _ in range(15):
            example = generator.generate("move-text")
            prefix_end = example.corner_sample_indices[0]
            a = example.stroke[prefix_end]
            b = example.stroke[-1]
            angles.append(math.atan2(b.y - a.y, b.x - a.x))
        spread = max(angles) - min(angles)
        assert spread > math.pi / 2

    def test_strip_tails_yields_prefixes(self, generator):
        with_tails = TailedGestureGenerator(
            editing_templates(), seed=12
        ).generate_strokes(5, strip_tails=False)
        prefixes = TailedGestureGenerator(
            editing_templates(), seed=12
        ).generate_strokes(5, strip_tails=True)
        for tailed, prefix in zip(
            with_tails["move-text"], prefixes["move-text"]
        ):
            assert len(prefix) < len(tailed)
            assert prefix.is_prefix_of(tailed)

    def test_tail_timestamps_continue(self, generator):
        example = generator.generate("move-text")
        times = [p.t for p in example.stroke]
        assert times == sorted(times)
