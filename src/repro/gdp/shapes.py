"""GDP's shape models.

"GDP is capable of producing drawings made with lines, rectangles,
ellipses, and text" (§2), plus composite objects created by the group
gesture.  Shapes are GRANDMA models: pure state plus change
notification, displayed by the views in :mod:`repro.gdp.views` and
mutated by gesture semantics and drag handlers.

Every shape supports the operations the gesture set needs: translation
(move/copy placement), rotate-scale about an arbitrary center, hit
testing (delete/edit/dot target finding), cloning (copy), and control
points (the edit gesture "brings up control points on an object [that]
can be dragged around directly, scaling the object accordingly").
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Iterator

from ..geometry import Affine, BoundingBox, Point, point_segment_distance
from ..mvc import Model

__all__ = [
    "Shape",
    "LineShape",
    "RectShape",
    "EllipseShape",
    "TextShape",
    "GroupShape",
    "ControlPoint",
]

_shape_ids = itertools.count(1)


class ControlPoint(Model):
    """A draggable handle exposed by the edit gesture.

    Dragging it moves one geometric degree of freedom of its shape (a
    line endpoint, a rectangle corner, an ellipse radius).  It is a model
    in its own right so a drag handler can grab it.
    """

    def __init__(
        self,
        name: str,
        get_position: Callable[[], tuple[float, float]],
        set_position: Callable[[float, float], None],
    ):
        super().__init__()
        self.name = name
        self._get = get_position
        self._set = set_position

    @property
    def position(self) -> tuple[float, float]:
        return self._get()

    def move_by(self, dx: float, dy: float) -> None:
        x, y = self._get()
        self._set(x + dx, y + dy)
        self.changed()


class Shape(Model):
    """Base class of everything on a GDP canvas."""

    def __init__(self) -> None:
        super().__init__()
        self.id = next(_shape_ids)

    # -- geometry every shape answers ------------------------------------------

    def bounds(self) -> BoundingBox:
        raise NotImplementedError

    def hit(self, x: float, y: float, tolerance: float = 6.0) -> bool:
        """Is ``(x, y)`` on (or within tolerance of) this shape?"""
        raise NotImplementedError

    def reference_point(self) -> Point:
        """A representative point (used for enclosure tests)."""
        return self.bounds().center

    # -- the operations gestures perform -----------------------------------------

    def move_by(self, dx: float, dy: float) -> None:
        self.apply_transform(Affine.translation(dx, dy))

    def rotate_scale_about(
        self, cx: float, cy: float, angle: float, scale: float
    ) -> None:
        """The rotate-scale gesture's manipulation primitive."""
        inner = Affine.rotation(angle) @ Affine.scaling(scale)
        self.apply_transform(Affine.about(Point(cx, cy), inner))

    def apply_transform(self, transform: Affine) -> None:
        raise NotImplementedError

    def clone(self) -> "Shape":
        """A deep copy with a fresh id (the copy gesture)."""
        raise NotImplementedError

    def control_points(self) -> list[ControlPoint]:
        """Handles shown by the edit gesture.  Default: none."""
        return []


class LineShape(Shape):
    """A line segment with adjustable endpoints and thickness.

    The modified GDP mapped the line *gesture's length* to thickness
    (§2); the attribute exists so that variant can be expressed.
    """

    def __init__(
        self, x1: float, y1: float, x2: float, y2: float, thickness: float = 1.0
    ):
        super().__init__()
        self.endpoints = [(float(x1), float(y1)), (float(x2), float(y2))]
        self.thickness = float(thickness)

    def set_endpoint(self, index: int, x: float, y: float) -> None:
        """The paper's ``setEndpoint:N x:y:`` message."""
        self.endpoints[index] = (float(x), float(y))
        self.changed()

    def bounds(self) -> BoundingBox:
        box = BoundingBox()
        for x, y in self.endpoints:
            box.extend(x, y)
        return box

    def hit(self, x: float, y: float, tolerance: float = 6.0) -> bool:
        (x1, y1), (x2, y2) = self.endpoints
        return (
            point_segment_distance(x, y, x1, y1, x2, y2)
            <= tolerance + self.thickness / 2.0
        )

    def apply_transform(self, transform: Affine) -> None:
        self.endpoints = [transform.apply_xy(x, y) for x, y in self.endpoints]
        self.changed()

    def clone(self) -> "LineShape":
        (x1, y1), (x2, y2) = self.endpoints
        return LineShape(x1, y1, x2, y2, self.thickness)

    def control_points(self) -> list[ControlPoint]:
        def make(i: int) -> ControlPoint:
            return ControlPoint(
                name=f"endpoint{i}",
                get_position=lambda: self.endpoints[i],
                set_position=lambda x, y: self.set_endpoint(i, x, y),
            )

        return [make(0), make(1)]


class RectShape(Shape):
    """A rectangle stored as two opposite corners plus a rotation.

    The modified GDP derived the rectangle's orientation from the initial
    angle of the gesture (§2); ``angle`` carries that.  ``set_corner``
    implements the paper's rubberbanding: "the manip semantics makes the
    other corner of the rectangle <currentX>, <currentY>".
    """

    def __init__(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        angle: float = 0.0,
    ):
        super().__init__()
        self.corners = [(float(x1), float(y1)), (float(x2), float(y2))]
        self.angle = float(angle)

    def set_corner(self, index: int, x: float, y: float) -> None:
        """The paper's ``setEndpoint:N`` on the rectangle model."""
        self.corners[index] = (float(x), float(y))
        self.changed()

    def corner_points(self) -> list[tuple[float, float]]:
        """All four corners, honouring the rotation about the center."""
        (x1, y1), (x2, y2) = self.corners
        cx, cy = (x1 + x2) / 2.0, (y1 + y2) / 2.0
        raw = [(x1, y1), (x2, y1), (x2, y2), (x1, y2)]
        if self.angle == 0.0:
            return raw
        rot = Affine.about(Point(cx, cy), Affine.rotation(self.angle))
        return [rot.apply_xy(x, y) for x, y in raw]

    def bounds(self) -> BoundingBox:
        box = BoundingBox()
        for x, y in self.corner_points():
            box.extend(x, y)
        return box

    def hit(self, x: float, y: float, tolerance: float = 6.0) -> bool:
        corners = self.corner_points()
        for (ax, ay), (bx, by) in zip(corners, corners[1:] + corners[:1]):
            if point_segment_distance(x, y, ax, ay, bx, by) <= tolerance:
                return True
        return False

    def apply_transform(self, transform: Affine) -> None:
        """Apply a similarity transform (translate / rotate / uniform scale).

        The stored corners live in the rectangle's unrotated frame, so the
        transform is decomposed: its rotation folds into ``angle``, its
        scale spreads the corners about the (relocated) center.  A
        non-uniform scale is approximated by ``sqrt(|det|)`` — GDP's
        gestures only ever produce similarities.
        """
        theta = math.atan2(transform.c, transform.a)
        scale = math.sqrt(abs(transform.determinant))
        (x1, y1), (x2, y2) = self.corners
        cx, cy = (x1 + x2) / 2.0, (y1 + y2) / 2.0
        new_cx, new_cy = transform.apply_xy(cx, cy)
        self.corners = [
            (new_cx + scale * (x - cx), new_cy + scale * (y - cy))
            for x, y in self.corners
        ]
        self.angle += theta
        self.changed()

    def clone(self) -> "RectShape":
        (x1, y1), (x2, y2) = self.corners
        return RectShape(x1, y1, x2, y2, self.angle)

    def control_points(self) -> list[ControlPoint]:
        def make(i: int) -> ControlPoint:
            return ControlPoint(
                name=f"corner{i}",
                get_position=lambda: self.corners[i],
                set_position=lambda x, y: self.set_corner(i, x, y),
            )

        return [make(0), make(1)]


class EllipseShape(Shape):
    """An axis-aligned ellipse: center plus two radii.

    Figure 3: the ellipse gesture fixes the *center* at recognition time;
    size and eccentricity are manipulated afterwards.
    """

    def __init__(self, cx: float, cy: float, rx: float = 1.0, ry: float = 1.0):
        super().__init__()
        self.center = (float(cx), float(cy))
        self.rx = max(float(rx), 1e-9)
        self.ry = max(float(ry), 1e-9)

    def set_center(self, x: float, y: float) -> None:
        self.center = (float(x), float(y))
        self.changed()

    def set_radii(self, rx: float, ry: float) -> None:
        """Size and eccentricity in one call (the manip semantics)."""
        self.rx = max(float(abs(rx)), 1e-9)
        self.ry = max(float(abs(ry)), 1e-9)
        self.changed()

    def bounds(self) -> BoundingBox:
        cx, cy = self.center
        return BoundingBox(cx - self.rx, cy - self.ry, cx + self.rx, cy + self.ry)

    def hit(self, x: float, y: float, tolerance: float = 6.0) -> bool:
        cx, cy = self.center
        # Normalized radial coordinate: 1.0 is exactly on the outline.
        u = (x - cx) / self.rx
        v = (y - cy) / self.ry
        r = math.hypot(u, v)
        # Tolerance in normalized units, using the smaller radius so thin
        # ellipses stay pickable.
        slack = tolerance / min(self.rx, self.ry)
        return abs(r - 1.0) <= slack

    def apply_transform(self, transform: Affine) -> None:
        self.center = transform.apply_xy(*self.center)
        # Scale radii by the transform's average stretch (GDP's ellipses
        # stay axis-aligned; rotation only relocates them).
        sx = math.hypot(transform.a, transform.c)
        sy = math.hypot(transform.b, transform.d)
        self.rx = max(self.rx * sx, 1e-9)
        self.ry = max(self.ry * sy, 1e-9)
        self.changed()

    def clone(self) -> "EllipseShape":
        cx, cy = self.center
        return EllipseShape(cx, cy, self.rx, self.ry)

    def control_points(self) -> list[ControlPoint]:
        def get_rx_handle() -> tuple[float, float]:
            return (self.center[0] + self.rx, self.center[1])

        def set_rx_handle(x: float, y: float) -> None:
            self.set_radii(x - self.center[0], self.ry)

        def get_ry_handle() -> tuple[float, float]:
            return (self.center[0], self.center[1] + self.ry)

        def set_ry_handle(x: float, y: float) -> None:
            self.set_radii(self.rx, y - self.center[1])

        return [
            ControlPoint("rx", get_rx_handle, set_rx_handle),
            ControlPoint("ry", get_ry_handle, set_ry_handle),
        ]


class TextShape(Shape):
    """A text label anchored at a point."""

    # Nominal glyph cell used for bounds/hit math (display-independent).
    CHAR_WIDTH = 7.0
    CHAR_HEIGHT = 12.0

    def __init__(self, x: float, y: float, text: str = "text"):
        super().__init__()
        self.position = (float(x), float(y))
        self.text = text

    def set_position(self, x: float, y: float) -> None:
        self.position = (float(x), float(y))
        self.changed()

    def set_text(self, text: str) -> None:
        self.text = text
        self.changed()

    def bounds(self) -> BoundingBox:
        x, y = self.position
        return BoundingBox(
            x, y - self.CHAR_HEIGHT, x + self.CHAR_WIDTH * max(len(self.text), 1), y
        )

    def hit(self, x: float, y: float, tolerance: float = 6.0) -> bool:
        return self.bounds().inflated(tolerance).contains(x, y)

    def apply_transform(self, transform: Affine) -> None:
        self.position = transform.apply_xy(*self.position)
        self.changed()

    def clone(self) -> "TextShape":
        x, y = self.position
        return TextShape(x, y, self.text)


class GroupShape(Shape):
    """A composite created by the group gesture.

    "The group gesture generates a composite object out of the enclosed
    objects; additional objects may be added to the group by touching
    them during the manipulation phase."
    """

    def __init__(self, members: list[Shape] | None = None):
        super().__init__()
        self.members: list[Shape] = list(members or [])

    def add_member(self, shape: Shape) -> None:
        if shape is not self and shape not in self.members:
            self.members.append(shape)
            self.changed()

    def remove_member(self, shape: Shape) -> None:
        if shape in self.members:
            self.members.remove(shape)
            self.changed()

    def flattened(self) -> Iterator[Shape]:
        """Leaf shapes of the composite, depth first."""
        for member in self.members:
            if isinstance(member, GroupShape):
                yield from member.flattened()
            else:
                yield member

    def bounds(self) -> BoundingBox:
        box = BoundingBox()
        for member in self.members:
            box = box.union(member.bounds())
        return box

    def hit(self, x: float, y: float, tolerance: float = 6.0) -> bool:
        return any(m.hit(x, y, tolerance) for m in self.members)

    def apply_transform(self, transform: Affine) -> None:
        for member in self.members:
            member.apply_transform(transform)
        self.changed()

    def clone(self) -> "GroupShape":
        return GroupShape([m.clone() for m in self.members])
