"""Tests for incremental (interactive) training."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.recognizer import GestureClassifier, OnlineTrainer
from repro.synth import GestureGenerator, eight_direction_templates, ud_templates


class TestAccumulation:
    def test_class_bookkeeping(self, directions_train):
        trainer = OnlineTrainer()
        for name, strokes in directions_train.items():
            for stroke in strokes:
                trainer.add_example(name, stroke)
        assert set(trainer.class_names) == set(directions_train)
        assert trainer.example_count("ur") == len(directions_train["ur"])
        assert trainer.total_examples == sum(
            len(v) for v in directions_train.values()
        )

    def test_remove_class(self, directions_train):
        trainer = OnlineTrainer()
        trainer.add_example("ur", directions_train["ur"][0])
        assert trainer.remove_class("ur")
        assert not trainer.remove_class("ur")
        assert trainer.example_count("ur") == 0

    def test_wrong_dimension_rejected(self):
        trainer = OnlineTrainer()
        with pytest.raises(ValueError):
            trainer.add_feature_vector("x", np.zeros(4))

    def test_build_requires_two_classes(self, directions_train):
        trainer = OnlineTrainer()
        trainer.add_example("ur", directions_train["ur"][0])
        with pytest.raises(ValueError):
            trainer.build()


class TestEquivalenceWithBatch:
    def test_online_equals_batch_training(self, directions_train):
        """Sufficient statistics are lossless: same data, same classifier."""
        trainer = OnlineTrainer()
        for name, strokes in directions_train.items():
            for stroke in strokes:
                trainer.add_example(name, stroke)
        online = trainer.build()
        batch = GestureClassifier.train(directions_train)
        # Same class set, same decisions on fresh data.
        assert set(online.class_names) == set(batch.class_names)
        probe_gen = GestureGenerator(eight_direction_templates(), seed=4321)
        for name, strokes in probe_gen.generate_strokes(3).items():
            for stroke in strokes:
                assert online.classify(stroke) == batch.classify(stroke)

    def test_online_weights_match_batch(self, directions_train):
        trainer = OnlineTrainer()
        for name, strokes in directions_train.items():
            for stroke in strokes:
                trainer.add_example(name, stroke)
        online = trainer.build()
        batch = GestureClassifier.train(directions_train)
        batch_order = [
            batch.linear.class_index(name) for name in online.class_names
        ]
        np.testing.assert_allclose(
            online.linear.weights,
            batch.linear.weights[batch_order],
            rtol=1e-6,
            atol=1e-8,
        )


class TestRuntimeClassAddition:
    """The GRANDMA story: add a gesture class to a live application."""

    def test_new_class_recognized_after_retrain(self):
        generator = GestureGenerator(ud_templates(), seed=21)
        trainer = OnlineTrainer()
        for name, strokes in generator.generate_strokes(10).items():
            for stroke in strokes:
                trainer.add_example(name, stroke)
        classifier = trainer.build()
        assert set(classifier.class_names) == {"U", "D"}

        # The designer now draws examples of a brand-new class: a plain
        # rightward flick.
        from repro.synth import GestureTemplate

        flick = GestureTemplate(
            name="flick", waypoints=((0.0, 0.0), (0.8, 0.0))
        )
        flick_gen = GestureGenerator({"flick": flick}, seed=22)
        for stroke in flick_gen.generate_strokes(10)["flick"]:
            trainer.add_example("flick", stroke)
        retrained = trainer.build()
        assert set(retrained.class_names) == {"U", "D", "flick"}

        probe = GestureGenerator({"flick": flick}, seed=23)
        hits = sum(
            retrained.classify(s) == "flick"
            for s in probe.generate_strokes(10)["flick"]
        )
        assert hits >= 8
        # The old classes still work.
        ud_probe = GestureGenerator(ud_templates(), seed=24)
        for name, strokes in ud_probe.generate_strokes(5).items():
            correct = sum(retrained.classify(s) == name for s in strokes)
            assert correct >= 4

    def test_live_handler_swap(self, directions_train):
        """Swapping a gesture handler's recognizer mid-session."""
        from repro.interaction import GestureHandler

        trainer = OnlineTrainer()
        for name, strokes in directions_train.items():
            for stroke in strokes:
                trainer.add_example(name, stroke)
        handler = GestureHandler(recognizer=trainer.build(), use_eager=False)
        assert "ur" in handler.recognizer.class_names
        # More training data arrives; rebuild and swap in place.
        handler.recognizer = trainer.build()
        assert handler.phase.name == "IDLE"


class TestBitIdentityWithEagerTrainer:
    """Satellite of the adapt loop: incremental == batch, bit for bit.

    The per-user retrainer persists an :class:`OnlineTrainer` and folds
    corrections into it one at a time; its candidate model is only
    reproducible (content-hash stable) if building from accumulated
    examples is *exactly* the batch closed form, not a numerically
    similar one.
    """

    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=4, max_value=8),
    )
    @settings(max_examples=15, deadline=None)
    def test_one_at_a_time_matches_batch_model_hash(self, seed, examples):
        from repro.eager import train_eager_recognizer
        from repro.hashing import content_hash

        strokes = GestureGenerator(
            ud_templates(), seed=seed
        ).generate_strokes(examples)
        batch = train_eager_recognizer(strokes).recognizer

        trainer = OnlineTrainer()
        for name, examples_list in strokes.items():
            for stroke in examples_list:
                trainer.add_example(name, stroke)
        incremental = train_eager_recognizer(
            strokes, full_classifier=trainer.build()
        ).recognizer

        assert content_hash(incremental.to_dict()) == content_hash(
            batch.to_dict()
        )

    def test_new_class_added_then_built_matches_batch(self):
        from repro.eager import train_eager_recognizer
        from repro.hashing import content_hash
        from repro.synth import GestureTemplate

        strokes = GestureGenerator(ud_templates(), seed=5).generate_strokes(6)
        trainer = OnlineTrainer()
        for name, examples_list in strokes.items():
            for stroke in examples_list:
                trainer.add_example(name, stroke)

        # A brand-new class arrives at runtime, appended after the others
        # — the same first-seen order batch training would use.
        flick = GestureTemplate(name="flick", waypoints=((0.0, 0.0), (0.8, 0.0)))
        flick_strokes = GestureGenerator(
            {"flick": flick}, seed=6
        ).generate_strokes(6)["flick"]
        for stroke in flick_strokes:
            trainer.add_example("flick", stroke)

        combined = dict(strokes)
        combined["flick"] = flick_strokes
        batch = train_eager_recognizer(combined).recognizer
        incremental = train_eager_recognizer(
            combined, full_classifier=trainer.build()
        ).recognizer
        assert content_hash(incremental.to_dict()) == content_hash(
            batch.to_dict()
        )

    def test_trainer_state_round_trips_to_same_bits(self):
        import json

        from repro.hashing import content_hash

        strokes = GestureGenerator(ud_templates(), seed=9).generate_strokes(5)
        trainer = OnlineTrainer()
        for name, examples_list in strokes.items():
            for stroke in examples_list:
                trainer.add_example(name, stroke)
        revived = OnlineTrainer.from_dict(
            json.loads(json.dumps(trainer.to_dict()))
        )
        assert content_hash(revived.build().to_dict()) == content_hash(
            trainer.build().to_dict()
        )
        assert revived.class_names == trainer.class_names
