"""The semantics of GDP's eleven gestures (paper figure 3).

Each entry is the recog/manip/done triple the paper writes as
Objective-C message expressions.  The rectangle one, for instance, is a
direct transliteration of §3.2's example::

    recog = [[view createRect] setEndpoint:0 x:<startX> y:<startY>];
    manip = [recog setEndpoint:1 x:<currentX> y:<currentY>];
    done  = nil;

Figure 3's parameter table is the specification: for every gesture,
which parameters are fixed at recognition time and which are manipulated
interactively afterwards.
"""

from __future__ import annotations

import math

from ..interaction import GestureContext, GestureSemantics
from .canvas import Canvas
from .shapes import GroupShape, Shape
from .views import CanvasView, ShapeView

__all__ = ["build_gdp_semantics"]


def _canvas(context: GestureContext) -> Canvas:
    view = context.view
    if not isinstance(view, CanvasView):
        raise TypeError("GDP gestures must be directed at the canvas view")
    return view.canvas


def _shape_view(context: GestureContext, shape: Shape) -> ShapeView | None:
    view = context.view
    if isinstance(view, CanvasView):
        return view.view_for(shape)
    return None


def build_gdp_semantics(modified: bool = False) -> dict[str, GestureSemantics]:
    """The full gesture-class → semantics mapping for GDP.

    With ``modified=True`` this is §2's "modified version of GDP": the
    initial angle of the rectangle gesture sets the rectangle's
    orientation, and the length of the line gesture sets the line's
    thickness — the paper's illustration of "how gestural attributes may
    be mapped to application parameters".  (The paper notes the modified
    rectangle must be *trained* in multiple orientations for the
    classifier to accept rotated gestures.)
    """
    return {
        "rect": _rect_semantics(modified=modified),
        "line": _line_semantics(modified=modified),
        "ellipse": _ellipse_semantics(),
        "group": _group_semantics(),
        "copy": _copy_semantics(),
        "move": _move_semantics(),
        "rotate-scale": _rotate_scale_semantics(),
        "delete": _delete_semantics(),
        "edit": _edit_semantics(),
        "text": _text_semantics(),
        "dot": _dot_semantics(),
    }


def _rect_semantics(modified: bool = False) -> GestureSemantics:
    """Corner 1 at recognition; corner 2 rubberbands (figure 3).

    In the modified variant the gesture's initial angle becomes the
    rectangle's orientation with respect to the horizontal (§2).  The
    canonical rect gesture opens straight *down* (+pi/2 on a y-down
    screen), so the orientation is the deviation from that.
    """

    def recog(context: GestureContext) -> Shape:
        rect = _canvas(context).create_rect(
            context.start_x, context.start_y, context.current_x, context.current_y
        )
        if modified:
            rect.angle = context.initial_angle - math.pi / 2
            rect.changed()
        return rect

    def manip(context: GestureContext) -> None:
        context.recog.set_corner(1, context.current_x, context.current_y)

    return GestureSemantics(recog=recog, manip=manip)


def _line_semantics(modified: bool = False) -> GestureSemantics:
    """Endpoint 1 at recognition; endpoint 2 rubberbands.

    In the modified variant the gesture's length sets the line's
    thickness (§2), one display unit per 25 gesture pixels.
    """

    def recog(context: GestureContext) -> Shape:
        line = _canvas(context).create_line(
            context.start_x, context.start_y, context.current_x, context.current_y
        )
        if modified:
            line.thickness = max(1.0, context.gesture_length / 25.0)
            line.changed()
        return line

    def manip(context: GestureContext) -> None:
        context.recog.set_endpoint(1, context.current_x, context.current_y)

    return GestureSemantics(recog=recog, manip=manip)


def _ellipse_semantics() -> GestureSemantics:
    """Center at recognition; size and eccentricity by manipulation."""

    def recog(context: GestureContext) -> Shape:
        ellipse = _canvas(context).create_ellipse(
            context.start_x, context.start_y
        )
        _set_radii_from_cursor(ellipse, context)
        return ellipse

    def manip(context: GestureContext) -> None:
        _set_radii_from_cursor(context.recog, context)

    def _set_radii_from_cursor(ellipse, context: GestureContext) -> None:
        rx = abs(context.current_x - context.start_x)
        ry = abs(context.current_y - context.start_y)
        ellipse.set_radii(max(rx, 1.0), max(ry, 1.0))

    return GestureSemantics(recog=recog, manip=manip)


def _group_semantics() -> GestureSemantics:
    """Enclosed objects grouped at recognition; touch adds members."""

    def recog(context: GestureContext) -> GroupShape:
        canvas = _canvas(context)
        enclosed = canvas.shapes_enclosed_by(context.enclosed_stroke)
        return canvas.group(enclosed)

    def manip(context: GestureContext) -> None:
        canvas = _canvas(context)
        touched = canvas.top_shape_at(context.current_x, context.current_y)
        if touched is not None and touched is not context.recog:
            canvas.add_to_group(context.recog, touched)

    return GestureSemantics(recog=recog, manip=manip)


def _copy_semantics() -> GestureSemantics:
    """Object to copy fixed at recognition; copy follows the mouse."""

    def recog(context: GestureContext) -> Shape | None:
        canvas = _canvas(context)
        original = canvas.top_shape_at(context.start_x, context.start_y)
        if original is None:
            return None
        duplicate = original.clone()
        canvas.add(duplicate)
        context.attributes["last"] = (context.current_x, context.current_y)
        return duplicate

    def manip(context: GestureContext) -> None:
        _drag_recog_shape(context)

    return GestureSemantics(recog=recog, manip=manip)


def _move_semantics() -> GestureSemantics:
    """Object fixed at recognition; location manipulated."""

    def recog(context: GestureContext) -> Shape | None:
        shape = _canvas(context).top_shape_at(context.start_x, context.start_y)
        context.attributes["last"] = (context.current_x, context.current_y)
        return shape

    def manip(context: GestureContext) -> None:
        _drag_recog_shape(context)

    return GestureSemantics(recog=recog, manip=manip)


def _drag_recog_shape(context: GestureContext) -> None:
    """Shared manip body: the recog'd shape tracks the mouse deltas."""
    shape = context.recog
    if shape is None:
        return
    last_x, last_y = context.attributes.get(
        "last", (context.current_x, context.current_y)
    )
    dx, dy = context.current_x - last_x, context.current_y - last_y
    if dx or dy:
        shape.move_by(dx, dy)
    context.attributes["last"] = (context.current_x, context.current_y)


def _rotate_scale_semantics() -> GestureSemantics:
    """Center of rotation = gesture start; drag point manipulates both
    size and orientation (figure 3)."""

    def recog(context: GestureContext) -> Shape | None:
        canvas = _canvas(context)
        shape = canvas.top_shape_at(context.start_x, context.start_y)
        context.attributes["drag"] = (context.current_x, context.current_y)
        return shape

    def manip(context: GestureContext) -> None:
        shape = context.recog
        if shape is None:
            return
        cx, cy = context.start_x, context.start_y
        px, py = context.attributes.get(
            "drag", (context.current_x, context.current_y)
        )
        qx, qy = context.current_x, context.current_y
        r_prev = math.hypot(px - cx, py - cy)
        r_now = math.hypot(qx - cx, qy - cy)
        if r_prev < 1e-6 or r_now < 1e-6:
            return
        angle = math.atan2(qy - cy, qx - cx) - math.atan2(py - cy, px - cx)
        scale = r_now / r_prev
        shape.rotate_scale_about(cx, cy, angle, scale)
        context.attributes["drag"] = (qx, qy)

    return GestureSemantics(recog=recog, manip=manip)


def _delete_semantics() -> GestureSemantics:
    """Object at gesture start deleted; touching deletes more (figure 3)."""

    def recog(context: GestureContext) -> Shape | None:
        canvas = _canvas(context)
        victim = canvas.top_shape_at(context.start_x, context.start_y)
        if victim is not None:
            canvas.delete(victim)
        return victim

    def manip(context: GestureContext) -> None:
        canvas = _canvas(context)
        touched = canvas.top_shape_at(context.current_x, context.current_y)
        if touched is not None:
            canvas.delete(touched)

    return GestureSemantics(recog=recog, manip=manip)


def _edit_semantics() -> GestureSemantics:
    """Bring up control points on the object at the gesture start (§2)."""

    def recog(context: GestureContext) -> Shape | None:
        canvas = _canvas(context)
        shape = canvas.top_shape_at(context.start_x, context.start_y)
        if shape is None:
            return None
        shape_view = _shape_view(context, shape)
        if shape_view is not None:
            if shape_view.editing:
                shape_view.hide_control_points()
            else:
                shape_view.show_control_points()
        return shape

    return GestureSemantics(recog=recog)


def _text_semantics() -> GestureSemantics:
    """Create a text object at the gesture start; drag to position it."""

    def recog(context: GestureContext) -> Shape:
        text = _canvas(context).create_text(context.start_x, context.start_y)
        return text

    def manip(context: GestureContext) -> None:
        context.recog.set_position(context.current_x, context.current_y)

    return GestureSemantics(recog=recog, manip=manip)


def _dot_semantics() -> GestureSemantics:
    """Select the object under the dot (or clear the selection)."""

    def recog(context: GestureContext) -> Shape | None:
        canvas = _canvas(context)
        shape = canvas.top_shape_at(context.start_x, context.start_y)
        if shape is None:
            canvas.clear_selection()
        else:
            canvas.select(shape)
        return shape

    return GestureSemantics(recog=recog)
