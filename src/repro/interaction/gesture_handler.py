"""The gesture handler: collection, phase transition, manipulation.

"The [gesture] handler is responsible for collecting and inking the
gesture, determining when the phase transition occurs, classifying the
gesture, and executing the gesture's semantics." (§3.2)

The phase transition happens in one of the paper's three ways (§1):

1. the mouse button is released — the manipulation phase is omitted
   (recog and done still run, back to back);
2. a timeout fires because the user has held the mouse still for
   ``timeout`` seconds (the paper used 200 ms) with the button down;
3. eager recognition — the attached :class:`~repro.eager.EagerRecognizer`
   reports the gesture prefix unambiguous.

All three coexist on one handler: whichever condition is met first
transitions the interaction.
"""

from __future__ import annotations

import enum
from typing import Mapping

from typing import Callable

from ..eager import EagerRecognizer, EagerSession
from ..events import MouseEvent
from ..geometry import Point, Stroke
from ..mvc import DispatchContext, EventHandler, EventPredicate, View
from ..recognizer import GestureClassifier, RejectionPolicy, RejectionResult
from .semantics import GestureContext, GestureSemantics

__all__ = ["GestureHandler", "Phase", "DEFAULT_TIMEOUT"]

# "a timeout indicating that the user has not moved the mouse for 200
# milliseconds" (§1)
DEFAULT_TIMEOUT = 0.200


class Phase(enum.Enum):
    """Where a two-phase interaction currently stands."""

    IDLE = "idle"
    COLLECTING = "collecting"
    MANIPULATING = "manipulating"


class _InteractionState:
    """Per-interaction mutable state (one mouse, one interaction at a time)."""

    def __init__(self, view: View, dispatch: DispatchContext):
        self.view = view
        self.dispatch = dispatch
        self.points: list[Point] = []
        self.phase = Phase.COLLECTING
        self.context: GestureContext | None = None
        self.semantics: GestureSemantics | None = None
        self.timer_token: int | None = None
        self.eager_session: EagerSession | None = None


class GestureHandler(EventHandler):
    """An event handler implementing the two-phase interaction.

    "Each instance of a gesture handler recognizes its own set of
    gestures, and can have its own semantics associated with each
    gesture" — construct one with a trained recognizer and a mapping from
    class name to :class:`GestureSemantics`, then attach it to a view or
    a view class.
    """

    def __init__(
        self,
        recognizer: EagerRecognizer | GestureClassifier,
        semantics: Mapping[str, GestureSemantics] | None = None,
        predicate: EventPredicate | None = None,
        use_eager: bool = True,
        use_timeout: bool = True,
        timeout: float = DEFAULT_TIMEOUT,
        rejection_policy: RejectionPolicy | None = None,
        on_rejected: Callable[[Stroke, RejectionResult], None] | None = None,
    ):
        """
        Args:
            recognizer: an :class:`EagerRecognizer` (enables eager mode)
                or a plain :class:`GestureClassifier`.
            semantics: per-class recog/manip/done triples.
            predicate: event filter (e.g. gesture on one button only).
            use_eager / use_timeout / timeout: which phase-transition
                modes are armed.
            rejection_policy: when given, gestures classified at a
                timeout or mouse-up transition may be *rejected*
                (ambiguous or outlier input) — no semantics run.  A
                rejection at the timeout keeps collecting instead of
                transitioning, so the user can simply continue drawing.
            on_rejected: callback for rejected gestures (e.g. flash the
                ink red).
        """
        super().__init__(predicate)
        self.recognizer = recognizer
        self.semantics: dict[str, GestureSemantics] = dict(semantics or {})
        self.use_eager = use_eager and isinstance(recognizer, EagerRecognizer)
        self.use_timeout = use_timeout
        self.timeout = timeout
        self.rejection_policy = rejection_policy
        self.on_rejected = on_rejected
        self._state: _InteractionState | None = None

    # -- configuration -------------------------------------------------------

    def set_semantics(self, class_name: str, semantics: GestureSemantics) -> None:
        """Associate (or replace) the semantics of one gesture class."""
        self.semantics[class_name] = semantics

    # -- observable state (for inking and for tests) ---------------------------

    @property
    def phase(self) -> Phase:
        return self._state.phase if self._state is not None else Phase.IDLE

    @property
    def ink(self) -> Stroke:
        """The points collected so far — what the UI would draw as ink."""
        if self._state is None:
            return Stroke()
        return Stroke(self._state.points)

    @property
    def active_context(self) -> GestureContext | None:
        """The live gesture context, once the gesture has been recognized."""
        return self._state.context if self._state is not None else None

    # -- EventHandler protocol -------------------------------------------------

    def begin(
        self, event: MouseEvent, view: View, context: DispatchContext
    ) -> bool:
        if self._state is not None:
            # One mouse: a second press mid-interaction never reaches us
            # through the dispatcher; guard anyway.
            return False
        state = _InteractionState(view, context)
        state.points.append(event.point)
        if self.use_eager:
            state.eager_session = self.recognizer.session()
            state.eager_session.add_point(event.point)
        self._state = state
        self._arm_timeout(event)
        return True

    def update(self, event: MouseEvent, context: DispatchContext) -> None:
        state = self._state
        if state is None:
            return
        if state.phase is Phase.COLLECTING:
            state.points.append(event.point)
            self._arm_timeout(event)
            if state.eager_session is not None:
                decided = state.eager_session.add_point(event.point)
                if decided is not None:
                    self._transition(decided, event.point, eagerly=True)
        elif state.phase is Phase.MANIPULATING:
            assert state.context is not None
            state.context.current = event.point
            state.semantics.on_manipulate(state.context)

    def end(self, event: MouseEvent, context: DispatchContext) -> None:
        state = self._state
        if state is None:
            return
        self._disarm_timeout()
        if state.phase is Phase.COLLECTING:
            # Transition mode 1: button released — classify, run recog,
            # skip manipulation.
            class_name = self._classify_or_reject(Stroke(state.points))
            if class_name is None:
                self._state = None
                return
            self._transition(class_name, event.point, eagerly=False)
        if state.context is not None:
            state.context.current = event.point
            state.semantics.on_done(state.context)
        self._state = None

    # -- the phase transition ---------------------------------------------------

    def _transition(
        self, class_name: str, at_point: Point, eagerly: bool
    ) -> None:
        """Enter the manipulation phase with a recognized gesture."""
        state = self._state
        assert state is not None
        self._disarm_timeout()
        gesture = Stroke(state.points)
        state.phase = Phase.MANIPULATING
        state.semantics = self.semantics.get(class_name, GestureSemantics())
        state.context = GestureContext(
            view=state.view,
            dispatch=state.dispatch,
            gesture=gesture,
            class_name=class_name,
            current=at_point,
            eagerly_recognized=eagerly,
        )
        state.semantics.on_recognized(state.context)

    def _classify(self, gesture: Stroke) -> str:
        if isinstance(self.recognizer, EagerRecognizer):
            return self.recognizer.classify_full(gesture)
        return self.recognizer.classify(gesture)

    def _classify_or_reject(self, gesture: Stroke) -> str | None:
        """Classify, honouring the rejection policy if one is set."""
        if self.rejection_policy is None:
            return self._classify(gesture)
        classifier = self.recognizer
        if isinstance(classifier, EagerRecognizer):
            classifier = classifier.full_classifier
        result = classifier.classify_with_rejection(
            gesture, self.rejection_policy
        )
        if result.rejected:
            if self.on_rejected is not None:
                self.on_rejected(gesture, result)
            return None
        return result.class_name

    # -- the motionless timeout ---------------------------------------------------

    def _arm_timeout(self, event: MouseEvent) -> None:
        """(Re)start the stillness clock: each mouse sample resets it."""
        if not self.use_timeout:
            return
        state = self._state
        self._disarm_timeout()
        state.timer_token = state.dispatch.queue.schedule_timer(
            self.timeout, self._timeout_fired
        )

    def _disarm_timeout(self) -> None:
        state = self._state
        if state is not None and state.timer_token is not None:
            state.dispatch.queue.cancel_timer(state.timer_token)
            state.timer_token = None

    def _timeout_fired(self, timer) -> None:
        """Transition mode 2: the mouse sat still with the button down.

        A rejection here means "can't tell yet": the handler keeps
        collecting rather than transitioning, so the user may continue
        the gesture (or release, giving the mouse-up path a final say).
        """
        state = self._state
        if state is None or state.phase is not Phase.COLLECTING:
            return
        state.timer_token = None
        class_name = self._classify_or_reject(Stroke(state.points))
        if class_name is None:
            return
        self._transition(class_name, state.points[-1], eagerly=False)
