"""Batched evaluation must equal the scalar path, decision for decision.

The serving layer's core claim (see ``repro.serve.batch``): stacking
feature rows and deciding them with one matrix product yields the same
verdicts as running each session through ``EagerSession`` — with any
row the evaluator cannot *prove* safe flagged ``risky`` and re-decided
sequentially.  These tests drive random strokes through both paths and
insist on equality, including for GDP's feature-masked full classifier.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import IncrementalFeatures
from repro.geometry import Point
from repro.serve import BatchEvaluator, FeatureBank

coord = st.floats(
    min_value=-500.0, max_value=500.0, allow_nan=False, allow_infinity=False
)


@st.composite
def strokes(draw, min_points=1, max_points=25):
    n = draw(st.integers(min_value=min_points, max_value=max_points))
    points = []
    t = 0.0
    for _ in range(n):
        t += draw(st.floats(min_value=0.0, max_value=0.05))
        points.append(Point(draw(coord), draw(coord), t))
    return points


def scalar_vector(points):
    inc = IncrementalFeatures()
    for p in points:
        inc.add_point(p)
    return inc.vector


class TestFeatureBank:
    @given(st.lists(strokes(), min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_bank_matches_incremental_features(self, stroke_list):
        """Interleaved vectorized ticks == per-stroke scalar accumulation."""
        bank = FeatureBank(len(stroke_list))
        slots = [bank.open_slot() for _ in stroke_list]
        longest = max(len(s) for s in stroke_list)
        for i in range(longest):
            live = [
                (slot, s[i])
                for slot, s in zip(slots, stroke_list)
                if i < len(s)
            ]
            arr = np.array([slot for slot, _ in live])
            xs = np.array([p.x for _, p in live])
            ys = np.array([p.y for _, p in live])
            ts = np.array([p.t for _, p in live])
            counts = bank.add_points(arr, xs, ys, ts)
            assert counts.tolist() == [i + 1] * len(live)
        f, counts, guard_risk = bank.features(np.array(slots))
        assert guard_risk.shape == (len(slots),)
        for row, stroke in zip(f, stroke_list):
            expected = scalar_vector(stroke)
            # Everything but atan2/hypot is IEEE-identical; those may
            # differ by an ulp per operation (bounded, and accounted for
            # by the evaluator's risk flags).
            np.testing.assert_allclose(row, expected, rtol=1e-12, atol=1e-12)

    def test_slot_reuse_resets_state(self):
        bank = FeatureBank(1)
        slot = bank.open_slot()
        bank.add_points(
            np.array([slot]), np.array([5.0]), np.array([6.0]), np.array([0.1])
        )
        bank.close_slot(slot)
        again = bank.open_slot()
        assert again == slot
        assert bank.count_of(again) == 0
        bank.add_points(
            np.array([again]), np.array([1.0]), np.array([2.0]), np.array([0.2])
        )
        f, counts, _ = bank.features(np.array([again]))
        assert counts.tolist() == [1.0]
        assert f[0, 4] == 0.0  # chord length restarts from the new first point

    def test_capacity_exhaustion(self):
        bank = FeatureBank(2)
        bank.open_slot(), bank.open_slot()
        assert bank.free_slots == 0
        with pytest.raises(IndexError):
            bank.open_slot()


def _drive_both_paths(recognizer, stroke_list):
    """Feed strokes through EagerSession and through bank+evaluator."""
    evaluator = BatchEvaluator(recognizer)
    bank = FeatureBank(len(stroke_list))
    slots = np.array([bank.open_slot() for _ in stroke_list])
    sequential = []
    for stroke in stroke_list:
        session = recognizer.session()
        decided = None
        for p in stroke:
            decided = session.add_point(p)
            if decided is not None:
                break
        sequential.append((decided, session.finish()))

    shortest = min(len(s) for s in stroke_list)
    for i in range(shortest):
        bank.add_points(
            slots,
            np.array([s[i].x for s in stroke_list]),
            np.array([s[i].y for s in stroke_list]),
            np.array([s[i].t for s in stroke_list]),
        )
    return evaluator, bank, slots, sequential


class TestBatchEvaluator:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_unrisky_rows_match_scalar_decisions(
        self, directions_recognizer, masked_recognizer, data
    ):
        """Per-row batched verdicts equal scalar ones wherever not risky.

        Runs against both recognizers — the masked one's full classifier
        carries a feature-index mask, exercising the zero-embedding
        layout.
        """
        for recognizer in (directions_recognizer, masked_recognizer):
            n = recognizer.min_points
            stroke_list = data.draw(
                st.lists(
                    strokes(min_points=n, max_points=n + 10),
                    min_size=1,
                    max_size=5,
                )
            )
            evaluator, bank, slots, _ = _drive_both_paths(
                recognizer, stroke_list
            )
            prefix = min(len(s) for s in stroke_list)
            features, counts, guard_risk = bank.features(slots)
            unamb, auc_risky, winners, full_risky = (
                evaluator.combined_decisions(features, counts, guard_risk)
            )
            names = evaluator.full_names
            for i, stroke in enumerate(stroke_list):
                vector = scalar_vector(stroke[:prefix])
                if not auc_risky[i]:
                    assert unamb[i] == recognizer.auc.is_unambiguous(vector)
                if not full_risky[i]:
                    expected = recognizer.full_classifier.classify_features(
                        vector
                    )
                    assert names[winners[i]] == expected

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_combined_matches_unfused_methods(
        self, masked_recognizer, data
    ):
        """The fused matrix product agrees with the per-classifier paths.

        The fused path's risk bound is looser (row-L1 instead of
        per-class), so it may flag *more* rows risky — never fewer —
        and must agree on every row neither path flags.
        """
        recognizer = masked_recognizer
        n = recognizer.min_points
        stroke_list = data.draw(
            st.lists(
                strokes(min_points=n, max_points=n + 8),
                min_size=1,
                max_size=4,
            )
        )
        evaluator, bank, slots, _ = _drive_both_paths(recognizer, stroke_list)
        features, counts, guard_risk = bank.features(slots)
        unamb, auc_risky, winners, full_risky = evaluator.combined_decisions(
            features, counts, guard_risk
        )
        unamb2, auc_risky2 = evaluator.auc_decisions(
            features, counts, guard_risk
        )
        names2, full_risky2 = evaluator.full_decisions(
            features, counts, guard_risk
        )
        names = evaluator.full_names
        for i in range(len(stroke_list)):
            if not (auc_risky[i] or auc_risky2[i]):
                assert unamb[i] == unamb2[i]
            if not (full_risky[i] or full_risky2[i]):
                assert names[winners[i]] == names2[i]

    def test_masked_weights_zero_embedding(self, masked_recognizer):
        """The masked classifier's scores equal its embedded block exactly."""
        full = masked_recognizer.full_classifier
        assert full.feature_indices is not None
        evaluator = BatchEvaluator(masked_recognizer)
        rng = np.random.default_rng(17)
        features = rng.normal(size=(32, 13)) * 50.0
        n_auc = masked_recognizer.auc.linear.num_classes
        fused = features @ evaluator._comb_wt + evaluator._comb_const
        masked = (
            features[:, list(full.feature_indices)] @ full.linear.weights.T
            + full.linear.constants
        )
        np.testing.assert_array_equal(fused[:, n_auc:], masked)
