"""Integration tests for the gesture-driven text editor."""

import pytest

from repro.events import perform_gesture
from repro.geometry import Stroke
from repro.synth import GenerationParams, GestureGenerator
from repro.textedit import (
    CHAR_WIDTH,
    LINE_HEIGHT,
    TailedGestureGenerator,
    TextEditApp,
    TextPosition,
    editing_templates,
    train_textedit_recognizer,
)


@pytest.fixture(scope="module")
def recognizer():
    return train_textedit_recognizer(examples_per_class=12, seed=9)


@pytest.fixture
def app(recognizer):
    return TextEditApp(
        "the quick brown fox\njumps over the lazy dog",
        recognizer=recognizer,
        use_eager=False,
    )


def circle_over(app, col_start, col_end, line=0, seed=3):
    """A move-text circle whose box covers [col_start, col_end) of a line."""
    width_px = (col_end - col_start) * CHAR_WIDTH
    generator = GestureGenerator(
        {"move-text": editing_templates()["move-text"]},
        params=GenerationParams(scale=max(width_px * 1.6, 60.0)),
        seed=seed,
    )
    stroke = generator.generate("move-text").stroke
    box = stroke.bounding_box()
    target_cx = 20.0 + (col_start + col_end) / 2 * CHAR_WIDTH
    target_cy = 20.0 + (line + 0.5) * LINE_HEIGHT
    return stroke.translated(target_cx - box.center.x, target_cy - box.center.y)


def slot_xy(app, line, col):
    x, y = app.buffer.position_to_xy(TextPosition(line, col))
    return (x, y + LINE_HEIGHT / 2)


class TestMoveText:
    def test_move_word_to_another_line(self, app):
        stroke = circle_over(app, 4, 9)  # around "quick"
        dest = slot_xy(app, 1, len("jumps over the lazy dog"))
        events = perform_gesture(
            stroke, dwell=0.3, manipulation_path=Stroke.from_xy([dest], dt=0.03)
        )
        app.perform(events)
        assert "quick" not in app.buffer.lines[0]
        assert "quick" in app.buffer.lines[1]
        assert app.last_action.startswith("move-text: moved")

    def test_snap_cursor_live_during_manipulation(self, app):
        stroke = circle_over(app, 4, 9)
        # Wander to a nonsense position; the cursor must snap to legal.
        events = perform_gesture(
            stroke,
            dwell=0.3,
            manipulation_path=Stroke.from_xy([(10_000.0, -500.0)], dt=0.03),
        )
        # Peek mid-interaction: drive events except the final release.
        app.post(events[:-1])
        app.dispatcher.run()
        assert app.snap_cursor is not None
        assert app.snap_cursor.line == 0  # clamped
        assert app.snap_cursor.col <= len(app.buffer.lines[0])
        # Finish the interaction.
        app.post([events[-1]])
        app.dispatcher.run()
        assert app.snap_cursor is None  # cleared after done

    def test_empty_circle_moves_nothing(self, app):
        before = app.buffer.text
        stroke = circle_over(app, 4, 9).translated(400, 300)  # empty space
        app.perform(perform_gesture(stroke, dwell=0.3))
        assert app.buffer.text == before
        assert app.last_action == "move-text: nothing circled"


class TestDeleteAndInsert:
    def test_delete_strikes_text(self, app, recognizer):
        generator = TailedGestureGenerator(editing_templates(), seed=4)
        example = generator.generate("delete-text")
        # The strike spans ~90px; place it over "brown" (cols 10-15).
        stroke = example.stroke
        box = stroke.bounding_box()
        target_cx = 20.0 + 12.5 * CHAR_WIDTH
        target_cy = 20.0 + 0.5 * LINE_HEIGHT
        stroke = stroke.translated(
            target_cx - box.center.x, target_cy - box.center.y
        )
        app.perform(perform_gesture(stroke, dwell=0.3))
        assert app.last_action.startswith("delete-text: removed")
        assert "brown" not in app.buffer.lines[0]

    def test_insert_marks_caret(self, app):
        generator = TailedGestureGenerator(editing_templates(), seed=5)
        stroke = generator.generate("insert-text").stroke
        box = stroke.bounding_box()
        # Apex over line 1, around column 5.
        target_x = 20.0 + 5 * CHAR_WIDTH
        stroke = stroke.translated(
            target_x - box.center.x, (20.0 + 1.2 * LINE_HEIGHT) - box.min_y
        )
        app.perform(perform_gesture(stroke, dwell=0.3))
        assert app.insert_marks
        assert app.insert_marks[-1].line == 1
        assert app.last_action.startswith("insert-text: caret")


class TestTrainedOnPrefixes:
    def test_recognizer_classes(self, recognizer):
        assert set(recognizer.class_names) == {
            "move-text",
            "delete-text",
            "insert-text",
        }

    def test_circle_prefix_classifies_as_move(self, recognizer):
        generator = TailedGestureGenerator(editing_templates(), seed=6)
        example = generator.generate("move-text")
        prefix = example.stroke.subgesture(example.corner_sample_indices[0] + 1)
        assert recognizer.classify_full(prefix) == "move-text"
