"""Synthetic families for the interaction modalities (``repro.modal``).

Three template families feed the two-phase engine the richer streams
ROADMAP item 4 asks for, one stroke class per modality role:

* :func:`modal_templates` — the integrated menu: ``tap`` (a dab),
  ``hold`` (a press that stays down, its dwell samples still ticking),
  ``scroll_v``/``scroll_h`` (long deliberate axis strokes) and the four
  cardinal ``swipe_*`` flicks (short, fast, straight).  Pace is encoded
  per class via ``GestureTemplate.speed_scale``/``dwell_samples`` —
  spatially, as sample spacing, so it survives the serving layer's
  tick-paced replay — and the thirteen-feature classifier separates tap
  from hold by duration and scroll from swipe by maximum speed, which
  geometry alone would not.
* :func:`swipe_templates` — all eight compass flicks, the direction-
  quantization stress test.
* :func:`pinch_templates` — single-finger paths of two-finger gestures
  (``pinch``/``spread`` converging/diverging lines, ``rotate`` arcs),
  the ``_a``/``_b`` suffix naming the finger role.  The modal composer
  pairs concurrent ``:a``/``:b`` sessions and runs the multipath TRS
  tracker over them; each path is still an ordinary stroke class to the
  pool and cluster.

Every non-dot class carries a *commitment landmark* in the corner slot:
the waypoint where the modality's kinematic threshold is crossed (a
swipe's minimum travel, a scroll's axis-lock travel, a pinch's gap
change, a rotation's minimum angle).  The generator turns landmarks
into ground-truth sample indices (``GeneratedGesture.oracle_points``),
so eagerness telemetry and figure-9-style oracle comparisons stay
meaningful on modal traffic.
"""

from __future__ import annotations

import math

from .templates import GestureTemplate, arc_waypoints

__all__ = [
    "MODAL_CLASS_NAMES",
    "PINCH_CLASS_NAMES",
    "SWIPE_CLASS_NAMES",
    "modal_templates",
    "modality_of",
    "pinch_templates",
    "swipe_templates",
]

# Compass unit vectors under the y-down screen frame (north is up).
_COMPASS: dict[str, tuple[float, float]] = {
    "e": (1.0, 0.0),
    "ne": (math.sqrt(0.5), -math.sqrt(0.5)),
    "n": (0.0, -1.0),
    "nw": (-math.sqrt(0.5), -math.sqrt(0.5)),
    "w": (-1.0, 0.0),
    "sw": (-math.sqrt(0.5), math.sqrt(0.5)),
    "s": (0.0, 1.0),
    "se": (math.sqrt(0.5), math.sqrt(0.5)),
}

# Class pace relative to the family default (see GestureTemplate):
# pace is spatial — a flick covers 3x the ground per mouse sample
# (~1800 px/s at the 100 Hz clock), a deliberate scroll 0.75x
# (~450 px/s) — which puts them on opposite sides of the modal
# config's 900 px/s velocity threshold at the default 100 px scale,
# and keeps doing so when the serving layer replays one sample per
# fixed 10 ms tick.
_SWIPE_SPEED_SCALE = 3.0
_SCROLL_SPEED_SCALE = 0.75
# A flick accelerates from rest: a few samples sit at the origin before
# the path launches.  All flick directions thereby share a near-origin
# prefix — the training ambiguity the eager AUC requires — exactly as
# the paper's gesture sets share initial segments.
_SWIPE_PRESS_SAMPLES = 3
# A hold is a tap that stays down: ~half a second of in-place samples.
_HOLD_DWELL_SAMPLES = 48

# Unit-coordinate geometry (scaled by GenerationParams.scale = 100 px).
_SWIPE_LENGTH = 1.5  # px 150: well past swipe_min_travel
_SWIPE_LANDMARK = 0.6  # px 60: ModalityConfig.swipe_min_travel
_SCROLL_LENGTH = 1.2
_SCROLL_LANDMARK = 0.24  # px 24: ModalityConfig.scroll_min_travel
_PINCH_SPAN = 0.75  # each finger starts this far from the pair center
_PINCH_TRAVEL = 0.6  # and moves this far along its line
_PINCH_LANDMARK = 0.12  # half of pinch_min_travel: the gap moves 2x per finger
_ROTATE_RADIUS = 0.6
_ROTATE_SWEEP = 0.9  # rad per finger
_ROTATE_STEPS = 18
_ROTATE_LANDMARK_STEP = 4  # first step past rotate_min_angle (0.2 rad)


def _line(
    name: str,
    direction: tuple[float, float],
    length: float,
    landmark: float,
    speed_scale: float,
    press_samples: int = 0,
) -> GestureTemplate:
    """A straight stroke with an interior commitment landmark."""
    ux, uy = direction
    return GestureTemplate(
        name=name,
        waypoints=(
            (0.0, 0.0),
            (ux * landmark, uy * landmark),
            (ux * length, uy * length),
        ),
        corner_indices=(1,),
        speed_scale=speed_scale,
        press_samples=press_samples,
    )


def modal_templates() -> dict[str, GestureTemplate]:
    """The integrated modality menu: tap, hold, scrolls, cardinal swipes."""
    templates = {
        "tap": GestureTemplate(name="tap", waypoints=((0.0, 0.0),)),
        "hold": GestureTemplate(
            name="hold",
            waypoints=((0.0, 0.0),),
            dwell_samples=_HOLD_DWELL_SAMPLES,
        ),
        "scroll_v": _line(
            "scroll_v", _COMPASS["s"], _SCROLL_LENGTH, _SCROLL_LANDMARK,
            _SCROLL_SPEED_SCALE,
        ),
        "scroll_h": _line(
            "scroll_h", _COMPASS["e"], _SCROLL_LENGTH, _SCROLL_LANDMARK,
            _SCROLL_SPEED_SCALE,
        ),
    }
    for point in ("e", "n", "w", "s"):
        name = f"swipe_{point}"
        templates[name] = _line(
            name, _COMPASS[point], _SWIPE_LENGTH, _SWIPE_LANDMARK,
            _SWIPE_SPEED_SCALE, _SWIPE_PRESS_SAMPLES,
        )
    return templates


def swipe_templates() -> dict[str, GestureTemplate]:
    """All eight compass flicks — direction quantization's stress test."""
    return {
        f"swipe_{point}": _line(
            f"swipe_{point}", vector, _SWIPE_LENGTH, _SWIPE_LANDMARK,
            _SWIPE_SPEED_SCALE, _SWIPE_PRESS_SAMPLES,
        )
        for point, vector in _COMPASS.items()
    }


def _radial(name: str, angle: float) -> GestureTemplate:
    """One finger's inward path of a pinch.

    A spread is the same pair of paths traversed outward — under
    Rubine's translation-invariant features a left finger moving east
    *is* a right finger moving east, so finger paths classify by
    direction and the pair's gap change (not the class) decides pinch
    in versus out.
    """
    ux, uy = math.cos(angle), math.sin(angle)
    return GestureTemplate(
        name=name,
        waypoints=(
            (ux * _PINCH_SPAN, uy * _PINCH_SPAN),
            (
                ux * (_PINCH_SPAN - _PINCH_LANDMARK),
                uy * (_PINCH_SPAN - _PINCH_LANDMARK),
            ),
            (
                ux * (_PINCH_SPAN - _PINCH_TRAVEL),
                uy * (_PINCH_SPAN - _PINCH_TRAVEL),
            ),
        ),
        corner_indices=(1,),
    )


def _arc(name: str, start_angle: float) -> GestureTemplate:
    """One finger's path of a two-finger rotation (clockwise on screen).

    The start angles put finger a at the top moving east and finger b
    at the bottom moving west — tangent to the pinch lines' initial
    directions, so pinch and rotate share prefixes and the eager
    recognizer has a real unambiguity point to find (the arc reveals
    itself by curvature, not by its first samples).
    """
    waypoints = arc_waypoints(
        0.0, 0.0, _ROTATE_RADIUS, start_angle, _ROTATE_SWEEP,
        steps=_ROTATE_STEPS,
    )
    return GestureTemplate(
        name=name,
        waypoints=tuple(waypoints),
        corner_indices=(_ROTATE_LANDMARK_STEP,),
    )


def pinch_templates() -> dict[str, GestureTemplate]:
    """Finger-role paths for the two-path manipulations.

    ``*_a`` starts on the left of the pair center, ``*_b`` on the
    right; the modal composer matches them by the ``:a``/``:b`` session
    key suffix and feeds the multipath TwoFingerTracker.
    """
    return {
        "pinch_a": _radial("pinch_a", math.pi),
        "pinch_b": _radial("pinch_b", 0.0),
        "rotate_a": _arc("rotate_a", -math.pi / 2.0),
        "rotate_b": _arc("rotate_b", math.pi / 2.0),
    }


MODAL_CLASS_NAMES: tuple[str, ...] = tuple(modal_templates())
SWIPE_CLASS_NAMES: tuple[str, ...] = tuple(swipe_templates())
PINCH_CLASS_NAMES: tuple[str, ...] = tuple(pinch_templates())

# Exact class-name -> modality map.  Exact names (not prefixes) so
# legacy families can never alias into a modality by accident (GDP has
# a "rotate_scale" class; it stays a plain stroke).
_MODALITY_BY_CLASS: dict[str, str] = {
    "tap": "tap",
    "hold": "hold",
    "scroll_v": "scroll",
    "scroll_h": "scroll",
    **{name: "swipe" for name in SWIPE_CLASS_NAMES},
    **{name: "pinch" for name in ("pinch_a", "pinch_b")},
    **{name: "rotate" for name in ("rotate_a", "rotate_b")},
}


def modality_of(class_name: str) -> str:
    """The modality a gesture class belongs to, or ``"stroke"``.

    Only the modal families' exact class names map to a modality;
    every other class — GDP, notes, editing, user-defined — is a plain
    ``"stroke"``, which keeps pre-modal analyze reports byte-identical.
    """
    return _MODALITY_BY_CLASS.get(class_name, "stroke")
