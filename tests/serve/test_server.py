"""End-to-end asyncio server tests: TCP clients, channels, error isolation.

Driven with ``asyncio.run`` from synchronous tests (no pytest-asyncio in
the environment).  All time is virtual — requests carry timestamps and
``tick`` advances the shared clock — so every test is deterministic.
"""

from __future__ import annotations

import asyncio
import json

from repro.serve import GestureServer, Request, decode_request


def _stroke_requests(stroke, n=10, step=5.0, t0=0.0, dt=0.01):
    reqs = [Request(op="down", stroke=stroke, x=0.0, y=0.0, t=t0)]
    for i in range(1, n):
        reqs.append(
            Request(
                op="move", stroke=stroke, x=i * step, y=i * step, t=t0 + i * dt
            )
        )
    reqs.append(
        Request(
            op="up",
            stroke=stroke,
            x=(n - 1) * step,
            y=(n - 1) * step,
            t=t0 + n * dt,
        )
    )
    return reqs


async def _recv_until(channel, kind, limit=50):
    """Collect decoded replies until one of ``kind`` arrives."""
    replies = []
    for _ in range(limit):
        line = await asyncio.wait_for(channel.recv(), timeout=5.0)
        assert line is not None, f"channel closed while waiting for {kind}"
        reply = json.loads(line)
        replies.append(reply)
        if reply["kind"] == kind:
            return replies
    raise AssertionError(f"no {kind!r} reply within {limit} messages")


class TestInProcessChannels:
    def test_full_gesture_recognized_and_committed(self, directions_recognizer):
        async def scenario():
            server = GestureServer(directions_recognizer)
            await server.start()
            try:
                channel = await server.open_channel()
                for request in _stroke_requests("s1"):
                    await channel.send(request)
                replies = await _recv_until(channel, "commit")
            finally:
                await server.stop()
            return replies

        replies = asyncio.run(scenario())
        kinds = [r["kind"] for r in replies]
        assert kinds.count("recog") == 1
        assert kinds[-1] == "commit"
        recog = replies[kinds.index("recog")]
        assert recog["stroke"] == "s1"
        assert recog["class"] in directions_recognizer.class_names

    def test_two_channels_interleaved_are_isolated(self, directions_recognizer):
        """Two clients, same stroke id, interleaved point by point."""

        async def scenario():
            server = GestureServer(directions_recognizer)
            await server.start()
            try:
                a = await server.open_channel()
                b = await server.open_channel()
                reqs_a = _stroke_requests("s", n=8, step=5.0)
                reqs_b = _stroke_requests("s", n=8, step=-5.0)
                for ra, rb in zip(reqs_a, reqs_b):
                    await a.send(ra)
                    await b.send(rb)
                got_a = await _recv_until(a, "commit")
                got_b = await _recv_until(b, "commit")
            finally:
                await server.stop()
            return got_a, got_b

        got_a, got_b = asyncio.run(scenario())
        for replies in (got_a, got_b):
            assert [r["kind"] for r in replies].count("recog") == 1
            assert all(r["stroke"] == "s" for r in replies)
        name_a = next(r["class"] for r in got_a if r["kind"] == "recog")
        name_b = next(r["class"] for r in got_b if r["kind"] == "recog")
        # Opposite strokes under one key: namespacing kept them apart.
        assert name_a != name_b

    def test_tick_drives_motionless_timeout(self, directions_recognizer):
        async def scenario():
            server = GestureServer(directions_recognizer)
            await server.start()
            try:
                channel = await server.open_channel()
                # Two points (below min_points), then a long silence.
                await channel.send(Request("down", 0.0, "s1", 0.0, 0.0))
                await channel.send(Request("move", 0.01, "s1", 5.0, 5.0))
                await channel.send(Request("tick", 1.0))
                replies = await _recv_until(channel, "recog")
            finally:
                await server.stop()
            return replies

        replies = asyncio.run(scenario())
        recog = replies[-1]
        assert recog["reason"] == "timeout"
        assert recog["eager"] is False
        assert recog["t"] == 0.01 + 0.2  # last point + DEFAULT_TIMEOUT

    def test_timeouts_fire_only_at_tick_barriers(self, directions_recognizer):
        # Review regression: ops used to advance the clock at the end of
        # whichever pump batch they landed in, so whether a timeout
        # fired could depend on how the transport coalesced reads.  The
        # clock now moves only at tick/sweep lines: another session's op
        # arriving in its own batch must not time this one out.
        async def scenario():
            server = GestureServer(directions_recognizer)
            await server.start()
            try:
                channel = await server.open_channel()
                await channel.send(Request("down", 0.0, "a", 0.0, 0.0))
                await asyncio.sleep(0.05)  # a's down drains as one batch
                # A peer op far past a's timeout horizon, in a batch of
                # its own — pre-fix this advanced the clock to 0.5 and
                # timed "a" out on its lone down point.
                await channel.send(Request("down", 0.5, "b", 9.0, 9.0))
                await asyncio.sleep(0.05)
                await channel.send(Request("move", 0.5, "a", 5.0, 5.0))
                await channel.send(Request("up", 0.6, "a", 10.0, 10.0))
                replies = await _recv_until(channel, "commit")
            finally:
                await server.stop()
            return replies

        replies = asyncio.run(scenario())
        recog = next(
            r for r in replies if r["stroke"] == "a" and r["kind"] == "recog"
        )
        assert recog["reason"] != "timeout"
        assert recog["points_seen"] == 2

    def test_session_errors_do_not_close_channel(self, directions_recognizer):
        async def scenario():
            server = GestureServer(directions_recognizer)
            await server.start()
            try:
                channel = await server.open_channel()
                await channel.send(Request("move", 0.0, "ghost", 1.0, 1.0))
                errors = await _recv_until(channel, "error")
                # The channel still works after the per-session error.
                for request in _stroke_requests("ok", t0=1.0):
                    await channel.send(request)
                replies = await _recv_until(channel, "commit")
            finally:
                await server.stop()
            return errors, replies

        errors, replies = asyncio.run(scenario())
        assert errors[-1]["reason"] == "unknown stroke"
        assert replies[-1]["kind"] == "commit"


class TestTcp:
    @staticmethod
    async def _client(host, port, lines, until_kind, limit=80):
        reader, writer = await asyncio.open_connection(host, port)
        try:
            for line in lines:
                writer.write(line.encode() + b"\n")
            await writer.drain()
            replies = []
            for _ in range(limit):
                raw = await asyncio.wait_for(reader.readline(), timeout=5.0)
                assert raw, f"connection closed while waiting for {until_kind}"
                reply = json.loads(raw)
                replies.append(reply)
                if reply["kind"] == until_kind:
                    return replies
            raise AssertionError(f"no {until_kind!r} within {limit} replies")
        finally:
            writer.close()
            await writer.wait_closed()

    def test_two_tcp_clients_interleaved(self, directions_recognizer):
        def encode(req):
            payload = {"op": req.op, "t": req.t}
            if req.op != "tick":
                payload.update(stroke=req.stroke, x=req.x, y=req.y)
            return json.dumps(payload)

        async def scenario():
            server = GestureServer(directions_recognizer)
            await server.start()
            host, port = server.address
            try:
                lines_a = [encode(r) for r in _stroke_requests("s", step=5.0)]
                lines_b = [encode(r) for r in _stroke_requests("s", step=-5.0)]
                got_a, got_b = await asyncio.gather(
                    self._client(host, port, lines_a, "commit"),
                    self._client(host, port, lines_b, "commit"),
                )
            finally:
                await server.stop()
            return got_a, got_b

        got_a, got_b = asyncio.run(scenario())
        for replies in (got_a, got_b):
            kinds = [r["kind"] for r in replies]
            assert kinds.count("recog") == 1 and kinds[-1] == "commit"
        assert (
            next(r["class"] for r in got_a if r["kind"] == "recog")
            != next(r["class"] for r in got_b if r["kind"] == "recog")
        )

    def test_malformed_line_gets_protocol_error_connection_survives(
        self, directions_recognizer
    ):
        async def scenario():
            server = GestureServer(directions_recognizer)
            await server.start()
            host, port = server.address
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"this is not json\n")
                writer.write(b'{"op": "frobnicate", "t": 0}\n')
                await writer.drain()
                bad1 = json.loads(await reader.readline())
                bad2 = json.loads(await reader.readline())
                # Then a well-formed gesture on the same connection.
                for req in _stroke_requests("ok"):
                    payload = {
                        "op": req.op,
                        "t": req.t,
                        "stroke": req.stroke,
                        "x": req.x,
                        "y": req.y,
                    }
                    writer.write((json.dumps(payload) + "\n").encode())
                await writer.drain()
                replies = []
                while True:
                    reply = json.loads(
                        await asyncio.wait_for(reader.readline(), timeout=5.0)
                    )
                    replies.append(reply)
                    if reply["kind"] == "commit":
                        break
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()
            return bad1, bad2, replies

        bad1, bad2, replies = asyncio.run(scenario())
        assert bad1["kind"] == "error" and "bad json" in bad1["reason"]
        assert bad2["kind"] == "error" and "unknown op" in bad2["reason"]
        assert replies[-1]["kind"] == "commit"


class TestProtocol:
    def test_decode_round_trips_encoded_requests(self):
        request = decode_request(
            '{"op": "down", "stroke": "s1", "x": 1.5, "y": -2.0, "t": 0.25}'
        )
        assert request == Request(op="down", t=0.25, stroke="s1", x=1.5, y=-2.0)
        tick = decode_request(b'{"op": "tick", "t": 3.5}')
        assert tick == Request(op="tick", t=3.5)
