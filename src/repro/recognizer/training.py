"""Closed-form training of the linear classifier.

"Training is also efficient, as there is a closed form expression (optimal
given some normality assumptions on the distribution of the feature
vectors of a class) for determining the evaluation functions from the
training data." (section 4.2)

This is classical linear discriminant analysis with a pooled covariance
matrix, exactly as in Rubine's dissertation:

* per-class mean feature vectors ``mu_c``,
* the *common* (pooled) covariance estimated from all classes' scatter,
* weights ``w_c = S^-1 mu_c`` and constants ``b_c = -1/2 w_c . mu_c``.

Real training sets produce singular pooled covariances whenever a feature
is constant across the examples (e.g. duration when strokes are
synthesized on a fixed clock), so the inversion is regularized by loading
the diagonal until the matrix is comfortably conditioned — the same
"fix the matrix" fallback Rubine's implementation used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .linear import LinearClassifier
from .mahalanobis import MahalanobisMetric

__all__ = [
    "TrainingResult",
    "pooled_covariance",
    "regularized_inverse",
    "train_linear_classifier",
]


@dataclass
class TrainingResult:
    """Everything the closed-form trainer produces.

    The eager-recognition trainer needs more than the classifier: it reuses
    ``metric`` (the Mahalanobis metric under the pooled covariance) and the
    per-class ``means`` to move accidentally complete subgestures.
    """

    classifier: LinearClassifier
    means: np.ndarray  # (C, F) per-class mean feature vectors
    metric: MahalanobisMetric

    def mean_of(self, class_name: str) -> np.ndarray:
        return self.means[self.classifier.class_index(class_name)]


def pooled_covariance(
    per_class_vectors: Sequence[np.ndarray],
    means: np.ndarray,
) -> np.ndarray:
    """Average the per-class scatter matrices into the common covariance.

    ``S_ij = sum_c scatter_c_ij / (sum_c E_c - C)`` — the unbiased pooled
    estimate.  With fewer than ``C + 1`` total examples the denominator is
    clamped to 1 so degenerate inputs degrade instead of dividing by zero.
    """
    num_features = means.shape[1]
    scatter = np.zeros((num_features, num_features))
    total = 0
    for c, vectors in enumerate(per_class_vectors):
        if len(vectors) == 0:
            continue
        centered = vectors - means[c]
        scatter += centered.T @ centered
        total += len(vectors)
    denom = max(total - len(per_class_vectors), 1)
    return scatter / denom


def regularized_inverse(cov: np.ndarray, ridge: float = 1e-6) -> np.ndarray:
    """Invert the covariance, regularizing in correlation space.

    Rubine's features live on wildly different scales (cosines near one,
    squared speeds in the millions), so loading the raw diagonal uniformly
    would crush the small features long before it conditioned the large
    ones.  Instead the covariance is normalized to a correlation matrix,
    ridge-loaded there (where the natural scale is 1), inverted, and
    mapped back — a scale-equivariant version of the "fix the matrix"
    fallback in Rubine's implementation.  Zero-variance features (e.g.
    duration under a fixed synthetic clock) get a placeholder scale so
    they simply carry no discriminative weight instead of exploding.
    """
    dim = cov.shape[0]
    stddev = np.sqrt(np.clip(np.diag(cov), 0.0, None))
    positive = stddev[stddev > 0.0]
    typical = float(positive.mean()) if positive.size else 1.0
    stddev = np.where(stddev > 1e-12 * typical, stddev, typical)
    inv_std = 1.0 / stddev
    correlation = cov * np.outer(inv_std, inv_std)
    lam = ridge
    for _ in range(20):
        candidate = correlation + lam * np.eye(dim)
        if np.linalg.cond(candidate) < 1e10:
            inv_corr = np.linalg.inv(candidate)
            return inv_corr * np.outer(inv_std, inv_std)
        lam *= 10.0
    # Last resort: pseudo-inverse of the heavily loaded correlation.
    inv_corr = np.linalg.pinv(correlation + lam * np.eye(dim))
    return inv_corr * np.outer(inv_std, inv_std)


def train_linear_classifier(
    examples_by_class: Mapping[str, Sequence[np.ndarray]],
) -> TrainingResult:
    """Train evaluation functions from labelled feature vectors.

    Args:
        examples_by_class: feature vectors grouped by class name.  Every
            class needs at least one example; a class with a single
            example contributes its mean but no scatter.

    Returns:
        The classifier together with the class means and the shared
        Mahalanobis metric.

    Raises:
        ValueError: on an empty training set or an empty class.
    """
    if not examples_by_class:
        raise ValueError("no training classes given")
    class_names = list(examples_by_class.keys())
    per_class: list[np.ndarray] = []
    for name in class_names:
        vectors = np.asarray(list(examples_by_class[name]), dtype=float)
        if vectors.size == 0:
            raise ValueError(f"class {name!r} has no training examples")
        if vectors.ndim != 2:
            raise ValueError(f"class {name!r}: expected a list of 1-D vectors")
        per_class.append(vectors)
    num_features = per_class[0].shape[1]
    if any(v.shape[1] != num_features for v in per_class):
        raise ValueError("inconsistent feature dimensionality across classes")

    means = np.vstack([v.mean(axis=0) for v in per_class])
    cov = pooled_covariance(per_class, means)
    inv_cov = regularized_inverse(cov)

    weights = means @ inv_cov.T  # w_c = S^-1 mu_c   (row per class)
    constants = -0.5 * np.einsum("cf,cf->c", weights, means)

    classifier = LinearClassifier(class_names, weights, constants)
    return TrainingResult(
        classifier=classifier,
        means=means,
        metric=MahalanobisMetric(inv_cov),
    )
