"""ModelRegistry: content-addressed versions, idempotent publish, cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eager import EagerRecognizer, train_eager_recognizer
from repro.geometry import Point
from repro.serve import ModelRegistry
from repro.synth import GestureGenerator, eight_direction_templates


@pytest.fixture
def registry(tmp_path):
    return ModelRegistry(tmp_path / "models")


def _retrained(seed):
    generator = GestureGenerator(eight_direction_templates(), seed=seed)
    return train_eager_recognizer(generator.generate_strokes(8)).recognizer


def _probe(recognizer):
    """A recognizer's verdict on a fixed probe stroke."""
    session = recognizer.session()
    for i in range(10):
        session.add_point(Point(4.0 * i, 3.0 * i, 0.01 * i))
    return session.finish()


class TestRoundTrip:
    def test_publish_load_identical_behavior(self, registry, directions_recognizer):
        version = registry.publish("directions", directions_recognizer)
        loaded = registry.load("directions")
        assert _probe(loaded) == _probe(directions_recognizer)
        np.testing.assert_array_equal(
            loaded.full_classifier.linear.weights,
            directions_recognizer.full_classifier.linear.weights,
        )
        assert loaded.class_names == directions_recognizer.class_names
        assert registry.latest_version("directions") == version.version

    def test_uncached_load_reparses_from_disk(self, registry, directions_recognizer):
        registry.publish("m", directions_recognizer)
        cached = registry.load("m")
        fresh = registry.load("m", cached=False)
        assert fresh is not cached  # parsed anew
        np.testing.assert_array_equal(
            fresh.auc.linear.weights, cached.auc.linear.weights
        )

    def test_save_load_and_registry_share_serialization(
        self, registry, directions_recognizer, tmp_path
    ):
        """file save/load and registry publish/load use one code path."""
        path = tmp_path / "standalone.json"
        directions_recognizer.save(path)
        standalone = EagerRecognizer.load(path)
        registry.publish("m", directions_recognizer)
        via_registry = registry.load("m", cached=False)
        assert standalone.to_dict() == via_registry.to_dict()


class TestVersioning:
    def test_publish_is_idempotent(self, registry, directions_recognizer):
        first = registry.publish("m", directions_recognizer)
        second = registry.publish("m", directions_recognizer)
        assert first.version == second.version
        assert registry.versions("m") == [first.version]

    def test_retraining_appends_version_and_moves_latest(self, registry):
        old, new = _retrained(1), _retrained(2)
        v_old = registry.publish("m", old)
        v_new = registry.publish("m", new)
        assert v_old.version != v_new.version
        assert registry.versions("m") == [v_old.version, v_new.version]
        assert registry.latest_version("m") == v_new.version
        # Old versions stay loadable by explicit version.
        rollback = registry.load("m", version=v_old.version, cached=False)
        assert rollback.to_dict() == old.to_dict()

    def test_version_is_deterministic_content_hash(self, tmp_path):
        recognizer = _retrained(5)
        a = ModelRegistry(tmp_path / "a").publish("m", recognizer)
        b = ModelRegistry(tmp_path / "b").publish("m", recognizer)
        assert a.version == b.version

    def test_metadata_round_trip(self, registry, directions_recognizer):
        registry.publish(
            "m", directions_recognizer, metadata={"family": "directions"}
        )
        assert registry.metadata_of("m") == {"family": "directions"}


class TestWarmCache:
    def test_load_hits_cache_after_publish(self, registry, directions_recognizer):
        version = registry.publish("m", directions_recognizer)
        # Corrupt the file on disk: a cached load must not read it.
        version.path.write_text("{not json")
        assert registry.load("m") is directions_recognizer
        with pytest.raises(ValueError):
            registry.load("m", cached=False)

    def test_unknown_lookups_raise_key_error(self, registry):
        with pytest.raises(KeyError):
            registry.latest_version("absent")
        with pytest.raises(KeyError):
            registry.path_of("absent", "deadbeef0000")


class TestAtomicPublish:
    """A publish killed mid-write can never tear the index (satellite)."""

    def test_kill_mid_index_write_leaves_old_index_intact(
        self, registry, directions_recognizer, monkeypatch
    ):
        import json
        import os as _os

        first = registry.publish("directions", directions_recognizer)
        index_path = registry.root / "directions" / "index.json"
        before = index_path.read_text()

        # Kill the second publish at the instant it would move the index
        # into place: os.replace raises, simulating SIGKILL mid-publish.
        calls = {"n": 0}
        real_replace = _os.replace

        def dying_replace(src, dst):
            if str(dst).endswith("index.json"):
                calls["n"] += 1
                raise OSError("killed mid-publish")
            return real_replace(src, dst)

        from repro import fsio

        monkeypatch.setattr(fsio.os, "replace", dying_replace)
        with pytest.raises(OSError):
            registry.publish("directions", _retrained(99))
        monkeypatch.setattr(fsio.os, "replace", real_replace)
        assert calls["n"] == 1

        # The old index is byte-identical — parseable, old latest serves.
        assert index_path.read_text() == before
        assert json.loads(index_path.read_text())["latest"] == first.version
        fresh = ModelRegistry(registry.root)
        assert fresh.latest_version("directions") == first.version
        assert _probe(fresh.load("directions")) == _probe(
            directions_recognizer
        )
        # No scratch files leaked into the model directory.
        assert not list((registry.root / "directions").glob("*.tmp"))

    def test_interrupted_publish_recovers_on_retry(
        self, registry, directions_recognizer, monkeypatch
    ):
        registry.publish("directions", directions_recognizer)
        retrained = _retrained(99)

        import os as _os

        from repro import fsio

        real_replace = _os.replace
        fail = {"armed": True}

        def flaky_replace(src, dst):
            if fail["armed"] and str(dst).endswith("index.json"):
                fail["armed"] = False
                raise OSError("killed mid-publish")
            return real_replace(src, dst)

        monkeypatch.setattr(fsio.os, "replace", flaky_replace)
        with pytest.raises(OSError):
            registry.publish("directions", retrained)
        # Retry after the crash: publish is idempotent, index heals.
        published = registry.publish("directions", retrained)
        fresh = ModelRegistry(registry.root)
        assert fresh.latest_version("directions") == published.version
        assert len(fresh.versions("directions")) == 2
