"""No wall-clock anywhere in the event/serving machinery.

The paper's 200 ms motionless timeout is behavioural, not real-time:
the reproduction drives it from :class:`~repro.events.VirtualClock` so
a recorded interaction replays bit-identically.  These tests enforce
that discipline two ways — a source audit (no module in the event or
serving layers may read the wall clock) and behavioural replay checks.
"""

from __future__ import annotations

import re
from pathlib import Path

import repro.events
import repro.serve
from repro.events import EventQueue, VirtualClock, stroke_events
from repro.geometry import Point
from repro.serve import SessionPool

_WALL_CLOCK = re.compile(
    r"time\.(time|monotonic|perf_counter|process_time)\b"
    r"|datetime\.(now|today|utcnow)\b"
    r"|\btime\.sleep\b"
)

# The load generator *measures* wall time — that is its job — but it
# must be the only place; recognition and timeouts never consult it.
_MEASUREMENT_ONLY = {"loadgen.py"}


def _package_sources(package):
    root = Path(package.__file__).parent
    return sorted(root.glob("*.py"))


class TestSourceAudit:
    def test_event_layer_never_reads_the_wall_clock(self):
        for path in _package_sources(repro.events):
            hits = _WALL_CLOCK.findall(path.read_text())
            assert not hits, f"{path.name} reads the wall clock: {hits}"

    def test_serving_layer_never_reads_the_wall_clock(self):
        for path in _package_sources(repro.serve):
            if path.name in _MEASUREMENT_ONLY:
                continue
            hits = _WALL_CLOCK.findall(path.read_text())
            assert not hits, f"{path.name} reads the wall clock: {hits}"


class TestInjectedClockDeadlines:
    def test_timer_fires_relative_to_injected_clock(self):
        clock = VirtualClock(start=100.0)
        queue = EventQueue(clock)
        fired = []
        queue.schedule_timer(0.2, lambda e: fired.append(e.t))
        queue.run(lambda e: None)
        assert fired == [100.2]
        assert clock.now == 100.2

    def test_pool_timeout_uses_injected_clock(self, directions_recognizer):
        clock = VirtualClock(start=50.0)
        pool = SessionPool(directions_recognizer, clock=clock, timeout=0.2)
        pool.down("s", 0.0, 0.0, 50.0)
        pool.move("s", 4.0, 4.0, 50.01)
        assert pool.advance_to(50.2) == []
        (decision,) = pool.advance_to(50.21)
        assert decision.reason == "timeout"
        assert decision.t == 50.01 + 0.2


class TestDeterministicReplay:
    def _events(self):
        stroke = [Point(3.0 * i, 2.0 * i, 0.02 * i) for i in range(12)]
        return stroke_events(stroke)

    def test_event_queue_replay_is_bit_identical(self):
        def run_once():
            queue = EventQueue(VirtualClock())
            seen = []
            queue.post_all(self._events())
            queue.schedule_timer(0.05, lambda e: seen.append(("timer", e.t)))
            queue.run(lambda e: seen.append((e.kind, e.t, e.x, e.y)))
            return seen, queue.clock.now

        assert run_once() == run_once()

    def test_pool_replay_is_bit_identical(self, directions_recognizer):
        def run_once(batched):
            pool = SessionPool(directions_recognizer, batched=batched)
            log = []
            for i in range(10):
                t = i * 0.01
                if i == 0:
                    pool.down("s", 0.0, 0.0, t)
                else:
                    pool.move("s", 6.0 * i, 1.0 * i, t)
                log.extend(pool.advance_to(t))
            pool.up("s", 54.0, 9.0, 0.1)
            log.extend(pool.advance_to(0.4))
            return log

        for batched in (True, False):
            assert run_once(batched) == run_once(batched)
        assert run_once(True) == run_once(False)
