"""Hot model swap: pool semantics, serving invariants, server protocol.

The serving invariants under test:

* a swap binds sessions *opened after it* (in input order); sessions in
  flight finish on the model they pinned at open;
* every non-swapped session's decision stream is byte-identical to a
  run without the swap;
* batched and sequential pools agree decision-for-decision with swaps
  in the stream;
* the server resolves swaps against its registry, acks with the pinned
  ``name@version``, and rejects them without a registry.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.eager import train_eager_recognizer
from repro.obs import MetricsRegistry, PoolObserver, Tracer
from repro.synth import GestureGenerator, eight_direction_templates
from repro.serve import (
    GestureServer,
    ModelRegistry,
    Request,
    SessionPool,
    encode_decision,
    encode_swap,
)

TIMEOUT = 0.2
DT = 0.01


def stroke_ops(key: str, n: int = 10, step: float = 5.0, t0: float = 0.0):
    """(t, op) pairs of one complete stroke."""
    ops = [(t0, ("down", key, 0.0, 0.0))]
    for i in range(1, n):
        ops.append((t0 + i * DT, ("move", key, i * step, i * step)))
    ops.append((t0 + n * DT, ("up", key, n * step, n * step)))
    return ops


def drive(recognizer, events, *, batched: bool = True, observer=None):
    """Play ``(t, op-or-swap)`` events through a pool; return encoded lines.

    A ``("swap", prefix, recognizer, label)`` event is buffered via
    :meth:`swap_model` at its position; everything else goes through
    :meth:`submit`.  Decisions are stringified with the protocol
    encoder, keyed by session, so runs compare bytewise.
    """
    pool = SessionPool(
        recognizer, timeout=TIMEOUT, batched=batched, observer=observer
    )
    lines: dict[str, list[str]] = {}

    def emit(decisions):
        for d in decisions:
            lines.setdefault(d.key, []).append(encode_decision(d, d.key))

    for t, op in sorted(events, key=lambda e: e[0]):
        if op[0] == "swap":
            _, prefix, model, label = op
            pool.swap_model(prefix, model, t, label=label)
        else:
            pool.submit([op], t)
        emit(pool.advance_to(t))
    emit(pool.advance_to(max(t for t, _ in events) + TIMEOUT + DT))
    emit(pool.evict_idle(0.0))
    return lines


def decided_class(lines: list[str]) -> str:
    for line in lines:
        obj = json.loads(line)
        if obj["kind"] == "recog":
            return obj["class"]
    raise AssertionError(f"no recog in {lines}")


class TestPoolSwap:
    def test_next_stroke_gets_swapped_model(
        self, directions_recognizer, gdp_recognizer
    ):
        events = stroke_ops("u1/s1", t0=0.0)
        events.append((0.5, ("swap", "u1/", gdp_recognizer, "gdp@x")))
        events += stroke_ops("u1/s2", t0=1.0)
        lines = drive(directions_recognizer, events)
        assert (
            decided_class(lines["u1/s1"])
            in directions_recognizer.class_names
        )
        assert decided_class(lines["u1/s2"]) in gdp_recognizer.class_names

    def test_in_flight_session_pins_its_model(
        self, directions_recognizer, gdp_recognizer
    ):
        # The swap lands mid-gesture; the gesture must still be judged
        # by the model it opened under.
        events = stroke_ops("u1/s1", t0=0.0)
        events.append((0.035, ("swap", "u1/", gdp_recognizer, "gdp@x")))
        lines = drive(directions_recognizer, events)
        assert (
            decided_class(lines["u1/s1"])
            in directions_recognizer.class_names
        )

    def test_longest_prefix_wins(self, directions_recognizer, gdp_recognizer):
        events = [
            (0.0, ("swap", "u", gdp_recognizer, "broad")),
            (0.0, ("swap", "u1/", directions_recognizer, "narrow")),
        ]
        events += stroke_ops("u1/s1", t0=0.1)
        events += stroke_ops("u2/s1", t0=0.1)
        lines = drive(directions_recognizer, events)
        assert (
            decided_class(lines["u1/s1"])
            in directions_recognizer.class_names
        )
        assert decided_class(lines["u2/s1"]) in gdp_recognizer.class_names

    def test_non_swapped_sessions_byte_identical(
        self, directions_recognizer, gdp_recognizer
    ):
        # Interleaved strokes for three users; u2 gets swapped mid-run.
        events = []
        for user, t0 in (("u1", 0.0), ("u2", 0.02), ("u3", 0.04)):
            events += stroke_ops(f"{user}/a", t0=t0)
            events += stroke_ops(f"{user}/b", t0=t0 + 1.0)
        swap = [(0.5, ("swap", "u2/", gdp_recognizer, "gdp@x"))]
        plain = drive(directions_recognizer, list(events))
        swapped = drive(directions_recognizer, events + swap)
        for key in plain:
            if not key.startswith("u2/"):
                assert swapped[key] == plain[key], key
        # And the swap actually changed u2's second stroke.
        assert decided_class(swapped["u2/b"]) in gdp_recognizer.class_names

    def test_batched_and_sequential_agree_with_swaps(
        self, directions_recognizer, gdp_recognizer
    ):
        events = []
        for user, t0 in (("u1", 0.0), ("u2", 0.03)):
            events += stroke_ops(f"{user}/a", t0=t0)
            events += stroke_ops(f"{user}/b", t0=t0 + 1.0)
        events.append((0.5, ("swap", "u1/", gdp_recognizer, "gdp@x")))
        batched = drive(directions_recognizer, list(events), batched=True)
        sequential = drive(
            directions_recognizer, list(events), batched=False
        )
        assert batched == sequential

    def test_observer_hook_counts_and_traces_swaps(
        self, directions_recognizer, gdp_recognizer
    ):
        metrics = MetricsRegistry()
        tracer = Tracer()
        observer = PoolObserver(metrics=metrics, tracer=tracer)
        events = stroke_ops("u1/s1", t0=0.0)
        events.append((0.5, ("swap", "u1/", gdp_recognizer, "gdp@abc")))
        drive(directions_recognizer, events, observer=observer)
        assert metrics.snapshot()["counters"]["adapt.swaps"] == 1
        swap_events = [
            r for r in tracer.records
            if r["rec"] == "event" and r["kind"] == "swap"
        ]
        assert len(swap_events) == 1
        assert swap_events[0]["model"] == "gdp@abc"
        assert swap_events[0]["session"] == "u1/"

    def test_shared_recognizer_shares_one_pool_model(
        self, directions_recognizer, gdp_recognizer
    ):
        # Many users swapping to one cached recognizer object must share
        # a single resident model (one evaluator), not one per user.
        pool = SessionPool(directions_recognizer, timeout=TIMEOUT)
        for i in range(8):
            pool.swap_model(f"u{i}/", gdp_recognizer, 0.0, label="gdp@x")
        pool.advance_to(0.0)
        assert len(pool._model_cache) == 2  # default + the one candidate


class TestModelCacheLRU:
    def test_max_models_needs_a_loader(self, directions_recognizer):
        with pytest.raises(ValueError, match="model_loader"):
            SessionPool(directions_recognizer, max_models=1)

    def test_lru_eviction_degrades_assignments_to_labels(
        self, directions_recognizer, gdp_recognizer
    ):
        loads = []

        def loader(label):
            loads.append(label)
            return {"dirs": directions_recognizer, "gdp": gdp_recognizer}[
                label
            ]

        pool = SessionPool(
            directions_recognizer,
            timeout=TIMEOUT,
            max_models=1,
            model_loader=loader,
        )
        pool.swap_model("u1/", gdp_recognizer, 0.0, label="gdp")
        pool.advance_to(0.0)
        assert pool.model_evictions == 0
        # Swapping to the *default* recognizer adds no resident model:
        # the default never counts against the bound.
        pool.swap_model("u2/", directions_recognizer, 0.1, label="dirs")
        pool.advance_to(0.1)
        assert pool.model_evictions == 0
        # A second swapped-in model crosses the bound: gdp (the LRU)
        # is evicted and its assignment degrades to the label string.
        other = train_eager_recognizer(
            GestureGenerator(
                eight_direction_templates(), seed=7
            ).generate_strokes(5)
        ).recognizer
        pool.swap_model("u3/", other, 0.2, label="other")
        pool.advance_to(0.2)
        assert pool.model_evictions == 1
        assert pool._assign["u1/"] == "gdp"
        assert loads == []

        # The next session under the evicted prefix reloads the label
        # through the loader and decides with the real model again.
        lines: list[str] = []
        for t, op in stroke_ops("u1/s1", t0=1.0):
            pool.submit([op], t)
            for d in pool.advance_to(t):
                lines.append(encode_decision(d, d.key))
        for d in pool.advance_to(2.0):
            lines.append(encode_decision(d, d.key))
        assert loads == ["gdp"]
        assert decided_class(lines) in gdp_recognizer.class_names
        # ...and the assignment re-materialized to a live model.
        assert pool._assign["u1/"] != "gdp"

    def test_eviction_never_changes_decisions(
        self, directions_recognizer, gdp_recognizer
    ):
        """Bounded and unbounded pools produce byte-identical streams.

        Registry models are content-addressed, so an evicted model
        reloads bit-equal; the only observable difference a bound can
        make is memory, never output bytes.
        """

        other = train_eager_recognizer(
            GestureGenerator(
                eight_direction_templates(), seed=7
            ).generate_strokes(5)
        ).recognizer

        def loader(label):
            return {"gdp": gdp_recognizer, "other": other}[label]

        events = stroke_ops("u1/s1", t0=0.0)
        events.append((0.5, ("swap", "u1/", gdp_recognizer, "gdp")))
        events.append((0.6, ("swap", "u2/", other, "other")))
        events += stroke_ops("u1/s2", t0=1.0)
        events += stroke_ops("u2/s1", t0=1.0)

        def run(**kwargs):
            pool = SessionPool(
                directions_recognizer, timeout=TIMEOUT, **kwargs
            )
            lines: dict[str, list[str]] = {}
            for t, op in sorted(events, key=lambda e: e[0]):
                if op[0] == "swap":
                    _, prefix, model, label = op
                    pool.swap_model(prefix, model, t, label=label)
                else:
                    pool.submit([op], t)
                for d in pool.advance_to(t):
                    lines.setdefault(d.key, []).append(
                        encode_decision(d, d.key)
                    )
            for d in pool.advance_to(3.0):
                lines.setdefault(d.key, []).append(encode_decision(d, d.key))
            return pool, lines

        unbounded, plain = run()
        bounded, capped = run(max_models=1, model_loader=loader)
        assert capped == plain
        assert bounded.model_evictions >= 1
        assert unbounded.model_evictions == 0

    def test_server_model_cache_needs_registry(self, directions_recognizer):
        with pytest.raises(ValueError, match="registry"):
            GestureServer(directions_recognizer, model_cache=2)


@pytest.fixture()
def swap_registry(tmp_path, gdp_recognizer):
    registry = ModelRegistry(tmp_path / "registry")
    version = registry.publish("gdp", gdp_recognizer, metadata={}).version
    return registry, version


class TestServerSwap:
    def _run(self, scenario):
        return asyncio.run(scenario())

    def test_swap_ack_carries_resolved_version(
        self, directions_recognizer, gdp_recognizer, swap_registry
    ):
        registry, version = swap_registry

        async def scenario():
            server = GestureServer(directions_recognizer, registry=registry)
            await server.start()
            try:
                channel = await server.open_channel()
                await channel.send(
                    Request(op="swap", t=0.1, user="alice", model="gdp")
                )
                ack = await asyncio.wait_for(channel.recv(), 5.0)
                # Post-swap stroke is judged by the swapped model.
                await channel.send(Request("down", 0.2, "s1", 0.0, 0.0))
                for i in range(1, 12):
                    await channel.send(
                        Request(
                            "move", 0.2 + i * DT, "s1", i * 5.0, i * 5.0
                        )
                    )
                await channel.send(Request("up", 0.4, "s1", 60.0, 60.0))
                recog = None
                for _ in range(30):
                    line = await asyncio.wait_for(channel.recv(), 5.0)
                    if json.loads(line)["kind"] == "recog":
                        recog = json.loads(line)
                        break
                return ack, recog
            finally:
                await server.stop()

        ack, recog = self._run(scenario)
        assert ack == encode_swap("alice", f"gdp@{version}", 0.1)
        assert recog is not None
        # "alice" is not the stroke's user prefix ("s1" has none), so the
        # session still ran the default model...
        assert recog["class"] in directions_recognizer.class_names

    def test_swapped_user_prefix_serves_candidate(
        self, directions_recognizer, gdp_recognizer, swap_registry
    ):
        registry, version = swap_registry

        async def scenario():
            server = GestureServer(directions_recognizer, registry=registry)
            await server.start()
            try:
                channel = await server.open_channel()
                # The wire contract: strokes of user u are "u:stroke"
                # only by client convention — the pool prefix is the
                # session key, so swap user "s" rebinds strokes named
                # "s...".  Swap first, then draw.
                await channel.send(
                    Request(op="swap", t=0.0, user="s", model=f"gdp@{version}")
                )
                await asyncio.wait_for(channel.recv(), 5.0)  # ack
                await channel.send(Request("down", 0.1, "s1", 0.0, 0.0))
                for i in range(1, 12):
                    await channel.send(
                        Request("move", 0.1 + i * DT, "s1", i * 5.0, i * 5.0)
                    )
                await channel.send(Request("up", 0.3, "s1", 60.0, 60.0))
                for _ in range(30):
                    line = await asyncio.wait_for(channel.recv(), 5.0)
                    obj = json.loads(line)
                    if obj["kind"] == "recog":
                        return obj
            finally:
                await server.stop()

        recog = self._run(scenario)
        assert recog["class"] in gdp_recognizer.class_names

    def test_registry_less_server_rejects_swap(self, directions_recognizer):
        async def scenario():
            server = GestureServer(directions_recognizer)
            await server.start()
            try:
                channel = await server.open_channel()
                await channel.send(
                    Request(op="swap", t=0.0, user="alice", model="gdp")
                )
                return json.loads(await asyncio.wait_for(channel.recv(), 5.0))
            finally:
                await server.stop()

        reply = self._run(scenario)
        assert reply["kind"] == "error"
        assert "no registry" in reply["reason"]

    def test_unknown_model_rejected_without_side_effects(
        self, directions_recognizer, swap_registry
    ):
        registry, _ = swap_registry

        async def scenario():
            server = GestureServer(directions_recognizer, registry=registry)
            await server.start()
            try:
                channel = await server.open_channel()
                await channel.send(
                    Request(op="swap", t=0.0, user="alice", model="nope")
                )
                reply = json.loads(
                    await asyncio.wait_for(channel.recv(), 5.0)
                )
                return reply, len(server.pool._assign)
            finally:
                await server.stop()

        reply, assigned = self._run(scenario)
        assert reply["kind"] == "error"
        assert "swap failed" in reply["reason"]
        assert assigned == 0
