"""Shared fixtures for the adapt tests.

One base model trained through the staged pipeline and published into a
registry, with its stage cache kept — the pair every adapt test needs.
Session-scoped: training is the expensive part and the artifacts are
immutable (the registry is content-addressed, the cache content-keyed),
so sharing them across tests cannot leak state.
"""

from __future__ import annotations

import pytest

from repro.synth import GestureGenerator, family_templates
from repro.train import TrainJobSpec, TrainingPipeline

FAMILY = "gdp"
EXAMPLES = 6
SEED = 7


@pytest.fixture(scope="session")
def adapt_env(tmp_path_factory):
    """(registry_root, cache_dir, base TrainingRunResult) for one base."""
    root = tmp_path_factory.mktemp("adapt")
    cache_dir = root / "cache"
    registry_root = root / "registry"
    pipeline = TrainingPipeline(
        TrainJobSpec(family=FAMILY, examples=EXAMPLES, seed=SEED),
        cache_dir=cache_dir,
        jobs=1,
    )
    result = pipeline.run()
    pipeline.publish(registry_root, result)
    return registry_root, cache_dir, result


def user_examples(seed: int, classes: int = 2, per_class: int = 2, label=None):
    """Deterministic harvested-example dicts from the synth generator."""
    generator = GestureGenerator(family_templates(FAMILY), seed=seed)
    by_class = generator.generate_strokes(per_class)
    out = []
    for name, strokes in list(by_class.items())[:classes]:
        for stroke in strokes:
            out.append(
                {
                    "stroke": f"s{len(out)}",
                    "class": label(name) if label else name,
                    "points": [[p.x, p.y, p.t] for p in stroke],
                    "source": "correction",
                }
            )
    return out
