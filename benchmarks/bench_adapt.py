"""Personalization-loop benchmark: incremental retrain and swap latency.

The adapt subsystem's perf claims, measured:

* **incremental wins** — retraining N users' candidates against the
  base model's warm stage cache is faster than N cold full retrains of
  the same combined example sets.  The win comes from the cache: the
  base manifest is recovered (not regenerated) and the base strokes'
  eager-prefix vectors are shared across every user.  This must hold
  on any machine, 1 CPU included, so it is asserted unconditionally;
* **per-user models are cheap to hold** — one published candidate per
  user, content-addressed in the registry;
* **hot-swap is fast** — registry load + ``swap_model`` + the tick
  barrier that applies it, measured per swap.  The absolute bound is
  CPU-gated (a loaded 1-core container cannot promise milliseconds);
  the distribution is published regardless.

Results go to ``BENCH_adapt.json`` at the repo root.
"""

from __future__ import annotations

import os
import time

import pytest
from conftest import write_bench_json, write_report

from repro.adapt import AdaptPipeline
from repro.serve import ModelRegistry, SessionPool
from repro.synth import GestureGenerator, family_templates
from repro.train import TrainJobSpec, TrainingPipeline

FAMILY = "gdp"
EXAMPLES = 8
SEED = 7
N_USERS = 8


def user_examples(seed: int, classes: int = 2, per_class: int = 2) -> list:
    generator = GestureGenerator(family_templates(FAMILY), seed=seed)
    by_class = generator.generate_strokes(per_class)
    out = []
    for name, strokes in list(by_class.items())[:classes]:
        for stroke in strokes:
            out.append(
                {
                    "stroke": f"s{len(out)}",
                    "class": name,
                    "points": [[p.x, p.y, p.t] for p in stroke],
                    "source": "correction",
                }
            )
    return out


def test_adapt_numbers(tmp_path):
    registry_root = tmp_path / "registry"
    cache_dir = tmp_path / "cache"
    base = TrainingPipeline(
        TrainJobSpec(family=FAMILY, examples=EXAMPLES, seed=SEED),
        cache_dir=cache_dir,
    ).run()
    TrainingPipeline(
        TrainJobSpec(family=FAMILY, examples=EXAMPLES, seed=SEED),
        cache_dir=cache_dir,
    ).publish(registry_root, base)

    users = [(f"user{i}", user_examples(seed=1000 + i)) for i in range(N_USERS)]

    # Warm-up: the first adapt run pays for the base strokes' prefix
    # vectors once; every later user reuses them.  Timing starts after,
    # so `incremental_s` measures the steady state a serving fleet
    # lives in.
    warm = AdaptPipeline(
        registry_root, FAMILY, cache_dir=cache_dir,
        state_dir=tmp_path / "state",
    )
    warm.fold("warmup", user_examples(seed=999))
    warm.run("warmup")

    results = []
    start = time.perf_counter()
    for user, examples in users:
        warm.fold(user, examples)
        results.append(warm.run(user))
    incremental_s = time.perf_counter() - start
    for result in results:
        warm.publish(result)

    # The same users, cold: no stage cache, nothing shared.
    start = time.perf_counter()
    cold_results = []
    for user, examples in users:
        cold = AdaptPipeline(registry_root, FAMILY, cache_dir=None)
        cold.fold(user, examples)
        cold_results.append(cold.run(user))
    full_s = time.perf_counter() - start

    # Same bits either way — the speedup is free.
    for warm_r, cold_r in zip(results, cold_results):
        assert warm_r.model_hash == cold_r.model_hash
    assert incremental_s < full_s, (
        f"incremental {incremental_s:.3f}s should beat cold {full_s:.3f}s"
    )

    # Hot-swap latency: load the published candidate and apply it at a
    # tick barrier of a live pool, per user.
    registry = ModelRegistry(registry_root)
    base_model = registry.load(FAMILY)
    pool = SessionPool(base_model, timeout=0.2)
    swap_times = []
    for i, result in enumerate(results):
        t = float(i)
        start = time.perf_counter()
        candidate = registry.load(result.candidate_name, result.version)
        pool.swap_model(f"{result.user}/", candidate, t, label=result.version)
        pool.advance_to(t)
        swap_times.append(time.perf_counter() - start)
    swap_ms = sorted(s * 1000 for s in swap_times)
    mean_ms = sum(swap_ms) / len(swap_ms)
    p99_ms = swap_ms[min(len(swap_ms) - 1, int(len(swap_ms) * 0.99))]

    speedup = full_s / incremental_s if incremental_s > 0 else 0.0
    cpus = os.cpu_count() or 1
    prefix_hits = sum(r.prefixes_cached for r in results)
    prefix_misses = sum(r.prefixes_computed for r in results)
    write_report(
        "adapt_loop",
        f"Per-user adaptation ({FAMILY} base, {EXAMPLES}/class, "
        f"{N_USERS} users)\n"
        f"incremental (warm cache): {incremental_s * 1000:.1f} ms total, "
        f"{incremental_s / N_USERS * 1000:.1f} ms/user\n"
        f"full retrain (cold):      {full_s * 1000:.1f} ms total "
        f"({speedup:.2f}x slower, {cpus} cpus)\n"
        f"prefix cache: {prefix_hits} hits / {prefix_misses} computed\n"
        f"hot swap: mean {mean_ms:.2f} ms, p99 {p99_ms:.2f} ms "
        f"over {N_USERS} swaps",
    )
    write_bench_json(
        "adapt",
        params={
            "family": FAMILY,
            "examples_per_class": EXAMPLES,
            "seed": SEED,
            "users": N_USERS,
            "user_examples": len(users[0][1]),
            "cpus": cpus,
        },
        results={
            "per_user_models": len({r.candidate_name for r in results}),
            "incremental_s": round(incremental_s, 4),
            "incremental_per_user_s": round(incremental_s / N_USERS, 4),
            "full_s": round(full_s, 4),
            "incremental_speedup": round(speedup, 3),
            "prefix_cache_hits": prefix_hits,
            "prefix_cache_misses": prefix_misses,
            "swap_ms_mean": round(mean_ms, 3),
            "swap_ms_p99": round(p99_ms, 3),
        },
    )
    assert len({r.candidate_name for r in results}) == N_USERS
    if cpus < 4:
        pytest.skip(
            f"only {cpus} CPU(s): incremental win asserted above, but "
            "absolute latency bounds are not meaningful on this machine"
        )
    assert speedup >= 1.5, (
        f"warm cache gave only {speedup:.2f}x over cold retrains"
    )
    assert p99_ms < 250.0, f"swap p99 {p99_ms:.1f} ms"
