"""GDP, assembled.

:class:`GDPApp` wires the whole stack the way the paper describes GDP:
a canvas model, a canvas view with a gesture handler for the eleven GDP
gestures (eager recognition on by default, the 200 ms timeout as a
fallback), shape views without handlers (so gestures may start on
shapes), and control-point views with a shared drag handler.

Drive it by posting mouse events — usually via
:func:`repro.events.perform_gesture` — and calling :meth:`run`.
"""

from __future__ import annotations

from ..eager import EagerRecognizer, train_eager_recognizer
from ..events import EventQueue, MouseButton, MouseEvent, VirtualClock
from ..interaction import DEFAULT_TIMEOUT, DragHandler, GestureHandler
from ..mvc import Dispatcher, EventPredicate
from ..recognizer import GestureClassifier
from ..synth import GestureGenerator, gdp_templates
from .canvas import Canvas
from .render import render_canvas
from .semantics import build_gdp_semantics
from .views import CanvasView, ShapeView

__all__ = ["GDPApp", "train_gdp_recognizer"]


def train_gdp_recognizer(
    examples_per_class: int = 15, seed: int = 7
) -> EagerRecognizer:
    """Train an eager recognizer for the GDP gesture set.

    The paper trains GDP "typically with 15 examples of each class"; the
    examples come from the synthetic generator (the reproduction's user).
    """
    generator = GestureGenerator(gdp_templates(), seed=seed)
    report = train_eager_recognizer(
        generator.generate_strokes(examples_per_class)
    )
    return report.recognizer


class GDPApp:
    """A headless but fully interactive GDP instance."""

    def __init__(
        self,
        recognizer: EagerRecognizer | GestureClassifier | None = None,
        width: float = 800.0,
        height: float = 600.0,
        use_eager: bool = True,
        use_timeout: bool = True,
        timeout: float = DEFAULT_TIMEOUT,
        modified: bool = False,
        right_button_drag: bool = False,
    ):
        """
        Args:
            right_button_drag: §3.1's "gesture and direct manipulation in
                the same interface ... via different mouse buttons": shape
                views get a right-button drag handler, so shapes can be
                dragged directly while left-button input remains gestural.
        """
        if recognizer is None:
            recognizer = train_gdp_recognizer()
        self.canvas = Canvas(width=width, height=height)
        self.view = CanvasView(self.canvas)
        self.queue = EventQueue(VirtualClock())
        self.dispatcher = Dispatcher(self.view, self.queue)
        self.gesture_handler = GestureHandler(
            recognizer=recognizer,
            semantics=build_gdp_semantics(modified=modified),
            predicate=EventPredicate.for_button(MouseButton.LEFT),
            use_eager=use_eager,
            use_timeout=use_timeout,
            timeout=timeout,
        )
        self.view.add_handler(self.gesture_handler)
        if right_button_drag:
            # An instance handler on each shape view would also work;
            # per §3 a handler per *class* is shared by every shape.
            drag = DragHandler(
                predicate=EventPredicate.for_button(MouseButton.RIGHT),
                target_of=lambda view: getattr(view, "shape", None),
            )
            for shape_view in self.view.children:
                if isinstance(shape_view, ShapeView):
                    shape_view.add_handler(drag)
            self._right_drag_handler = drag
            # New shapes created later get the handler too.
            original_changed = self.view.model_changed

            def sync_and_attach(model):
                original_changed(model)
                for child in self.view.children:
                    if isinstance(child, ShapeView) and drag not in list(
                        child.handlers()
                    ):
                        child.add_handler(drag)

            self.canvas.add_observer(sync_and_attach)

    # -- driving the app ------------------------------------------------------

    def post(self, events: list[MouseEvent]) -> None:
        """Queue a batch of input events (e.g. from perform_gesture).

        Gesture strokes are usually timestamped from zero; once the app's
        clock has advanced past that (a previous interaction ran), the
        batch is shifted forward to start "now" — otherwise the stillness
        timeout, which runs on the app clock, could never fire for it.
        """
        if events and events[0].t < self.queue.clock.now:
            shift = self.queue.clock.now - events[0].t
            events = [
                MouseEvent(e.kind, e.x, e.y, e.t + shift, e.button)
                for e in events
            ]
        self.queue.post_all(events)

    def run(self) -> int:
        """Process all queued input; returns the number of mouse events."""
        return self.dispatcher.run()

    def perform(self, events: list[MouseEvent]) -> None:
        """Post and immediately process one interaction's events."""
        self.post(events)
        self.run()

    # -- inspection -------------------------------------------------------------

    def render(self, cols: int = 80, rows: int = 24) -> str:
        """The drawing as ASCII art (see :mod:`repro.gdp.render`)."""
        return render_canvas(self.canvas, cols=cols, rows=rows)

    @property
    def shapes(self):
        return self.canvas.shapes
