"""The adapter between the serving hot path and tracing/metrics.

:class:`~repro.serve.SessionPool` and
:class:`~repro.serve.GestureServer` accept an optional observer and call
the hook methods below at a handful of points.  With no observer the
pool pays one ``is not None`` test per hook site; with one, this class
pays the bookkeeping — pre-bound counters, one small dict of in-flight
sessions — so the hooks stay cheap even fully enabled.

Everything here is duck-typed against :class:`~repro.serve.Decision`
(``kind`` / ``reason`` / timestamps); the observer deliberately imports
nothing from :mod:`repro.serve`, keeping the dependency one-way:
observability is injected into the serving layer, never required by it.
"""

from __future__ import annotations

from .metrics import MetricsRegistry
from .trace import Tracer

__all__ = ["PoolObserver"]

# Bucket bounds tuned to what each histogram actually sees.
_OPS_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)
_LATENCY_US_BUCKETS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0,
)


class PoolObserver:
    """Routes pool/server hook calls into a tracer and a metrics registry.

    Either half may be ``None``: metrics without tracing is the cheap
    always-on configuration; tracing without metrics is what the golden
    trace tests use.
    """

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        quality=None,
        profiler=None,
    ):
        self.metrics = metrics
        self.tracer = tracer
        # Optional QualityMonitor / PerfProfiler.  The pool reads these
        # attributes once at attach time and calls them directly — the
        # observer just carries them, so PR 2's hook bodies (and the
        # golden traces they produce) are untouched when they are None.
        self.quality = quality
        self.profiler = profiler
        # key -> [first_point_t, decided_t | None]
        self._live: dict[str, list] = {}
        if metrics is not None:
            self._c_ticks = metrics.counter("pool.ticks")
            self._c_ops = metrics.counter("pool.ops")
            self._c_opened = metrics.counter("pool.sessions_opened")
            self._c_eager = metrics.counter("pool.decisions.eager")
            self._c_timeout = metrics.counter("pool.decisions.timeout")
            self._c_up = metrics.counter("pool.decisions.up")
            self._c_commits = metrics.counter("pool.commits")
            self._c_evicts = metrics.counter("pool.evicts")
            self._c_errors = metrics.counter("pool.errors")
            self._c_rows = metrics.counter("batch.rows")
            self._c_fallbacks = metrics.counter("batch.fallbacks")
            self._h_tick_ops = metrics.histogram("pool.tick_ops", _OPS_BUCKETS)
            self._h_queue = metrics.histogram("pool.queue_depth", _OPS_BUCKETS)
            self._h_sessions = metrics.histogram(
                "pool.sessions_in_flight", _OPS_BUCKETS
            )
            self._h_eval = metrics.histogram(
                "batch.eval_us_per_point", _LATENCY_US_BUCKETS
            )
            self._h_inbox = metrics.histogram("server.inbox_batch", _OPS_BUCKETS)

    # -- pool hooks ----------------------------------------------------------

    def session_started(self, key: str, t: float) -> None:
        """A ``down`` opened a session at virtual time ``t``."""
        self._live[key] = [t, None]
        if self.metrics is not None:
            self._c_opened.inc()

    def tick(self, ops: int, queue: int, sessions: int) -> None:
        """One pool drain: ``ops`` applied, ``queue`` chunks were buffered."""
        if self.metrics is not None:
            self._c_ticks.inc()
            self._c_ops.inc(ops)
            self._h_tick_ops.observe(ops)
            self._h_queue.observe(queue)
            self._h_sessions.observe(sessions)

    def batch_round(
        self, points: int, rows: int, fallbacks: int, seconds: float
    ) -> None:
        """One batched evaluation round: the fused-matmul hot path."""
        if self.metrics is not None:
            self._c_rows.inc(rows)
            self._c_fallbacks.inc(fallbacks)
            if points:
                self._h_eval.observe(seconds * 1e6 / points)

    def timeout_round(self, rows: int, fallbacks: int) -> None:
        """One batched timeout-classification round."""
        if self.metrics is not None:
            self._c_rows.inc(rows)
            self._c_fallbacks.inc(fallbacks)

    def decisions(self, decisions) -> None:
        """Newly emitted pool decisions, in emission order."""
        metrics = self.metrics is not None
        tracer = self.tracer
        live = self._live
        for d in decisions:
            kind = d.kind
            if kind == "recog":
                state = live.get(d.key)
                if metrics:
                    (
                        self._c_eager
                        if d.reason == "eager"
                        else self._c_timeout
                        if d.reason == "timeout"
                        else self._c_up
                    ).inc()
                if state is not None:
                    state[1] = d.t
                    if tracer is not None:
                        if d.reason == "timeout":
                            # t is last_point_t + timeout: the span covers
                            # the motionless dwell that fired it.
                            tracer.span(
                                d.key,
                                "collect",
                                state[0],
                                d.t,
                                points=d.points_seen,
                            )
                            tracer.span(
                                d.key,
                                "timeout",
                                d.t,
                                d.t,
                                **{"class": d.class_name, "points": d.points_seen},
                            )
                        else:
                            tracer.span(
                                d.key,
                                "collect",
                                state[0],
                                d.t,
                                points=d.points_seen,
                            )
                            tracer.span(
                                d.key,
                                "classify",
                                d.t,
                                d.t,
                                eager=d.eager,
                                reason=d.reason,
                                **{"class": d.class_name, "points": d.points_seen},
                            )
            elif kind == "commit":
                state = live.pop(d.key, None)
                if metrics:
                    self._c_commits.inc()
                if (
                    tracer is not None
                    and state is not None
                    and state[1] is not None
                ):
                    tracer.span(d.key, "manipulate", state[1], d.t)
            elif kind == "evict":
                live.pop(d.key, None)
                if metrics:
                    self._c_evicts.inc()
                if tracer is not None:
                    tracer.event(
                        d.key,
                        "evict",
                        d.t,
                        reason=d.reason,
                        **{"class": d.class_name},
                    )
            else:  # error
                if metrics:
                    self._c_errors.inc()
                if tracer is not None:
                    tracer.event(d.key, "error", d.t, reason=d.reason)

    def model_swapped(self, prefix: str, label: str, t: float) -> None:
        """A hot-swap took effect at a tick barrier (``adapt.swaps``)."""
        if self.metrics is not None:
            self.metrics.counter("adapt.swaps").inc()
        if self.tracer is not None:
            self.tracer.event(prefix, "swap", t, model=label)

    # -- server hooks --------------------------------------------------------

    def server_batch(self, requests: int) -> None:
        """One pump batch drained from the server inbox."""
        if self.metrics is not None:
            self._h_inbox.observe(requests)
